// Standard-function matching: "the most important method in the contest"
// (Team 1). Samples several benchmark functions and shows which ones the
// matcher identifies — and that the resulting circuits are exact.

#include <cstdio>

#include "learn/matching.hpp"
#include "oracle/suite.hpp"

int main() {
  using namespace lsml;
  oracle::SuiteOptions so;
  so.rows_per_split = 1500;

  std::printf("%-6s %-16s %-28s %8s %10s\n", "bench", "category",
              "matched as", "ANDs", "test acc");
  // Adder MSB, comparator, parity, symmetric, a multiplier bit, and two
  // that must NOT match (random cone, CIFAR-like).
  for (const int id : {0, 30, 74, 76, 21, 52, 92}) {
    const oracle::Benchmark bench = oracle::make_benchmark(id, so);
    const auto match = learn::match_standard_function(bench.train, {});
    if (match) {
      std::printf("%-6s %-16s %-28s %8u %9.2f%%\n", bench.name.c_str(),
                  bench.category.c_str(), match->what.c_str(),
                  match->circuit.num_ands(),
                  100 * learn::circuit_accuracy(match->circuit, bench.test));
    } else {
      std::printf("%-6s %-16s %-28s %8s %10s\n", bench.name.c_str(),
                  bench.category.c_str(), "(no match -> fall back to ML)",
                  "-", "-");
    }
  }
  return 0;
}
