// Approximate logic synthesis: the paper's closing question is whether ML
// can trade exactness for area when exactness is not needed. This example
// shows both directions on one function:
//   (a) exact-circuit approximation (Team 1's simulation-guided constant
//       replacement) sweeping the node budget, and
//   (b) learned circuits of growing capacity (DT depth sweep),
// printing accuracy-vs-size for each.

#include <cstdio>

#include "aig/aig_approx.hpp"
#include "aig/aig_build.hpp"
#include "learn/dt.hpp"
#include "oracle/suite.hpp"

int main() {
  using namespace lsml;

  // Target: the 2nd MSB of a 16-bit adder (ex01) — exactly representable
  // with ~100 gates, hard to learn from samples.
  oracle::SuiteOptions so;
  so.rows_per_split = 2000;
  const oracle::Benchmark bench = oracle::make_benchmark(1, so);

  // (a) Start from the exact adder circuit and approximate it down.
  aig::Aig exact(static_cast<std::uint32_t>(bench.num_inputs));
  {
    std::vector<aig::Lit> a;
    std::vector<aig::Lit> b;
    for (std::uint32_t i = 0; i < 16; ++i) {
      a.push_back(exact.pi(i));
      b.push_back(exact.pi(16 + i));
    }
    exact.add_output(aig::ripple_adder(exact, a, b)[15]);
    exact = exact.cleanup();
  }
  std::printf("exact circuit: %u ANDs, test accuracy %.2f%%\n\n",
              exact.num_ands(),
              100 * learn::circuit_accuracy(exact, bench.test));

  std::printf("(a) approximating the exact circuit\n");
  std::printf("%-10s %10s %12s\n", "budget", "ANDs", "test acc");
  core::Rng rng(1);
  for (const std::uint32_t budget : {80u, 60u, 40u, 25u, 12u, 6u, 2u}) {
    aig::ApproxOptions ao;
    ao.node_budget = budget;
    const aig::Aig approx = aig::approximate_to_budget(exact, ao, rng);
    std::printf("%-10u %10u %11.2f%%\n", budget, approx.num_ands(),
                100 * learn::circuit_accuracy(approx, bench.test));
  }

  std::printf("\n(b) learning circuits of growing capacity\n");
  std::printf("%-10s %10s %12s\n", "depth", "ANDs", "test acc");
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 12u, 16u}) {
    learn::DtOptions options;
    options.max_depth = depth;
    learn::DtLearner learner(options, "dt");
    core::Rng lrng(2);
    const auto model = learner.fit(bench.train, bench.valid, lrng);
    std::printf("%-10zu %10u %11.2f%%\n", depth, model.circuit.num_ands(),
                100 * learn::circuit_accuracy(model.circuit, bench.test));
  }
  std::printf(
      "\nBoth curves show the paper's point: a small accuracy sacrifice "
      "buys a much smaller circuit.\n");
  return 0;
}
