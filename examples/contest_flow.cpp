// Contest flow: run several team strategies on a slice of the benchmark
// suite — in parallel — and print a mini leaderboard, the paper's Table III
// in miniature. LSML_THREADS overrides the worker count (default: one per
// hardware thread); any thread count produces identical numbers.

#include <cstdio>
#include <iostream>

#include "core/config.hpp"
#include "oracle/suite.hpp"
#include "portfolio/contest.hpp"
#include "portfolio/team.hpp"

int main() {
  using namespace lsml;

  // A slice of the suite spanning all three domains of Table I:
  // arithmetic (comparator, adder MSB), random logic, symmetric, ML-like.
  oracle::SuiteOptions suite_options;
  suite_options.rows_per_split = 1000;
  std::vector<oracle::Benchmark> suite;
  for (const int id : {0, 31, 52, 74, 76, 82}) {
    suite.push_back(oracle::make_benchmark(id, suite_options));
    std::cout << "generated " << suite.back().name << " ("
              << suite.back().category << ")\n";
  }

  portfolio::TeamOptions team_options;
  team_options.scale = core::Scale::kSmoke;  // trimmed grids for the demo

  portfolio::ContestOptions contest_options;
  // 0 = one worker per hardware thread; LSML_THREADS overrides.
  contest_options.num_threads = core::threads_from_env("LSML_THREADS", 0);
  contest_options.verbosity = 1;

  portfolio::ContestStats stats;
  const std::vector<portfolio::TeamRun> runs = portfolio::run_contest(
      portfolio::contest_entries({2, 7, 8, 10}, team_options), suite, 99,
      contest_options, &stats);

  std::printf("\nran %d (team x benchmark) tasks in %.0f ms\n",
              stats.tasks_completed, stats.elapsed_ms);
  std::cout << "\n" << portfolio::format_leaderboard(runs);

  std::cout << "\nwhat each team picked per benchmark:\n";
  for (const auto& run : runs) {
    std::printf("team %2d:", run.team);
    for (const auto& r : run.results) {
      std::printf("  %s=%s(%u)", r.benchmark.c_str(), r.method.c_str(),
                  r.num_ands);
    }
    std::printf("\n");
  }
  return 0;
}
