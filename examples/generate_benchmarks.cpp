// Benchmark suite exporter: writes the contest's train/validation/test PLA
// files for a range of benchmarks, exactly like the released IWLS 2020
// distribution (ex00_train.pla etc.).
//
// Usage: generate_benchmarks [first last rows out_dir]
//        (defaults: 0 9 1000 ./pla_out)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "oracle/suite.hpp"
#include "pla/pla.hpp"

int main(int argc, char** argv) {
  using namespace lsml;
  const int first = argc > 1 ? std::atoi(argv[1]) : 0;
  const int last = argc > 2 ? std::atoi(argv[2]) : 9;
  const std::size_t rows =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 1000;
  const std::string out_dir = argc > 4 ? argv[4] : "pla_out";
  std::filesystem::create_directories(out_dir);

  oracle::SuiteOptions options;
  options.rows_per_split = rows;
  for (int id = first; id <= last && id < 100; ++id) {
    const oracle::Benchmark b = oracle::make_benchmark(id, options);
    const std::string base = out_dir + "/" + b.name;
    pla::write_pla_file(pla::Pla::from_dataset(b.train), base + "_train.pla");
    pla::write_pla_file(pla::Pla::from_dataset(b.valid), base + "_valid.pla");
    pla::write_pla_file(pla::Pla::from_dataset(b.test), base + "_test.pla");
    std::printf("%s: %zu inputs, 3x%zu rows -> %s_{train,valid,test}.pla\n",
                b.name.c_str(), b.num_inputs, rows, base.c_str());
  }
  return 0;
}
