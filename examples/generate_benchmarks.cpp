// Benchmark suite exporter: writes the contest's train/validation/test PLA
// triples for a range of benchmarks in the layout the released IWLS 2020
// distribution used and `lsml run` consumes (ex00.train.pla etc.).
//
// Usage: generate_benchmarks [first last rows out_dir seed]
//        (defaults: 0 9 1000 ./pla_out 2020)

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "suite/generate.hpp"

int main(int argc, char** argv) {
  using namespace lsml;
  suite::GenerateOptions options;
  options.first = argc > 1 ? std::atoi(argv[1]) : 0;
  options.last = argc > 2 ? std::atoi(argv[2]) : 9;
  options.rows_per_split =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 1000;
  const std::string out_dir = argc > 4 ? argv[4] : "pla_out";
  options.seed = argc > 5
                     ? static_cast<std::uint64_t>(std::atoll(argv[5]))
                     : 2020;

  std::vector<std::string> names;
  try {
    names = suite::generate_suite(out_dir, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "generate_benchmarks: %s\n", e.what());
    return 1;
  }
  for (const auto& name : names) {
    std::printf("%s: 3x%zu rows -> %s/%s.{train,valid,test}.pla\n",
                name.c_str(), options.rows_per_split, out_dir.c_str(),
                name.c_str());
  }
  std::printf("%zu benchmark triples written; try `lsml run %s`\n",
              names.size(), out_dir.c_str());
  return 0;
}
