// Quickstart: learn a small circuit from input-output samples.
//
// Generates a contest-style benchmark (a 20-bit comparator), trains a
// decision tree, synthesizes and optimizes the AIG, and reports the
// train/validation/test accuracy and circuit size — the whole contest
// loop in ~40 lines.

#include <iostream>

#include "aig/aig_io.hpp"
#include "learn/dt.hpp"
#include "oracle/suite.hpp"

int main() {
  using namespace lsml;

  // 1. A benchmark: ex31 is the 20-bit comparator with 6400-row splits in
  //    the contest; we use 1500 rows here to keep the example instant.
  oracle::SuiteOptions suite_options;
  suite_options.rows_per_split = 1500;
  const oracle::Benchmark bench = oracle::make_benchmark(31, suite_options);
  std::cout << "benchmark " << bench.name << " (" << bench.category << ", "
            << bench.num_inputs << " inputs)\n";

  // 2. A learner: depth-8 C4.5-style decision tree (Team 10's choice).
  learn::DtOptions options;
  options.max_depth = 8;
  learn::DtLearner learner(options, "dt8");

  // 3. Fit. The returned model carries the synthesized AIG.
  core::Rng rng(1);
  const learn::TrainedModel model = learner.fit(bench.train, bench.valid, rng);

  // 4. Score on the held-out test set by simulating the circuit.
  const double test_acc = learn::circuit_accuracy(model.circuit, bench.test);
  std::cout << "train " << 100 * model.train_acc << "%  valid "
            << 100 * model.valid_acc << "%  test " << 100 * test_acc << "%\n"
            << "circuit: " << model.circuit.num_ands() << " AND gates, "
            << model.circuit.num_levels() << " levels\n";

  // 5. Export in the contest's AIGER format.
  aig::write_aag_file(model.circuit, "quickstart_ex31.aag");
  std::cout << "wrote quickstart_ex31.aag\n";
  return 0;
}
