// Closed-loop load generator for `lsml serve`.
//
// Measures request/response throughput and latency percentiles of the
// serving daemon at 1..64 concurrent connections. By default it starts an
// in-process server (ephemeral port, hardware-width worker pool) and
// drives it over real TCP sockets; `--connect HOST:PORT` aims it at an
// externally started `lsml serve` instead (the nightly soak does this).
//
// Modes:
//   eval   (default) one learn seeds a model, then every connection
//          replays a fixed eval batch — the paper's deployment story
//          (train offline, answer queries fast) and the acceptance
//          criterion's scaling workload.
//   ping   protocol-only round trips (optionally with a server-side
//          sleep) — isolates transport overhead from synthesis work.
//
// Output: one table row per connection count with req/s and p50/p95/p99
// latency, a greppable `serve-bench:` summary line per row, and the
// 1->8 connection scaling factor.
//
//   bench_serve [--connect H:P] [--threads N] [--duration-s D]
//               [--conns 1,2,4,...] [--rows R] [--mode eval|ping]
//               [--sleep-ms S]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/server.hpp"

namespace {

using namespace lsml;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string connect_host;  ///< empty = start an in-process server
  int connect_port = 0;
  int threads = 0;  ///< in-process server pool width (0 = hardware)
  double duration_s = 3.0;
  std::vector<int> conns = {1, 2, 4, 8, 16, 32, 64};
  std::size_t rows = 256;   ///< minterms per eval request
  std::string mode = "eval";
  std::int64_t sleep_ms = 0;  ///< ping mode: server-side sleep
};

[[noreturn]] void usage(const char* message) {
  std::fprintf(stderr,
               "bench_serve: %s\n"
               "usage: bench_serve [--connect H:P] [--threads N]\n"
               "                   [--duration-s D] [--conns 1,2,4,...]\n"
               "                   [--rows R] [--mode eval|ping]\n"
               "                   [--sleep-ms S]\n",
               message);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  options.threads = core::threads_from_env("LSML_THREADS", 0);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage((arg + " needs a value").c_str());
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      const std::string hp = value();
      const std::size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        usage("--connect needs HOST:PORT");
      }
      options.connect_host = hp.substr(0, colon);
      options.connect_port = std::atoi(hp.c_str() + colon + 1);
      if (options.connect_port <= 0) {
        usage("--connect needs a positive port");
      }
    } else if (arg == "--threads") {
      options.threads = std::atoi(value().c_str());
    } else if (arg == "--duration-s") {
      options.duration_s = std::atof(value().c_str());
      if (options.duration_s <= 0) {
        usage("--duration-s must be positive");
      }
    } else if (arg == "--conns") {
      options.conns.clear();
      std::istringstream list(value());
      std::string item;
      while (std::getline(list, item, ',')) {
        const int n = std::atoi(item.c_str());
        if (n <= 0) {
          usage("--conns needs positive integers");
        }
        options.conns.push_back(n);
      }
      if (options.conns.empty()) {
        usage("--conns is empty");
      }
    } else if (arg == "--rows") {
      options.rows = static_cast<std::size_t>(std::atoll(value().c_str()));
      if (options.rows == 0) {
        usage("--rows must be positive");
      }
    } else if (arg == "--mode") {
      options.mode = value();
      if (options.mode != "eval" && options.mode != "ping") {
        usage("--mode must be eval or ping");
      }
    } else if (arg == "--sleep-ms") {
      options.sleep_ms = std::atoll(value().c_str());
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return options;
}

/// Random 10-input training PLA (learned once to seed the eval workload).
std::string training_pla(core::Rng& rng) {
  constexpr std::size_t kInputs = 10;
  constexpr std::size_t kRows = 400;
  std::ostringstream os;
  os << ".i " << kInputs << "\n.o 1\n";
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::uint64_t bits = rng.next();
    for (std::size_t c = 0; c < kInputs; ++c) {
      os << (((bits >> c) & 1u) != 0 ? '1' : '0');
    }
    // A learnable but non-trivial target: majority of three columns.
    const int votes = static_cast<int>((bits >> 0) & 1u) +
                      static_cast<int>((bits >> 3) & 1u) +
                      static_cast<int>((bits >> 7) & 1u);
    os << ' ' << (votes >= 2 ? '1' : '0') << '\n';
  }
  os << ".e\n";
  return os.str();
}

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles_ms(std::vector<double>& latencies_ms) {
  Percentiles p;
  if (latencies_ms.empty()) {
    return p;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct RoundResult {
  int conns = 0;
  std::uint64_t requests = 0;
  double reqs_per_s = 0.0;
  Percentiles latency;
};

RoundResult run_round(const std::string& host, int port,
                      const std::string& request_line, int conns,
                      double duration_s) {
  std::vector<std::vector<double>> latencies(conns);
  std::vector<std::string> errors(conns);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      try {
        server::Client client;
        client.connect(host, port);
        client.roundtrip(request_line);  // connection + cache warmup
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        const auto end_at =
            Clock::now() + std::chrono::duration<double>(duration_s);
        while (Clock::now() < end_at) {
          const auto t0 = Clock::now();
          const std::string response = client.roundtrip(request_line);
          const auto t1 = Clock::now();
          if (response.find("\"ok\":true") == std::string::npos) {
            errors[c] = "request failed: " + response;
            return;
          }
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  const auto wall_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  for (int c = 0; c < conns; ++c) {
    if (!errors[c].empty()) {
      std::fprintf(stderr, "bench_serve: connection %d: %s\n", c,
                   errors[c].c_str());
      std::exit(1);
    }
  }
  RoundResult result;
  result.conns = conns;
  std::vector<double> all;
  for (auto& per_conn : latencies) {
    result.requests += per_conn.size();
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  result.reqs_per_s =
      wall_s > 0 ? static_cast<double>(result.requests) / wall_s : 0.0;
  result.latency = percentiles_ms(all);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);

  // The target server: external (--connect) or in-process.
  std::unique_ptr<server::Server> local;
  std::string host = options.connect_host;
  int port = options.connect_port;
  if (host.empty()) {
    server::ServerOptions server_options;
    server_options.port = 0;
    server_options.num_threads = options.threads;
    server_options.service.cache_dir.clear();  // measure compute, not disk
    local = std::make_unique<server::Server>(server_options);
    local->start();
    host = "127.0.0.1";
    port = local->port();
    std::printf("in-process server on port %d (%s workers)\n", port,
                options.threads == 0
                    ? "hardware"
                    : std::to_string(options.threads).c_str());
  } else {
    std::printf("targeting external server %s:%d\n", host.c_str(), port);
  }

  // Build the one request line every connection replays.
  std::string request_line;
  if (options.mode == "eval") {
    core::Rng rng(2020);
    server::Client setup;
    setup.connect(host, port);
    server::Json learn = server::Json::object();
    learn.set("type", "learn");
    learn.set("learner", "dt");
    learn.set("pla", training_pla(rng));
    const server::Json learned =
        server::Json::parse(setup.roundtrip(learn.dump()));
    if (!learned.at("ok").as_bool()) {
      std::fprintf(stderr, "bench_serve: learn failed: %s\n",
                   learned.dump().c_str());
      return 1;
    }
    const std::string model = learned.at("model").as_string();
    const auto inputs_count =
        static_cast<std::size_t>(learned.at("inputs").as_int());
    server::Json eval = server::Json::object();
    eval.set("type", "eval");
    eval.set("model", model);
    server::Json inputs = server::Json::array();
    for (std::size_t r = 0; r < options.rows; ++r) {
      std::string row(inputs_count, '0');
      const std::uint64_t bits = rng.next();
      for (std::size_t c = 0; c < inputs_count; ++c) {
        row[c] = ((bits >> c) & 1u) != 0 ? '1' : '0';
      }
      inputs.push_back(server::Json(std::move(row)));
    }
    eval.set("inputs", std::move(inputs));
    request_line = eval.dump();
    std::printf("mode eval: model %s (%lld ANDs), %zu rows/request\n",
                model.c_str(),
                static_cast<long long>(learned.at("ands").as_int()),
                options.rows);
  } else {
    server::Json ping = server::Json::object();
    ping.set("type", "ping");
    if (options.sleep_ms > 0) {
      ping.set("sleep_ms", options.sleep_ms);
    }
    request_line = ping.dump();
    std::printf("mode ping%s\n",
                options.sleep_ms > 0
                    ? (" (sleep " + std::to_string(options.sleep_ms) + " ms)")
                          .c_str()
                    : "");
  }

  std::printf("%.1f s per point, closed loop\n\n", options.duration_s);
  std::printf("%6s %10s %10s %9s %9s %9s\n", "conns", "requests", "req/s",
              "p50 ms", "p95 ms", "p99 ms");
  std::vector<RoundResult> results;
  for (const int conns : options.conns) {
    const RoundResult r =
        run_round(host, port, request_line, conns, options.duration_s);
    results.push_back(r);
    std::printf("%6d %10llu %10.0f %9.3f %9.3f %9.3f\n", r.conns,
                static_cast<unsigned long long>(r.requests), r.reqs_per_s,
                r.latency.p50, r.latency.p95, r.latency.p99);
    std::printf("serve-bench: mode=%s conns=%d reqs=%llu reqs_per_s=%.0f "
                "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
                options.mode.c_str(), r.conns,
                static_cast<unsigned long long>(r.requests), r.reqs_per_s,
                r.latency.p50, r.latency.p95, r.latency.p99);
    std::fflush(stdout);
  }

  // Scaling headline: throughput at 8 connections over 1 connection.
  const auto find = [&](int conns) -> const RoundResult* {
    for (const auto& r : results) {
      if (r.conns == conns) {
        return &r;
      }
    }
    return nullptr;
  };
  const RoundResult* one = find(1);
  const RoundResult* eight = find(8);
  if (one != nullptr && eight != nullptr && one->reqs_per_s > 0) {
    std::printf("\nscaling 1->8 connections: %.2fx req/s\n",
                eight->reqs_per_s / one->reqs_per_s);
  }
  if (local != nullptr) {
    local->stop();
  }
  return 0;
}
