// Closed-loop load generator for `lsml serve`.
//
// Measures request/response throughput and latency percentiles of the
// serving daemon from 1 up to 1024+ concurrent connections. The load side
// reuses core::EventLoop: ONE client thread multiplexes every connection
// over nonblocking sockets, so a 1024-connection point costs 1024 fds, not
// 1024 threads — the same trick the server itself pulls. By default the
// bench starts an in-process server (ephemeral port, hardware-width worker
// pool) and drives it over real TCP; `--connect HOST:PORT` aims it at an
// externally started `lsml serve` instead (the nightly soak does this).
//
// Modes:
//   eval   (default) one learn seeds a model, then every connection
//          replays a fixed eval batch — the paper's deployment story
//          (train offline, answer queries fast) and the acceptance
//          criterion's scaling workload.
//   ping   protocol-only round trips (optionally with a server-side
//          sleep) — isolates transport overhead from synthesis work.
//
// Output: one table row per connection count with req/s and p50/p95/p99
// latency under saturation, a greppable `serve-bench:` summary line per
// row, and the 1->8 connection scaling factor. `--json FILE` snapshots the
// table; `--check FILE` compares the run against such a snapshot and fails
// (exit 1) when req/s drops or p99 grows by more than `--max-regress`
// (default 0.25) at any connection count — the nightly perf gate against
// the committed BENCH_serve.json.
//
//   bench_serve [--connect H:P] [--threads N] [--duration-s D]
//               [--conns 1,8,64,...] [--rows R] [--mode eval|ping]
//               [--sleep-ms S] [--json FILE] [--check FILE]
//               [--max-regress R]

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/event_loop.hpp"
#include "core/rng.hpp"
#include "obs/registry.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/server.hpp"

namespace {

using namespace lsml;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string connect_host;  ///< empty = start an in-process server
  int connect_port = 0;
  int threads = 0;  ///< in-process server pool width (0 = hardware)
  double duration_s = 3.0;
  std::vector<int> conns = {1, 8, 64, 256, 1024};
  std::size_t rows = 256;  ///< minterms per eval request
  std::string mode = "eval";
  std::int64_t sleep_ms = 0;    ///< ping mode: server-side sleep
  std::string json_path;        ///< write a snapshot here
  std::string check_path;       ///< compare against this snapshot
  double max_regress = 0.25;    ///< allowed relative regression
};

[[noreturn]] void usage(const char* message) {
  std::fprintf(stderr,
               "bench_serve: %s\n"
               "usage: bench_serve [--connect H:P] [--threads N]\n"
               "                   [--duration-s D] [--conns 1,8,64,...]\n"
               "                   [--rows R] [--mode eval|ping]\n"
               "                   [--sleep-ms S] [--json FILE]\n"
               "                   [--check FILE] [--max-regress R]\n",
               message);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  options.threads = core::threads_from_env("LSML_THREADS", 0);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage((arg + " needs a value").c_str());
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      const std::string hp = value();
      const std::size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        usage("--connect needs HOST:PORT");
      }
      options.connect_host = hp.substr(0, colon);
      options.connect_port = std::atoi(hp.c_str() + colon + 1);
      if (options.connect_port <= 0) {
        usage("--connect needs a positive port");
      }
    } else if (arg == "--threads") {
      options.threads = std::atoi(value().c_str());
    } else if (arg == "--duration-s") {
      options.duration_s = std::atof(value().c_str());
      if (options.duration_s <= 0) {
        usage("--duration-s must be positive");
      }
    } else if (arg == "--conns") {
      options.conns.clear();
      std::istringstream list(value());
      std::string item;
      while (std::getline(list, item, ',')) {
        const int n = std::atoi(item.c_str());
        if (n <= 0) {
          usage("--conns needs positive integers");
        }
        options.conns.push_back(n);
      }
      if (options.conns.empty()) {
        usage("--conns is empty");
      }
    } else if (arg == "--rows") {
      options.rows = static_cast<std::size_t>(std::atoll(value().c_str()));
      if (options.rows == 0) {
        usage("--rows must be positive");
      }
    } else if (arg == "--mode") {
      options.mode = value();
      if (options.mode != "eval" && options.mode != "ping") {
        usage("--mode must be eval or ping");
      }
    } else if (arg == "--sleep-ms") {
      options.sleep_ms = std::atoll(value().c_str());
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--check") {
      options.check_path = value();
    } else if (arg == "--max-regress") {
      options.max_regress = std::atof(value().c_str());
      if (options.max_regress <= 0) {
        usage("--max-regress must be positive");
      }
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return options;
}

/// Lifts RLIMIT_NOFILE far enough for `conns` sockets plus slack; the
/// 1024-connection point does not fit the common 1024 default soft limit.
void raise_fd_limit(int conns) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return;
  }
  const rlim_t needed = static_cast<rlim_t>(conns) + 128;
  if (limit.rlim_cur >= needed) {
    return;
  }
  limit.rlim_cur = needed > limit.rlim_max ? limit.rlim_max : needed;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

/// Random 10-input training PLA (learned once to seed the eval workload).
std::string training_pla(core::Rng& rng) {
  constexpr std::size_t kInputs = 10;
  constexpr std::size_t kRows = 400;
  std::ostringstream os;
  os << ".i " << kInputs << "\n.o 1\n";
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::uint64_t bits = rng.next();
    for (std::size_t c = 0; c < kInputs; ++c) {
      os << (((bits >> c) & 1u) != 0 ? '1' : '0');
    }
    // A learnable but non-trivial target: majority of three columns.
    const int votes = static_cast<int>((bits >> 0) & 1u) +
                      static_cast<int>((bits >> 3) & 1u) +
                      static_cast<int>((bits >> 7) & 1u);
    os << ' ' << (votes >= 2 ? '1' : '0') << '\n';
  }
  os << ".e\n";
  return os.str();
}

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles_ms(std::vector<double>& latencies_ms) {
  Percentiles p;
  if (latencies_ms.empty()) {
    return p;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct RoundResult {
  int conns = 0;
  std::uint64_t requests = 0;
  double reqs_per_s = 0.0;
  Percentiles latency;
};

/// One multiplexed closed-loop connection: exactly one request in flight;
/// the first response is untimed warmup.
struct LoadConn {
  int fd = -1;
  std::string rx;          ///< bytes not yet framed into a response line
  std::size_t tx_off = 0;  ///< progress into the shared request line
  bool sending = false;
  bool warmed = false;
  bool active = true;
  Clock::time_point sent_at{};
  std::vector<double> latencies_ms;
};

/// Drives `conns` connections off one EventLoop thread (this thread).
RoundResult run_round(const std::string& host, int port,
                      const std::string& request_line, int conns,
                      double duration_s) {
  const std::string wire = request_line + "\n";
  in_addr addr{};
  const std::string spelled = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    std::fprintf(stderr, "bench_serve: cannot parse host '%s'\n",
                 host.c_str());
    std::exit(1);
  }

  core::EventLoop loop;
  std::vector<std::unique_ptr<LoadConn>> state;
  state.reserve(static_cast<std::size_t>(conns));
  int live = 0;
  std::string failure;
  Clock::time_point end_at{};  // set once every connection is up

  const auto fail = [&](const std::string& what) {
    if (failure.empty()) {
      failure = what + ": " + std::strerror(errno);
    }
    loop.stop();
  };

  const auto update_interest = [&](LoadConn& conn) {
    std::uint32_t interest = core::EventLoop::kRead;
    if (conn.sending) {
      interest |= core::EventLoop::kWrite;
    }
    loop.set_interest(conn.fd, interest);
  };

  const auto finish_conn = [&](LoadConn& conn) {
    conn.active = false;
    loop.remove(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
    if (--live == 0) {
      loop.stop();
    }
  };

  // Forward declaration dance: try_send is used from both the readiness
  // callback and send_next.
  std::function<void(LoadConn&)> try_send = [&](LoadConn& conn) {
    while (conn.tx_off < wire.size()) {
      const ssize_t n = ::send(conn.fd, wire.data() + conn.tx_off,
                               wire.size() - conn.tx_off, MSG_NOSIGNAL);
      if (n >= 0) {
        conn.tx_off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn.sending = true;
        update_interest(conn);
        return;
      }
      fail("send");
      return;
    }
    conn.sending = false;
    update_interest(conn);
  };

  const auto send_next = [&](LoadConn& conn) {
    conn.tx_off = 0;
    conn.sent_at = Clock::now();
    try_send(conn);
  };

  const auto on_response = [&](LoadConn& conn) {
    const auto now = Clock::now();
    if (conn.warmed) {
      conn.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - conn.sent_at)
              .count());
    } else {
      conn.warmed = true;
    }
    if (now < end_at) {
      send_next(conn);
    } else {
      finish_conn(conn);
    }
  };

  const auto on_ready = [&](LoadConn& conn, std::uint32_t ready) {
    if (!conn.active) {
      return;
    }
    if ((ready & core::EventLoop::kError) != 0) {
      errno = ECONNRESET;
      fail("connection");
      return;
    }
    if ((ready & core::EventLoop::kWrite) != 0 && conn.sending) {
      try_send(conn);
      if (!failure.empty()) {
        return;
      }
    }
    if ((ready & core::EventLoop::kRead) == 0) {
      return;
    }
    char chunk[64 * 1024];
    while (conn.active) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        conn.rx.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while (conn.active &&
               (newline = conn.rx.find('\n')) != std::string::npos) {
          const std::string line = conn.rx.substr(0, newline);
          conn.rx.erase(0, newline + 1);
          if (line.find("\"ok\":true") == std::string::npos) {
            std::fprintf(stderr, "bench_serve: request failed: %s\n",
                         line.c_str());
            std::exit(1);
          }
          on_response(conn);
        }
        continue;
      }
      if (n == 0) {
        errno = ECONNRESET;
        fail("server closed the connection");
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      fail("recv");
      return;
    }
  };

  // Connect everything up front (blocking connects, sequential: loopback
  // SYNs are cheap), then flip to nonblocking for the loop.
  for (int c = 0; c < conns; ++c) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      std::fprintf(stderr, "bench_serve: socket: %s\n", std::strerror(errno));
      std::exit(1);
    }
    sockaddr_in peer{};
    peer.sin_family = AF_INET;
    peer.sin_addr = addr;
    peer.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&peer), sizeof peer) != 0) {
      std::fprintf(stderr, "bench_serve: connect (conn %d): %s\n", c,
                   std::strerror(errno));
      std::exit(1);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    auto conn = std::make_unique<LoadConn>();
    conn->fd = fd;
    LoadConn& ref = *conn;
    state.push_back(std::move(conn));
    ++live;
    loop.add(fd, core::EventLoop::kRead,
             [&on_ready, conn = &ref](std::uint32_t ready) {
               on_ready(*conn, ready);
             });
  }

  const auto wall_start = Clock::now();
  end_at = wall_start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(duration_s));
  for (auto& conn : state) {
    send_next(*conn);  // the warmup request
  }
  loop.run();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  if (!failure.empty()) {
    std::fprintf(stderr, "bench_serve: %s\n", failure.c_str());
    std::exit(1);
  }

  RoundResult result;
  result.conns = conns;
  std::vector<double> all;
  for (const auto& conn : state) {
    result.requests += conn->latencies_ms.size();
    all.insert(all.end(), conn->latencies_ms.begin(),
               conn->latencies_ms.end());
  }
  result.reqs_per_s =
      wall_s > 0 ? static_cast<double>(result.requests) / wall_s : 0.0;
  result.latency = percentiles_ms(all);
  return result;
}

// ------------------------------------------------------------- snapshots

/// Histogram summary for the snapshot's `obs` block: count plus
/// bucket-interpolated p50/p99 and the exact mean, all in microseconds.
server::Json summarize_histogram(const obs::HistogramSnapshot& s) {
  server::Json h = server::Json::object();
  h.set("count", static_cast<std::int64_t>(s.count));
  h.set("p50_us", s.quantile(0.5));
  h.set("p99_us", s.quantile(0.99));
  h.set("mean_us", s.mean());
  return h;
}

void write_snapshot(const std::string& path, const Options& options,
                    const std::vector<RoundResult>& results,
                    bool in_process) {
  server::Json root = server::Json::object();
  root.set("bench", "serve");
  root.set("mode", options.mode);
  root.set("rows", static_cast<std::int64_t>(options.rows));
  root.set("duration_s", options.duration_s);
  if (in_process) {
    // Server-side telemetry is only visible when the server lives in this
    // process; under --connect the registry belongs to the remote daemon.
    obs::Registry& reg = obs::Registry::instance();
    server::Json ob = server::Json::object();
    if (const auto s = reg.histogram_snapshot("lsml_server_queue_wait_us")) {
      ob.set("queue_wait_us", summarize_histogram(*s));
    }
    if (const auto s =
            reg.histogram_snapshot("lsml_server_op_us{op=\"eval\"}")) {
      ob.set("eval_us", summarize_histogram(*s));
    }
    if (const auto s = reg.histogram_snapshot("lsml_sim_sweep_us")) {
      ob.set("sweep_us", summarize_histogram(*s));
    }
    ob.set("eval_coalesced",
           static_cast<std::int64_t>(
               reg.counter_value("lsml_server_eval_coalesced_total")));
    ob.set("backpressure_pauses",
           static_cast<std::int64_t>(reg.counter_value(
               "lsml_server_backpressure_pauses_total")));
    root.set("obs", std::move(ob));
  }
  server::Json rows = server::Json::array();
  for (const RoundResult& r : results) {
    server::Json row = server::Json::object();
    row.set("conns", static_cast<std::int64_t>(r.conns));
    row.set("requests", static_cast<std::int64_t>(r.requests));
    row.set("reqs_per_s", r.reqs_per_s);
    row.set("p50_ms", r.latency.p50);
    row.set("p95_ms", r.latency.p95);
    row.set("p99_ms", r.latency.p99);
    rows.push_back(std::move(row));
  }
  root.set("results", std::move(rows));
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << root.dump() << "\n";
  std::printf("snapshot written to %s\n", path.c_str());
}

/// Gates this run against a committed snapshot: req/s may not drop, and
/// p99 may not grow, by more than `max_regress` at any shared connection
/// count. Returns the number of violations.
int check_snapshot(const std::string& path, double max_regress,
                   const std::vector<RoundResult>& results) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_serve: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  server::Json baseline;
  try {
    baseline = server::Json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: bad snapshot %s: %s\n", path.c_str(),
                 e.what());
    std::exit(1);
  }
  int violations = 0;
  const server::Json& rows = baseline.at("results");
  std::printf("\nchecking against %s (max regression %.0f%%)\n", path.c_str(),
              max_regress * 100.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const server::Json& row = rows.at(i);
    const int conns = static_cast<int>(row.at("conns").as_int());
    const RoundResult* current = nullptr;
    for (const RoundResult& r : results) {
      if (r.conns == conns) {
        current = &r;
      }
    }
    if (current == nullptr) {
      continue;  // this run did not measure that point
    }
    const double base_rps = row.at("reqs_per_s").as_double();
    const double base_p99 = row.at("p99_ms").as_double();
    const double min_rps = base_rps * (1.0 - max_regress);
    // Sub-50us p99 baselines are below timer noise; hold those to the
    // floor instead of a ratio.
    const double max_p99 =
        std::max(base_p99 * (1.0 + max_regress), 0.05);
    const bool rps_ok = current->reqs_per_s >= min_rps;
    const bool p99_ok = current->latency.p99 <= max_p99;
    std::printf(
        "  conns=%d req/s %.0f vs >=%.0f %s | p99 %.3f ms vs <=%.3f %s\n",
        conns, current->reqs_per_s, min_rps, rps_ok ? "ok" : "REGRESSED",
        current->latency.p99, max_p99, p99_ok ? "ok" : "REGRESSED");
    violations += rps_ok ? 0 : 1;
    violations += p99_ok ? 0 : 1;
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  int max_conns = 0;
  for (const int c : options.conns) {
    max_conns = std::max(max_conns, c);
  }
  raise_fd_limit(max_conns);

  // The target server: external (--connect) or in-process.
  std::unique_ptr<server::Server> local;
  std::string host = options.connect_host;
  int port = options.connect_port;
  if (host.empty()) {
    server::ServerOptions server_options;
    server_options.port = 0;
    server_options.num_threads = options.threads;
    server_options.service.cache_dir.clear();  // measure compute, not disk
    local = std::make_unique<server::Server>(server_options);
    local->start();
    host = "127.0.0.1";
    port = local->port();
    std::printf("in-process server on port %d (%s workers)\n", port,
                options.threads == 0
                    ? "hardware"
                    : std::to_string(options.threads).c_str());
  } else {
    std::printf("targeting external server %s:%d\n", host.c_str(), port);
  }

  // Build the one request line every connection replays.
  std::string request_line;
  if (options.mode == "eval") {
    core::Rng rng(2020);
    server::Client setup;
    setup.connect(host, port);
    server::Json learn = server::Json::object();
    learn.set("type", "learn");
    learn.set("learner", "dt");
    learn.set("pla", training_pla(rng));
    const server::Json learned =
        server::Json::parse(setup.roundtrip(learn.dump()));
    if (!learned.at("ok").as_bool()) {
      std::fprintf(stderr, "bench_serve: learn failed: %s\n",
                   learned.dump().c_str());
      return 1;
    }
    const std::string model = learned.at("model").as_string();
    const auto inputs_count =
        static_cast<std::size_t>(learned.at("inputs").as_int());
    server::Json eval = server::Json::object();
    eval.set("type", "eval");
    eval.set("model", model);
    server::Json inputs = server::Json::array();
    for (std::size_t r = 0; r < options.rows; ++r) {
      std::string row(inputs_count, '0');
      const std::uint64_t bits = rng.next();
      for (std::size_t c = 0; c < inputs_count; ++c) {
        row[c] = ((bits >> c) & 1u) != 0 ? '1' : '0';
      }
      inputs.push_back(server::Json(std::move(row)));
    }
    eval.set("inputs", std::move(inputs));
    request_line = eval.dump();
    std::printf("mode eval: model %s (%lld ANDs), %zu rows/request\n",
                model.c_str(),
                static_cast<long long>(learned.at("ands").as_int()),
                options.rows);
  } else {
    server::Json ping = server::Json::object();
    ping.set("type", "ping");
    if (options.sleep_ms > 0) {
      ping.set("sleep_ms", options.sleep_ms);
    }
    request_line = ping.dump();
    std::printf("mode ping%s\n",
                options.sleep_ms > 0
                    ? (" (sleep " + std::to_string(options.sleep_ms) + " ms)")
                          .c_str()
                    : "");
  }

  std::printf("%.1f s per point, closed loop, one multiplexed client\n\n",
              options.duration_s);
  std::printf("%6s %10s %10s %9s %9s %9s\n", "conns", "requests", "req/s",
              "p50 ms", "p95 ms", "p99 ms");
  std::vector<RoundResult> results;
  for (const int conns : options.conns) {
    const RoundResult r =
        run_round(host, port, request_line, conns, options.duration_s);
    results.push_back(r);
    std::printf("%6d %10llu %10.0f %9.3f %9.3f %9.3f\n", r.conns,
                static_cast<unsigned long long>(r.requests), r.reqs_per_s,
                r.latency.p50, r.latency.p95, r.latency.p99);
    std::printf("serve-bench: mode=%s conns=%d reqs=%llu reqs_per_s=%.0f "
                "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
                options.mode.c_str(), r.conns,
                static_cast<unsigned long long>(r.requests), r.reqs_per_s,
                r.latency.p50, r.latency.p95, r.latency.p99);
    std::fflush(stdout);
  }

  // Scaling headline: throughput at 8 connections over 1 connection.
  const auto find = [&](int conns) -> const RoundResult* {
    for (const auto& r : results) {
      if (r.conns == conns) {
        return &r;
      }
    }
    return nullptr;
  };
  const RoundResult* one = find(1);
  const RoundResult* eight = find(8);
  if (one != nullptr && eight != nullptr && one->reqs_per_s > 0) {
    std::printf("\nscaling 1->8 connections: %.2fx req/s\n",
                eight->reqs_per_s / one->reqs_per_s);
  }

  if (!options.json_path.empty()) {
    write_snapshot(options.json_path, options, results, local != nullptr);
  }
  int violations = 0;
  if (!options.check_path.empty()) {
    violations = check_snapshot(options.check_path, options.max_regress,
                                results);
    if (violations == 0) {
      std::printf("perf check passed\n");
    } else {
      std::printf("perf check FAILED (%d violations)\n", violations);
    }
  }
  if (local != nullptr) {
    local->stop();
  }
  return violations == 0 ? 0 : 1;
}
