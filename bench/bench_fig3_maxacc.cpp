// Fig. 3: maximum accuracy achieved for each benchmark across all teams.
// The shape from the paper: most benchmarks reach ~100%, while a group of
// hard ones (adder/multiplier MSBs, square-rooters, CIFAR comparisons)
// stays near 50-75%.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Fig. 3: max accuracy per benchmark");
  const auto suite = bench::load_suite(cfg);
  const auto runs = bench::team_runs(cfg, suite);

  const auto best = portfolio::max_accuracy_per_benchmark(runs);
  std::printf("%-6s %-16s %10s\n", "bench", "category", "max acc");
  int hard = 0;
  int solved = 0;
  for (std::size_t b = 0; b < best.size(); ++b) {
    std::printf("%-6s %-16s %9.2f%%\n", suite[b].name.c_str(),
                suite[b].category.c_str(), 100.0 * best[b]);
    hard += best[b] < 0.6 ? 1 : 0;
    solved += best[b] > 0.99 ? 1 : 0;
  }
  std::printf(
      "\nsummary: %d benchmarks at >99%% accuracy, %d stuck below 60%%\n",
      solved, hard);
  return 0;
}
