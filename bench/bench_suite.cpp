// Table I: the benchmark taxonomy, with sanity statistics per category
// (input counts and onset balance of the sampled training sets).

#include <cstdio>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Table I: benchmark suite overview");
  const auto suite = bench::load_suite(cfg);

  struct CategoryStats {
    int count = 0;
    std::size_t min_inputs = ~0ULL;
    std::size_t max_inputs = 0;
    double onset = 0.0;
  };
  std::map<std::string, CategoryStats> stats;
  for (const auto& b : suite) {
    auto& s = stats[b.category];
    ++s.count;
    s.min_inputs = std::min(s.min_inputs, b.num_inputs);
    s.max_inputs = std::max(s.max_inputs, b.num_inputs);
    s.onset += b.train.label_fraction();
  }
  std::printf("%-16s %5s %9s %9s %10s\n", "category", "count", "min_in",
              "max_in", "onset");
  for (const auto& [name, s] : stats) {
    std::printf("%-16s %5d %9zu %9zu %9.1f%%\n", name.c_str(), s.count,
                s.min_inputs, s.max_inputs, 100.0 * s.onset / s.count);
  }

  std::printf("\nper-benchmark listing\n");
  std::printf("%-6s %-16s %8s %8s\n", "name", "category", "inputs", "onset%");
  for (const auto& b : suite) {
    std::printf("%-6s %-16s %8zu %7.1f%%\n", b.name.c_str(),
                b.category.c_str(), b.num_inputs,
                100.0 * b.train.label_fraction());
  }
  return 0;
}
