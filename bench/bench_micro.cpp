// Micro-benchmarks (google-benchmark) for the core kernels the whole
// reproduction leans on: packed AIG simulation, structural hashing,
// DT split scanning, ESPRESSO expansion, ISOP, and the optimize() pipeline.

#include <benchmark/benchmark.h>

#include "aig/aig_opt.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"
#include "learn/dt.hpp"
#include "sop/espresso.hpp"
#include "tt/isop.hpp"

namespace {

using namespace lsml;

aig::Aig make_cone(std::uint32_t inputs, std::uint32_t ands, int seed) {
  core::Rng rng(seed);
  aig::ConeOptions options;
  options.num_inputs = inputs;
  options.num_ands = ands;
  options.max_tries = 4;
  return aig::random_cone(options, rng);
}

data::Dataset make_dataset(std::size_t inputs, std::size_t rows, int seed) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t c = 0; c < inputs; ++c) {
    ds.column(c).randomize(rng);
  }
  ds.labels().randomize(rng);
  return ds;
}

void BM_AigSimulate(benchmark::State& state) {
  const auto g = make_cone(64, static_cast<std::uint32_t>(state.range(0)), 1);
  const auto ds = make_dataset(64, 6400, 2);
  const auto ptrs = ds.column_ptrs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.simulate(ptrs));
  }
  state.SetItemsProcessed(state.iterations() * 6400 * g.num_ands());
}
BENCHMARK(BM_AigSimulate)->Arg(500)->Arg(2000)->Arg(5000);

void BM_AigStrash(benchmark::State& state) {
  core::Rng rng(3);
  for (auto _ : state) {
    aig::Aig g(32);
    std::vector<aig::Lit> pool;
    for (std::uint32_t i = 0; i < 32; ++i) {
      pool.push_back(g.pi(i));
    }
    for (int i = 0; i < state.range(0); ++i) {
      const aig::Lit a =
          aig::lit_notc(pool[rng.below(pool.size())], rng.flip(0.5));
      const aig::Lit b =
          aig::lit_notc(pool[rng.below(pool.size())], rng.flip(0.5));
      pool.push_back(g.and2(a, b));
    }
    benchmark::DoNotOptimize(g.num_ands());
  }
}
BENCHMARK(BM_AigStrash)->Arg(1000)->Arg(10000);

void BM_AigOptimize(benchmark::State& state) {
  const auto g = make_cone(32, static_cast<std::uint32_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::optimize(g).num_ands());
  }
}
BENCHMARK(BM_AigOptimize)->Arg(300)->Arg(1500)->Unit(benchmark::kMillisecond);

void BM_DtFit(benchmark::State& state) {
  const auto ds = make_dataset(static_cast<std::size_t>(state.range(0)), 2000, 5);
  for (auto _ : state) {
    core::Rng rng(6);
    learn::DtOptions options;
    options.max_depth = 8;
    benchmark::DoNotOptimize(learn::DecisionTree::fit(ds, options, rng));
  }
  state.SetLabel(std::to_string(state.range(0)) + " features");
}
BENCHMARK(BM_DtFit)->Arg(32)->Arg(256)->Arg(784)->Unit(benchmark::kMillisecond);

void BM_Espresso(benchmark::State& state) {
  core::Rng gen(7);
  data::Dataset ds(static_cast<std::size_t>(state.range(0)), 1000);
  for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
    ds.column(c).randomize(gen);
  }
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    ds.set_label(r, ds.input(r, 0) || (ds.input(r, 1) && ds.input(r, 2)));
  }
  for (auto _ : state) {
    core::Rng rng(8);
    benchmark::DoNotOptimize(sop::espresso(ds, {}, rng));
  }
}
BENCHMARK(BM_Espresso)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_Isop(benchmark::State& state) {
  core::Rng rng(9);
  tt::TruthTable f(static_cast<int>(state.range(0)));
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
    if (rng.flip(0.5)) {
      f.set(m, true);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tt::isop(f));
  }
}
BENCHMARK(BM_Isop)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

BENCHMARK_MAIN();
