// Fig. 21 (Team 4): per-benchmark validation accuracy and node count after
// feature selection + model training + subspace expansion + node-
// constrained search. Paper shape: high accuracy on most benchmarks with
// node counts well under 5000, failures concentrated on the hard
// arithmetic cases regardless of input count.

#include <cstdio>

#include "bench_common.hpp"
#include "portfolio/team.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Fig. 21: Team 4 per-benchmark results");
  const auto suite = bench::load_suite(cfg);

  portfolio::TeamOptions options;
  options.scale = cfg.scale;
  const auto team4 = portfolio::make_team(4, options);

  std::printf("%-6s %-16s %12s %8s  %s\n", "bench", "category", "valid acc",
              "#nodes", "winning config");
  double acc = 0;
  double nodes = 0;
  for (const auto& b : suite) {
    core::Rng rng(400 + b.id);
    const auto model = team4->fit(b.train, b.valid, rng);
    acc += model.valid_acc;
    nodes += model.circuit.num_ands();
    std::printf("%-6s %-16s %11.2f%% %8u  %s\n", b.name.c_str(),
                b.category.c_str(), 100 * model.valid_acc,
                model.circuit.num_ands(), model.method.c_str());
  }
  std::printf("\naverages: %.2f%% validation accuracy, %.1f nodes\n",
              100 * acc / suite.size(), nodes / suite.size());
  return 0;
}
