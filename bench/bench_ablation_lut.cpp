// Ablation (Team 6's observation): LUT size sweep k in {2..6} under both
// wiring schemes. The paper states 4-input LUTs gave the best average
// accuracy across the suite, and that simply growing width/depth does not
// help (the network drifts toward constants).

#include <cstdio>

#include "bench_common.hpp"
#include "learn/lutnet.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Ablation: LUT-network k and wiring");
  auto suite = bench::load_suite(cfg);
  // A representative slice keeps this ablation affordable at full scale.
  std::vector<oracle::Benchmark> slice;
  for (auto& b : suite) {
    if (b.id % 5 == 0) {
      slice.push_back(std::move(b));
    }
  }

  std::printf("%-8s %-14s %12s\n", "k", "wiring", "avg test acc");
  for (const auto wiring :
       {learn::LutWiring::kRandom, learn::LutWiring::kUniqueRandom}) {
    for (int k = 2; k <= 6; ++k) {
      double acc = 0;
      for (const auto& b : slice) {
        core::Rng rng(b.id * 10 + k);
        learn::LutNetOptions lo;
        lo.lut_inputs = k;
        lo.num_layers = 2;
        lo.luts_per_layer = 64;
        lo.wiring = wiring;
        const learn::LutNetwork net = learn::LutNetwork::fit(b.train, lo, rng);
        acc += data::accuracy(net.predict(b.test), b.test.labels());
      }
      std::printf("%-8d %-14s %11.2f%%\n", k,
                  wiring == learn::LutWiring::kRandom ? "random" : "unique",
                  100 * acc / slice.size());
    }
  }

  std::printf("\nwidth/depth growth drift check (k=4, random wiring)\n");
  std::printf("%-8s %-8s %12s %12s\n", "layers", "width", "avg test acc",
              "onset frac");
  for (const int layers : {1, 2, 4, 8}) {
    double acc = 0;
    double onset = 0;
    for (const auto& b : slice) {
      core::Rng rng(b.id * 100 + layers);
      learn::LutNetOptions lo;
      lo.num_layers = layers;
      lo.luts_per_layer = 128;
      const learn::LutNetwork net = learn::LutNetwork::fit(b.train, lo, rng);
      const auto pred = net.predict(b.test);
      acc += data::accuracy(pred, b.test.labels());
      onset += static_cast<double>(pred.count()) / b.test.num_rows();
    }
    std::printf("%-8d %-8d %11.2f%% %11.2f%%\n", layers, 128,
                100 * acc / slice.size(), 100 * onset / slice.size());
  }
  return 0;
}
