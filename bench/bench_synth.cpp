// Pass-manager script comparison: size / depth / runtime of each preset
// (plus the raw seed-era `fast` round) over a mixed pool of generated
// benchmark circuits — random logic cones of every flavor and raw
// decision-tree / forest lowerings from the oracle suite (the circuit
// shapes the contest actually optimizes). Rides the bench_common
// scaffolding: LSML_SCALE controls the pool size.

#include <cstdio>
#include <vector>

#include "aig/aig_random.hpp"
#include "bench_common.hpp"
#include "learn/dt.hpp"
#include "learn/forest.hpp"
#include "synth/pass_manager.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("synth scripts: size/depth/runtime");
  const bool fast = cfg.scale != core::Scale::kFull;

  // Circuit pool. Cones substitute for the arbitrary-logic benchmarks;
  // DT/RF lowerings are what the learners actually hand the pipeline.
  std::vector<aig::Aig> pool;
  {
    core::Rng rng(2020);
    for (const auto flavor :
         {aig::ConeFlavor::kRandom, aig::ConeFlavor::kXorRich,
          aig::ConeFlavor::kArith}) {
      for (std::uint32_t ands : fast ? std::vector<std::uint32_t>{200, 600}
                                     : std::vector<std::uint32_t>{200, 600,
                                                                  2000}) {
        aig::ConeOptions cone;
        cone.num_inputs = 16;
        cone.num_ands = ands;
        cone.flavor = flavor;
        pool.push_back(aig::random_cone(cone, rng));
      }
    }
    oracle::SuiteOptions so;
    so.rows_per_split = fast ? 400 : cfg.train_rows;
    for (const int id : {30, 75}) {
      const oracle::Benchmark b = oracle::make_benchmark(id, so);
      core::Rng fit_rng(7 + id);
      learn::DtOptions dt;
      const auto tree = learn::DecisionTree::fit(b.train, dt, fit_rng);
      pool.push_back(tree.to_aig(b.num_inputs));
      learn::ForestOptions fo;
      fo.num_trees = fast ? 5 : 15;
      const auto rf = learn::RandomForest::fit(b.train, fo, fit_rng);
      pool.push_back(rf.to_aig(b.num_inputs));
    }
  }
  double raw_ands = 0.0;
  for (const auto& g : pool) {
    raw_ands += g.num_ands();
  }
  std::printf("%zu circuits, avg %.0f raw AND gates\n\n", pool.size(),
              raw_ands / static_cast<double>(pool.size()));

  std::printf("%-14s | %9s %9s | %7s | %9s | %6s\n", "script", "avg_ands",
              "saved", "levels", "passes", "ms");
  for (const std::string& name : synth::Script::preset_names()) {
    const synth::Script script = synth::Script::preset(name);
    synth::SynthOptions options;  // contest cap, 3 rounds
    const synth::PassManager manager(options);
    double ands = 0.0;
    double saved = 0.0;
    double levels = 0.0;
    double ms = 0.0;
    std::size_t passes = 0;
    for (const auto& g : pool) {
      const synth::SynthResult r = manager.run(g, script);
      ands += r.circuit.num_ands();
      saved += static_cast<double>(r.ands_in()) -
               static_cast<double>(r.circuit.num_ands());
      levels += r.circuit.num_levels();
      ms += r.total_ms();
      passes += r.trace.size();
    }
    const auto n = static_cast<double>(pool.size());
    std::printf("%-14s | %9.1f %9.1f | %7.1f | %9.1f | %6.0f\n",
                name.c_str(), ands / n, saved / n, levels / n,
                static_cast<double>(passes) / n, ms);
  }
  std::printf("\n(per-script totals; LSML_SCALE=full grows the pool)\n");
  return 0;
}
