// Fig. 7 (Team 1): effect of the simulation-guided approximation on LUT
// network AIGs — accuracy and size before/after shrinking to the 5000-node
// budget. Paper: for the ML-like cases the accuracy drops at most ~5% while
// 3000-5000 nodes are removed.

#include <cstdio>

#include "aig/aig_approx.hpp"
#include "bench_common.hpp"
#include "learn/lutnet.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Fig. 7: approximation of LUT-net AIGs");
  const auto suite = bench::load_suite(cfg);
  const bool fast = cfg.scale != core::Scale::kFull;

  const std::uint32_t budget = fast ? 600 : 5000;
  std::printf("(budget at this scale: %u nodes)\n\n", budget);
  std::printf("%-6s %-14s | %10s %10s | %9s %9s | %7s\n", "bench", "category",
              "size_pre", "size_post", "acc_pre", "acc_post", "drop");
  double total_drop = 0.0;
  int shrunk = 0;
  for (const auto& b : suite) {
    core::Rng rng(77 + b.id);
    learn::LutNetOptions lo;
    lo.num_layers = fast ? 3 : 8;
    lo.luts_per_layer = fast ? 96 : 1024;
    const learn::LutNetwork net = learn::LutNetwork::fit(b.train, lo, rng);
    const aig::Aig original = net.to_aig(b.num_inputs).cleanup();
    if (original.num_ands() <= budget) {
      continue;  // only over-budget circuits are interesting here
    }
    aig::ApproxOptions ao;
    ao.node_budget = budget;
    const aig::Aig shrunken = aig::approximate_to_budget(original, ao, rng);
    const double acc_pre = learn::circuit_accuracy(original, b.test);
    const double acc_post = learn::circuit_accuracy(shrunken, b.test);
    total_drop += acc_pre - acc_post;
    ++shrunk;
    std::printf("%-6s %-14s | %10u %10u | %8.2f%% %8.2f%% | %6.2f%%\n",
                b.name.c_str(), b.category.c_str(), original.num_ands(),
                shrunken.num_ands(), 100 * acc_pre, 100 * acc_post,
                100 * (acc_pre - acc_post));
  }
  if (shrunk > 0) {
    std::printf("\naverage accuracy drop over %d shrunk circuits: %.2f%%\n",
                shrunk, 100.0 * total_drop / shrunk);
  } else {
    std::printf("\nno circuit exceeded the budget at this scale\n");
  }
  return 0;
}
