// Table IV (Team 3): DT vs fringe-DT vs NN vs LUT-Net vs 3-model ensemble.
// Paper values: DT 80.15% / 304 nodes, Fr-DT 85.23% / 241, NN 80.90% /
// 10981, LUT-Net 72.68% / 64004, ensemble 87.25% / 1550. The shape: Fr-DT
// beats DT on both accuracy and size, the NN is competitive but huge,
// LUT-Net trails, the ensemble is best.

#include <cstdio>

#include "aig/aig_opt.hpp"
#include "bench_common.hpp"
#include "learn/dt.hpp"
#include "learn/fringe.hpp"
#include "learn/lutnet.hpp"
#include "learn/mlp.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Table IV: Team 3's method comparison");
  const auto suite = bench::load_suite(cfg);
  const bool fast = cfg.scale != core::Scale::kFull;

  struct Row {
    std::string name;
    double train = 0, valid = 0, test = 0, size = 0;
    int count = 0;
  };
  std::vector<Row> rows(5);
  rows[0].name = "DT";
  rows[1].name = "Fr-DT";
  rows[2].name = "NN";
  rows[3].name = "LUT-Net";
  rows[4].name = "ensemble";

  for (const auto& bench_case : suite) {
    core::Rng rng(1000 + bench_case.id);
    std::vector<learn::TrainedModel> models;

    learn::DtOptions dt;
    dt.min_samples_leaf = 3;
    models.push_back(learn::DtLearner(dt, "dt").fit(bench_case.train,
                                                    bench_case.valid, rng));
    learn::FringeOptions fr;
    fr.dt.min_samples_leaf = 3;
    fr.max_iterations = fast ? 4 : 8;
    models.push_back(learn::FringeLearner(fr, "fr").fit(
        bench_case.train, bench_case.valid, rng));
    learn::MlpOptions mlp;
    mlp.hidden = {24, 12};
    mlp.epochs = fast ? 8 : 24;
    models.push_back(learn::MlpLearner(mlp, "nn").fit(bench_case.train,
                                                      bench_case.valid, rng));
    learn::LutNetOptions lut;
    lut.num_layers = 2;
    lut.luts_per_layer = fast ? 48 : 256;
    models.push_back(learn::LutNetLearner(lut, "lutnet").fit(
        bench_case.train, bench_case.valid, rng));

    // Ensemble: majority of the three Team 3 members (DT, Fr-DT, NN).
    aig::Aig ensemble(static_cast<std::uint32_t>(bench_case.num_inputs));
    const aig::Lit a = aig::append_aig(ensemble, models[0].circuit);
    const aig::Lit b = aig::append_aig(ensemble, models[1].circuit);
    const aig::Lit c = aig::append_aig(ensemble, models[2].circuit);
    ensemble.add_output(ensemble.maj3(a, b, c));
    models.push_back(learn::finish_model(ensemble.cleanup(), "ens",
                                         bench_case.train, bench_case.valid));

    for (std::size_t m = 0; m < models.size(); ++m) {
      rows[m].train += models[m].train_acc;
      rows[m].valid += models[m].valid_acc;
      rows[m].test +=
          learn::circuit_accuracy(models[m].circuit, bench_case.test);
      rows[m].size += models[m].circuit.num_ands();
      ++rows[m].count;
    }
  }

  std::printf("%-10s %12s %12s %12s %12s\n", "method", "train acc",
              "valid acc", "test acc", "avg size");
  for (const auto& r : rows) {
    std::printf("%-10s %11.2f%% %11.2f%% %11.2f%% %12.1f\n", r.name.c_str(),
                100.0 * r.train / r.count, 100.0 * r.valid / r.count,
                100.0 * r.test / r.count, r.size / r.count);
  }
  return 0;
}
