// Figs. 5 & 6 (Team 1): per-benchmark test accuracy and AIG size of the
// three base methods — ESPRESSO, LUT network, random forest. The paper's
// shape: random forests win on average; the LUT network occasionally wins
// on CIFAR-like cases; everything fails on adder/multiplier MSBs and
// square-rooters; ESPRESSO stays small, the LUT network is huge.

#include <cstdio>

#include "bench_common.hpp"
#include "learn/espresso_learner.hpp"
#include "learn/forest.hpp"
#include "learn/lutnet.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Figs. 5/6: ESPRESSO vs LUT-net vs RF");
  const auto suite = bench::load_suite(cfg);
  const bool fast = cfg.scale != core::Scale::kFull;

  std::printf("%-6s %-16s | %9s %9s %9s | %8s %8s %8s\n", "bench", "category",
              "espresso", "lutnet", "rf", "sz_esp", "sz_lut", "sz_rf");
  double avg[3] = {0, 0, 0};
  for (const auto& b : suite) {
    core::Rng rng(42 + b.id);
    sop::EspressoOptions eo;
    if (fast) {
      eo.max_onset = 600;
      eo.max_offset = 1200;
    }
    const auto espresso =
        learn::EspressoLearner(eo, "espresso").fit(b.train, b.valid, rng);
    learn::LutNetOptions lo;  // the paper's fixed 8x1024x4 at full scale
    lo.num_layers = fast ? 2 : 8;
    lo.luts_per_layer = fast ? 64 : 1024;
    lo.lut_inputs = 4;
    const auto lutnet =
        learn::LutNetLearner(lo, "lutnet").fit(b.train, b.valid, rng);
    learn::ForestOptions fo;
    fo.num_trees = 9;  // the paper explored 4..16 estimators
    fo.tree.max_depth = 10;
    const auto rf = learn::ForestLearner(fo, "rf").fit(b.train, b.valid, rng);

    const double acc[3] = {learn::circuit_accuracy(espresso.circuit, b.test),
                           learn::circuit_accuracy(lutnet.circuit, b.test),
                           learn::circuit_accuracy(rf.circuit, b.test)};
    for (int i = 0; i < 3; ++i) {
      avg[i] += acc[i];
    }
    std::printf("%-6s %-16s | %8.2f%% %8.2f%% %8.2f%% | %8u %8u %8u\n",
                b.name.c_str(), b.category.c_str(), 100 * acc[0], 100 * acc[1],
                100 * acc[2], espresso.circuit.num_ands(),
                lutnet.circuit.num_ands(), rf.circuit.num_ands());
  }
  std::printf("\naverages: espresso %.2f%%  lutnet %.2f%%  rf %.2f%%\n",
              100 * avg[0] / suite.size(), 100 * avg[1] / suite.size(),
              100 * avg[2] / suite.size());
  return 0;
}
