// Table V (Team 3): accuracy degradation of the NN pipeline —
// initial float network -> after connection pruning -> after neuron-to-LUT
// synthesis. Paper: 87.30/83.14/82.87 -> 89.06/82.60/81.88 ->
// 82.64/80.91/80.90 (train/valid/test); i.e. pruning costs little
// generalization and synthesis costs a further ~1-2%.

#include <cstdio>

#include "bench_common.hpp"
#include "learn/mlp.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Table V: NN accuracy degradation");
  const auto suite = bench::load_suite(cfg);
  const bool fast = cfg.scale != core::Scale::kFull;

  learn::MlpStageAccuracy total;
  int count = 0;
  for (const auto& b : suite) {
    learn::MlpOptions options;
    options.hidden = {24, 12};
    options.epochs = fast ? 8 : 24;
    options.prune_max_fanin = 12;
    core::Rng rng(500 + b.id);
    const auto s =
        learn::mlp_staged_accuracy(b.train, b.valid, b.test, options, rng);
    total.initial_train += s.initial_train;
    total.initial_valid += s.initial_valid;
    total.initial_test += s.initial_test;
    total.pruned_train += s.pruned_train;
    total.pruned_valid += s.pruned_valid;
    total.pruned_test += s.pruned_test;
    total.synth_train += s.synth_train;
    total.synth_valid += s.synth_valid;
    total.synth_test += s.synth_test;
    ++count;
  }
  const auto pct = [&](double v) { return 100.0 * v / count; };
  std::printf("%-16s %12s %12s %12s\n", "NN config", "train acc", "valid acc",
              "test acc");
  std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n", "initial",
              pct(total.initial_train), pct(total.initial_valid),
              pct(total.initial_test));
  std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n", "after pruning",
              pct(total.pruned_train), pct(total.pruned_valid),
              pct(total.pruned_test));
  std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n", "after synthesis",
              pct(total.synth_train), pct(total.synth_valid),
              pct(total.synth_test));
  return 0;
}
