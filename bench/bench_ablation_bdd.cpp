// Ablation (Team 1's appendix): BDD don't-care minimization on adders.
// Reproduces the appendix findings: (i) the MSB-first interleaved variable
// order is what makes adders learnable; (ii) one-sided matching reaches
// ~98% on 2-word adders; (iii) naive two-sided matching collapses to ~50%.

#include <cstdio>

#include "bench_common.hpp"
#include "learn/bdd.hpp"
#include "oracle/suite.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Ablation: BDD DC-minimization on adders");

  oracle::SuiteOptions so;
  so.rows_per_split = cfg.train_rows;

  struct Config {
    const char* name;
    learn::BddLearnerOptions options;
  };
  std::vector<Config> configs;
  {
    learn::BddLearnerOptions one_sided;
    configs.push_back({"one-sided, interleaved", one_sided});
    learn::BddLearnerOptions natural = one_sided;
    natural.msb_first_interleaved = false;
    configs.push_back({"one-sided, natural order", natural});
    learn::BddLearnerOptions two_sided = one_sided;
    two_sided.use_two_sided = true;
    configs.push_back({"+naive two-sided", two_sided});
    learn::BddLearnerOptions with_compl = two_sided;
    with_compl.use_complement = true;
    configs.push_back({"+complemented two-sided", with_compl});
  }

  // ex01/ex03 = 2nd MSB of 16/32-bit adders (<= 64 inputs fits the BDD cap).
  for (const int id : {0, 1, 2, 3}) {
    const auto bench_case = oracle::make_benchmark(id, so);
    std::printf("%s (%s, %zu inputs)\n", bench_case.name.c_str(),
                bench_case.category.c_str(), bench_case.num_inputs);
    for (const auto& config : configs) {
      learn::BddLearner learner(config.options, "bdd");
      core::Rng rng(7);
      const auto model =
          learner.fit(bench_case.train, bench_case.valid, rng);
      const double test =
          learn::circuit_accuracy(model.circuit, bench_case.test);
      std::printf("  %-28s train %6.2f%%  test %6.2f%%  nodes %u\n",
                  config.name, 100 * model.train_acc, 100 * test,
                  model.circuit.num_ands());
    }
  }
  std::printf(
      "\n(paper: one-sided matching ~98%% on 2-word adders; naive two-sided "
      "fails to ~50%%)\n");
  return 0;
}
