// Table VI (Team 5): census of which configuration wins each benchmark —
// decision tool (DT / RF / NN-expression), feature-selection method
// (KBest / Percentile / none) and scoring function (chi2 / corr / MI).
// Paper: DT wins 55, RF 28, NN 17; KBest 48, Percentile 11, none 41;
// chi2 is the most useful scorer.

#include <cstdio>
#include <map>

#include "aig/aig_build.hpp"
#include "bench_common.hpp"
#include "feature/selection.hpp"
#include "learn/dt.hpp"
#include "learn/forest.hpp"
#include "tt/truth_table.hpp"

namespace {

using namespace lsml;

struct Candidate {
  std::string tool;
  std::string selection;
  std::string scorer;
  double valid_acc = -1.0;
};

aig::Aig tree_over_columns(const learn::DecisionTree& tree,
                           const std::vector<std::size_t>& feats,
                           std::size_t num_inputs) {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> leaves;
  for (std::size_t v : feats) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(v)));
  }
  g.add_output(tree.to_lit(g, leaves));
  return g;
}

}  // namespace

int main() {
  const auto cfg = bench::announce("Table VI: Team 5 winning-config census");
  const auto suite = bench::load_suite(cfg);

  std::map<std::string, int> tool_wins;
  std::map<std::string, int> selection_wins;
  std::map<std::string, int> scorer_wins;

  for (const auto& b : suite) {
    core::Rng rng(900 + b.id);
    const auto chi2 = feature::chi2_scores(b.train);
    const auto corr = feature::correlation_scores(b.train);
    const auto mi = feature::mutual_information(b.train);

    std::vector<std::pair<std::string, const std::vector<double>*>> scorers{
        {"chi2", &chi2}, {"corr", &corr}, {"mutual_info", &mi}};

    Candidate best;
    const auto consider = [&](const Candidate& c) {
      if (c.valid_acc > best.valid_acc) {
        best = c;
      }
    };

    const auto eval_featset = [&](const std::vector<std::size_t>& feats,
                                  const std::string& selection,
                                  const std::string& scorer) {
      const data::Dataset sub = b.train.select_columns(feats);
      // DT depth 10 (Gini, scikit-style).
      {
        learn::DtOptions dt;
        dt.max_depth = 10;
        dt.criterion = learn::DtOptions::Criterion::kGini;
        const auto tree = learn::DecisionTree::fit(sub, dt, rng);
        const aig::Aig g = tree_over_columns(tree, feats, b.num_inputs);
        consider({"DT", selection, scorer,
                  learn::circuit_accuracy(g, b.valid)});
      }
      // RF with 3 trees (their 5000-gate-driven limit).
      {
        learn::ForestOptions fo;
        fo.num_trees = 3;
        fo.tree.max_depth = 10;
        fo.tree.criterion = learn::DtOptions::Criterion::kGini;
        const auto rf = learn::RandomForest::fit(sub, fo, rng);
        // Rebuild over the full input space via the tree lit mapping.
        aig::Aig g(static_cast<std::uint32_t>(b.num_inputs));
        std::vector<aig::Lit> leaves;
        for (std::size_t v : feats) {
          leaves.push_back(g.pi(static_cast<std::uint32_t>(v)));
        }
        std::vector<aig::Lit> outs;
        for (const auto& tree : rf.trees()) {
          outs.push_back(tree.to_lit(g, leaves));
        }
        g.add_output(g.maj3(outs[0], outs[1], outs[2]));
        consider({"RF", selection, scorer,
                  learn::circuit_accuracy(g, b.valid)});
      }
    };

    // No feature selection.
    std::vector<std::size_t> all(b.num_inputs);
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = i;
    }
    eval_featset(all, "none", "none");
    // KBest / Percentile over each scorer.
    for (const auto& [sname, scores] : scorers) {
      eval_featset(
          feature::select_k_best(*scores, std::max<std::size_t>(
                                              4, b.num_inputs / 2)),
          "KBest", sname);
      eval_featset(feature::select_percentile(*scores, 25.0), "Percentile",
                   sname);
    }
    // NN-guided 4-feature expression search substitute: best 4 by MI,
    // exhaustive 2-level expression = best 4-var truth table on train.
    {
      const auto feats = feature::select_k_best(mi, 4);
      const data::Dataset sub = b.train.select_columns(feats);
      // Count label agreement per 4-bit pattern; pick the majority table.
      std::uint32_t ones[16] = {0};
      std::uint32_t total[16] = {0};
      for (std::size_t r = 0; r < sub.num_rows(); ++r) {
        std::uint32_t p = 0;
        for (std::size_t i = 0; i < 4 && i < sub.num_inputs(); ++i) {
          p |= static_cast<std::uint32_t>(sub.input(r, i)) << i;
        }
        ++total[p];
        ones[p] += sub.label(r) ? 1 : 0;
      }
      tt::TruthTable f(4);
      for (std::uint64_t p = 0; p < 16; ++p) {
        f.set(p, 2 * ones[p] > total[p]);
      }
      aig::Aig g(static_cast<std::uint32_t>(b.num_inputs));
      std::vector<aig::Lit> leaves;
      for (std::size_t v : feats) {
        leaves.push_back(g.pi(static_cast<std::uint32_t>(v)));
      }
      while (leaves.size() < 4) {
        leaves.push_back(aig::kLitFalse);
      }
      g.add_output(aig::from_truth_table(g, f, leaves));
      consider({"NN", "KBest", "mutual_info",
                learn::circuit_accuracy(g, b.valid)});
    }

    ++tool_wins[best.tool];
    ++selection_wins[best.selection];
    ++scorer_wins[best.scorer];
  }

  std::printf("%-18s %-14s %s\n", "characteristic", "parameter", "# wins");
  for (const auto& [k, v] : tool_wins) {
    std::printf("%-18s %-14s %d\n", "decision tool", k.c_str(), v);
  }
  for (const auto& [k, v] : selection_wins) {
    std::printf("%-18s %-14s %d\n", "feature selection", k.c_str(), v);
  }
  for (const auto& [k, v] : scorer_wins) {
    std::printf("%-18s %-14s %d\n", "scoring function", k.c_str(), v);
  }
  return 0;
}
