// Figs. 11 & 12 (Team 2): J48-style decision trees vs PART-style rule
// lists — accuracy and AIG size on the ten benchmarks where the two
// classifiers diverge the most. The paper's point: neither dominates, which
// is why Team 2 kept both.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "learn/dt.hpp"
#include "learn/rules.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Figs. 11/12: J48 vs PART divergence");
  const auto suite = bench::load_suite(cfg);

  struct Entry {
    const oracle::Benchmark* bench;
    double j48_acc, part_acc;
    std::uint32_t j48_size, part_size;
  };
  std::vector<Entry> entries;
  for (const auto& b : suite) {
    core::Rng rng(300 + b.id);
    learn::DtOptions dt;
    dt.min_samples_leaf = 2;  // WEKA's -M 2 default
    const auto j48 = learn::DtLearner(dt, "j48").fit(b.train, b.valid, rng);
    const auto part =
        learn::RuleListLearner({}, "part").fit(b.train, b.valid, rng);
    entries.push_back(
        Entry{&b, learn::circuit_accuracy(j48.circuit, b.test),
              learn::circuit_accuracy(part.circuit, b.test),
              j48.circuit.num_ands(), part.circuit.num_ands()});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::abs(a.j48_acc - a.part_acc) > std::abs(b.j48_acc - b.part_acc);
  });

  std::printf("ten most divergent benchmarks\n");
  std::printf("%-6s %-16s | %8s %8s %7s | %8s %8s\n", "bench", "category",
              "J48", "PART", "delta", "sz_J48", "sz_PART");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, entries.size()); ++i) {
    const Entry& e = entries[i];
    std::printf("%-6s %-16s | %7.2f%% %7.2f%% %6.2f%% | %8u %8u\n",
                e.bench->name.c_str(), e.bench->category.c_str(),
                100 * e.j48_acc, 100 * e.part_acc,
                100 * std::abs(e.j48_acc - e.part_acc), e.j48_size,
                e.part_size);
  }
  double j48_avg = 0;
  double part_avg = 0;
  for (const auto& e : entries) {
    j48_avg += e.j48_acc;
    part_avg += e.part_acc;
  }
  std::printf("\naverage accuracy: J48 %.2f%%  PART %.2f%%\n",
              100 * j48_avg / entries.size(), 100 * part_avg / entries.size());
  return 0;
}
