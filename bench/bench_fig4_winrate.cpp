// Fig. 4: number of benchmarks on which each team achieves the best
// accuracy / lands within 1% of the best. In the paper, Team 3 wins both
// counts (42 outright wins) despite Team 1 winning on average accuracy.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Fig. 4: win rates per team");
  const auto suite = bench::load_suite(cfg);
  const auto runs = bench::team_runs(cfg, suite);

  const auto rates = portfolio::win_rates(runs);
  std::printf("%-5s %8s %14s\n", "team", "best", "within top-1%");
  for (const auto& r : rates) {
    std::printf("%-5d %8d %14d\n", r.team, r.best, r.within_top1pct);
  }
  std::printf(
      "\n(ties count for every tied team, as in the paper's bar chart)\n");
  return 0;
}
