// SAT subsystem bench: (1) CEC latency as a function of AIG size — each
// circuit is checked against its own resyn2 optimization, so every miter
// is a real UNSAT proof obligation; (2) fraig node reduction — resyn2fs
// vs resyn2 AND counts over the same random-cone pool the synth bench
// uses. Rides the bench_common scaffolding: LSML_SCALE grows the pool.

#include <chrono>
#include <cstdio>
#include <vector>

#include "aig/aig_random.hpp"
#include "bench_common.hpp"
#include "sat/cec.hpp"
#include "sat/fraig.hpp"
#include "synth/pass_manager.hpp"

int main() {
  using namespace lsml;
  using Clock = std::chrono::steady_clock;
  const auto cfg = bench::announce("sat: cec latency and fraig reduction");
  const bool fast = cfg.scale != core::Scale::kFull;

  const synth::PassManager manager{synth::SynthOptions{}};

  std::printf("CEC latency vs AIG size (circuit vs its resyn2 form):\n");
  std::printf("%8s | %9s %9s | %10s | %9s\n", "ands", "opt_ands", "verdict",
              "conflicts", "ms");
  {
    core::Rng rng(2021);
    for (const std::uint32_t ands :
         fast ? std::vector<std::uint32_t>{100, 300, 1000}
              : std::vector<std::uint32_t>{100, 300, 1000, 3000}) {
      aig::ConeOptions cone;
      cone.num_inputs = 24;
      cone.num_ands = ands;
      cone.max_tries = 2;
      const aig::Aig g = aig::random_cone(cone, rng);
      const aig::Aig opt =
          manager.run(g, synth::Script::preset("resyn2")).circuit;
      const Clock::time_point t0 = Clock::now();
      const sat::CecResult r = sat::cec(g, opt, {0, 0});
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      std::printf("%8u | %9u %9s | %10llu | %9.2f\n", g.num_ands(),
                  opt.num_ands(),
                  r.status == sat::CecStatus::kEquivalent ? "EQ" : "??",
                  static_cast<unsigned long long>(r.solver_stats.conflicts),
                  ms);
    }
  }

  std::printf("\nfraig reduction: resyn2 vs resyn2fs on random cones:\n");
  std::printf("%-8s %6s | %9s %9s | %7s | %9s %9s\n", "flavor", "ands",
              "resyn2", "resyn2fs", "extra%", "fs_proved", "fs_ms");
  {
    core::Rng rng(2020);
    for (const auto flavor :
         {aig::ConeFlavor::kRandom, aig::ConeFlavor::kXorRich,
          aig::ConeFlavor::kArith}) {
      const char* flavor_name = flavor == aig::ConeFlavor::kRandom ? "random"
                                : flavor == aig::ConeFlavor::kXorRich
                                    ? "xor-rich"
                                    : "arith";
      for (const std::uint32_t ands :
           fast ? std::vector<std::uint32_t>{200, 600}
                : std::vector<std::uint32_t>{200, 600, 2000}) {
        aig::ConeOptions cone;
        cone.num_inputs = 16;
        cone.num_ands = ands;
        cone.flavor = flavor;
        cone.max_tries = 2;
        const aig::Aig g = aig::random_cone(cone, rng);

        const auto r2 = manager.run(g, synth::Script::preset("resyn2"));
        const Clock::time_point t0 = Clock::now();
        const auto r2fs = manager.run(g, synth::Script::preset("resyn2fs"));
        const double fs_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();

        // Direct fraig call on the resyn2 result, to report merge counts.
        core::Rng fraig_rng(7);
        sat::FraigStats stats;
        (void)sat::fraig(r2.circuit, sat::FraigOptions{}, fraig_rng, &stats);

        const std::uint32_t a = r2.circuit.num_ands();
        const std::uint32_t b = r2fs.circuit.num_ands();
        std::printf("%-8s %6u | %9u %9u | %6.1f%% | %9llu %9.0f\n",
                    flavor_name, g.num_ands(), a, b,
                    a == 0 ? 0.0
                           : 100.0 * static_cast<double>(a - b) /
                                 static_cast<double>(a),
                    static_cast<unsigned long long>(stats.proved), fs_ms);
      }
    }
  }
  std::printf("\n(resyn2fs always <= resyn2: fs only merges proven-"
              "equivalent nodes; LSML_SCALE=full grows the pool)\n");
  return 0;
}
