// Table III: per-team test accuracy / AND gates / levels / overfit,
// plus the Fig. 1 technique matrix.
//
// Paper values (6400-row splits, the authors' implementations):
//   team 1: 88.69 acc, 2518 gates;  team 7: 87.50, 1168;  team 8: 87.32;
//   team 10: 80.25 acc with only 140 gates;  team 6: 62.40.
// The shape to check: portfolio teams (1/7/8/3) on top, the DT-only team 10
// far smaller than everyone, the pure LUT-network team 6 at the bottom.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Table III: team leaderboard");
  const auto suite = bench::load_suite(cfg);
  const auto runs = bench::team_runs(cfg, suite);

  std::cout << portfolio::format_leaderboard(runs) << "\n";

  std::cout << "Fig. 1: representations used by each team\n";
  std::printf("%-5s %-5s %-6s %-4s %-4s %-4s %-6s\n", "team", "SOP", "DT/RF",
              "NN", "LUT", "CGP", "match");
  for (const auto& row : portfolio::technique_matrix()) {
    std::printf("%-5d %-5s %-6s %-4s %-4s %-4s %-6s\n", row.team,
                row.sop ? "x" : "", row.dt_rf ? "x" : "", row.nn ? "x" : "",
                row.lut ? "x" : "", row.cgp ? "x" : "",
                row.matching ? "x" : "");
  }

  std::cout << "\nper-team chosen methods (first 10 benchmarks)\n";
  for (const auto& run : runs) {
    std::printf("team %2d:", run.team);
    for (std::size_t b = 0; b < std::min<std::size_t>(10, run.results.size());
         ++b) {
      std::printf(" %s", run.results[b].method.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
