#pragma once
// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper. They all
// respect LSML_SCALE (smoke / fast / full; see core::ScaleConfig) and print
// the active configuration first so recorded outputs are self-describing.
//
// Team runs are expensive, so they are memoized in the library-level
// suite::ResultCache (content-hash keyed, one entry per (team, benchmark)
// task): bench_table3 populates the store and the Fig. 2/3/4 benches reuse
// it, recomputing only the tasks whose inputs or code version changed.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "oracle/suite.hpp"
#include "portfolio/contest.hpp"
#include "portfolio/team.hpp"
#include "suite/runner.hpp"

namespace lsml::bench {

inline core::ScaleConfig announce(const std::string& name) {
  const core::ScaleConfig cfg = core::scale_from_env();
  std::cout << "== " << name << " ==\n"
            << "scale=" << cfg.name() << " rows/split=" << cfg.train_rows
            << " benchmarks=" << cfg.num_benchmarks
            << " (LSML_SCALE=smoke|fast|full)\n\n";
  return cfg;
}

inline std::vector<oracle::Benchmark> load_suite(const core::ScaleConfig& cfg) {
  oracle::SuiteOptions options;
  options.rows_per_split = cfg.train_rows;
  return oracle::make_suite(options, static_cast<int>(cfg.num_benchmarks));
}

/// Where benches keep their (team, benchmark) result store. One directory
/// per scale only for tidiness: the content-hash keys already separate
/// scales (different datasets and config salt).
inline std::string runs_cache_dir(const core::ScaleConfig& cfg) {
  return ".lsml-cache/bench-" + cfg.name();
}

/// Worker count for benches: LSML_THREADS, else one per hardware thread.
inline int bench_num_threads() {
  return core::threads_from_env("LSML_THREADS", 0);
}

/// Runs all ten teams over the suite through the incremental result store:
/// only (team, benchmark) tasks whose inputs or code version changed are
/// recomputed (thread count never changes the numbers). LSML_NO_CACHE=1
/// bypasses the store entirely.
inline std::vector<portfolio::TeamRun> team_runs(
    const core::ScaleConfig& cfg, const std::vector<oracle::Benchmark>& suite,
    bool verbose = true) {
  portfolio::TeamOptions team_options;
  team_options.scale = cfg.scale;
  suite::RunnerOptions options;
  const char* no_cache = std::getenv("LSML_NO_CACHE");
  options.cache_dir =
      (no_cache != nullptr && no_cache[0] == '1') ? "" : runs_cache_dir(cfg);
  options.config_salt = static_cast<std::uint64_t>(cfg.scale);
  options.seed = 2020;
  options.num_threads = bench_num_threads();
  options.verbosity = verbose ? 1 : 0;
  options.write_artifacts = false;
  const suite::RunnerReport report = suite::run_contest_on(
      portfolio::contest_entries(portfolio::all_team_numbers(), team_options),
      suite, options);
  if (verbose && report.cache_hits > 0) {
    std::cout << "(" << report.cache_hits << "/"
              << (report.cache_hits + report.cache_misses)
              << " team-run tasks served from " << options.cache_dir
              << ")\n\n";
  }
  return report.runs;
}

/// Prints a numeric series as an aligned two-column table.
inline void print_series(const std::string& xlabel, const std::string& ylabel,
                         const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  std::printf("%-14s %-14s\n", xlabel.c_str(), ylabel.c_str());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14.2f %-14.4f\n", xs[i], ys[i]);
  }
}

}  // namespace lsml::bench
