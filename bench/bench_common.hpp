#pragma once
// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper. They all
// respect LSML_SCALE (smoke / fast / full; see core::ScaleConfig) and print
// the active configuration first so recorded outputs are self-describing.
//
// Team runs are expensive, so they are cached on disk per scale+seed:
// bench_table3 populates the cache and the Fig. 2/3/4 benches reuse it
// (recomputing only if the cache is missing).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "oracle/suite.hpp"
#include "portfolio/contest.hpp"
#include "portfolio/team.hpp"

namespace lsml::bench {

inline core::ScaleConfig announce(const std::string& name) {
  const core::ScaleConfig cfg = core::scale_from_env();
  std::cout << "== " << name << " ==\n"
            << "scale=" << cfg.name() << " rows/split=" << cfg.train_rows
            << " benchmarks=" << cfg.num_benchmarks
            << " (LSML_SCALE=smoke|fast|full)\n\n";
  return cfg;
}

inline std::vector<oracle::Benchmark> load_suite(const core::ScaleConfig& cfg) {
  oracle::SuiteOptions options;
  options.rows_per_split = cfg.train_rows;
  return oracle::make_suite(options, static_cast<int>(cfg.num_benchmarks));
}

inline std::string runs_cache_path(const core::ScaleConfig& cfg) {
  return ".lsml_team_runs_" + cfg.name() + ".csv";
}

/// Cache schema tag. Bump whenever anything that changes the numbers
/// changes (e.g. the per-task RNG derivation), so stale caches from older
/// builds are recomputed instead of silently served.
inline constexpr const char* kRunsCacheHeader = "# lsml-team-runs v2";

inline void save_runs(const std::vector<portfolio::TeamRun>& runs,
                      const std::string& path) {
  std::ofstream os(path);
  os << kRunsCacheHeader << "\n";
  for (const auto& run : runs) {
    for (const auto& r : run.results) {
      os << run.team << ',' << r.benchmark_id << ',' << r.benchmark << ','
         << r.train_acc << ',' << r.valid_acc << ',' << r.test_acc << ','
         << r.num_ands << ',' << r.num_levels << ",\"" << r.method << "\"\n";
    }
  }
}

inline bool load_runs(std::vector<portfolio::TeamRun>* runs,
                      const std::string& path, std::size_t num_benchmarks) {
  std::ifstream is(path);
  if (!is) {
    return false;
  }
  std::string line;
  if (!std::getline(is, line) || line != kRunsCacheHeader) {
    return false;  // cache from an incompatible build
  }
  std::vector<portfolio::TeamRun> loaded;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    portfolio::BenchmarkResult r;
    int team = 0;
    char comma = 0;
    if (!(ls >> team >> comma >> r.benchmark_id >> comma)) {
      return false;
    }
    std::getline(ls, r.benchmark, ',');
    ls >> r.train_acc >> comma >> r.valid_acc >> comma >> r.test_acc >>
        comma >> r.num_ands >> comma >> r.num_levels >> comma;
    std::getline(ls, r.method);
    if (loaded.empty() || loaded.back().team != team) {
      portfolio::TeamRun run;
      run.team = team;
      loaded.push_back(run);
    }
    loaded.back().results.push_back(r);
  }
  for (const auto& run : loaded) {
    if (run.results.size() != num_benchmarks) {
      return false;  // stale cache from another configuration
    }
  }
  if (loaded.size() != 10) {
    return false;
  }
  *runs = std::move(loaded);
  return true;
}

/// Worker count for benches: LSML_THREADS, else one per hardware thread.
inline int bench_num_threads() {
  return core::threads_from_env("LSML_THREADS", 0);
}

/// Loads cached team runs or computes them (all ten teams over the suite,
/// in parallel; thread count never changes the numbers).
inline std::vector<portfolio::TeamRun> team_runs(
    const core::ScaleConfig& cfg, const std::vector<oracle::Benchmark>& suite,
    bool verbose = true) {
  std::vector<portfolio::TeamRun> runs;
  const std::string path = runs_cache_path(cfg);
  if (load_runs(&runs, path, suite.size())) {
    if (verbose) {
      std::cout << "(loaded cached team runs from " << path << ")\n\n";
    }
    return runs;
  }
  portfolio::TeamOptions team_options;
  team_options.scale = cfg.scale;
  portfolio::ContestOptions contest_options;
  contest_options.num_threads = bench_num_threads();
  contest_options.verbosity = verbose ? 1 : 0;
  runs = portfolio::run_contest(
      portfolio::contest_entries(portfolio::all_team_numbers(), team_options),
      suite, 2020, contest_options);
  save_runs(runs, path);
  return runs;
}

/// Prints a numeric series as an aligned two-column table.
inline void print_series(const std::string& xlabel, const std::string& ylabel,
                         const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  std::printf("%-14s %-14s\n", xlabel.c_str(), ylabel.c_str());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14.2f %-14.4f\n", xs[i], ys[i]);
  }
}

}  // namespace lsml::bench
