// Ablations over the tree-family design choices DESIGN.md calls out:
// DT depth sweep (Team 10 fixed 8; Team 5 explored 10/20), forest size
// (Team 1 explored 4..16 estimators; Team 8 fixed 17), boosting rounds
// (Team 7 fixed 125), and the fringe-feature iteration cap (Team 3).

#include <cstdio>

#include "bench_common.hpp"
#include "learn/boosting.hpp"
#include "learn/dt.hpp"
#include "learn/forest.hpp"
#include "learn/fringe.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Ablation: tree-family hyper-parameters");
  auto all = bench::load_suite(cfg);
  std::vector<oracle::Benchmark> slice;
  for (auto& b : all) {
    if (b.id % 5 == 2) {
      slice.push_back(std::move(b));
    }
  }

  std::printf("DT depth sweep\n%-8s %12s %10s\n", "depth", "avg test acc",
              "avg ANDs");
  for (const std::size_t depth : {4u, 6u, 8u, 10u, 14u, 0u}) {
    double acc = 0;
    double size = 0;
    for (const auto& b : slice) {
      core::Rng rng(b.id);
      learn::DtOptions dt;
      dt.max_depth = depth;
      const auto m = learn::DtLearner(dt, "dt").fit(b.train, b.valid, rng);
      acc += learn::circuit_accuracy(m.circuit, b.test);
      size += m.circuit.num_ands();
    }
    std::printf("%-8s %11.2f%% %10.1f\n",
                depth == 0 ? "inf" : std::to_string(depth).c_str(),
                100 * acc / slice.size(), size / slice.size());
  }

  std::printf("\nforest size sweep (depth 8)\n%-8s %12s %10s\n", "trees",
              "avg test acc", "avg ANDs");
  for (const std::size_t trees : {1u, 5u, 9u, 17u, 25u}) {
    double acc = 0;
    double size = 0;
    for (const auto& b : slice) {
      core::Rng rng(b.id * 3 + 1);
      learn::ForestOptions fo;
      fo.num_trees = trees;
      fo.tree.max_depth = 8;
      const auto m = learn::ForestLearner(fo, "rf").fit(b.train, b.valid, rng);
      acc += learn::circuit_accuracy(m.circuit, b.test);
      size += m.circuit.num_ands();
    }
    std::printf("%-8zu %11.2f%% %10.1f\n", trees, 100 * acc / slice.size(),
                size / slice.size());
  }

  std::printf("\nboosting rounds sweep (depth 4)\n%-8s %12s %10s\n", "rounds",
              "avg test acc", "avg ANDs");
  for (const std::size_t rounds : {5u, 15u, 45u, 125u}) {
    double acc = 0;
    double size = 0;
    for (const auto& b : slice) {
      core::Rng rng(b.id * 7 + 5);
      learn::BoostOptions bo;
      bo.num_trees = rounds;
      bo.max_depth = 4;
      const auto m = learn::BoostLearner(bo, "xgb").fit(b.train, b.valid, rng);
      acc += learn::circuit_accuracy(m.circuit, b.test);
      size += m.circuit.num_ands();
    }
    std::printf("%-8zu %11.2f%% %10.1f\n", rounds, 100 * acc / slice.size(),
                size / slice.size());
  }

  std::printf("\nfringe iteration cap (Team 3)\n%-8s %12s %10s\n", "iters",
              "avg test acc", "avg ANDs");
  for (const int iters : {0, 1, 2, 4, 8}) {
    double acc = 0;
    double size = 0;
    for (const auto& b : slice) {
      core::Rng rng(b.id * 11 + 3);
      learn::FringeOptions fo;
      fo.max_iterations = iters;
      fo.dt.min_samples_leaf = 3;
      const auto m = learn::FringeLearner(fo, "fr").fit(b.train, b.valid, rng);
      acc += learn::circuit_accuracy(m.circuit, b.test);
      size += m.circuit.num_ands();
    }
    std::printf("%-8d %11.2f%% %10.1f\n", iters, 100 * acc / slice.size(),
                size / slice.size());
  }
  return 0;
}
