// Figs. 26 & 27 (Team 7): feature-importance patterns from the boosted
// trees. Fig. 26 contrasts correlation coefficients (no pattern) with
// SHAP-style importance (clear MSB-weighted pattern) on a multiplier MSB;
// Fig. 27 shows the two operand words of a comparator with opposite
// polarities and magnitudes growing toward the MSBs.

#include <cstdio>

#include "bench_common.hpp"
#include "feature/selection.hpp"
#include "learn/boosting.hpp"
#include "oracle/suite.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Figs. 26/27: SHAP-like importances");
  const bool fast = cfg.scale != core::Scale::kFull;

  oracle::SuiteOptions so;
  so.rows_per_split = cfg.train_rows;

  learn::BoostOptions bo;
  bo.num_trees = fast ? 40 : 125;
  bo.max_depth = fast ? 4 : 5;

  {
    // Fig. 26: ex25 = MSB-side bit of the 32x32 multiplier.
    const auto bench_case = oracle::make_benchmark(25, so);
    core::Rng rng(1);
    const auto model = learn::GradientBoosted::fit(bench_case.train, bo, rng);
    const auto corr = feature::correlation_scores(bench_case.train);
    const auto shap = model.mean_abs_contributions(bench_case.train);
    std::printf("Fig. 26 (%s, %zu inputs): bit, corr-coef, mean|SHAP|\n",
                bench_case.name.c_str(), bench_case.num_inputs);
    for (std::size_t i = 0; i < bench_case.num_inputs; ++i) {
      std::printf("%4zu %10.4f %10.4f\n", i, corr[i], shap[i]);
    }
    // The pattern check: importance of the top quarter of each word should
    // dominate the bottom quarter.
    const std::size_t k = bench_case.num_inputs / 2;
    double msb_mass = 0;
    double lsb_mass = 0;
    for (std::size_t i = 0; i < k / 4; ++i) {
      lsb_mass += shap[i] + shap[k + i];
      msb_mass += shap[k - 1 - i] + shap[2 * k - 1 - i];
    }
    std::printf("MSB-quarter mass %.4f vs LSB-quarter mass %.4f\n\n",
                msb_mass, lsb_mass);
  }
  {
    // Fig. 27: ex35 = 60-bit comparator.
    const auto bench_case = oracle::make_benchmark(35, so);
    core::Rng rng(2);
    const auto model = learn::GradientBoosted::fit(bench_case.train, bo, rng);
    const auto shap = model.mean_contributions(bench_case.train);
    std::printf("Fig. 27 (%s, %zu inputs): bit, mean SHAP\n",
                bench_case.name.c_str(), bench_case.num_inputs);
    for (std::size_t i = 0; i < bench_case.num_inputs; ++i) {
      std::printf("%4zu %10.4f\n", i, shap[i]);
    }
    const std::size_t k = bench_case.num_inputs / 2;
    std::printf(
        "polarity check: a-word MSB %.4f (expect > 0), b-word MSB %.4f "
        "(expect < 0)\n",
        shap[k - 1], shap[2 * k - 1]);
  }
  return 0;
}
