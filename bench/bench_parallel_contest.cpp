// Serial vs parallel contest execution on the oracle suite.
//
// Runs the same multi-team contest twice — num_threads=1 and
// num_threads=N (LSML_THREADS, default 8) — verifies the two runs are
// identical result-for-result, and reports the wall-clock speedup. This is
// the scalability check for the engine behind Table III and Figs. 2-4:
// parallelism must buy time and nothing else.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/thread_pool.hpp"

namespace {

using namespace lsml;

int parallel_threads() {
  const int n = core::threads_from_env("LSML_THREADS", 8);
  // 0 means "hardware" elsewhere; for the speedup report we want the
  // resolved count in the output, so resolve it here.
  return n == 0 ? static_cast<int>(core::ThreadPool::default_num_threads())
                : n;
}

bool identical(const std::vector<portfolio::TeamRun>& a,
               const std::vector<portfolio::TeamRun>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].team != b[t].team ||
        a[t].results.size() != b[t].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[t].results.size(); ++r) {
      const auto& x = a[t].results[r];
      const auto& y = b[t].results[r];
      if (x.benchmark_id != y.benchmark_id || x.method != y.method ||
          x.train_acc != y.train_acc || x.valid_acc != y.valid_acc ||
          x.test_acc != y.test_acc || x.num_ands != y.num_ands ||
          x.num_levels != y.num_levels) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const core::ScaleConfig cfg = bench::announce("parallel contest engine");
  const std::vector<oracle::Benchmark> suite = bench::load_suite(cfg);

  portfolio::TeamOptions team_options;
  team_options.scale = cfg.scale;
  const std::vector<portfolio::ContestEntry> entries =
      portfolio::contest_entries(portfolio::all_team_numbers(), team_options);

  const int threads = parallel_threads();
  std::printf("teams=%zu benchmarks=%zu tasks=%zu hardware_threads=%zu\n\n",
              entries.size(), suite.size(), entries.size() * suite.size(),
              core::ThreadPool::default_num_threads());

  portfolio::ContestOptions serial;
  serial.num_threads = 1;
  portfolio::ContestStats serial_stats;
  std::printf("serial run (1 thread)...\n");
  const auto serial_runs =
      portfolio::run_contest(entries, suite, 2020, serial, &serial_stats);

  portfolio::ContestOptions parallel;
  parallel.num_threads = threads;
  portfolio::ContestStats parallel_stats;
  std::printf("parallel run (%d threads)...\n", threads);
  const auto parallel_runs =
      portfolio::run_contest(entries, suite, 2020, parallel, &parallel_stats);

  const bool match = identical(serial_runs, parallel_runs);
  const double speedup =
      parallel_stats.elapsed_ms > 0.0
          ? serial_stats.elapsed_ms / parallel_stats.elapsed_ms
          : 0.0;

  std::printf("\nserial:   %10.0f ms\n", serial_stats.elapsed_ms);
  std::printf("parallel: %10.0f ms  (%d threads)\n", parallel_stats.elapsed_ms,
              threads);
  std::printf("speedup:  %10.2fx\n", speedup);
  std::printf("results identical: %s\n", match ? "yes" : "NO — BUG");

  std::printf("\nleaderboard (parallel run):\n%s",
              portfolio::format_leaderboard(parallel_runs).c_str());

  return match ? 0 : 1;
}
