// AIG core microbench: construction rate through the arena/chained unique
// table (cold build, strash-hit lookups, two-level fold savings) and
// packed-simulation throughput — the seed path (one heap BitVec per node,
// as shipped before the SimEngine refactor) vs aig::SimEngine's reusable
// word arena — in minterm-evals/s over a deterministic random-cone pool.
//
//   bench_aig_core [--json out.json] [--check baseline.json]
//                  [--max-regress 0.25] [--kernel scalar|avx2|avx512|neon]
//
// --json writes the machine-readable snapshot (BENCH_aig_core.json is the
// committed baseline). --check re-reads such a snapshot and exits 1 when
// the current engine simulation throughput or construction rate regressed
// more than --max-regress (fraction) below it — the nightly perf gate.
//
// Every simulation case is measured once per available simd backend (the
// per-kernel columns; the active auto-dispatched backend is starred and is
// what the aggregate/gate use). --kernel pins the whole run to one
// backend. Cases at 1024+ rows also measure SimEngine::run_parallel on a
// 4-thread pool (the "par4" column) — informational on small hosts, the
// headline on wide ones.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_random.hpp"
#include "aig/sim_engine.hpp"
#include "core/bits.hpp"
#include "core/config.hpp"
#include "core/rng.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"
#include "obs/registry.hpp"
#include "server/json.hpp"

namespace {

using namespace lsml;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// The seed simulate_nodes path, kept verbatim as the comparison baseline:
// a freshly allocated BitVec per node on every call.
std::vector<core::BitVec> seed_simulate_nodes(
    const aig::Aig& g, const std::vector<const core::BitVec*>& pi_values) {
  const std::size_t rows = g.num_pis() == 0 ? 0 : pi_values[0]->size();
  std::vector<core::BitVec> sim(g.num_nodes(), core::BitVec(rows));
  for (std::uint32_t i = 0; i < g.num_pis(); ++i) {
    sim[i + 1] = *pi_values[i];
  }
  const std::size_t nw = sim[0].num_words();
  for (std::uint32_t v = g.num_pis() + 1; v < g.num_nodes(); ++v) {
    const aig::Node n = g.node(v);
    const std::uint64_t* a = sim[aig::lit_var(n.fanin0)].words();
    const std::uint64_t* b = sim[aig::lit_var(n.fanin1)].words();
    std::uint64_t* dst = sim[v].words();
    const std::uint64_t ca = aig::lit_compl(n.fanin0) ? ~0ULL : 0ULL;
    const std::uint64_t cb = aig::lit_compl(n.fanin1) ? ~0ULL : 0ULL;
    for (std::size_t w = 0; w < nw; ++w) {
      dst[w] = (a[w] ^ ca) & (b[w] ^ cb);
    }
  }
  return sim;
}

// Runs `body` repeatedly until ~0.2s of wall time accumulates; returns
// (reps, seconds).
template <typename Body>
std::pair<std::size_t, double> timed_reps(Body&& body) {
  std::size_t reps = 0;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.2 || reps < 3) {
    body();
    ++reps;
    elapsed = seconds_since(t0);
    if (reps >= 100000) {
      break;
    }
  }
  return {reps, elapsed};
}

std::vector<core::BitVec> make_patterns(std::uint32_t num_pis,
                                        std::size_t rows, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<core::BitVec> patterns(num_pis, core::BitVec(rows));
  for (auto& p : patterns) {
    p.randomize(rng);
  }
  return patterns;
}

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

}  // namespace

int main(int argc, char** argv) {
  namespace simd = lsml::core::simd;
  std::string json_path;
  std::string check_path;
  std::string kernel_arg;
  double max_regress = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress = std::atof(argv[++i]);
    } else if (arg == "--kernel" && i + 1 < argc) {
      kernel_arg = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_aig_core [--json out.json] "
                   "[--check baseline.json] [--max-regress frac] "
                   "[--kernel scalar|avx2|avx512|neon]\n");
      return 2;
    }
  }
  if (!kernel_arg.empty()) {
    simd::Backend pinned;
    if (!simd::backend_from_string(kernel_arg, &pinned) ||
        simd::ops_for(pinned) == nullptr) {
      std::fprintf(stderr, "bench_aig_core: kernel '%s' unknown or not "
                           "available on this host; available:",
                   kernel_arg.c_str());
      for (simd::Backend b : simd::available_backends()) {
        std::fprintf(stderr, " %s", simd::to_string(b));
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    simd::force_backend(pinned);
  }
  const simd::Backend active = simd::active_backend();
  // Per-kernel columns cover every backend this host can run — unless the
  // run is pinned, in which case only the pinned backend is timed.
  const std::vector<simd::Backend> kernels =
      kernel_arg.empty() ? simd::available_backends()
                         : std::vector<simd::Backend>{active};

  const core::ScaleConfig cfg = core::scale_from_env();
  std::printf("== aig core: construction + packed simulation ==\n");
  std::printf("scale=%s (LSML_SCALE=smoke|fast|full)\n", cfg.name().c_str());
  std::printf("simd kernel: %s%s (LSML_SIMD or --kernel to pin)\n\n",
              simd::to_string(active),
              kernel_arg.empty() ? " via auto-dispatch" : ", pinned");

  // Deterministic pool: sizes chosen so smoke stays CI-cheap.
  const bool smoke = cfg.scale == core::Scale::kSmoke;
  const std::vector<std::uint32_t> pool_ands =
      smoke ? std::vector<std::uint32_t>{300, 1000}
            : std::vector<std::uint32_t>{300, 1000, 3000};
  const std::vector<std::size_t> row_counts =
      smoke ? std::vector<std::size_t>{256} : std::vector<std::size_t>{64,
                                                                       256,
                                                                       1024};
  std::vector<aig::Aig> pool;
  {
    core::Rng rng(2026);
    for (const std::uint32_t ands : pool_ands) {
      aig::ConeOptions cone;
      cone.num_inputs = 20;
      cone.num_ands = ands;
      cone.max_tries = 2;
      pool.push_back(aig::random_cone(cone, rng));
    }
  }

  // ------------------------------------------------------- construction
  double build_nodes = 0.0;
  double build_s = 0.0;
  double lookup_nodes = 0.0;
  double lookup_s = 0.0;
  std::uint64_t one_level_ands = 0;
  std::uint64_t two_level_ands = 0;
  for (const aig::Aig& g : pool) {
    const auto [build_reps, bs] = timed_reps([&] {
      aig::Aig fresh(g.num_pis());
      fresh.reserve(g.num_ands());
      g_sink = g_sink + aig::append_aig(fresh, g);
    });
    build_nodes += static_cast<double>(build_reps) * g.num_ands();
    build_s += bs;
    // Hot lookups: re-appending into a populated table allocates nothing;
    // every and2 is a unique-table hit.
    aig::Aig warm(g.num_pis());
    aig::append_aig(warm, g);
    const auto [hit_reps, hs] = timed_reps([&] {
      g_sink = g_sink + aig::append_aig(warm, g);
    });
    lookup_nodes += static_cast<double>(hit_reps) * g.num_ands();
    lookup_s += hs;
    aig::Aig folded(g.num_pis(), aig::Aig::StrashMode::kTwoLevel);
    aig::append_aig(folded, g);
    one_level_ands += g.num_ands();
    two_level_ands += folded.num_ands();
  }
  const double build_rate = build_nodes / build_s;
  const double lookup_rate = lookup_nodes / lookup_s;
  const double fold_saved =
      1.0 - static_cast<double>(two_level_ands) /
                static_cast<double>(one_level_ands);
  std::printf("construction: %.2fM nodes/s cold, %.2fM lookups/s hot, "
              "two-level folds save %.1f%% of ANDs\n\n",
              build_rate / 1e6, lookup_rate / 1e6, 100.0 * fold_saved);
  std::printf("aig-core-bench: construction nodes_per_s=%.0f "
              "lookups_per_s=%.0f two_level_saved=%.4f\n\n",
              build_rate, lookup_rate, fold_saved);

  // --------------------------------------------------------- simulation
  // run_parallel is only worth timing on wide sweeps; 4 threads matches
  // the acceptance criterion ("par4"). On narrow hosts the column still
  // prints — the speedup is informational, never gated.
  constexpr std::size_t kParallelThreads = 4;
  constexpr std::size_t kParallelMinRows = 1024;
  core::ThreadPool par_pool(kParallelThreads);

  std::printf("%8s %6s | %12s |", "ands", "rows", "seed Mme/s");
  for (simd::Backend b : kernels) {
    std::string label = simd::to_string(b);
    if (b == active) {
      label += '*';
    }
    std::printf(" %10s", label.c_str());
  }
  std::printf(" | %10s | %7s\n", "par4 Mme/s", "speedup");

  server::Json cases = server::Json::array();
  double seed_minterms = 0.0;
  double seed_s = 0.0;
  double engine_minterms = 0.0;
  double engine_s = 0.0;
  std::vector<double> kernel_minterms(kernels.size(), 0.0);
  std::vector<double> kernel_s(kernels.size(), 0.0);
  double par_minterms = 0.0;
  double par_s = 0.0;
  double par_base_minterms = 0.0;  // active-backend serial, same cases
  double par_base_s = 0.0;
  for (const aig::Aig& g : pool) {
    for (const std::size_t rows : row_counts) {
      const auto patterns = make_patterns(g.num_pis(), rows, 77);
      std::vector<const core::BitVec*> ptrs;
      for (const auto& p : patterns) {
        ptrs.push_back(&p);
      }
      const double minterms = static_cast<double>(g.num_ands()) * rows;
      const auto [seed_reps, ss] = timed_reps([&] {
        const auto sim = seed_simulate_nodes(g, ptrs);
        g_sink = g_sink + sim.back().word(0);
      });
      const double seed_rate = minterms * seed_reps / ss;
      seed_minterms += minterms * seed_reps;
      seed_s += ss;
      std::printf("%8u %6zu | %12.1f |", g.num_ands(), rows,
                  seed_rate / 1e6);

      aig::SimEngine engine(g);
      double active_rate = 0.0;
      double active_reps = 0.0;
      double active_s = 0.0;
      server::Json kernel_rates = server::Json::object();
      for (std::size_t k = 0; k < kernels.size(); ++k) {
        simd::force_backend(kernels[k]);
        const auto [engine_reps, es] = timed_reps([&] {
          engine.run(ptrs);
          g_sink = g_sink + engine.row(g.num_nodes() - 1)[0];
        });
        const double rate = minterms * engine_reps / es;
        kernel_minterms[k] += minterms * engine_reps;
        kernel_s[k] += es;
        kernel_rates.set(simd::to_string(kernels[k]), rate);
        if (kernels[k] == active) {
          active_rate = rate;
          active_reps = static_cast<double>(engine_reps);
          active_s = es;
          engine_minterms += minterms * engine_reps;
          engine_s += es;
        }
        std::printf(" %10.1f", rate / 1e6);
      }

      double par_rate = 0.0;
      if (rows >= kParallelMinRows) {
        simd::force_backend(active);
        const auto [par_reps, ps] = timed_reps([&] {
          engine.run_parallel(ptrs, par_pool);
          g_sink = g_sink + engine.row(g.num_nodes() - 1)[0];
        });
        par_rate = minterms * par_reps / ps;
        par_minterms += minterms * par_reps;
        par_s += ps;
        par_base_minterms += minterms * active_reps;
        par_base_s += active_s;
        std::printf(" | %10.1f", par_rate / 1e6);
      } else {
        std::printf(" | %10s", "-");
      }
      std::printf(" | %6.2fx\n", active_rate / seed_rate);

      server::Json c = server::Json::object();
      c.set("ands", g.num_ands());
      c.set("rows", static_cast<std::int64_t>(rows));
      c.set("seed_minterm_evals_per_s", seed_rate);
      c.set("engine_minterm_evals_per_s", active_rate);
      c.set("kernels", std::move(kernel_rates));
      if (par_rate > 0.0) {
        c.set("parallel_minterm_evals_per_s", par_rate);
      }
      cases.push_back(std::move(c));
    }
  }
  if (kernel_arg.empty()) {
    simd::clear_forced_backend();
  }
  const double seed_agg = seed_minterms / seed_s;
  const double engine_agg = engine_minterms / engine_s;
  const double speedup = engine_agg / seed_agg;
  std::printf("\naig-core-bench: simulation seed=%.0f engine=%.0f "
              "speedup=%.2f kernel=%s\n",
              seed_agg, engine_agg, speedup, simd::to_string(active));
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    std::printf("aig-core-bench: kernel %s engine=%.0f\n",
                simd::to_string(kernels[k]),
                kernel_minterms[k] / kernel_s[k]);
  }
  if (par_s > 0.0) {
    std::printf("aig-core-bench: parallel threads=%zu engine=%.0f "
                "speedup_vs_serial=%.2f\n",
                kParallelThreads, par_minterms / par_s,
                (par_minterms / par_s) / (par_base_minterms / par_base_s));
  }

  server::Json out = server::Json::object();
  out.set("schema", "lsml-bench-aig-core-v2");
  out.set("scale", cfg.name());
  server::Json construction = server::Json::object();
  construction.set("nodes_per_s", build_rate);
  construction.set("lookups_per_s", lookup_rate);
  construction.set("two_level_saved_frac", fold_saved);
  out.set("construction", std::move(construction));
  server::Json simulation = server::Json::object();
  simulation.set("cases", std::move(cases));
  simulation.set("seed_minterm_evals_per_s", seed_agg);
  simulation.set("engine_minterm_evals_per_s", engine_agg);
  simulation.set("speedup", speedup);
  simulation.set("kernel", simd::to_string(active));
  server::Json kernel_aggs = server::Json::object();
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    kernel_aggs.set(simd::to_string(kernels[k]),
                    kernel_minterms[k] / kernel_s[k]);
  }
  simulation.set("kernels", std::move(kernel_aggs));
  if (par_s > 0.0) {
    server::Json par = server::Json::object();
    par.set("threads", static_cast<std::int64_t>(kParallelThreads));
    par.set("minterm_evals_per_s", par_minterms / par_s);
    par.set("speedup_vs_serial",
            (par_minterms / par_s) / (par_base_minterms / par_base_s));
    simulation.set("parallel", std::move(par));
  }
  out.set("simulation", std::move(simulation));
  {
    // Telemetry summary of every sweep the runs above pushed through the
    // shared SimEngine counters (side channel; not gated by --check).
    obs::Registry& reg = obs::Registry::instance();
    server::Json ob = server::Json::object();
    if (const auto s = reg.histogram_snapshot("lsml_sim_sweep_us")) {
      server::Json h = server::Json::object();
      h.set("count", static_cast<std::int64_t>(s->count));
      h.set("p50_us", s->quantile(0.5));
      h.set("p99_us", s->quantile(0.99));
      h.set("mean_us", s->mean());
      ob.set("sweep_us", std::move(h));
    }
    ob.set("sweeps", static_cast<std::int64_t>(
                         reg.counter_value("lsml_sim_sweeps_total")));
    ob.set("rows", static_cast<std::int64_t>(
                       reg.counter_value("lsml_sim_rows_total")));
    ob.set("words", static_cast<std::int64_t>(
                        reg.counter_value("lsml_sim_words_total")));
    out.set("obs", std::move(ob));
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << out.dump() << "\n";
    if (!os) {
      std::fprintf(stderr, "bench_aig_core: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    if (!is) {
      std::fprintf(stderr, "bench_aig_core: cannot read %s\n",
                   check_path.c_str());
      return 1;
    }
    const server::Json baseline = server::Json::parse(buffer.str());
    const double base_engine =
        baseline.at("simulation").at("engine_minterm_evals_per_s").as_double();
    const double base_build =
        baseline.at("construction").at("nodes_per_s").as_double();
    const double floor_engine = base_engine * (1.0 - max_regress);
    const double floor_build = base_build * (1.0 - max_regress);
    std::printf("check vs %s (max regression %.0f%%):\n", check_path.c_str(),
                100.0 * max_regress);
    std::printf("  engine sim:    %.0f vs floor %.0f  %s\n", engine_agg,
                floor_engine, engine_agg >= floor_engine ? "ok" : "REGRESSED");
    std::printf("  construction:  %.0f vs floor %.0f  %s\n", build_rate,
                floor_build, build_rate >= floor_build ? "ok" : "REGRESSED");
    if (engine_agg < floor_engine || build_rate < floor_build) {
      return 1;
    }
  }
  return 0;
}
