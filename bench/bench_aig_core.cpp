// AIG core microbench: construction rate through the arena/chained unique
// table (cold build, strash-hit lookups, two-level fold savings) and
// packed-simulation throughput — the seed path (one heap BitVec per node,
// as shipped before the SimEngine refactor) vs aig::SimEngine's reusable
// word arena — in minterm-evals/s over a deterministic random-cone pool.
//
//   bench_aig_core [--json out.json] [--check baseline.json]
//                  [--max-regress 0.25]
//
// --json writes the machine-readable snapshot (BENCH_aig_core.json is the
// committed baseline). --check re-reads such a snapshot and exits 1 when
// the current engine simulation throughput or construction rate regressed
// more than --max-regress (fraction) below it — the nightly perf gate.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_random.hpp"
#include "aig/sim_engine.hpp"
#include "core/bits.hpp"
#include "core/config.hpp"
#include "core/rng.hpp"
#include "server/json.hpp"

namespace {

using namespace lsml;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// The seed simulate_nodes path, kept verbatim as the comparison baseline:
// a freshly allocated BitVec per node on every call.
std::vector<core::BitVec> seed_simulate_nodes(
    const aig::Aig& g, const std::vector<const core::BitVec*>& pi_values) {
  const std::size_t rows = g.num_pis() == 0 ? 0 : pi_values[0]->size();
  std::vector<core::BitVec> sim(g.num_nodes(), core::BitVec(rows));
  for (std::uint32_t i = 0; i < g.num_pis(); ++i) {
    sim[i + 1] = *pi_values[i];
  }
  const std::size_t nw = sim[0].num_words();
  for (std::uint32_t v = g.num_pis() + 1; v < g.num_nodes(); ++v) {
    const aig::Node n = g.node(v);
    const std::uint64_t* a = sim[aig::lit_var(n.fanin0)].words();
    const std::uint64_t* b = sim[aig::lit_var(n.fanin1)].words();
    std::uint64_t* dst = sim[v].words();
    const std::uint64_t ca = aig::lit_compl(n.fanin0) ? ~0ULL : 0ULL;
    const std::uint64_t cb = aig::lit_compl(n.fanin1) ? ~0ULL : 0ULL;
    for (std::size_t w = 0; w < nw; ++w) {
      dst[w] = (a[w] ^ ca) & (b[w] ^ cb);
    }
  }
  return sim;
}

// Runs `body` repeatedly until ~0.2s of wall time accumulates; returns
// (reps, seconds).
template <typename Body>
std::pair<std::size_t, double> timed_reps(Body&& body) {
  std::size_t reps = 0;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.2 || reps < 3) {
    body();
    ++reps;
    elapsed = seconds_since(t0);
    if (reps >= 100000) {
      break;
    }
  }
  return {reps, elapsed};
}

std::vector<core::BitVec> make_patterns(std::uint32_t num_pis,
                                        std::size_t rows, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<core::BitVec> patterns(num_pis, core::BitVec(rows));
  for (auto& p : patterns) {
    p.randomize(rng);
  }
  return patterns;
}

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string check_path;
  double max_regress = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_aig_core [--json out.json] "
                   "[--check baseline.json] [--max-regress frac]\n");
      return 2;
    }
  }

  const core::ScaleConfig cfg = core::scale_from_env();
  std::printf("== aig core: construction + packed simulation ==\n");
  std::printf("scale=%s (LSML_SCALE=smoke|fast|full)\n\n", cfg.name().c_str());

  // Deterministic pool: sizes chosen so smoke stays CI-cheap.
  const bool smoke = cfg.scale == core::Scale::kSmoke;
  const std::vector<std::uint32_t> pool_ands =
      smoke ? std::vector<std::uint32_t>{300, 1000}
            : std::vector<std::uint32_t>{300, 1000, 3000};
  const std::vector<std::size_t> row_counts =
      smoke ? std::vector<std::size_t>{256} : std::vector<std::size_t>{64,
                                                                       256,
                                                                       1024};
  std::vector<aig::Aig> pool;
  {
    core::Rng rng(2026);
    for (const std::uint32_t ands : pool_ands) {
      aig::ConeOptions cone;
      cone.num_inputs = 20;
      cone.num_ands = ands;
      cone.max_tries = 2;
      pool.push_back(aig::random_cone(cone, rng));
    }
  }

  // ------------------------------------------------------- construction
  double build_nodes = 0.0;
  double build_s = 0.0;
  double lookup_nodes = 0.0;
  double lookup_s = 0.0;
  std::uint64_t one_level_ands = 0;
  std::uint64_t two_level_ands = 0;
  for (const aig::Aig& g : pool) {
    const auto [build_reps, bs] = timed_reps([&] {
      aig::Aig fresh(g.num_pis());
      fresh.reserve(g.num_ands());
      g_sink = g_sink + aig::append_aig(fresh, g);
    });
    build_nodes += static_cast<double>(build_reps) * g.num_ands();
    build_s += bs;
    // Hot lookups: re-appending into a populated table allocates nothing;
    // every and2 is a unique-table hit.
    aig::Aig warm(g.num_pis());
    aig::append_aig(warm, g);
    const auto [hit_reps, hs] = timed_reps([&] {
      g_sink = g_sink + aig::append_aig(warm, g);
    });
    lookup_nodes += static_cast<double>(hit_reps) * g.num_ands();
    lookup_s += hs;
    aig::Aig folded(g.num_pis(), aig::Aig::StrashMode::kTwoLevel);
    aig::append_aig(folded, g);
    one_level_ands += g.num_ands();
    two_level_ands += folded.num_ands();
  }
  const double build_rate = build_nodes / build_s;
  const double lookup_rate = lookup_nodes / lookup_s;
  const double fold_saved =
      1.0 - static_cast<double>(two_level_ands) /
                static_cast<double>(one_level_ands);
  std::printf("construction: %.2fM nodes/s cold, %.2fM lookups/s hot, "
              "two-level folds save %.1f%% of ANDs\n\n",
              build_rate / 1e6, lookup_rate / 1e6, 100.0 * fold_saved);
  std::printf("aig-core-bench: construction nodes_per_s=%.0f "
              "lookups_per_s=%.0f two_level_saved=%.4f\n\n",
              build_rate, lookup_rate, fold_saved);

  // --------------------------------------------------------- simulation
  std::printf("%8s %6s | %12s %12s | %7s\n", "ands", "rows", "seed Mme/s",
              "engine Mme/s", "speedup");
  server::Json cases = server::Json::array();
  double seed_minterms = 0.0;
  double seed_s = 0.0;
  double engine_minterms = 0.0;
  double engine_s = 0.0;
  for (const aig::Aig& g : pool) {
    for (const std::size_t rows : row_counts) {
      const auto patterns = make_patterns(g.num_pis(), rows, 77);
      std::vector<const core::BitVec*> ptrs;
      for (const auto& p : patterns) {
        ptrs.push_back(&p);
      }
      const auto [seed_reps, ss] = timed_reps([&] {
        const auto sim = seed_simulate_nodes(g, ptrs);
        g_sink = g_sink + sim.back().word(0);
      });
      aig::SimEngine engine(g);
      const auto [engine_reps, es] = timed_reps([&] {
        engine.run(ptrs);
        g_sink = g_sink + engine.row(g.num_nodes() - 1)[0];
      });
      const double minterms = static_cast<double>(g.num_ands()) * rows;
      const double seed_rate = minterms * seed_reps / ss;
      const double engine_rate = minterms * engine_reps / es;
      seed_minterms += minterms * seed_reps;
      seed_s += ss;
      engine_minterms += minterms * engine_reps;
      engine_s += es;
      std::printf("%8u %6zu | %12.1f %12.1f | %6.2fx\n", g.num_ands(), rows,
                  seed_rate / 1e6, engine_rate / 1e6,
                  engine_rate / seed_rate);
      server::Json c = server::Json::object();
      c.set("ands", g.num_ands());
      c.set("rows", static_cast<std::int64_t>(rows));
      c.set("seed_minterm_evals_per_s", seed_rate);
      c.set("engine_minterm_evals_per_s", engine_rate);
      cases.push_back(std::move(c));
    }
  }
  const double seed_agg = seed_minterms / seed_s;
  const double engine_agg = engine_minterms / engine_s;
  const double speedup = engine_agg / seed_agg;
  std::printf("\naig-core-bench: simulation seed=%.0f engine=%.0f "
              "speedup=%.2f\n",
              seed_agg, engine_agg, speedup);

  server::Json out = server::Json::object();
  out.set("schema", "lsml-bench-aig-core-v1");
  out.set("scale", cfg.name());
  server::Json construction = server::Json::object();
  construction.set("nodes_per_s", build_rate);
  construction.set("lookups_per_s", lookup_rate);
  construction.set("two_level_saved_frac", fold_saved);
  out.set("construction", std::move(construction));
  server::Json simulation = server::Json::object();
  simulation.set("cases", std::move(cases));
  simulation.set("seed_minterm_evals_per_s", seed_agg);
  simulation.set("engine_minterm_evals_per_s", engine_agg);
  simulation.set("speedup", speedup);
  out.set("simulation", std::move(simulation));

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << out.dump() << "\n";
    if (!os) {
      std::fprintf(stderr, "bench_aig_core: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    if (!is) {
      std::fprintf(stderr, "bench_aig_core: cannot read %s\n",
                   check_path.c_str());
      return 1;
    }
    const server::Json baseline = server::Json::parse(buffer.str());
    const double base_engine =
        baseline.at("simulation").at("engine_minterm_evals_per_s").as_double();
    const double base_build =
        baseline.at("construction").at("nodes_per_s").as_double();
    const double floor_engine = base_engine * (1.0 - max_regress);
    const double floor_build = base_build * (1.0 - max_regress);
    std::printf("check vs %s (max regression %.0f%%):\n", check_path.c_str(),
                100.0 * max_regress);
    std::printf("  engine sim:    %.0f vs floor %.0f  %s\n", engine_agg,
                floor_engine, engine_agg >= floor_engine ? "ok" : "REGRESSED");
    std::printf("  construction:  %.0f vs floor %.0f  %s\n", build_rate,
                floor_build, build_rate >= floor_build ? "ok" : "REGRESSED");
    if (engine_agg < floor_engine || build_rate < floor_build) {
      return 1;
    }
  }
  return 0;
}
