// Fig. 2: accuracy-size trade-off across teams and the Pareto curve of the
// virtual best, including the paper's headline observation that giving up
// ~2% accuracy halves the circuit size (91% needs ~1141 gates; 89.88% only
// ~537 in the paper's data).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Fig. 2: accuracy vs size (virtual best)");
  const auto suite = bench::load_suite(cfg);
  const auto runs = bench::team_runs(cfg, suite);

  std::printf("team averages ('x' marks in Fig. 2)\n");
  std::printf("%-5s %12s %14s\n", "team", "avg gates", "avg test acc");
  for (const auto& run : runs) {
    std::printf("%-5d %12.1f %13.2f%%\n", run.team, run.avg_ands(),
                100.0 * run.avg_test_acc());
  }

  std::printf("\nvirtual-best Pareto curve\n");
  std::vector<double> budgets;
  for (double b = 25; b <= 5000; b *= 1.45) {
    budgets.push_back(b);
  }
  budgets.push_back(5000);
  const auto pareto = portfolio::virtual_best_pareto(runs, budgets);
  std::printf("%-14s %-14s %-14s\n", "budget", "avg gates", "test acc");
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    std::printf("%-14.0f %-14.1f %13.2f%%\n", budgets[i], pareto[i].avg_ands,
                100.0 * pareto[i].avg_test_acc);
  }

  // Headline claim: how many gates does peak-2% cost vs peak?
  if (!pareto.empty()) {
    const double peak = pareto.back().avg_test_acc;
    double relaxed_size = pareto.back().avg_ands;
    for (const auto& p : pareto) {
      if (p.avg_test_acc >= peak - 0.02) {
        relaxed_size = p.avg_ands;
        break;
      }
    }
    std::printf(
        "\npeak accuracy %.2f%% at %.0f gates; within 2%% of peak at %.0f "
        "gates (%.1fx smaller)\n",
        100.0 * peak, pareto.back().avg_ands, relaxed_size,
        relaxed_size > 0 ? pareto.back().avg_ands / relaxed_size : 0.0);
  }
  return 0;
}
