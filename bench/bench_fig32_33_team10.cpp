// Figs. 32 & 33 (Team 10): per-benchmark accuracy and AIG size of the
// depth-8 decision-tree flow with validation-driven training augmentation.
// Paper: ~84% mean accuracy with only ~140 AND gates on average and no
// benchmark above 300 nodes — the smallest circuits of the contest.

#include <cstdio>

#include "bench_common.hpp"
#include "portfolio/team.hpp"

int main() {
  using namespace lsml;
  const auto cfg = bench::announce("Figs. 32/33: Team 10 accuracy and size");
  const auto suite = bench::load_suite(cfg);

  portfolio::TeamOptions options;
  options.scale = cfg.scale;
  const auto team10 = portfolio::make_team(10, options);

  std::printf("%-6s %-16s %10s %8s\n", "bench", "category", "test acc",
              "#ANDs");
  double acc = 0;
  double size = 0;
  std::uint32_t max_size = 0;
  for (const auto& b : suite) {
    core::Rng rng(600 + b.id);
    const auto model = team10->fit(b.train, b.valid, rng);
    const double test = learn::circuit_accuracy(model.circuit, b.test);
    acc += test;
    size += model.circuit.num_ands();
    max_size = std::max(max_size, model.circuit.num_ands());
    std::printf("%-6s %-16s %9.2f%% %8u\n", b.name.c_str(),
                b.category.c_str(), 100 * test, model.circuit.num_ands());
  }
  std::printf(
      "\naverages: %.2f%% test accuracy, %.1f ANDs (max %u; paper: 84%% / "
      "~140 / <300)\n",
      100 * acc / suite.size(), size / suite.size(), max_size);
  return 0;
}
