// PLA format reader/writer tests.

#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.hpp"
#include "pla/pla.hpp"

namespace lsml::pla {
namespace {

TEST(Pla, ParsesContestStyleFile) {
  std::istringstream is(
      ".i 4\n"
      ".o 1\n"
      ".type fr\n"
      ".p 3\n"
      "0110 1\n"
      "1111 0\n"
      "0000 1\n"
      ".e\n");
  const Pla p = read_pla(is);
  EXPECT_EQ(p.num_inputs, 4u);
  ASSERT_EQ(p.cubes.size(), 3u);
  EXPECT_EQ(p.outputs[0], '1');
  EXPECT_EQ(p.outputs[1], '0');
  const auto ds = p.to_dataset();
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_TRUE(ds.input(0, 1));
  EXPECT_FALSE(ds.input(0, 0));
  EXPECT_TRUE(ds.label(2));
}

TEST(Pla, ParsesDontCares) {
  std::istringstream is(".i 3\n.p 1\n1-0 1\n.e\n");
  const Pla p = read_pla(is);
  ASSERT_EQ(p.cubes.size(), 1u);
  EXPECT_EQ(p.cubes[0].num_literals(), 2u);
  EXPECT_FALSE(p.cubes[0].mask.get(1));
  EXPECT_THROW(p.to_dataset(), std::runtime_error)
      << "don't-care rows cannot become dataset rows";
}

TEST(Pla, RoundTripThroughText) {
  core::Rng rng(5);
  data::Dataset ds(6, 40);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      ds.set_input(r, c, rng.flip(0.5));
    }
    ds.set_label(r, rng.flip(0.5));
  }
  const Pla out = Pla::from_dataset(ds);
  std::stringstream ss;
  write_pla(out, ss);
  const Pla in = read_pla(ss);
  const data::Dataset back = in.to_dataset();
  ASSERT_EQ(back.num_rows(), ds.num_rows());
  ASSERT_EQ(back.num_inputs(), ds.num_inputs());
  for (std::size_t r = 0; r < 40; ++r) {
    EXPECT_EQ(back.label(r), ds.label(r));
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(back.input(r, c), ds.input(r, c));
    }
  }
}

TEST(Pla, FromCoverWritesOnsetCubes) {
  sop::Cube c(3);
  c.mask.set(0, true);
  c.value.set(0, true);
  const Pla p = Pla::from_cover({c}, 3);
  std::ostringstream os;
  write_pla(p, os);
  EXPECT_NE(os.str().find("1-- 1"), std::string::npos);
}

TEST(Pla, AcceptsSingleOutputHeader) {
  std::istringstream is(".i 2\n.o 1\n01 1\n.e\n");
  EXPECT_EQ(read_pla(is).cubes.size(), 1u);
}

TEST(Pla, RejectsMultiOutputHeader) {
  std::istringstream is(".i 2\n.o 2\n01 10\n.e\n");
  EXPECT_THROW(read_pla(is), std::runtime_error)
      << "multi-output PLAs must be rejected, not silently truncated";
}

TEST(Pla, RejectsMultipleOutputColumns) {
  // No .o header, but the cube line itself carries two output bits.
  std::istringstream is(".i 2\n01 10\n.e\n");
  EXPECT_THROW(read_pla(is), std::runtime_error);
}

TEST(Pla, RejectsTrailingColumns) {
  std::istringstream is(".i 2\n01 1 1\n.e\n");
  EXPECT_THROW(read_pla(is), std::runtime_error);
}

TEST(Pla, RejectsBadOutputCharacter) {
  std::istringstream is(".i 2\n01 x\n.e\n");
  EXPECT_THROW(read_pla(is), std::runtime_error);
}

TEST(Pla, DontCareOutputParsesButCannotBecomeLabel) {
  std::istringstream is(".i 2\n.o 1\n01 -\n10 ~\n.e\n");
  const Pla p = read_pla(is);
  ASSERT_EQ(p.outputs.size(), 2u);
  EXPECT_EQ(p.outputs[0], '-');
  EXPECT_THROW(p.to_dataset(), std::runtime_error)
      << "don't-care outputs must not silently become label 0";
}

TEST(Pla, RoundTripProperty) {
  // write -> read -> to_dataset is the identity on contest-style datasets
  // of any shape.
  for (int seed = 0; seed < 8; ++seed) {
    core::Rng rng(seed);
    const std::size_t inputs = 1 + rng.below(24);
    const std::size_t rows = 1 + rng.below(120);
    data::Dataset ds(inputs, rows);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.column(c).randomize(rng);
    }
    ds.labels().randomize(rng);
    std::stringstream ss;
    write_pla(Pla::from_dataset(ds), ss);
    const data::Dataset back = read_pla(ss).to_dataset();
    ASSERT_EQ(back.num_inputs(), ds.num_inputs()) << "seed " << seed;
    ASSERT_EQ(back.num_rows(), ds.num_rows()) << "seed " << seed;
    EXPECT_EQ(back.labels(), ds.labels()) << "seed " << seed;
    for (std::size_t c = 0; c < inputs; ++c) {
      EXPECT_EQ(back.column(c), ds.column(c)) << "seed " << seed;
    }
    EXPECT_EQ(back.content_hash(), ds.content_hash()) << "seed " << seed;
  }
}

TEST(Pla, RejectsMalformedInput) {
  {
    std::istringstream is("10 1\n");  // cube before .i
    EXPECT_THROW(read_pla(is), std::runtime_error);
  }
  {
    std::istringstream is(".i 3\n10 1\n");  // wrong width
    EXPECT_THROW(read_pla(is), std::runtime_error);
  }
  {
    std::istringstream is(".i 2\n1x 1\n");  // bad character
    EXPECT_THROW(read_pla(is), std::runtime_error);
  }
  {
    std::istringstream is(".i 2\n.kw\n");  // unknown directive
    EXPECT_THROW(read_pla(is), std::runtime_error);
  }
}

TEST(Pla, FileRoundTrip) {
  data::Dataset ds(3, 2);
  ds.set_input(0, 0, true);
  ds.set_label(0, true);
  const std::string path = ::testing::TempDir() + "/lsml_test.pla";
  write_pla_file(Pla::from_dataset(ds), path);
  const Pla in = read_pla_file(path);
  EXPECT_EQ(in.num_inputs, 3u);
  EXPECT_EQ(in.cubes.size(), 2u);
}

}  // namespace
}  // namespace lsml::pla
