// core::EventLoop tests: readiness dispatch on a pipe, interest changes,
// cross-thread post(), self-removal from a callback, and stop semantics.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/event_loop.hpp"

namespace lsml::core {
namespace {

/// A nonblocking pipe pair that closes itself.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() {
    EXPECT_EQ(::pipe(fds), 0);
    for (const int fd : fds) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    }
  }
  ~Pipe() {
    for (const int fd : fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }
  [[nodiscard]] int read_end() const { return fds[0]; }
  [[nodiscard]] int write_end() const { return fds[1]; }
};

TEST(EventLoop, DispatchesReadReadinessAndStops) {
  EventLoop loop;
  Pipe pipe;
  std::string seen;
  loop.add(pipe.read_end(), EventLoop::kRead, [&](std::uint32_t ready) {
    EXPECT_TRUE((ready & EventLoop::kRead) != 0);
    char buf[16];
    const ssize_t n = ::read(pipe.read_end(), buf, sizeof buf);
    ASSERT_GT(n, 0);
    seen.append(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  ASSERT_EQ(::write(pipe.write_end(), "hi", 2), 2);
  loop.run();  // returns once the callback called stop()
  EXPECT_EQ(seen, "hi");
}

TEST(EventLoop, PostRunsTasksOnTheLoopThread) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread runner([&] { loop.run(); });
  std::thread::id loop_tid;
  loop.post([&] {
    loop_tid = std::this_thread::get_id();
    ran.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i) {
    loop.post([&] { ran.fetch_add(1); });
  }
  loop.post([&] { loop.stop(); });
  runner.join();
  EXPECT_EQ(ran.load(), 101);
  EXPECT_NE(loop_tid, std::this_thread::get_id());
}

TEST(EventLoop, SetInterestGatesWriteReadiness) {
  EventLoop loop;
  Pipe pipe;
  std::atomic<int> write_events{0};
  // A fresh pipe's write end is always writable; with only kRead interest
  // the callback must never fire for writes.
  loop.add(pipe.write_end(), EventLoop::kRead, [&](std::uint32_t ready) {
    if ((ready & EventLoop::kWrite) != 0) {
      write_events.fetch_add(1);
      loop.stop();
    }
  });
  loop.post([&] {
    // Still no write interest: nothing should be pending yet.
    EXPECT_EQ(write_events.load(), 0);
    loop.set_interest(pipe.write_end(), EventLoop::kWrite);
  });
  loop.run();
  EXPECT_EQ(write_events.load(), 1);
}

TEST(EventLoop, CallbackMayRemoveItsOwnFd) {
  EventLoop loop;
  Pipe pipe;
  std::atomic<int> fired{0};
  loop.add(pipe.read_end(), EventLoop::kRead, [&](std::uint32_t) {
    fired.fetch_add(1);
    char buf[16];
    while (::read(pipe.read_end(), buf, sizeof buf) > 0) {
    }
    loop.remove(pipe.read_end());  // self-removal must not crash the loop
  });
  ASSERT_EQ(::write(pipe.write_end(), "x", 1), 1);
  std::thread runner([&] { loop.run(); });
  // Give the event a chance to dispatch, then write again: the removed fd
  // must stay silent.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::write(pipe.write_end(), "y", 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  loop.post([&] { loop.stop(); });
  runner.join();
  EXPECT_EQ(fired.load(), 1);
}

TEST(EventLoop, TasksPostedWithStopStillRun) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread runner([&] { loop.run(); });
  loop.post([&] {
    loop.stop();
    loop.post([&] { ran.store(true); });  // posted after stop, same batch
  });
  runner.join();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoop, ReportsErrorReadinessOnClosedPeer) {
  EventLoop loop;
  Pipe pipe;
  std::atomic<std::uint32_t> last_ready{0};
  loop.add(pipe.write_end(), 0, [&](std::uint32_t ready) {
    last_ready.store(ready);
    loop.stop();
  });
  ::close(pipe.fds[0]);  // reader gone -> EPIPE surfaces as kError
  pipe.fds[0] = -1;
  loop.run();
  EXPECT_TRUE((last_ready.load() & EventLoop::kError) != 0);
}

}  // namespace
}  // namespace lsml::core
