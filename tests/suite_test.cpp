// Disk-suite subsystem tests: manifest discovery, the content-hash result
// store, and the incremental contest runner (cache-hit determinism).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "learn/factory.hpp"
#include "suite/generate.hpp"
#include "suite/manifest.hpp"
#include "suite/result_cache.hpp"
#include "suite/runner.hpp"

namespace fs = std::filesystem;

namespace lsml::suite {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "lsml_suite_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
}

constexpr const char* kTinyPla = ".i 2\n.o 1\n.p 2\n01 1\n10 0\n.e\n";

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(SuiteManifest, DiscoversGeneratedTriples) {
  const std::string dir = fresh_dir("gen");
  GenerateOptions options;
  options.first = 0;
  options.last = 1;
  options.rows_per_split = 60;
  const auto names = generate_suite(dir, options);
  ASSERT_EQ(names.size(), 2u);

  const auto entries = discover_suite(dir);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "ex00");
  EXPECT_EQ(entries[0].id, 0);
  EXPECT_EQ(entries[1].name, "ex01");
  EXPECT_EQ(entries[1].id, 1);

  const oracle::Benchmark bench = load_benchmark(entries[0]);
  EXPECT_EQ(bench.train.num_rows(), 60u);
  EXPECT_EQ(bench.valid.num_rows(), 60u);
  EXPECT_EQ(bench.test.num_rows(), 60u);
  EXPECT_GT(bench.num_inputs, 0u);
}

TEST(SuiteManifest, AcceptsUnderscoreSpelling) {
  const std::string dir = fresh_dir("underscore");
  for (const char* split : {"train", "valid", "test"}) {
    write_file(dir + "/legacy_" + split + ".pla", kTinyPla);
  }
  const auto entries = discover_suite(dir);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "legacy");
  EXPECT_EQ(load_benchmark(entries[0]).train.num_rows(), 2u);
}

TEST(SuiteManifest, IncompleteTripleThrows) {
  const std::string dir = fresh_dir("incomplete");
  write_file(dir + "/lonely.train.pla", kTinyPla);
  write_file(dir + "/lonely.valid.pla", kTinyPla);  // no test split
  EXPECT_THROW(discover_suite(dir), std::runtime_error);
}

TEST(SuiteManifest, SplitInputCountMismatchThrows) {
  const std::string dir = fresh_dir("mismatch");
  write_file(dir + "/bad.train.pla", kTinyPla);
  write_file(dir + "/bad.valid.pla", ".i 3\n.o 1\n011 1\n.e\n");
  write_file(dir + "/bad.test.pla", kTinyPla);
  const auto entries = discover_suite(dir);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_THROW(load_benchmark(entries[0]), std::runtime_error);
}

TEST(SuiteManifest, IdsAreStableUnderDirectoryChanges) {
  // An id is a pure function of the benchmark's own name: adding or
  // removing unrelated triples must not shift anyone's RNG stream.
  const std::string dir = fresh_dir("named");
  const auto write_triple = [&](const std::string& name) {
    for (const char* split : {"train", "valid", "test"}) {
      write_file(dir + "/" + name + "." + split + ".pla", kTinyPla);
    }
  };
  write_triple("beta");
  write_triple("ex07");
  const auto before = discover_suite(dir);
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0].name, "beta");
  EXPECT_GE(before[0].id, 0);
  EXPECT_EQ(before[1].name, "ex07");
  EXPECT_EQ(before[1].id, 7) << "numeric suffixes survive mixed suites";

  write_triple("alpha");  // sorts ahead of both existing names
  const auto after = discover_suite(dir);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[1].name, "beta");
  EXPECT_EQ(after[1].id, before[0].id);
  EXPECT_EQ(after[2].name, "ex07");
  EXPECT_EQ(after[2].id, 7);
}

TEST(SuiteResultCache, RoundTripsBitExact) {
  const ResultCache cache(fresh_dir("cache"));
  CachedTask task;
  task.result.benchmark_id = 7;
  task.result.benchmark = "ex07";
  task.result.method = "dt depth=8, pruned";
  task.result.train_acc = 1.0 / 3.0;
  task.result.valid_acc = 0.87519999999999998;
  task.result.test_acc = 2.0 / 7.0;
  task.result.num_ands = 4321;
  task.result.num_levels = 17;
  task.result.synth_trace.push_back(
      {"c", 6000, 5800, 40, 40, 0.125});
  task.result.synth_trace.push_back(
      {"rw -k 6", 5800, 4321, 40, 30, 17.03125});
  task.aag = "aag 0 0 0 0 0\n";
  cache.store("team3", "ex07", 0xdeadbeefULL, task);

  const auto loaded = cache.load("team3", "ex07", 0xdeadbeefULL);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->result.benchmark_id, 7);
  EXPECT_EQ(loaded->result.benchmark, "ex07");
  EXPECT_EQ(loaded->result.method, "dt depth=8, pruned");
  EXPECT_EQ(loaded->result.train_acc, task.result.train_acc);
  EXPECT_EQ(loaded->result.valid_acc, task.result.valid_acc);
  EXPECT_EQ(loaded->result.test_acc, task.result.test_acc);
  EXPECT_EQ(loaded->result.num_ands, 4321u);
  EXPECT_EQ(loaded->result.num_levels, 17u);
  ASSERT_EQ(loaded->result.synth_trace.size(), 2u);
  EXPECT_EQ(loaded->result.synth_trace[0].pass, "c");
  EXPECT_EQ(loaded->result.synth_trace[1].pass, "rw -k 6");
  EXPECT_EQ(loaded->result.synth_trace[1].ands_before, 5800u);
  EXPECT_EQ(loaded->result.synth_trace[1].ands_after, 4321u);
  EXPECT_EQ(loaded->result.synth_trace[1].levels_after, 30u);
  EXPECT_EQ(loaded->result.synth_trace[1].ms, 17.03125)
      << "hexfloat timings round-trip exactly";
  EXPECT_EQ(loaded->result.synth_ands_in(), 6000u);
  EXPECT_EQ(loaded->result.synth_ands_saved(), 6000u - 4321u);
  EXPECT_EQ(loaded->aag, task.aag);

  EXPECT_FALSE(cache.load("team3", "ex07", 0xdeadbef0ULL).has_value())
      << "a different content hash must miss";
  EXPECT_FALSE(cache.load("team4", "ex07", 0xdeadbeefULL).has_value());
}

TEST(SuiteResultCache, DisabledStoreAlwaysMisses) {
  const ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.store("t", "b", 1, CachedTask{});  // dropped, no crash
  EXPECT_FALSE(cache.load("t", "b", 1).has_value());
}

TEST(SuiteResultCache, PreSchemaBumpEntryIsAMiss) {
  // A well-formed entry written by the v1 layout (no synth trace) must be
  // treated as a plain miss by the v2 reader, never half-parsed.
  const ResultCache cache(fresh_dir("schema_v1"));
  cache.store("t", "b", 21, CachedTask{});  // creates the directory
  write_file(cache.entry_path("t", "b", 21),
             "# lsml-result v1\n"
             "team t\n"
             "benchmark_id 3\n"
             "benchmark b\n"
             "method dt\n"
             "train_acc 0x1p-1\n"
             "valid_acc 0x1p-1\n"
             "test_acc 0x1p-1\n"
             "num_ands 12\n"
             "num_levels 4\n"
             "aag 14\naag 0 0 0 0 0\n");
  EXPECT_FALSE(cache.load("t", "b", 21).has_value());

  // A current-version header over the old field layout is corrupt, not
  // served: the missing synth_passes field fails the parse.
  write_file(cache.entry_path("t", "b", 21),
             "# lsml-result v2\n"
             "team t\n"
             "benchmark_id 3\n"
             "benchmark b\n"
             "method dt\n"
             "train_acc 0x1p-1\n"
             "valid_acc 0x1p-1\n"
             "test_acc 0x1p-1\n"
             "num_ands 12\n"
             "num_levels 4\n"
             "aag 14\naag 0 0 0 0 0\n");
  EXPECT_FALSE(cache.load("t", "b", 21).has_value());
}

TEST(SuiteResultCache, CorruptEntryIsAMiss) {
  const ResultCache cache(fresh_dir("corrupt"));
  cache.store("t", "b", 5, CachedTask{});
  write_file(cache.entry_path("t", "b", 5), "# lsml-result v999\ngarbage\n");
  EXPECT_FALSE(cache.load("t", "b", 5).has_value());
}

TEST(SuiteResultCache, OversizedAagCountIsAMissNotACrash) {
  const ResultCache cache(fresh_dir("oversized"));
  CachedTask task;
  task.aag = "aag 0 0 0 0 0\n";
  cache.store("t", "b", 9, task);
  // Inflate the declared byte count far past the file's actual size.
  std::string text = read_file(cache.entry_path("t", "b", 9));
  const std::size_t pos = text.find("aag 14");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "aag 18446744073709551615");
  write_file(cache.entry_path("t", "b", 9), text);
  EXPECT_FALSE(cache.load("t", "b", 9).has_value());
}

class SuiteRunner : public ::testing::Test {
 protected:
  static std::vector<portfolio::ContestEntry> entries() {
    return {{1, learn::LearnerFactory::from_registry("dt")},
            {2, learn::LearnerFactory::from_registry("dt8")}};
  }

  static void expect_same_runs(const std::vector<portfolio::TeamRun>& a,
                               const std::vector<portfolio::TeamRun>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t e = 0; e < a.size(); ++e) {
      ASSERT_EQ(a[e].results.size(), b[e].results.size());
      EXPECT_EQ(a[e].team, b[e].team);
      for (std::size_t r = 0; r < a[e].results.size(); ++r) {
        EXPECT_EQ(a[e].results[r].test_acc, b[e].results[r].test_acc);
        EXPECT_EQ(a[e].results[r].train_acc, b[e].results[r].train_acc);
        EXPECT_EQ(a[e].results[r].num_ands, b[e].results[r].num_ands);
        EXPECT_EQ(a[e].results[r].num_levels, b[e].results[r].num_levels);
        EXPECT_EQ(a[e].results[r].method, b[e].results[r].method);
      }
    }
  }
};

TEST_F(SuiteRunner, SecondRunIsAllCacheHitsAndBitIdentical) {
  const std::string suite_dir = fresh_dir("run_suite");
  GenerateOptions gen;
  gen.first = 0;
  gen.last = 1;
  gen.rows_per_split = 80;
  generate_suite(suite_dir, gen);

  RunnerOptions options;
  options.out_dir = fresh_dir("run_out");
  options.cache_dir = fresh_dir("run_cache");
  options.num_threads = 2;
  const RunnerReport first = run_suite_dir(suite_dir, entries(), options);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(first.cache_misses, 4);
  ASSERT_EQ(first.benchmarks.size(), 2u);

  const std::string csv = read_file(first.leaderboard_csv_path);
  const std::string json = read_file(first.leaderboard_json_path);
  const std::string aag =
      read_file(options.out_dir + "/aig/dt/" + first.benchmarks[0] + ".aag");
  EXPECT_FALSE(csv.empty());
  EXPECT_FALSE(json.empty());
  EXPECT_FALSE(aag.empty());

  const RunnerReport second = run_suite_dir(suite_dir, entries(), options);
  EXPECT_EQ(second.cache_hits, 4) << "unchanged inputs must all hit";
  EXPECT_EQ(second.cache_misses, 0);
  expect_same_runs(first.runs, second.runs);
  EXPECT_EQ(read_file(second.leaderboard_csv_path), csv);
  EXPECT_EQ(read_file(second.leaderboard_json_path), json);
  EXPECT_EQ(
      read_file(options.out_dir + "/aig/dt/" + first.benchmarks[0] + ".aag"),
      aag);

  // The cache never changes numbers: a cold, serial, cache-less run
  // produces identical results (thread-count invariance included).
  RunnerOptions cold = options;
  cold.cache_dir.clear();
  cold.num_threads = 1;
  cold.write_artifacts = false;
  expect_same_runs(first.runs,
                   run_suite_dir(suite_dir, entries(), cold).runs);

  // Fresh (cache-less) runs are byte-deterministic at any thread count:
  // pass wall times never reach the leaderboards.
  RunnerOptions fresh = options;
  fresh.cache_dir.clear();
  fresh.out_dir = fresh_dir("run_out_fresh1");
  const RunnerReport f1 = run_suite_dir(suite_dir, entries(), fresh);
  fresh.out_dir = fresh_dir("run_out_fresh2");
  fresh.num_threads = 4;
  const RunnerReport f2 = run_suite_dir(suite_dir, entries(), fresh);
  EXPECT_EQ(read_file(f1.leaderboard_csv_path),
            read_file(f2.leaderboard_csv_path));
  EXPECT_EQ(read_file(f1.leaderboard_json_path),
            read_file(f2.leaderboard_json_path));
}

TEST_F(SuiteRunner, CacheKeysCoverSeedSaltAndContents) {
  const std::string suite_dir = fresh_dir("inval_suite");
  GenerateOptions gen;
  gen.first = 0;
  gen.last = 0;
  gen.rows_per_split = 40;
  generate_suite(suite_dir, gen);

  RunnerOptions options;
  options.out_dir = fresh_dir("inval_out");
  options.cache_dir = fresh_dir("inval_cache");
  options.num_threads = 1;
  options.write_artifacts = false;
  const auto warm = [&](const RunnerOptions& o) {
    return run_suite_dir(suite_dir, entries(), o);
  };
  EXPECT_EQ(warm(options).cache_misses, 2);
  EXPECT_EQ(warm(options).cache_misses, 0);

  RunnerOptions reseeded = options;
  reseeded.seed = 2021;
  EXPECT_EQ(warm(reseeded).cache_misses, 2) << "seed is part of the key";

  RunnerOptions salted = options;
  salted.config_salt = 1;
  EXPECT_EQ(warm(salted).cache_misses, 2) << "salt is part of the key";

  RunnerOptions rescripted = options;
  rescripted.opt.script = "resyn2";
  EXPECT_EQ(warm(rescripted).cache_misses, 2)
      << "the optimization script is part of the key";
  RunnerOptions rebudgeted = options;
  rebudgeted.opt.options.node_budget = 123;
  EXPECT_EQ(warm(rebudgeted).cache_misses, 2)
      << "the node budget is part of the key";

  // The same factory under a different team number draws a different RNG
  // stream (contest_rng), so it must never hit the other number's rows.
  const std::vector<portfolio::ContestEntry> renumbered = {
      {3, learn::LearnerFactory::from_registry("dt")},
      {4, learn::LearnerFactory::from_registry("dt8")}};
  EXPECT_EQ(run_suite_dir(suite_dir, renumbered, options).cache_misses, 2)
      << "team number is part of the key";

  // Changing one training file invalidates that benchmark's tasks.
  const auto manifest = discover_suite(suite_dir);
  std::string text = read_file(manifest[0].train_path);
  const std::size_t cube = text.find('\n', text.find(".p"));
  ASSERT_NE(cube, std::string::npos);
  text[cube + 1] = text[cube + 1] == '0' ? '1' : '0';
  write_file(manifest[0].train_path, text);
  EXPECT_EQ(warm(options).cache_misses, 2) << "contents are part of the key";
}

TEST_F(SuiteRunner, HonorsTheSoftTimeBudget) {
  const std::string suite_dir = fresh_dir("budget_suite");
  GenerateOptions gen;
  gen.first = 0;
  gen.last = 0;
  gen.rows_per_split = 40;
  generate_suite(suite_dir, gen);
  RunnerOptions options;
  options.cache_dir.clear();
  options.write_artifacts = false;
  options.num_threads = 1;
  options.time_budget_ms = 1;  // tight enough that real runs usually blow it
  const RunnerReport report = run_suite_dir(suite_dir, entries(), options);
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].results.size(), 1u) << "all tasks still run";
  // Same contract as portfolio::run_contest: defined by elapsed vs budget,
  // not by how fast this machine happens to be.
  EXPECT_EQ(report.stats.budget_exceeded,
            report.stats.elapsed_ms >
                static_cast<double>(options.time_budget_ms));
  EXPECT_EQ(report.stats.tasks_completed, 2);

  options.time_budget_ms = 0;
  const RunnerReport unlimited = run_suite_dir(suite_dir, entries(), options);
  EXPECT_FALSE(unlimited.stats.budget_exceeded) << "0 means no budget";
}

TEST_F(SuiteRunner, RerunDropsStaleArtifacts) {
  const std::string suite_dir = fresh_dir("stale_suite");
  GenerateOptions gen;
  gen.first = 0;
  gen.last = 0;
  gen.rows_per_split = 30;
  generate_suite(suite_dir, gen);
  RunnerOptions options;
  options.out_dir = fresh_dir("stale_out");
  options.cache_dir = fresh_dir("stale_cache");
  options.num_threads = 1;
  run_suite_dir(suite_dir, entries(), options);
  ASSERT_TRUE(fs::exists(options.out_dir + "/aig/dt8/ex00.aag"));

  // Rerunning with fewer entries must not leave the dropped team's
  // circuits lying around next to a leaderboard that no longer covers them.
  run_suite_dir(suite_dir,
                {{1, learn::LearnerFactory::from_registry("dt")}}, options);
  EXPECT_TRUE(fs::exists(options.out_dir + "/aig/dt/ex00.aag"));
  EXPECT_FALSE(fs::exists(options.out_dir + "/aig/dt8"));
}

TEST_F(SuiteRunner, LeaderboardJsonEscapesNames) {
  const std::string suite_dir = fresh_dir("jsonesc");
  for (const char* split : {"train", "valid", "test"}) {
    write_file(suite_dir + "/we\"ird." + split + ".pla", kTinyPla);
  }
  RunnerOptions options;
  options.out_dir = fresh_dir("jsonesc_out");
  options.cache_dir.clear();
  options.num_threads = 1;
  const RunnerReport report = run_suite_dir(
      suite_dir, {{1, learn::LearnerFactory::from_registry("dt")}}, options);
  const std::string json = read_file(report.leaderboard_json_path);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos)
      << "file stems must be JSON-escaped in the leaderboard";
}

TEST_F(SuiteRunner, DuplicateEntryKeysRejected) {
  const std::string suite_dir = fresh_dir("dup_suite");
  GenerateOptions gen;
  gen.first = 0;
  gen.last = 0;
  gen.rows_per_split = 30;
  generate_suite(suite_dir, gen);
  const std::vector<portfolio::ContestEntry> dup = {
      {1, learn::LearnerFactory::from_registry("dt")},
      {2, learn::LearnerFactory::from_registry("dt")}};
  RunnerOptions options;
  options.write_artifacts = false;
  options.cache_dir.clear();
  EXPECT_THROW(run_suite_dir(suite_dir, dup, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsml::suite
