// LUT-network memorization tests (Chatterjee / Teams 1 & 6).

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/lutnet.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(LutNetwork, StructureMatchesOptions) {
  const auto ds = function_dataset(8, 200, 1, [](const core::BitVec& r) {
    return r.get(0);
  });
  LutNetOptions options;
  options.num_layers = 3;
  options.luts_per_layer = 16;
  options.lut_inputs = 4;
  core::Rng rng(2);
  const LutNetwork net = LutNetwork::fit(ds, options, rng);
  EXPECT_EQ(net.num_luts(), 3u * 16u + 1u);  // +1 output LUT
}

TEST(LutNetwork, MemorizationFitsTrainingSetWell) {
  const auto ds = function_dataset(10, 400, 3, [](const core::BitVec& r) {
    return r.get(2) || r.get(7);
  });
  LutNetOptions options;
  options.num_layers = 2;
  options.luts_per_layer = 64;
  core::Rng rng(4);
  const LutNetwork net = LutNetwork::fit(ds, options, rng);
  EXPECT_GT(data::accuracy(net.predict(ds), ds.labels()), 0.8);
}

TEST(LutNetwork, AigMatchesPrediction) {
  const auto ds = function_dataset(9, 300, 5, [](const core::BitVec& r) {
    return r.get(1) != r.get(4);
  });
  LutNetOptions options;
  options.num_layers = 2;
  options.luts_per_layer = 24;
  core::Rng rng(6);
  const LutNetwork net = LutNetwork::fit(ds, options, rng);
  const aig::Aig g = net.to_aig(9);
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], net.predict(ds));
}

TEST(LutNetwork, UniqueWiringUsesEveryPredecessorOnce) {
  // With unique-but-random wiring, a layer consuming exactly as many
  // connections as the previous layer has outputs touches each one once:
  // so a 1-layer net over n inputs with n/k LUTs covers all inputs.
  const auto ds = function_dataset(16, 300, 7, [](const core::BitVec& r) {
    return r.count() % 2 == 1;  // parity depends on ALL inputs
  });
  LutNetOptions unique;
  unique.num_layers = 1;
  unique.luts_per_layer = 4;  // 4 LUTs x 4 inputs = 16 connections
  unique.wiring = LutWiring::kUniqueRandom;
  core::Rng rng(8);
  const LutNetwork net = LutNetwork::fit(ds, unique, rng);
  // Functional check is probabilistic; structural uniqueness is exact and
  // observable through the AIG support: every PI must appear in the cone.
  const aig::Aig g = net.to_aig(16);
  std::vector<bool> used(17, false);
  for (std::uint32_t v = g.num_pis() + 1; v < g.num_nodes(); ++v) {
    used[aig::lit_var(g.node(v).fanin0)] =
        used[aig::lit_var(g.node(v).fanin0)] || true;
    used[aig::lit_var(g.node(v).fanin1)] = true;
  }
  int covered = 0;
  for (std::uint32_t i = 1; i <= 16; ++i) {
    covered += used[i] ? 1 : 0;
  }
  EXPECT_GT(covered, 10) << "unique wiring should reach most inputs";
}

TEST(LutNetwork, BeamSearchNeverHurtsValidation) {
  const auto f = [](const core::BitVec& r) {
    return (r.get(0) && r.get(1)) || (r.get(2) && r.get(3));
  };
  const auto train = function_dataset(8, 400, 9, f);
  const auto valid = function_dataset(8, 200, 10, f);
  LutNetOptions start;
  start.num_layers = 1;
  start.luts_per_layer = 8;
  core::Rng rng(11);
  const LutNetwork base = LutNetwork::fit(train, start, rng);
  const double base_acc = data::accuracy(base.predict(valid), valid.labels());
  core::Rng rng2(11);
  const LutNetwork best = lutnet_beam_search(train, valid, start, rng2, 3);
  const double best_acc = data::accuracy(best.predict(valid), valid.labels());
  EXPECT_GE(best_acc + 1e-9, base_acc);
}

TEST(LutNetLearner, EndToEnd) {
  const auto f = [](const core::BitVec& r) { return r.get(3); };
  const auto train = function_dataset(6, 200, 12, f);
  const auto valid = function_dataset(6, 100, 13, f);
  LutNetOptions options;
  options.num_layers = 2;
  options.luts_per_layer = 16;
  LutNetLearner learner(options, "lutnet-test");
  core::Rng rng(14);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_GT(model.train_acc, 0.7);
}

}  // namespace
}  // namespace lsml::learn
