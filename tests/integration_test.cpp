// End-to-end integration: benchmark generation -> PLA files -> learning ->
// AIG export, exercising the full contest data path.

#include <gtest/gtest.h>

#include <fstream>

#include "aig/aig_io.hpp"
#include "learn/dt.hpp"
#include "learn/matching.hpp"
#include "oracle/suite.hpp"
#include "pla/pla.hpp"
#include "portfolio/contest.hpp"
#include "portfolio/team.hpp"

namespace lsml {
namespace {

TEST(Integration, ContestDataPathThroughPlaFiles) {
  // Generate a benchmark, write train/valid as PLA (as the contest did),
  // read them back, learn, and verify the exported AIGER file.
  oracle::SuiteOptions options;
  options.rows_per_split = 300;
  const oracle::Benchmark bench = oracle::make_benchmark(32, options);

  const std::string dir = ::testing::TempDir();
  pla::write_pla_file(pla::Pla::from_dataset(bench.train),
                      dir + "/ex32_train.pla");
  pla::write_pla_file(pla::Pla::from_dataset(bench.valid),
                      dir + "/ex32_valid.pla");

  const data::Dataset train =
      pla::read_pla_file(dir + "/ex32_train.pla").to_dataset();
  const data::Dataset valid =
      pla::read_pla_file(dir + "/ex32_valid.pla").to_dataset();
  ASSERT_EQ(train.num_rows(), bench.train.num_rows());

  learn::DtOptions dt;
  dt.max_depth = 8;
  learn::DtLearner learner(dt, "dt8");
  core::Rng rng(1);
  const learn::TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_GT(model.valid_acc, 0.75);

  const std::string aag_path = dir + "/ex32.aag";
  aig::write_aag_file(model.circuit, aag_path);
  const aig::Aig loaded = aig::read_aag_file(aag_path);
  EXPECT_NEAR(learn::circuit_accuracy(loaded, bench.test),
              learn::circuit_accuracy(model.circuit, bench.test), 1e-12);
}

TEST(Integration, MatchingSolvesArithmeticCategoriesExactly) {
  oracle::SuiteOptions options;
  options.rows_per_split = 400;
  // ex30 (comparator) and ex74 (parity) must be exactly solvable.
  for (const int id : {30, 74}) {
    const oracle::Benchmark bench = oracle::make_benchmark(id, options);
    const auto match = learn::match_standard_function(bench.train, {});
    ASSERT_TRUE(match.has_value()) << "ex" << id;
    EXPECT_GT(learn::circuit_accuracy(match->circuit, bench.test), 0.99)
        << "ex" << id;
  }
}

TEST(Integration, MiniContestProducesSensibleLeaderboard) {
  oracle::SuiteOptions suite_options;
  suite_options.rows_per_split = 200;
  std::vector<oracle::Benchmark> suite;
  for (const int id : {30, 75, 60}) {
    suite.push_back(oracle::make_benchmark(id, suite_options));
  }
  portfolio::TeamOptions team_options;
  team_options.scale = core::Scale::kSmoke;

  std::vector<portfolio::TeamRun> runs;
  for (const int t : {10, 7}) {
    const auto team = portfolio::make_team(t, team_options);
    runs.push_back(portfolio::run_suite(*team, t, suite, 7));
  }
  for (const auto& run : runs) {
    EXPECT_GT(run.avg_test_acc(), 0.55);
    for (const auto& r : run.results) {
      EXPECT_LE(r.num_ands, 5000u) << "contest size limit";
    }
  }
  const auto best = portfolio::max_accuracy_per_benchmark(runs);
  ASSERT_EQ(best.size(), 3u);
  EXPECT_GT(best[1], 0.9) << "the symmetric benchmark is matchable";
  const auto rates = portfolio::win_rates(runs);
  int total_best = 0;
  for (const auto& r : rates) {
    total_best += r.best;
  }
  EXPECT_GE(total_best, 3) << "every benchmark has at least one winner";
}

TEST(Integration, VirtualBestParetoShapesLikeFig2) {
  // With a mix of tiny and large models, the Pareto curve must be
  // non-decreasing in accuracy as the budget grows.
  oracle::SuiteOptions options;
  options.rows_per_split = 200;
  std::vector<oracle::Benchmark> suite;
  suite.push_back(oracle::make_benchmark(31, options));
  suite.push_back(oracle::make_benchmark(76, options));

  learn::DtOptions shallow;
  shallow.max_depth = 3;
  learn::DtLearner small(shallow, "dt3");
  learn::DtOptions deep;
  deep.max_depth = 12;
  learn::DtLearner large(deep, "dt12");
  std::vector<portfolio::TeamRun> runs;
  runs.push_back(portfolio::run_suite(small, 1, suite, 3));
  runs.push_back(portfolio::run_suite(large, 2, suite, 3));

  const auto pareto = portfolio::virtual_best_pareto(
      runs, {10.0, 100.0, 1000.0, 5000.0});
  for (std::size_t i = 1; i < pareto.size(); ++i) {
    EXPECT_GE(pareto[i].avg_test_acc + 1e-12, pareto[i - 1].avg_test_acc);
  }
}

}  // namespace
}  // namespace lsml
