// CGP tests: genotype evaluation vs AIG, bootstrap embedding, evolution.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/cgp.hpp"
#include "learn/dt.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(CgpIndividual, EvaluateMatchesAig) {
  core::Rng rng(1);
  CgpOptions options;
  options.genome_nodes = 60;
  const CgpIndividual ind = Cgp::random_individual(7, options, rng);
  const auto ds = function_dataset(7, 256, 2, [](const core::BitVec& r) {
    return r.get(0);  // labels irrelevant; we compare outputs
  });
  const core::BitVec direct = ind.evaluate(ds);
  const aig::Aig g = ind.to_aig();
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], direct);
}

TEST(CgpIndividual, ActiveGenesBoundedByGenome) {
  core::Rng rng(3);
  CgpOptions options;
  options.genome_nodes = 40;
  const CgpIndividual ind = Cgp::random_individual(5, options, rng);
  EXPECT_LE(ind.active_genes(), 40u);
  EXPECT_GE(ind.active_genes(), 1u);
}

TEST(Cgp, FromAigPreservesFunction) {
  // Seed circuit: (x0 & x1) | !x2.
  aig::Aig seed(3);
  seed.add_output(
      seed.or2(seed.and2(seed.pi(0), seed.pi(1)), aig::lit_not(seed.pi(2))));
  core::Rng rng(4);
  CgpOptions options;
  const CgpIndividual ind = Cgp::from_aig(seed, options, rng);
  const auto ds = function_dataset(3, 64, 5, [](const core::BitVec& r) {
    return r.get(0);
  });
  const core::BitVec got = ind.evaluate(ds);
  const auto expect = seed.simulate(ds.column_ptrs());
  EXPECT_EQ(got, expect[0]);
  EXPECT_GE(ind.genes.size(), 2u * seed.num_ands());
}

TEST(Cgp, FromConstantAig) {
  aig::Aig seed(2);
  seed.add_output(aig::kLitTrue);
  core::Rng rng(6);
  const CgpIndividual ind = Cgp::from_aig(seed, {}, rng);
  const auto ds = function_dataset(2, 32, 7, [](const core::BitVec& r) {
    return r.get(0);
  });
  EXPECT_EQ(ind.evaluate(ds).count(), 32u);
}

TEST(Cgp, EvolutionImprovesFitnessOnSimpleTarget) {
  const auto f = [](const core::BitVec& r) { return r.get(0) != r.get(1); };
  const auto train = function_dataset(4, 256, 8, f);
  core::Rng rng(9);
  CgpOptions options;
  options.genome_nodes = 50;
  options.generations = 600;
  options.minibatch = 0;  // whole set: fitness is comparable across gens
  const CgpIndividual start = Cgp::random_individual(4, options, rng);
  const double start_acc =
      data::accuracy(start.evaluate(train), train.labels());
  const CgpIndividual evolved = Cgp::evolve(start, train, options, rng);
  const double end_acc =
      data::accuracy(evolved.evaluate(train), train.labels());
  EXPECT_GE(end_acc, start_acc);
  EXPECT_GT(end_acc, 0.9) << "XOR of two inputs is easy for XAIG-CGP";
}

TEST(CgpLearner, BootstrapKicksInAboveThreshold) {
  const auto f = [](const core::BitVec& r) { return r.get(0) && r.get(2); };
  const auto train = function_dataset(5, 300, 10, f);
  const auto valid = function_dataset(5, 150, 11, f);
  core::Rng dt_rng(12);
  const DecisionTree tree = DecisionTree::fit(train, {}, dt_rng);
  CgpOptions options;
  options.genome_nodes = 60;
  options.generations = 200;
  CgpLearner learner(options, tree.to_aig(5), "cgp-test");
  core::Rng rng(13);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_NE(model.method.find("bootstrapped"), std::string::npos);
  EXPECT_GT(model.valid_acc, 0.9);
}

TEST(CgpLearner, RandomInitWhenSeedIsWeak) {
  const auto f = [](const core::BitVec& r) { return r.get(1); };
  const auto train = function_dataset(5, 300, 14, f);
  const auto valid = function_dataset(5, 150, 15, f);
  // A constant-0 seed has ~50% accuracy -> below the 55% rule.
  aig::Aig weak_seed(5);
  weak_seed.add_output(aig::kLitFalse);
  CgpOptions options;
  options.genome_nodes = 40;
  options.generations = 400;
  options.minibatch = 0;
  CgpLearner learner(options, weak_seed, "cgp-test");
  core::Rng rng(16);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_NE(model.method.find("random"), std::string::npos);
}

}  // namespace
}  // namespace lsml::learn
