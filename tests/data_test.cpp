// Dataset container tests: splits, merges, selections, metrics.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "data/dataset.hpp"

namespace lsml::data {
namespace {

Dataset make_toy(std::size_t rows, double label_p, int seed) {
  core::Rng rng(seed);
  Dataset ds(4, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      ds.set_input(r, c, rng.flip(0.5));
    }
    ds.set_label(r, rng.flip(label_p));
  }
  return ds;
}

TEST(Dataset, BasicAccessors) {
  Dataset ds(3, 5);
  EXPECT_EQ(ds.num_inputs(), 3u);
  EXPECT_EQ(ds.num_rows(), 5u);
  ds.set_input(2, 1, true);
  EXPECT_TRUE(ds.input(2, 1));
  EXPECT_FALSE(ds.input(2, 0));
  ds.set_label(4, true);
  EXPECT_TRUE(ds.label(4));
  EXPECT_DOUBLE_EQ(ds.label_fraction(), 0.2);
}

TEST(Dataset, RowViewMatchesColumns) {
  const Dataset ds = make_toy(20, 0.5, 1);
  for (std::size_t r = 0; r < 20; ++r) {
    const auto row = ds.row(r);
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(static_cast<bool>(row[c]), ds.input(r, c));
    }
  }
}

TEST(Dataset, SelectRowsAndColumns) {
  const Dataset ds = make_toy(10, 0.5, 2);
  const Dataset rows = ds.select_rows({0, 3, 7});
  EXPECT_EQ(rows.num_rows(), 3u);
  EXPECT_EQ(rows.input(1, 2), ds.input(3, 2));
  EXPECT_EQ(rows.label(2), ds.label(7));
  const Dataset cols = ds.select_columns({2, 0});
  EXPECT_EQ(cols.num_inputs(), 2u);
  EXPECT_EQ(cols.input(5, 0), ds.input(5, 2));
  EXPECT_EQ(cols.input(5, 1), ds.input(5, 0));
  EXPECT_EQ(cols.labels(), ds.labels());
}

TEST(Dataset, MergePreservesBothParts) {
  const Dataset a = make_toy(6, 0.3, 3);
  const Dataset b = make_toy(4, 0.9, 4);
  const Dataset m = a.merged_with(b);
  EXPECT_EQ(m.num_rows(), 10u);
  EXPECT_EQ(m.input(2, 1), a.input(2, 1));
  EXPECT_EQ(m.input(8, 3), b.input(2, 3));
  EXPECT_EQ(m.label(9), b.label(3));
}

TEST(Dataset, SplitPartitionsAllRows) {
  const Dataset ds = make_toy(100, 0.5, 5);
  core::Rng rng(6);
  const auto [first, second] = ds.split(0.7, rng);
  EXPECT_EQ(first.num_rows() + second.num_rows(), 100u);
  EXPECT_NEAR(static_cast<double>(first.num_rows()), 70.0, 1.0);
}

TEST(Dataset, StratifiedSplitKeepsLabelBalance) {
  const Dataset ds = make_toy(1000, 0.2, 7);
  core::Rng rng(8);
  const auto [first, second] = ds.split(0.5, rng, true);
  EXPECT_NEAR(first.label_fraction(), ds.label_fraction(), 0.01);
  EXPECT_NEAR(second.label_fraction(), ds.label_fraction(), 0.01);
}

TEST(Dataset, AddColumn) {
  Dataset ds = make_toy(12, 0.5, 9);
  core::BitVec extra = ds.column(0) ^ ds.column(1);
  const std::size_t idx = ds.add_column(extra);
  EXPECT_EQ(idx, 4u);
  EXPECT_EQ(ds.num_inputs(), 5u);
  for (std::size_t r = 0; r < 12; ++r) {
    EXPECT_EQ(ds.input(r, 4), ds.input(r, 0) != ds.input(r, 1));
  }
  core::BitVec wrong(5);
  EXPECT_THROW(ds.add_column(wrong), std::invalid_argument);
}

TEST(Accuracy, CountsAgreements) {
  core::BitVec pred(4);
  core::BitVec labels(4);
  pred.set(0, true);
  labels.set(0, true);
  labels.set(1, true);
  EXPECT_DOUBLE_EQ(accuracy(pred, labels), 0.75);
  EXPECT_DOUBLE_EQ(accuracy(core::BitVec(0), core::BitVec(0)), 0.0);
}

TEST(Dataset, RowHashDiffersAcrossRows) {
  const Dataset ds = make_toy(50, 0.5, 10);
  // Not a strict guarantee, but 4-bit rows collide only when equal.
  for (std::size_t r = 1; r < 50; ++r) {
    if (ds.row(r) != ds.row(0)) {
      EXPECT_NE(ds.row_hash(r), ds.row_hash(0));
    } else {
      EXPECT_EQ(ds.row_hash(r), ds.row_hash(0));
    }
  }
}

}  // namespace
}  // namespace lsml::data
