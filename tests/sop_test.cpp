// Cube algebra and the ESPRESSO-style minimizer: training-set consistency
// (the cover must reproduce every sampled label) and real compression.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "sop/espresso.hpp"
#include "sop/sop_to_aig.hpp"

namespace lsml::sop {
namespace {

data::Dataset random_function_dataset(std::size_t inputs, std::size_t rows,
                                      int seed,
                                      bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(Cube, MintermCoversOnlyItself) {
  core::BitVec row(5);
  row.set(1, true);
  row.set(4, true);
  const Cube c = Cube::minterm(row);
  EXPECT_TRUE(c.covers_row(row));
  core::BitVec other = row;
  other.set(0, true);
  EXPECT_FALSE(c.covers_row(other));
  EXPECT_EQ(c.num_literals(), 5u);
}

TEST(Cube, ContainmentAndAbsorption) {
  Cube wide(4);
  wide.mask.set(0, true);
  wide.value.set(0, true);  // x0
  Cube narrow(4);
  narrow.mask.set(0, true);
  narrow.value.set(0, true);
  narrow.mask.set(2, true);  // x0 & !x2
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  Cover cover{narrow, wide, narrow};
  remove_absorbed(cover);
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover[0] == wide);
}

TEST(Cube, ConflictingPolarityNotContained) {
  Cube a(3);
  a.mask.set(1, true);
  a.value.set(1, true);  // x1
  Cube b(3);
  b.mask.set(1, true);  // !x1
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(Espresso, ConsistentWithTrainingData) {
  const auto ds = random_function_dataset(
      12, 300, 3, [](const core::BitVec& row) {
        return (row.get(0) && row.get(3)) || (!row.get(5) && row.get(7));
      });
  core::Rng rng(5);
  const Cover cover = espresso(ds, {}, rng);
  const core::BitVec pred = cover_predict(cover, ds);
  EXPECT_EQ(data::accuracy(pred, ds.labels()), 1.0)
      << "ESPRESSO must be exact on the care set";
}

TEST(Espresso, CompressesSimpleFunction) {
  const auto ds = random_function_dataset(
      10, 400, 7,
      [](const core::BitVec& row) { return row.get(2) && row.get(6); });
  core::Rng rng(9);
  const Cover cover = espresso(ds, {}, rng);
  const std::size_t onset =
      static_cast<std::size_t>(ds.labels().count());
  EXPECT_LT(cover.size(), onset / 4)
      << "expansion should merge most of the " << onset << " minterms";
}

TEST(Espresso, GeneralizesConjunction) {
  // Train on one sample set, test on another from the same function: for a
  // simple conjunction the expanded cubes should generalize well.
  const auto f = [](const core::BitVec& row) {
    return row.get(1) && row.get(4);
  };
  const auto train = random_function_dataset(8, 200, 21, f);
  const auto test = random_function_dataset(8, 200, 22, f);
  core::Rng rng(23);
  const Cover cover = espresso(train, {}, rng);
  const double acc = data::accuracy(cover_predict(cover, test), test.labels());
  EXPECT_GT(acc, 0.9);
}

TEST(Espresso, SampleCapsLimitWork) {
  const auto ds = random_function_dataset(
      16, 500, 31, [](const core::BitVec& row) { return row.get(0); });
  EspressoOptions options;
  options.max_onset = 50;
  options.max_offset = 50;
  core::Rng rng(33);
  const Cover cover = espresso(ds, options, rng);
  EXPECT_LE(cover.size(), 50u);
}

TEST(ExpandAgainstOffset, NeverCoversOffset) {
  core::Rng rng(41);
  const auto ds = random_function_dataset(
      10, 250, 43, [](const core::BitVec& row) {
        return row.count() % 3 == 0;  // awkward, non-cube function
      });
  const auto rows = dataset_rows(ds);
  std::vector<core::BitVec> onset;
  std::vector<core::BitVec> offset;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    (ds.label(r) ? onset : offset).push_back(rows[r]);
  }
  Cover cover;
  for (const auto& row : onset) {
    cover.push_back(Cube::minterm(row));
  }
  expand_against_offset(cover, offset, true, rng);
  for (const Cube& cube : cover) {
    for (const auto& row : offset) {
      EXPECT_FALSE(cube.covers_row(row));
    }
  }
}

TEST(Irredundant, KeepsFullOnsetCoverage) {
  core::Rng rng(51);
  const auto ds = random_function_dataset(
      9, 200, 53,
      [](const core::BitVec& row) { return row.get(0) || row.get(8); });
  const auto rows = dataset_rows(ds);
  std::vector<core::BitVec> onset;
  std::vector<core::BitVec> offset;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    (ds.label(r) ? onset : offset).push_back(rows[r]);
  }
  Cover cover;
  for (const auto& row : onset) {
    cover.push_back(Cube::minterm(row));
  }
  expand_against_offset(cover, offset, true, rng);
  const std::size_t before = cover.size();
  irredundant(cover, onset);
  EXPECT_LE(cover.size(), before);
  for (const auto& row : onset) {
    EXPECT_TRUE(cover_covers_row(cover, row));
  }
}

TEST(SopToAig, MatchesCoverPrediction) {
  const auto ds = random_function_dataset(
      11, 300, 61, [](const core::BitVec& row) {
        return (row.get(0) && !row.get(1)) || row.get(9);
      });
  core::Rng rng(63);
  const Cover cover = espresso(ds, {}, rng);
  const aig::Aig g = cover_to_aig(cover, ds.num_inputs());
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], cover_predict(cover, ds));
}

}  // namespace
}  // namespace lsml::sop
