// Random forest tests: vote semantics, AIG equivalence, importance.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/forest.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(RandomForest, EvenTreeCountIsMadeOdd) {
  const auto ds = function_dataset(5, 100, 1, [](const core::BitVec& r) {
    return r.get(0);
  });
  ForestOptions options;
  options.num_trees = 4;
  core::Rng rng(2);
  const RandomForest forest = RandomForest::fit(ds, options, rng);
  EXPECT_EQ(forest.trees().size() % 2, 1u);
}

TEST(RandomForest, LearnsNoisyMajority) {
  const auto f = [](const core::BitVec& r) { return r.count() >= 5; };
  const auto train = function_dataset(9, 600, 3, f);
  const auto test = function_dataset(9, 300, 4, f);
  ForestOptions options;
  options.num_trees = 17;
  options.tree.max_depth = 8;
  core::Rng rng(5);
  const RandomForest forest = RandomForest::fit(train, options, rng);
  EXPECT_GT(data::accuracy(forest.predict(test), test.labels()), 0.8);
}

TEST(RandomForest, AigMatchesVotePrediction) {
  const auto ds = function_dataset(8, 300, 6, [](const core::BitVec& r) {
    return r.get(1) || (r.get(4) && r.get(7));
  });
  ForestOptions options;
  options.num_trees = 5;
  options.tree.max_depth = 6;
  core::Rng rng(7);
  const RandomForest forest = RandomForest::fit(ds, options, rng);
  const aig::Aig g = forest.to_aig(8);
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], forest.predict(ds));
}

TEST(RandomForest, ImportanceConcentratesOnSignal) {
  const auto ds = function_dataset(10, 600, 8, [](const core::BitVec& r) {
    return r.get(4);
  });
  ForestOptions options;
  options.num_trees = 9;
  options.tree.max_depth = 5;
  core::Rng rng(9);
  const RandomForest forest = RandomForest::fit(ds, options, rng);
  const auto imp = forest.feature_importance(10);
  std::size_t best = 0;
  for (std::size_t c = 1; c < 10; ++c) {
    if (imp[c] > imp[best]) {
      best = c;
    }
  }
  EXPECT_EQ(best, 4u);
}

TEST(ForestLearner, ModelIsWithinReasonableSize) {
  const auto train = function_dataset(8, 300, 10, [](const core::BitVec& r) {
    return r.get(0) != r.get(1);
  });
  const auto valid = function_dataset(8, 150, 11, [](const core::BitVec& r) {
    return r.get(0) != r.get(1);
  });
  ForestOptions options;
  options.num_trees = 7;
  options.tree.max_depth = 6;
  ForestLearner learner(options, "rf-test");
  core::Rng rng(12);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_LT(model.circuit.num_ands(), 5000u);
  EXPECT_GT(model.valid_acc, 0.8);
}

TEST(RandomForest, BootstrapFractionControlsSampleSize) {
  const auto ds = function_dataset(6, 200, 13, [](const core::BitVec& r) {
    return r.get(2);
  });
  ForestOptions options;
  options.num_trees = 3;
  options.bootstrap_fraction = 0.25;
  core::Rng rng(14);
  const RandomForest forest = RandomForest::fit(ds, options, rng);
  // Still learns the trivial single-variable function.
  EXPECT_GT(data::accuracy(forest.predict(ds), ds.labels()), 0.9);
}

}  // namespace
}  // namespace lsml::learn
