// obs tests: histogram bucket boundaries and merge associativity, striped
// counter / histogram writes under concurrency (the TSan job builds this
// binary), registry aliasing and Prometheus exposition, span nesting and
// ring wraparound in the tracer.
//
// The registry is a process singleton shared by every test in this binary,
// so each test uses metric names under its own `test_obs_` prefix.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "server/json.hpp"

namespace lsml::obs {
namespace {

// ------------------------------------------------------------- histogram

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(histogram_bucket_index(0), 0u);
  EXPECT_EQ(histogram_bucket_le(0), 0u);
  // Bucket i holds [2^(i-1), 2^i): both edges land where the docs say.
  for (std::size_t i = 1; i < kHistogramBuckets - 1; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    const std::uint64_t hi = (std::uint64_t{1} << i) - 1;
    EXPECT_EQ(histogram_bucket_index(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(histogram_bucket_index(hi), i) << "hi of bucket " << i;
    EXPECT_EQ(histogram_bucket_le(i), hi);
  }
  // Every value is <= the inclusive bound of its bucket.
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 4096ull}) {
    EXPECT_LE(v, histogram_bucket_le(histogram_bucket_index(v)));
  }
  // Values past the covered range saturate into the last bucket.
  EXPECT_EQ(histogram_bucket_index(UINT64_MAX), kHistogramBuckets - 1);
}

TEST(ObsHistogram, RecordFillsCountSumAndBuckets) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 11u);
  EXPECT_EQ(s.buckets[0], 1u);                          // 0
  EXPECT_EQ(s.buckets[1], 1u);                          // 1
  EXPECT_EQ(s.buckets[histogram_bucket_index(5)], 2u);  // both 5s
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  Histogram ha;
  Histogram hb;
  Histogram hc;
  for (std::uint64_t v = 0; v < 50; ++v) {
    ha.record(v * 3);
    hb.record(v * 7 + 1);
    hc.record(v * v);
  }
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  const HistogramSnapshot c = hc.snapshot();

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot bc = b;  // a + (b + c)
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  HistogramSnapshot cba = c;  // commuted order
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.count, cba.count);
  EXPECT_EQ(ab_c.sum, cba.sum);
  EXPECT_EQ(ab_c.buckets, cba.buckets);
}

TEST(ObsHistogram, QuantilesAreBoundedAndMonotone) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.record(10);  // bucket [8, 15]
  }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_GE(s.quantile(0.5), 8.0);
  EXPECT_LE(s.quantile(0.5), 16.0);
  EXPECT_LE(s.quantile(0.1), s.quantile(0.9));
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

// ----------------------------------------------------------- concurrency

TEST(ObsCounter, StripedAddsNeverLoseIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        c.add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.load(), kThreads * kAdds);
  c.reset();
  EXPECT_EQ(c.load(), 0u);
}

TEST(ObsHistogram, ConcurrentRecordsAndSnapshotsAreClean) {
  // Writers record while a reader snapshots mid-flight: the final totals
  // must be exact and every intermediate snapshot internally bounded.
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kRecords = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kRecords; ++i) {
        h.record(i & 1023);
      }
    });
  }
  threads.emplace_back([&h] {
    for (int i = 0; i < 100; ++i) {
      const HistogramSnapshot s = h.snapshot();
      EXPECT_LE(s.count, kThreads * kRecords);
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.snapshot().count, kThreads * kRecords);
}

TEST(ObsRegistry, ConcurrentGetOrCreateReturnsOneInstance) {
  Registry& reg = Registry::instance();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter& c = reg.counter("test_obs_race_total");
      c.add(1);
      seen[t] = &c;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_EQ(reg.counter_value("test_obs_race_total"), 8u);
}

// -------------------------------------------------------------- registry

TEST(ObsRegistry, RegistrationAliasesMergeAndUnregister) {
  Registry& reg = Registry::instance();
  reg.counter("test_obs_alias_total").add(5);
  Counter external;
  external.add(7);
  {
    const Registry::Registration r =
        reg.register_counter("test_obs_alias_total", &external);
    EXPECT_EQ(reg.counter_value("test_obs_alias_total"), 12u);
    EXPECT_NE(reg.expose_prometheus().find("test_obs_alias_total 12"),
              std::string::npos);
  }
  // The alias left with its Registration; the owned counter remains.
  EXPECT_EQ(reg.counter_value("test_obs_alias_total"), 5u);
}

TEST(ObsRegistry, ExposesHistogramWithLabelsAndCumulativeBuckets) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test_obs_lat_us{op=\"a\"}");
  h.record(0);
  h.record(1);
  h.record(3);
  const std::string text = reg.expose_prometheus();
  EXPECT_NE(text.find("# TYPE test_obs_lat_us histogram"), std::string::npos);
  // Cumulative: le="0" sees 1 sample, le="1" two, le="3" all three.
  EXPECT_NE(text.find("test_obs_lat_us_bucket{op=\"a\",le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_lat_us_bucket{op=\"a\",le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_lat_us_bucket{op=\"a\",le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_lat_us_bucket{op=\"a\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_lat_us_sum{op=\"a\"} 4"), std::string::npos);
  EXPECT_NE(text.find("test_obs_lat_us_count{op=\"a\"} 3"),
            std::string::npos);
  // One # TYPE line per family, no matter how many labeled series exist.
  reg.histogram("test_obs_lat_us{op=\"b\"}").record(2);
  const std::string two = reg.expose_prometheus();
  std::size_t type_lines = 0;
  for (std::size_t pos = two.find("# TYPE test_obs_lat_us histogram");
       pos != std::string::npos;
       pos = two.find("# TYPE test_obs_lat_us histogram", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(ObsRegistry, GaugeFnSampledAtExposition) {
  Registry& reg = Registry::instance();
  std::int64_t depth = 3;
  const Registry::Registration r =
      reg.register_gauge_fn("test_obs_depth", [&depth] { return depth; });
  EXPECT_NE(reg.expose_prometheus().find("test_obs_depth 3"),
            std::string::npos);
  depth = 9;
  EXPECT_NE(reg.expose_prometheus().find("test_obs_depth 9"),
            std::string::npos);
}

// ---------------------------------------------------------------- tracer

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::disable();
    Tracer::reset();
  }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  Tracer::disable();
  Tracer::reset();
  { ScopedSpan span("never", "test"); }
  EXPECT_EQ(Tracer::recorded(), 0u);
}

TEST_F(TracerTest, NestedSpansStayContainedInExport) {
  Tracer::enable(64);
  {
    ScopedSpan outer("outer", "test");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    { ScopedSpan inner("inner", "test"); }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(Tracer::recorded(), 2u);

  std::ostringstream os;
  Tracer::export_chrome_trace(os);
  const server::Json root = server::Json::parse(os.str());
  const server::Json& events = root.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  // Sorted parents-first within a thread, so [0] is the outer span.
  const server::Json& outer = events.at(0);
  const server::Json& inner = events.at(1);
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(inner.at("name").as_string(), "inner");
  EXPECT_EQ(outer.at("ph").as_string(), "X");
  const double slack = 0.002;  // export rounds timestamps to 1ns
  EXPECT_GE(inner.at("ts").as_double() + slack, outer.at("ts").as_double());
  EXPECT_LE(inner.at("ts").as_double() + inner.at("dur").as_double(),
            outer.at("ts").as_double() + outer.at("dur").as_double() + slack);
}

TEST_F(TracerTest, RingWrapsAroundKeepingNewestSpans) {
  Tracer::enable(4);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    Tracer::record("span", "test", t0 + std::chrono::microseconds(i),
                   t0 + std::chrono::microseconds(i + 1));
  }
  EXPECT_EQ(Tracer::recorded(), 4u);
  EXPECT_EQ(Tracer::dropped(), 6u);
  // enable() starts a fresh capture: old rings and the drop count clear.
  Tracer::enable(4);
  EXPECT_EQ(Tracer::recorded(), 0u);
  EXPECT_EQ(Tracer::dropped(), 0u);
}

TEST_F(TracerTest, ManyThreadsRecordWithoutLosingSpansBelowCapacity) {
  Tracer::enable(1024);
  constexpr int kThreads = 4;
  constexpr int kSpans = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("work", "test");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Per-thread rings: no cross-thread eviction below per-ring capacity.
  EXPECT_EQ(Tracer::recorded(), static_cast<std::size_t>(kThreads * kSpans));
  EXPECT_EQ(Tracer::dropped(), 0u);
}

TEST_F(TracerTest, InternedNamesAreStableAndDeduplicated) {
  const std::string spelling = "rw -k 6";
  const char* a = intern_name(spelling);
  const char* b = intern_name(std::string("rw -k 6"));
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "rw -k 6");
}

}  // namespace
}  // namespace lsml::obs
