// ThreadPool tests: task completion, futures, exception propagation, and
// N=1 vs N=8 equivalence of parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace lsml::core {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> tickets;
  for (int i = 0; i < 100; ++i) {
    tickets.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& t : tickets) {
    t.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  auto ticket = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(ticket.get(), 42);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.num_threads(), ThreadPool::default_num_threads());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto ticket = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(ticket.get(), std::runtime_error);
  // The pool must survive a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversTheWholeRange) {
  ThreadPool pool(8);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits.back(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 17) {
                                     throw std::invalid_argument("bad index");
                                   }
                                 }),
               std::invalid_argument);
  // The pool stays usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, OneVsEightThreadsComputeIdenticalResults) {
  // The same deterministic per-index work must not depend on thread count:
  // each index derives its own RNG stream via Rng::split.
  const auto compute = [](std::size_t num_threads) {
    std::vector<std::uint64_t> out(256, 0);
    ThreadPool pool(num_threads);
    pool.parallel_for(out.size(), [&out](std::size_t i) {
      const Rng root(12345);
      Rng rng = root.split(7, i);
      std::uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) {
        acc ^= rng.next();
      }
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(8));
}

TEST(Rng, SplitIsPureAndKeyed) {
  const Rng root(99);
  Rng a = root.split(1, 2);
  Rng b = root.split(1, 2);
  EXPECT_EQ(a.next(), b.next()) << "split must not advance or depend on calls";
  Rng c = root.split(1, 3);
  Rng d = root.split(2, 2);
  const std::uint64_t base = root.split(1, 2).next();
  EXPECT_NE(base, c.next());
  EXPECT_NE(base, d.next());
}

}  // namespace
}  // namespace lsml::core
