// Optimization passes: functional equivalence (the non-negotiable), size
// never grows through optimize(), and balance reduces depth of chains.

#include <gtest/gtest.h>

#include "aig/aig_build.hpp"
#include "aig/aig_opt.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"

namespace lsml::aig {
namespace {

bool equivalent_by_simulation(const Aig& a, const Aig& b, std::size_t rows,
                              core::Rng& rng) {
  std::vector<core::BitVec> cols(a.num_pis(), core::BitVec(rows));
  std::vector<const core::BitVec*> ptrs;
  for (auto& c : cols) {
    c.randomize(rng);
    ptrs.push_back(&c);
  }
  const auto sa = a.simulate(ptrs);
  const auto sb = b.simulate(ptrs);
  return sa[0].count_equal(sb[0]) == rows;
}

TEST(Balance, ReducesChainDepth) {
  Aig g(8);
  // Deliberately skewed AND chain: depth 7.
  Lit acc = g.pi(0);
  for (std::uint32_t i = 1; i < 8; ++i) {
    acc = g.and2(acc, g.pi(i));
  }
  g.add_output(acc);
  EXPECT_EQ(g.num_levels(), 7u);
  const Aig balanced = balance(g);
  EXPECT_EQ(balanced.num_levels(), 3u);
  core::Rng rng(1);
  EXPECT_TRUE(equivalent_by_simulation(g, balanced, 256, rng));
}

class OptEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptEquivalence, BalancePreservesFunction) {
  core::Rng rng(GetParam());
  ConeOptions options;
  options.num_inputs = 10;
  options.num_ands = 150;
  options.flavor = GetParam() % 2 ? ConeFlavor::kXorRich : ConeFlavor::kRandom;
  const Aig g = random_cone(options, rng);
  const Aig b = balance(g);
  core::Rng check(GetParam() * 7);
  EXPECT_TRUE(equivalent_by_simulation(g, b, 1024, check));
}

TEST_P(OptEquivalence, RewritePreservesFunction) {
  core::Rng rng(GetParam() * 13 + 1);
  ConeOptions options;
  options.num_inputs = 9;
  options.num_ands = 120;
  const Aig g = random_cone(options, rng);
  const Aig r = rewrite(g);
  core::Rng check(GetParam() * 31);
  EXPECT_TRUE(equivalent_by_simulation(g, r, 512, check))
      << "(exhaustive check below will localize)";
  // Exhaustive for 9 inputs.
  for (int m = 0; m < (1 << 9); ++m) {
    std::vector<std::uint8_t> row(9);
    for (int i = 0; i < 9; ++i) {
      row[static_cast<std::size_t>(i)] = (m >> i) & 1;
    }
    ASSERT_EQ(g.eval_row(row)[0], r.eval_row(row)[0]) << "minterm " << m;
  }
}

TEST_P(OptEquivalence, OptimizeNeverGrowsAndPreserves) {
  core::Rng rng(GetParam() * 101 + 7);
  ConeOptions options;
  options.num_inputs = 12;
  options.num_ands = 250;
  const Aig g = random_cone(options, rng);
  const Aig opt = optimize(g);
  EXPECT_LE(opt.num_ands(), g.cleanup().num_ands());
  core::Rng check(GetParam());
  EXPECT_TRUE(equivalent_by_simulation(g, opt, 2048, check));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalence, ::testing::Range(1, 13));

TEST(Rewrite, ShrinksRedundantStructure) {
  Aig g(4);
  // f = (a&b&c) | (a&b&!c): collapses to a&b.
  const Lit ab = g.and2(g.pi(0), g.pi(1));
  const Lit t1 = g.and2(ab, g.pi(2));
  const Lit t2 = g.and2(ab, lit_not(g.pi(2)));
  g.add_output(g.or2(t1, t2));
  const Aig opt = optimize(g);
  EXPECT_LE(opt.num_ands(), 1u);
  core::Rng rng(5);
  EXPECT_TRUE(equivalent_by_simulation(g, opt, 256, rng));
}

TEST(Optimize, MuxTreeOfConstantsCollapses) {
  // DT-style mux cascade whose leaves are mostly equal should shrink.
  Aig g(4);
  Lit leaf1 = kLitTrue;
  Lit leaf0 = kLitFalse;
  const Lit m0 = g.mux(g.pi(0), leaf1, leaf0);
  const Lit m1 = g.mux(g.pi(1), m0, m0);  // redundant select
  g.add_output(m1);
  const Aig opt = optimize(g);
  EXPECT_LE(opt.num_ands(), g.cleanup().num_ands());
  core::Rng rng(8);
  EXPECT_TRUE(equivalent_by_simulation(g, opt, 64, rng));
}

TEST(RandomCone, MeetsBalanceWindowMostOfTheTime) {
  core::Rng rng(77);
  ConeOptions options;
  options.num_inputs = 24;
  options.num_ands = 240;
  const Aig g = random_cone(options, rng);
  core::Rng probe(78);
  const double onset = onset_fraction(g, 4096, probe);
  EXPECT_GT(onset, 0.2);
  EXPECT_LT(onset, 0.8);
  EXPECT_GT(g.num_ands(), 50u);
}

}  // namespace
}  // namespace lsml::aig
