// Standard-function matching tests (Teams 1 & 7).

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/matching.hpp"
#include "oracle/arith_oracles.hpp"
#include "oracle/logic_oracles.hpp"
#include "oracle/oracle.hpp"
#include "oracle/suite.hpp"

namespace lsml::learn {
namespace {

data::Dataset sample(const oracle::Oracle& f, std::size_t rows, int seed) {
  core::Rng rng(seed);
  return oracle::sample_dataset(f, rows, rng);
}

TEST(Matching, DetectsConstants) {
  data::Dataset ds(4, 50);
  for (std::size_t r = 0; r < 50; ++r) {
    ds.set_label(r, true);
  }
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "const1");
}

TEST(Matching, DetectsSingleLiteral) {
  core::Rng rng(1);
  data::Dataset ds(6, 200);
  for (std::size_t r = 0; r < 200; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      ds.set_input(r, c, rng.flip(0.5));
    }
    ds.set_label(r, !ds.input(r, 3));
  }
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "!x3");
  EXPECT_EQ(m->circuit.num_ands(), 0u);
}

TEST(Matching, DetectsPairwiseXor) {
  core::Rng rng(2);
  data::Dataset ds(8, 300);
  for (std::size_t r = 0; r < 300; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      ds.set_input(r, c, rng.flip(0.5));
    }
    ds.set_label(r, ds.input(r, 2) != ds.input(r, 6));
  }
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "xor(x2,x6)");
}

TEST(Matching, DetectsParityAsSymmetric) {
  const oracle::ParityOracle parity(10);
  const auto ds = sample(parity, 400, 3);
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "symmetric");
  // Verify the synthesized circuit on fresh data.
  const auto test = sample(parity, 300, 4);
  EXPECT_GT(circuit_accuracy(m->circuit, test), 0.99);
}

TEST(Matching, DetectsSymmetricSignature) {
  const oracle::SymmetricOracle sym(12, "0011100111000");
  const auto ds = sample(sym, 500, 5);
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "symmetric");
  const auto test = sample(sym, 300, 6);
  EXPECT_GT(circuit_accuracy(m->circuit, test), 0.95)
      << "unseen popcount classes may default to majority";
}

TEST(Matching, DetectsAdderMsb) {
  const oracle::AdderBitOracle adder(8, 8);
  const auto ds = sample(adder, 400, 7);
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "adder[k=8,bit=8]");
  const auto test = sample(adder, 300, 8);
  EXPECT_DOUBLE_EQ(circuit_accuracy(m->circuit, test), 1.0);
}

TEST(Matching, DetectsComparator) {
  const oracle::ComparatorOracle cmp(10);
  const auto ds = sample(cmp, 400, 9);
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "comparator[a>b]");
  const auto test = sample(cmp, 300, 10);
  EXPECT_DOUBLE_EQ(circuit_accuracy(m->circuit, test), 1.0);
}

TEST(Matching, DetectsSmallMultiplierBit) {
  const oracle::MultiplierBitOracle mult(8, 7);
  const auto ds = sample(mult, 500, 11);
  const auto m = match_standard_function(ds, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->what, "multiplier[k=8,bit=7]");
}

TEST(Matching, DoesNotFalsePositiveOnRandomCone) {
  const auto cone =
      oracle::make_cone_oracle(14, 200, aig::ConeFlavor::kRandom, 55);
  const auto ds = sample(*cone, 500, 12);
  const auto m = match_standard_function(ds, {});
  EXPECT_FALSE(m.has_value())
      << "random logic must not be claimed as a standard function";
}

TEST(MatchLearner, FallsBackToMajorityConstant) {
  const auto cone =
      oracle::make_cone_oracle(12, 150, aig::ConeFlavor::kRandom, 77);
  const auto train = sample(*cone, 300, 13);
  const auto valid = sample(*cone, 150, 14);
  MatchLearner learner({}, "match");
  core::Rng rng(15);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_NE(model.method.find("none"), std::string::npos);
  EXPECT_EQ(model.circuit.num_ands(), 0u);
}

}  // namespace
}  // namespace lsml::learn
