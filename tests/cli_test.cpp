// Pins the exit-code contract of the `lsml` driver (cli/cli.hpp): 0 ok,
// 1 runtime failure, 2 usage error — and cec's verdict codes 0/1/2 with 3
// for anything that prevented a verdict. The driver lives in the library
// precisely so these assertions run in-process.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/aig_io.hpp"
#include "cli/cli.hpp"

namespace lsml {
namespace {

int run_cli(std::vector<std::string> args) {
  // Swallow the subcommand chatter; these tests only assert codes.
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int code = cli::run(args);
  ::testing::internal::GetCapturedStdout();
  ::testing::internal::GetCapturedStderr();
  return code;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "lsml_cli_" + name;
}

TEST(CliExitCodesTest, HelpAndUnknownCommands) {
  EXPECT_EQ(run_cli({}), cli::kExitUsage);  // bare `lsml` prints usage
  EXPECT_EQ(run_cli({"help"}), cli::kExitOk);
  EXPECT_EQ(run_cli({"--help"}), cli::kExitOk);
  EXPECT_EQ(run_cli({"no-such-command"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"teams"}), cli::kExitOk);
}

TEST(CliExitCodesTest, UsageErrorsAreTwoEverywhere) {
  EXPECT_EQ(run_cli({"gen"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"gen", "dir", "--rows"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"gen", "dir", "--bogus"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"ls"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"run"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"run", "dir", "--scale", "huge"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"run", "dir", "--threads", "-3"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"synth"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"synth", "x.aag", "--rounds", "0"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"serve", "--port", "99999"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"serve", "--bogus"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"query", "--port", "0"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"query", "frobnicate"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"query", "eval"}), cli::kExitUsage);
  EXPECT_EQ(run_cli({"query", "learn"}), cli::kExitUsage);
}

TEST(CliExitCodesTest, RuntimeFailuresAreOne) {
  EXPECT_EQ(run_cli({"ls", temp_path("does_not_exist")}), cli::kExitRuntime);
  EXPECT_EQ(run_cli({"run", temp_path("does_not_exist")}), cli::kExitRuntime);
  EXPECT_EQ(run_cli({"synth", temp_path("missing.aag")}), cli::kExitRuntime);
  // A learner name that is not registered is a bad command line.
  EXPECT_EQ(run_cli({"run", temp_path("x"), "--learners", "nope"}),
            cli::kExitUsage);
}

TEST(CliExitCodesTest, QueryConnectFailureIsRuntime) {
  // Port 1 on localhost: nothing listens there in any sane environment.
  EXPECT_EQ(run_cli({"query", "--port", "1", "ping"}), cli::kExitRuntime);
}

TEST(CliExitCodesTest, CecVerdictsAndErrors) {
  const std::string dir = temp_path("cec");
  std::filesystem::create_directories(dir);
  aig::Aig or2(2);
  or2.add_output(or2.or2(or2.pi(0), or2.pi(1)));
  aig::Aig and2(2);
  and2.add_output(and2.and2(and2.pi(0), and2.pi(1)));
  const std::string or_path = dir + "/or.aag";
  const std::string and_path = dir + "/and.aag";
  aig::write_aag_file(or2, or_path);
  aig::write_aag_file(and2, and_path);

  EXPECT_EQ(run_cli({"cec", or_path, or_path}), cli::kExitOk);
  EXPECT_EQ(run_cli({"cec", or_path, and_path}), cli::kExitCecNotEquivalent);
  // Errors — usage or runtime — are 3, never a verdict code.
  EXPECT_EQ(run_cli({"cec", or_path}), cli::kExitCecError);
  EXPECT_EQ(run_cli({"cec", or_path, and_path, "--bogus"}),
            cli::kExitCecError);
  EXPECT_EQ(run_cli({"cec", or_path, dir + "/missing.aag"}),
            cli::kExitCecError);
  std::filesystem::remove_all(dir);
}

TEST(CliExitCodesTest, SynthRunsOnARealFile) {
  const std::string dir = temp_path("synth");
  std::filesystem::create_directories(dir);
  aig::Aig g(3);
  g.add_output(g.and2(g.and2(g.pi(0), g.pi(1)), g.pi(2)));
  const std::string in_path = dir + "/in.aag";
  aig::write_aag_file(g, in_path);
  EXPECT_EQ(run_cli({"synth", in_path, "--script", "fast"}), cli::kExitOk);
  EXPECT_EQ(run_cli({"synth", in_path, "--script", "zz"}), cli::kExitUsage);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsml
