// ASCII AIGER round-trip tests.

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "aig/aig_io.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"

namespace lsml::aig {
namespace {

TEST(AigIo, WritesHeaderAndBody) {
  Aig g(2);
  g.add_output(g.and2(g.pi(0), lit_not(g.pi(1))));
  std::ostringstream os;
  write_aag(g, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("aag 3 2 0 1 1"), std::string::npos);
  EXPECT_NE(text.find("6 2 5"), std::string::npos);
}

TEST(AigIo, RoundTripPreservesFunction) {
  core::Rng rng(3);
  ConeOptions options;
  options.num_inputs = 8;
  options.num_ands = 60;
  const Aig original = random_cone(options, rng);

  std::stringstream ss;
  write_aag(original, ss);
  const Aig parsed = read_aag(ss);
  ASSERT_EQ(parsed.num_pis(), original.num_pis());
  ASSERT_EQ(parsed.num_outputs(), original.num_outputs());
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::uint8_t> row(8);
    for (auto& bit : row) {
      bit = rng.flip(0.5) ? 1 : 0;
    }
    EXPECT_EQ(original.eval_row(row)[0], parsed.eval_row(row)[0]);
  }
}

TEST(AigIo, EmptyAigRoundTrip) {
  const Aig g(0);  // only the constant node: no PIs, ANDs, or outputs
  std::stringstream ss;
  write_aag(g, ss);
  EXPECT_NE(ss.str().find("aag 0 0 0 0 0"), std::string::npos);
  const Aig parsed = read_aag(ss);
  EXPECT_EQ(parsed.num_pis(), 0u);
  EXPECT_EQ(parsed.num_ands(), 0u);
  EXPECT_EQ(parsed.num_outputs(), 0u);
  std::ostringstream again;
  write_aag(parsed, again);
  EXPECT_EQ(again.str(), ss.str());
}

TEST(AigIo, MovedFromAigWritesParseableModule) {
  Aig g(2);
  g.add_output(g.and2(g.pi(0), g.pi(1)));
  const Aig stolen = std::move(g);
  EXPECT_EQ(stolen.num_pis(), 2u);
  // g now has zero nodes; the writer must not underflow its counts.
  std::stringstream ss;
  write_aag(g, ss);  // NOLINT(bugprone-use-after-move): deliberate
  EXPECT_NE(ss.str().find("aag 0 "), std::string::npos);
  EXPECT_NO_THROW(read_aag(ss));
}

TEST(AigIo, PiOnlyRoundTrip) {
  Aig g(1);
  g.add_output(g.pi(0));
  std::stringstream ss;
  write_aag(g, ss);
  const Aig parsed = read_aag(ss);
  ASSERT_EQ(parsed.num_pis(), 1u);
  EXPECT_TRUE(parsed.eval_row({1})[0]);
  EXPECT_FALSE(parsed.eval_row({0})[0]);
}

TEST(AigIo, RejectsBadHeader) {
  std::istringstream is("agg 1 1 0 1 0\n2\n2\n");
  EXPECT_THROW(read_aag(is), std::runtime_error);
}

TEST(AigIo, RejectsLatches) {
  std::istringstream is("aag 1 1 1 0 0\n2\n");
  EXPECT_THROW(read_aag(is), std::runtime_error);
}

TEST(AigIo, ConstantOutputs) {
  Aig g(1);
  g.add_output(kLitTrue);
  g.add_output(kLitFalse);
  std::stringstream ss;
  write_aag(g, ss);
  const Aig parsed = read_aag(ss);
  const auto out = parsed.eval_row({0});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(AigIo, FileRoundTrip) {
  Aig g(2);
  g.add_output(g.or2(g.pi(0), g.pi(1)));
  const std::string path = ::testing::TempDir() + "/lsml_io_test.aag";
  write_aag_file(g, path);
  const Aig parsed = read_aag_file(path);
  EXPECT_EQ(parsed.num_pis(), 2u);
  EXPECT_TRUE(parsed.eval_row({1, 0})[0]);
  EXPECT_FALSE(parsed.eval_row({0, 0})[0]);
}

}  // namespace
}  // namespace lsml::aig
