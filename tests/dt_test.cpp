// Decision tree tests: learnability, AIG/cover equivalence, option effects,
// and the functional-decomposition fallback.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/dt.hpp"
#include "sop/cube.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(DecisionTree, LearnsConjunctionExactly) {
  const auto ds = function_dataset(6, 300, 1, [](const core::BitVec& r) {
    return r.get(1) && r.get(4);
  });
  core::Rng rng(2);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  EXPECT_EQ(data::accuracy(tree.predict(ds), ds.labels()), 1.0);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, LearnsDisjunctionAndGeneralizes) {
  const auto f = [](const core::BitVec& r) { return r.get(0) || r.get(5); };
  const auto train = function_dataset(8, 400, 3, f);
  const auto test = function_dataset(8, 400, 4, f);
  core::Rng rng(5);
  const DecisionTree tree = DecisionTree::fit(train, {}, rng);
  EXPECT_GT(data::accuracy(tree.predict(test), test.labels()), 0.98);
}

TEST(DecisionTree, PredictMatchesAigSimulation) {
  const auto ds = function_dataset(10, 500, 7, [](const core::BitVec& r) {
    return (r.get(2) != r.get(3)) || (r.get(8) && r.get(9));
  });
  core::Rng rng(8);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  const aig::Aig g = tree.to_aig(10);
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], tree.predict(ds));
}

TEST(DecisionTree, PredictRowMatchesPredict) {
  const auto ds = function_dataset(7, 200, 9, [](const core::BitVec& r) {
    return r.count() >= 4;
  });
  core::Rng rng(10);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  const auto packed = tree.predict(ds);
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    EXPECT_EQ(tree.predict_row(ds.row(r)), packed.get(r));
  }
}

TEST(DecisionTree, CoverMatchesPredictions) {
  const auto ds = function_dataset(6, 250, 11, [](const core::BitVec& r) {
    return r.get(0) && !r.get(3);
  });
  core::Rng rng(12);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  const sop::Cover cover = tree.to_cover(6);
  EXPECT_EQ(sop::cover_predict(cover, ds), tree.predict(ds));
}

TEST(DecisionTree, MaxDepthIsRespected) {
  const auto ds = function_dataset(12, 600, 13, [](const core::BitVec& r) {
    return r.count() % 2 == 1;  // parity: wants unbounded depth
  });
  DtOptions options;
  options.max_depth = 4;
  core::Rng rng(14);
  const DecisionTree tree = DecisionTree::fit(ds, options, rng);
  EXPECT_LE(tree.depth(), 4u);
}

TEST(DecisionTree, MinSamplesLeafSmoothsTree) {
  const auto ds = function_dataset(10, 400, 15, [](const core::BitVec& r) {
    return r.get(0);
  });
  DtOptions strict;
  strict.min_samples_leaf = 50;
  DtOptions loose;
  core::Rng rng(16);
  const DecisionTree coarse = DecisionTree::fit(ds, strict, rng);
  const DecisionTree fine = DecisionTree::fit(ds, loose, rng);
  EXPECT_LE(coarse.num_leaves(), fine.num_leaves());
}

TEST(DecisionTree, GiniAndEntropyBothLearn) {
  const auto f = [](const core::BitVec& r) { return r.get(2) || r.get(4); };
  const auto train = function_dataset(6, 300, 17, f);
  const auto test = function_dataset(6, 300, 18, f);
  for (const auto criterion :
       {DtOptions::Criterion::kEntropy, DtOptions::Criterion::kGini}) {
    DtOptions options;
    options.criterion = criterion;
    core::Rng rng(19);
    const DecisionTree tree = DecisionTree::fit(train, options, rng);
    EXPECT_GT(data::accuracy(tree.predict(test), test.labels()), 0.95);
  }
}

TEST(DecisionTree, ConstantLabelsGiveLeafOnly) {
  data::Dataset ds(4, 50);
  for (std::size_t r = 0; r < 50; ++r) {
    ds.set_label(r, true);
  }
  core::Rng rng(20);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.predict_row({0, 0, 0, 0}));
  const aig::Aig g = tree.to_aig(4);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(DecisionTree, FeatureGainsConcentrateOnUsedVariable) {
  const auto ds = function_dataset(6, 400, 21, [](const core::BitVec& r) {
    return r.get(3);
  });
  core::Rng rng(22);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  const auto gains = tree.feature_gains(6);
  for (std::size_t c = 0; c < 6; ++c) {
    if (c == 3) {
      EXPECT_GT(gains[c], 0.5);
    } else {
      EXPECT_LT(gains[c], 0.2);
    }
  }
}

TEST(DecisionTree, FunctionalDecompositionHelpsXor) {
  // Plain info-gain trees stumble on XOR with sampling noise; Team 8's
  // decomposition fallback should pick the complementary-branch feature.
  const auto f = [](const core::BitVec& r) { return r.get(1) != r.get(3); };
  const auto train = function_dataset(8, 300, 23, f);
  const auto test = function_dataset(8, 300, 24, f);
  DtOptions with;
  with.decomposition_threshold = 0.05;
  core::Rng rng(25);
  const DecisionTree tree = DecisionTree::fit(train, with, rng);
  EXPECT_GT(data::accuracy(tree.predict(test), test.labels()), 0.95);
}

TEST(DtLearner, ProducesBudgetedModelWithAccuracies) {
  const auto train = function_dataset(6, 200, 26, [](const core::BitVec& r) {
    return r.get(0) && r.get(1);
  });
  const auto valid = function_dataset(6, 200, 27, [](const core::BitVec& r) {
    return r.get(0) && r.get(1);
  });
  DtLearner learner({}, "dt-test");
  core::Rng rng(28);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_EQ(model.method, "dt-test");
  EXPECT_GT(model.train_acc, 0.99);
  EXPECT_GT(model.valid_acc, 0.95);
  EXPECT_LT(model.circuit.num_ands(), 50u);
}

}  // namespace
}  // namespace lsml::learn
