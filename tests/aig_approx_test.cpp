// Team 1's constant-replacement approximation: budget compliance, bounded
// degradation on random cones, and the protect-depth guard.

#include <gtest/gtest.h>

#include "aig/aig_approx.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"

namespace lsml::aig {
namespace {

TEST(ReplaceWithConstant, RewiresSingleNode) {
  Aig g(2);
  const Lit ab = g.and2(g.pi(0), g.pi(1));
  g.add_output(g.or2(ab, g.pi(0)));
  const Aig zeroed = replace_with_constant(g, lit_var(ab), false);
  // With ab = 0, output becomes just pi(0).
  EXPECT_TRUE(zeroed.eval_row({1, 0})[0]);
  EXPECT_FALSE(zeroed.eval_row({0, 1})[0]);
  const Aig oned = replace_with_constant(g, lit_var(ab), true);
  EXPECT_TRUE(oned.eval_row({0, 0})[0]);
}

TEST(Approximate, AlreadyWithinBudgetIsUntouched) {
  Aig g(2);
  g.add_output(g.and2(g.pi(0), g.pi(1)));
  ApproxOptions options;
  options.node_budget = 10;
  core::Rng rng(1);
  const Aig out = approximate_to_budget(g, options, rng);
  EXPECT_EQ(out.num_ands(), 1u);
}

class ApproxBudgets : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ApproxBudgets, MeetsBudgetAndKeepsReasonableAgreement) {
  core::Rng build_rng(42);
  ConeOptions cone;
  cone.num_inputs = 16;
  cone.num_ands = 1500;  // construction target; cleanup keeps the cone
  const Aig g = random_cone(cone, build_rng);
  ASSERT_GT(g.num_ands(), GetParam());

  ApproxOptions options;
  options.node_budget = GetParam();
  options.num_patterns = 1024;
  core::Rng rng(7);
  const Aig approx = approximate_to_budget(g, options, rng);
  EXPECT_LE(approx.num_ands(), GetParam());

  // Agreement with the original must beat coin-flipping: the paper reports
  // ~5% accuracy loss when removing thousands of nodes.
  std::vector<core::BitVec> cols(16, core::BitVec(4096));
  std::vector<const core::BitVec*> ptrs;
  core::Rng sim_rng(9);
  for (auto& c : cols) {
    c.randomize(sim_rng);
    ptrs.push_back(&c);
  }
  const auto a = g.simulate(ptrs);
  const auto b = approx.simulate(ptrs);
  const double agree =
      static_cast<double>(a[0].count_equal(b[0])) / 4096.0;
  EXPECT_GT(agree, 0.6) << "budget " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Budgets, ApproxBudgets,
                         ::testing::Values(300u, 150u, 60u));

TEST(Approximate, ProtectDepthKeepsOutputCone) {
  core::Rng build_rng(11);
  ConeOptions cone;
  cone.num_inputs = 12;
  cone.num_ands = 200;
  const Aig g = random_cone(cone, build_rng);
  ApproxOptions options;
  options.node_budget = 50;
  options.protect_depth = 2;
  core::Rng rng(3);
  const Aig approx = approximate_to_budget(g, options, rng);
  EXPECT_LE(approx.num_ands(), 50u);
  // The output must not have collapsed to a constant.
  core::Rng probe(5);
  const double onset = onset_fraction(approx, 2048, probe);
  EXPECT_GT(onset, 0.0);
  EXPECT_LT(onset, 1.0);
}

}  // namespace
}  // namespace lsml::aig
