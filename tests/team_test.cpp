// Team portfolio tests: construction, budget selection, and a couple of
// cheap end-to-end fits on tiny benchmarks.

#include <gtest/gtest.h>

#include "aig/aig_random.hpp"
#include "oracle/suite.hpp"
#include "portfolio/contest.hpp"
#include "portfolio/team.hpp"

namespace lsml::portfolio {
namespace {

oracle::Benchmark tiny_benchmark(int id, std::size_t rows = 250) {
  oracle::SuiteOptions options;
  options.rows_per_split = rows;
  return oracle::make_benchmark(id, options);
}

TEST(Teams, AllTenConstruct) {
  TeamOptions options;
  options.scale = core::Scale::kSmoke;
  for (int t : all_team_numbers()) {
    const auto team = make_team(t, options);
    ASSERT_NE(team, nullptr);
    EXPECT_EQ(team->name(), "team" + std::to_string(t));
  }
  EXPECT_THROW(make_team(11, options), std::invalid_argument);
}

TEST(Teams, FactoryBuildsIndependentInstances) {
  TeamOptions options;
  options.scale = core::Scale::kSmoke;
  const learn::LearnerFactory factory = team_factory(10, options);
  EXPECT_EQ(factory.name(), "team10");
  const auto a = factory.make();
  const auto b = factory.make();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get()) << "each make() must own a fresh instance";
  EXPECT_EQ(a->name(), "team10");
  // Registry publication is explicit, never a team_factory side effect.
  EXPECT_THROW(learn::LearnerFactory::from_registry("team10"),
               std::out_of_range);
  register_team_factories(options);
  const auto from_registry = learn::LearnerFactory::from_registry("team10");
  EXPECT_EQ(from_registry.make()->name(), "team10");
  EXPECT_THROW(team_factory(11, options), std::invalid_argument);
}

TEST(Teams, ContestEntriesCoverRequestedTeams) {
  TeamOptions options;
  options.scale = core::Scale::kSmoke;
  const auto entries = contest_entries({2, 7}, options);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].team, 2);
  EXPECT_EQ(entries[1].team, 7);
  EXPECT_EQ(entries[1].factory.make()->name(), "team7");
}

TEST(Teams, TechniqueMatrixMatchesFig1Counts) {
  const auto matrix = technique_matrix();
  ASSERT_EQ(matrix.size(), 10u);
  int dt_users = 0;
  int nn_users = 0;
  for (const auto& row : matrix) {
    dt_users += row.dt_rf ? 1 : 0;
    nn_users += row.nn ? 1 : 0;
  }
  EXPECT_EQ(dt_users, 8) << "DT/RF was the most popular technique";
  EXPECT_GE(nn_users, 4);
  EXPECT_TRUE(matrix[8].cgp) << "team 9 is the CGP team";
  EXPECT_FALSE(matrix[9].sop) << "team 10 used trees only";
}

TEST(SelectBest, PrefersAccurateWithinBudget) {
  // Labels are the parity of the three inputs: no optimization pass can
  // reduce an exact model to zero gates, so the budget bites for real.
  data::Dataset train(3, 16);
  data::Dataset valid(3, 16);
  core::Rng rng(1);
  for (std::size_t r = 0; r < 16; ++r) {
    const std::size_t m = r & 7;
    for (std::size_t c = 0; c < 3; ++c) {
      train.set_input(r, c, (m >> c) & 1);
      valid.set_input(r, c, (m >> c) & 1);
    }
    const bool parity = ((m >> 0) ^ (m >> 1) ^ (m >> 2)) & 1;
    train.set_label(r, parity);
    valid.set_label(r, parity);
  }
  // Candidate A: perfect (exact parity) but over any zero-gate budget.
  aig::Aig big(3);
  big.add_output(big.xor2(big.xor2(big.pi(0), big.pi(1)), big.pi(2)));
  // Candidate B: a bare PI — 50% accurate, zero gates.
  aig::Aig small(3);
  small.add_output(small.pi(0));

  std::vector<learn::TrainedModel> candidates;
  candidates.push_back(learn::finish_model(std::move(big), "big", train, valid));
  candidates.push_back(
      learn::finish_model(std::move(small), "small", train, valid));
  EXPECT_GT(candidates[0].valid_acc, candidates[1].valid_acc);
  EXPECT_GT(candidates[0].circuit.num_ands(), 0u);
  const std::uint32_t budget = 0;  // only the PI-only model fits
  const auto chosen = select_best_within_budget(std::move(candidates), train,
                                                valid, budget, rng);
  EXPECT_EQ(chosen.method, "small")
      << "within-budget must beat more-accurate-over-budget";
}

TEST(SelectBest, ApproximatesWhenNothingFits) {
  core::Rng rng(3);
  aig::ConeOptions cone;
  cone.num_inputs = 10;
  cone.num_ands = 300;
  const aig::Aig big = aig::random_cone(cone, rng);
  data::Dataset train(10, 64);
  data::Dataset valid(10, 64);
  core::Rng fill(4);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      train.set_input(r, c, fill.flip(0.5));
      valid.set_input(r, c, fill.flip(0.5));
    }
  }
  std::vector<learn::TrainedModel> candidates;
  candidates.push_back(learn::finish_model(big, "only", train, valid));
  const auto chosen =
      select_best_within_budget(std::move(candidates), train, valid, 50, rng);
  EXPECT_LE(chosen.circuit.num_ands(), 50u);
  EXPECT_NE(chosen.method.find("approx"), std::string::npos);
}

TEST(Teams, Team10EndToEndOnComparator) {
  const auto bench = tiny_benchmark(30);  // 10-bit comparator
  TeamOptions options;
  options.scale = core::Scale::kSmoke;
  const auto team = make_team(10, options);
  core::Rng rng(5);
  const auto model = team->fit(bench.train, bench.valid, rng);
  EXPECT_GT(model.valid_acc, 0.80);
  EXPECT_LE(model.circuit.num_ands(), 5000u);
}

TEST(Teams, Team7MatchesSymmetricBenchmark) {
  const auto bench = tiny_benchmark(75);  // 16-input symmetric
  TeamOptions options;
  options.scale = core::Scale::kSmoke;
  const auto team = make_team(7, options);
  core::Rng rng(6);
  const auto model = team->fit(bench.train, bench.valid, rng);
  EXPECT_NE(model.method.find("match"), std::string::npos)
      << "symmetric functions should be caught by matching, got "
      << model.method;
  EXPECT_GT(model.valid_acc, 0.95);
}

TEST(Teams, Team2EndToEndOnCone) {
  const auto bench = tiny_benchmark(50, 200);  // smallest PicoJava-like cone
  TeamOptions options;
  options.scale = core::Scale::kSmoke;
  const auto team = make_team(2, options);
  core::Rng rng(7);
  const auto model = team->fit(bench.train, bench.valid, rng);
  EXPECT_GT(model.train_acc, 0.6);
  EXPECT_LE(model.circuit.num_ands(), 5000u);
}

}  // namespace
}  // namespace lsml::portfolio
