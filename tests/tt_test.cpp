// Truth table and ISOP tests, including the ISOP sandwich property
// on <= cover <= on|dc over randomized incompletely-specified functions.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "tt/isop.hpp"
#include "tt/truth_table.hpp"

namespace lsml::tt {
namespace {

TruthTable random_tt(int vars, core::Rng& rng) {
  TruthTable t(vars);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (rng.flip(0.5)) {
      t.set(m, true);
    }
  }
  return t;
}

TEST(TruthTable, VarProjection) {
  for (int n = 1; n <= 8; ++n) {
    for (int v = 0; v < n; ++v) {
      const TruthTable t = TruthTable::var(n, v);
      for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
        EXPECT_EQ(t.get(m), ((m >> v) & 1) == 1);
      }
    }
  }
}

TEST(TruthTable, ConstantAndCounts) {
  const TruthTable zero = TruthTable::constant(5, false);
  const TruthTable one = TruthTable::constant(5, true);
  EXPECT_TRUE(zero.is_const0());
  EXPECT_TRUE(one.is_const1());
  EXPECT_EQ(one.count_ones(), 32u);
}

TEST(TruthTable, OperatorsMatchBitwiseSemantics) {
  core::Rng rng(11);
  const TruthTable a = random_tt(7, rng);
  const TruthTable b = random_tt(7, rng);
  const TruthTable t_and = a & b;
  const TruthTable t_or = a | b;
  const TruthTable t_xor = a ^ b;
  const TruthTable t_not = ~a;
  for (std::uint64_t m = 0; m < a.num_minterms(); ++m) {
    EXPECT_EQ(t_and.get(m), a.get(m) && b.get(m));
    EXPECT_EQ(t_or.get(m), a.get(m) || b.get(m));
    EXPECT_EQ(t_xor.get(m), a.get(m) != b.get(m));
    EXPECT_EQ(t_not.get(m), !a.get(m));
  }
}

TEST(TruthTable, CofactorsAndSupport) {
  // f = x0 & x2 over 3 vars.
  const TruthTable f =
      TruthTable::var(3, 0) & TruthTable::var(3, 2);
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  EXPECT_TRUE(f.cofactor(0, false).is_const0());
  EXPECT_EQ(f.cofactor(0, true), TruthTable::var(3, 2));
}

TEST(TruthTable, CofactorHighVariables) {
  core::Rng rng(13);
  const TruthTable f = random_tt(9, rng);
  for (int v = 0; v < 9; ++v) {
    const TruthTable c0 = f.cofactor(v, false);
    const TruthTable c1 = f.cofactor(v, true);
    for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
      const std::uint64_t m0 = m & ~(1ULL << v);
      const std::uint64_t m1 = m | (1ULL << v);
      EXPECT_EQ(c0.get(m), f.get(m0));
      EXPECT_EQ(c1.get(m), f.get(m1));
    }
  }
}

TEST(SmallCube, TruthTableOfCube) {
  SmallCube c;
  c.pos = 0b001;  // x0
  c.neg = 0b100;  // !x2
  const TruthTable t = cube_to_tt(c, 3);
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(t.get(m), ((m & 1) != 0) && ((m & 4) == 0));
  }
  EXPECT_EQ(c.num_literals(), 2);
}

TEST(Isop, ExactCoverOfCompletelySpecified) {
  core::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const int vars = 1 + static_cast<int>(rng.below(8));
    const TruthTable f = random_tt(vars, rng);
    const auto cover = isop(f);
    EXPECT_EQ(sop_to_tt(cover, vars), f);
  }
}

class IsopDontCare : public ::testing::TestWithParam<int> {};

TEST_P(IsopDontCare, SandwichProperty) {
  core::Rng rng(GetParam());
  const int vars = 2 + GetParam() % 7;
  const TruthTable on = random_tt(vars, rng);
  TruthTable dc = random_tt(vars, rng);
  dc = dc & ~on;  // disjoint dc for a cleaner check
  const auto cover = isop(on, dc);
  const TruthTable result = sop_to_tt(cover, vars);
  // on <= result <= on | dc
  EXPECT_TRUE((on & ~result).is_const0());
  EXPECT_TRUE((result & ~(on | dc)).is_const0());
}

TEST_P(IsopDontCare, DontCaresNeverIncreaseCubeCount) {
  core::Rng rng(GetParam() * 31 + 5);
  const int vars = 4 + GetParam() % 4;
  const TruthTable on = random_tt(vars, rng);
  TruthTable dc = random_tt(vars, rng);
  dc = dc & ~on;
  EXPECT_LE(isop(on, dc).size(), isop(on).size() * 2 + 2)
      << "don't-cares should usually help and must never blow up the cover";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopDontCare, ::testing::Range(1, 25));

TEST(Isop, GateCost) {
  EXPECT_EQ(sop_gate_cost({}), 0);
  SmallCube wide;
  wide.pos = 0b1111;
  EXPECT_EQ(sop_gate_cost({wide}), 3);  // 4 literals -> 3 AND2
  SmallCube single;
  single.pos = 0b1;
  EXPECT_EQ(sop_gate_cost({single, wide}), 4);  // 0 + 3 + 1 OR
}

}  // namespace
}  // namespace lsml::tt
