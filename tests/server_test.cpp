// Tests for src/server: the JSON layer, the Service protocol core, and the
// TCP daemon + client. The headline properties pinned here are the ones
// the serving layer sells: protocol errors never kill the daemon, deadlines
// degrade instead of stalling, repeated requests hit the model caches, and
// N concurrent clients get byte-identical responses to a serial replay
// (this file runs under TSan in CI, so the identity check doubles as the
// data-race probe).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/aig_io.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"
#include "obs/trace.hpp"
#include "sat/cec.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "synth/script.hpp"

namespace lsml {
namespace {

using server::Client;
using server::Deadline;
using server::Json;
using server::Server;
using server::ServerOptions;
using server::Service;
using server::ServiceOptions;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "lsml_server_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// PLA text for a full truth table of `fn` over `num_inputs` variables.
std::string pla_for(std::size_t num_inputs,
                    const std::function<bool(std::uint32_t)>& fn) {
  std::ostringstream os;
  os << ".i " << num_inputs << "\n.o 1\n";
  for (std::uint32_t row = 0; row < (1u << num_inputs); ++row) {
    for (std::size_t bit = 0; bit < num_inputs; ++bit) {
      os << (((row >> bit) & 1u) != 0 ? '1' : '0');
    }
    os << ' ' << (fn(row) ? '1' : '0') << '\n';
  }
  os << ".e\n";
  return os.str();
}

std::string aag_text(const aig::Aig& g) {
  std::ostringstream os;
  aig::write_aag(g, os);
  return os.str();
}

aig::Aig or2_circuit() {
  aig::Aig g(2);
  g.add_output(g.or2(g.pi(0), g.pi(1)));
  return g;
}

aig::Aig and2_circuit() {
  aig::Aig g(2);
  g.add_output(g.and2(g.pi(0), g.pi(1)));
  return g;
}

Json handle(Service& service, const Json& request) {
  return Json::parse(service.handle_line(request.dump()));
}

Json make_request(const char* type) {
  Json r = Json::object();
  r.set("type", type);
  return r;
}

Json learn_request(const std::string& pla, const std::string& learner = "dt") {
  Json r = make_request("learn");
  r.set("learner", learner);
  r.set("pla", pla);
  return r;
}

/// A deadline whose clock started `elapsed_ms` ago — how tests make expiry
/// deterministic without sleeping.
std::chrono::steady_clock::time_point received_ago(std::int64_t elapsed_ms) {
  return std::chrono::steady_clock::now() -
         std::chrono::milliseconds(elapsed_ms);
}

// ===================================================================== JSON

TEST(JsonTest, DumpParseRoundTrip) {
  Json obj = Json::object();
  obj.set("s", "line1\nline2\t\"quoted\"\\");
  obj.set("i", std::int64_t{-42});
  obj.set("d", 0.25);
  obj.set("b", true);
  obj.set("n", Json());
  Json arr = Json::array();
  arr.push_back(Json("x"));
  arr.push_back(Json(std::int64_t{7}));
  obj.set("a", std::move(arr));

  const std::string text = obj.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.at("s").as_string(), "line1\nline2\t\"quoted\"\\");
  EXPECT_EQ(back.at("i").as_int(), -42);
  EXPECT_DOUBLE_EQ(back.at("d").as_double(), 0.25);
  EXPECT_TRUE(back.at("b").as_bool());
  EXPECT_TRUE(back.at("n").is_null());
  EXPECT_EQ(back.at("a").size(), 2u);
  EXPECT_EQ(back.at("a").at(0).as_string(), "x");
  // Canonical: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(back.dump(), text);
}

TEST(JsonTest, PreservesMemberOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
}

TEST(JsonTest, ParsesEscapesAndUnicode) {
  const Json v = Json::parse(R"({"k":"aA\né 😀"})");
  EXPECT_EQ(v.at("k").as_string(), "aA\n\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), server::JsonError);
  EXPECT_THROW(Json::parse("{"), server::JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), server::JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), server::JsonError);
  EXPECT_THROW(Json::parse("[1,2"), server::JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), server::JsonError);
  EXPECT_THROW(Json::parse("truth"), server::JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), server::JsonError);
  EXPECT_THROW(Json::parse("\"bad \\q escape\""), server::JsonError);
  EXPECT_THROW(Json::parse("\"ctrl \x01\""), server::JsonError);
  EXPECT_THROW(Json::parse("01"), server::JsonError);
}

TEST(JsonTest, NumbersKeepIntegerness) {
  EXPECT_EQ(Json::parse("9007199254740993").as_int(), 9007199254740993LL);
  EXPECT_DOUBLE_EQ(Json::parse("1.5e3").as_double(), 1500.0);
  // Shortest-round-trip doubles re-parse bit-exactly.
  const double x = 0.1234567890123456789;
  EXPECT_EQ(Json(x).dump(), Json::parse(Json(x).dump()).dump());
}

TEST(JsonTest, ModelIdRoundTrip) {
  const std::string id = server::model_id_from_hash(0x0123456789abcdefULL);
  EXPECT_EQ(id, "m-0123456789abcdef");
  std::uint64_t hash = 0;
  EXPECT_TRUE(server::model_hash_from_id(id, &hash));
  EXPECT_EQ(hash, 0x0123456789abcdefULL);
  EXPECT_FALSE(server::model_hash_from_id("m-123", &hash));
  EXPECT_FALSE(server::model_hash_from_id("x-0123456789abcdef", &hash));
  EXPECT_FALSE(server::model_hash_from_id("m-0123456789abcdeg", &hash));
}

// ================================================== Service: protocol errors

TEST(ServiceTest, MalformedRequestsAreErrorsNotCrashes) {
  Service service;
  for (const char* line : {
           "not json at all",
           "{\"type\":\"learn\"",   // truncated JSON
           "[1,2,3]",               // not an object
           "{}",                    // no type
           "{\"type\":42}",         // type not a string
           "{\"type\":\"nope\"}",   // unknown type
           "{\"type\":\"learn\"}",  // missing fields
           "{\"type\":\"eval\",\"model\":\"bogus\"}",
           "{\"type\":\"synth\",\"aag\":\"not an aiger file\"}",
           "{\"type\":\"cec\",\"a\":\"x\",\"b\":\"y\"}",
       }) {
    const Json response = Json::parse(service.handle_line(line));
    EXPECT_FALSE(response.at("ok").as_bool()) << line;
    EXPECT_FALSE(response.at("error").as_string().empty()) << line;
  }
  EXPECT_EQ(service.stats().errors.load(), 10u);
  // The service still works afterwards.
  EXPECT_TRUE(handle(service, make_request("ping")).at("ok").as_bool());
}

TEST(ServiceTest, DeeplyNestedJsonIsAnErrorNotAStackOverflow) {
  Service service;
  // 100k open brackets would overflow the stack in an unbounded
  // recursive-descent parser; the depth cap turns it into one failed
  // request.
  const Json response =
      Json::parse(service.handle_line(std::string(100000, '[')));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_NE(response.at("error").as_string().find("nesting"),
            std::string::npos);
  EXPECT_TRUE(handle(service, make_request("ping")).at("ok").as_bool());
}

TEST(ServiceTest, ConcurrentIdenticalLearnsFitOnce) {
  // Single-flight: on a cold service, N threads asking for the same model
  // elect one leader; everyone gets the same bytes and exactly one refit
  // happens no matter how the threads interleave.
  Service service;
  const std::string line =
      learn_request(pla_for(4, [](std::uint32_t r) { return r % 6 == 1; }))
          .dump();
  constexpr int kThreads = 16;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { responses[t] = service.handle_line(line); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(responses[t], responses[0]);
    EXPECT_TRUE(Json::parse(responses[t]).at("ok").as_bool());
  }
  EXPECT_EQ(service.stats().learns.load(), 1u);
}

TEST(ServiceTest, EchoesRequestId) {
  Service service;
  Json request = make_request("ping");
  request.set("id", std::int64_t{17});
  Json response = handle(service, request);
  EXPECT_EQ(response.at("id").as_int(), 17);
  // Ids are echoed on errors too, and may be strings.
  Json bad = make_request("nope");
  bad.set("id", "abc");
  response = handle(service, bad);
  EXPECT_EQ(response.at("id").as_string(), "abc");
  EXPECT_FALSE(response.at("ok").as_bool());
}

TEST(ServiceTest, LearnValidation) {
  Service service;
  const std::string pla = pla_for(2, [](std::uint32_t r) { return r != 0; });

  Json request = learn_request(pla, "no-such-learner");
  EXPECT_NE(handle(service, request).at("error").as_string().find(
                "no learner named"),
            std::string::npos);

  request = learn_request(".i 2\n.o 1\ngarbage\n.e\n");
  EXPECT_NE(handle(service, request).at("error").as_string().find("bad PLA"),
            std::string::npos);

  request = learn_request(pla);
  request.set("valid_pla",
              pla_for(3, [](std::uint32_t r) { return r != 0; }));
  EXPECT_NE(handle(service, request).at("error").as_string().find(
                "input count differs"),
            std::string::npos);

  request = learn_request(pla);
  request.set("seed", std::int64_t{-1});
  EXPECT_FALSE(handle(service, request).at("ok").as_bool());
}

TEST(ServiceTest, EvalValidation) {
  Service service;
  const Json learned = handle(
      service,
      learn_request(pla_for(2, [](std::uint32_t r) { return r != 0; })));
  ASSERT_TRUE(learned.at("ok").as_bool());
  const std::string id = learned.at("model").as_string();

  Json request = make_request("eval");
  request.set("model", id);
  EXPECT_NE(handle(service, request).at("error").as_string().find("inputs"),
            std::string::npos);

  request.set("inputs", Json::array());
  EXPECT_FALSE(handle(service, request).at("ok").as_bool());

  Json wrong_len = Json::array();
  wrong_len.push_back(Json("101"));
  request.set("inputs", std::move(wrong_len));
  EXPECT_FALSE(handle(service, request).at("ok").as_bool());

  Json bad_char = Json::array();
  bad_char.push_back(Json("1x"));
  request.set("inputs", std::move(bad_char));
  EXPECT_FALSE(handle(service, request).at("ok").as_bool());

  Json unknown = make_request("eval");
  unknown.set("model", "m-00000000000000ff");
  Json inputs = Json::array();
  inputs.push_back(Json("11"));
  unknown.set("inputs", std::move(inputs));
  EXPECT_NE(handle(service, unknown).at("error").as_string().find(
                "unknown model"),
            std::string::npos);
}

TEST(ServiceTest, EvalRowCapIsEnforced) {
  ServiceOptions options;
  options.max_eval_rows = 3;
  Service service(options);
  const Json learned = handle(
      service,
      learn_request(pla_for(2, [](std::uint32_t r) { return r == 3; })));
  Json request = make_request("eval");
  request.set("model", learned.at("model").as_string());
  Json inputs = Json::array();
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(Json("11"));
  }
  request.set("inputs", std::move(inputs));
  EXPECT_NE(handle(service, request).at("error").as_string().find("row cap"),
            std::string::npos);

  // The cap sums over "batches" too: 2 + 2 rows against a cap of 3.
  Json batched = make_request("eval");
  batched.set("model", learned.at("model").as_string());
  Json batches = Json::array();
  for (int b = 0; b < 2; ++b) {
    Json batch = Json::array();
    batch.push_back(Json("11"));
    batch.push_back(Json("00"));
    batches.push_back(std::move(batch));
  }
  batched.set("batches", std::move(batches));
  EXPECT_NE(handle(service, batched).at("error").as_string().find("row cap"),
            std::string::npos);
}

TEST(ServiceTest, BatchesValidation) {
  Service service;
  const Json learned = handle(
      service,
      learn_request(pla_for(2, [](std::uint32_t r) { return r != 0; })));
  const std::string id = learned.at("model").as_string();

  // 'inputs' and 'batches' are mutually exclusive.
  Json both = make_request("eval");
  both.set("model", id);
  Json inputs = Json::array();
  inputs.push_back(Json("11"));
  both.set("inputs", std::move(inputs));
  Json batches = Json::array();
  Json batch = Json::array();
  batch.push_back(Json("11"));
  batches.push_back(std::move(batch));
  both.set("batches", std::move(batches));
  EXPECT_NE(handle(service, both).at("error").as_string().find("exactly one"),
            std::string::npos);

  Json empty = make_request("eval");
  empty.set("model", id);
  empty.set("batches", Json::array());
  EXPECT_FALSE(handle(service, empty).at("ok").as_bool());

  Json empty_batch = make_request("eval");
  empty_batch.set("model", id);
  Json holds_empty = Json::array();
  holds_empty.push_back(Json::array());
  empty_batch.set("batches", std::move(holds_empty));
  EXPECT_FALSE(handle(service, empty_batch).at("ok").as_bool());
}

// ====================================================== Service: happy path

TEST(ServiceTest, LearnThenEvalMatchesTheFunction) {
  Service service;
  // OR over 2 inputs: every learner nails this, so eval must reproduce it.
  const Json learned = handle(
      service,
      learn_request(pla_for(2, [](std::uint32_t r) { return r != 0; })));
  ASSERT_TRUE(learned.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(learned.at("train_acc").as_double(), 1.0);
  EXPECT_EQ(learned.at("inputs").as_int(), 2);
  EXPECT_EQ(learned.at("verified").as_string(), "-");

  Json request = make_request("eval");
  request.set("model", learned.at("model").as_string());
  Json inputs = Json::array();
  for (const char* row : {"00", "10", "01", "11"}) {
    inputs.push_back(Json(row));
  }
  request.set("inputs", std::move(inputs));
  const Json evaled = handle(service, request);
  ASSERT_TRUE(evaled.at("ok").as_bool());
  EXPECT_EQ(evaled.at("rows").as_int(), 4);
  EXPECT_EQ(evaled.at("outputs").at(0).as_string(), "0111");
}

TEST(ServiceTest, BatchedEvalRunsOneSweepAndMatchesPerBatchEvals) {
  Service service;
  const Json learned = handle(
      service,
      learn_request(pla_for(3, [](std::uint32_t r) { return r % 3 == 1; })));
  ASSERT_TRUE(learned.at("ok").as_bool());
  const std::string id = learned.at("model").as_string();

  const std::vector<std::vector<const char*>> batch_rows = {
      {"000", "100", "010"},
      {"110", "001"},
      {"101", "011", "111", "000"},
  };
  // Per-batch baseline: one plain eval per batch.
  std::vector<std::string> baseline_outputs;
  for (const auto& rows : batch_rows) {
    Json request = make_request("eval");
    request.set("model", id);
    Json inputs = Json::array();
    for (const char* row : rows) {
      inputs.push_back(Json(row));
    }
    request.set("inputs", std::move(inputs));
    const Json response = handle(service, request);
    ASSERT_TRUE(response.at("ok").as_bool());
    baseline_outputs.push_back(response.at("outputs").at(0).as_string());
  }

  const std::uint64_t sweeps_before = service.stats().eval_sweeps.load();
  Json request = make_request("eval");
  request.set("model", id);
  Json batches = Json::array();
  for (const auto& rows : batch_rows) {
    Json batch = Json::array();
    for (const char* row : rows) {
      batch.push_back(Json(row));
    }
    batches.push_back(std::move(batch));
  }
  request.set("batches", std::move(batches));
  const Json response = handle(service, request);
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  EXPECT_EQ(response.at("rows").as_int(), 9);
  ASSERT_EQ(response.at("batches").size(), batch_rows.size());
  for (std::size_t b = 0; b < batch_rows.size(); ++b) {
    const Json& entry = response.at("batches").at(b);
    EXPECT_EQ(entry.at("rows").as_int(),
              static_cast<std::int64_t>(batch_rows[b].size()));
    // Each batch's slice of the shared sweep is byte-identical to its own
    // standalone eval — the batching determinism contract.
    EXPECT_EQ(entry.at("outputs").at(0).as_string(), baseline_outputs[b]);
  }
  // N batches, ONE sweep.
  EXPECT_EQ(service.stats().eval_sweeps.load(), sweeps_before + 1);
}

TEST(ServiceTest, ConcurrentSameModelEvalsCoalesceIntoFewerSweeps) {
  Service service;
  const Json learned = handle(
      service,
      learn_request(pla_for(4, [](std::uint32_t r) { return r % 5 == 2; })));
  ASSERT_TRUE(learned.at("ok").as_bool());

  // A wide eval (32k rows) so each sweep leaves a real window for other
  // requests to pile onto the flight.
  constexpr std::size_t kRows = 32768;
  Json request = make_request("eval");
  request.set("model", learned.at("model").as_string());
  Json inputs = Json::array();
  core::Rng rng(3);
  for (std::size_t i = 0; i < kRows; ++i) {
    std::string row(4, '0');
    for (auto& c : row) {
      c = (rng.next() & 1u) != 0 ? '1' : '0';
    }
    inputs.push_back(Json(std::move(row)));
  }
  request.set("inputs", std::move(inputs));
  const std::string line = request.dump();
  const std::string baseline = service.handle_line(line);

  // Coalescing depends on real overlap, so storm in rounds (with a start
  // barrier each round) until a shared sweep is observed; each round
  // re-checks the byte-identity contract unconditionally.
  constexpr int kThreads = 16;
  constexpr int kIters = 4;
  constexpr int kMaxRounds = 10;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::vector<std::vector<std::string>> responses(kThreads);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }
        for (int i = 0; i < kIters; ++i) {
          responses[t].push_back(service.handle_line(line));
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    // Coalescing must never change a byte of any response...
    for (int t = 0; t < kThreads; ++t) {
      for (const std::string& response : responses[t]) {
        ASSERT_EQ(response, baseline) << "round " << round;
      }
    }
    if (service.stats().eval_sweeps.load() < service.stats().evals.load()) {
      break;
    }
  }
  // ...only how many sweeps served them: the storm rode shared sweeps.
  const std::uint64_t evals = service.stats().evals.load();
  const std::uint64_t sweeps = service.stats().eval_sweeps.load();
  EXPECT_LT(sweeps, evals);
  EXPECT_GE(service.stats().eval_coalesced.load(), evals - sweeps);
}

TEST(ServiceTest, CoalescingOffRunsOneSweepPerEval) {
  ServiceOptions options;
  options.coalesce_evals = false;
  Service service(options);
  const Json learned = handle(
      service,
      learn_request(pla_for(2, [](std::uint32_t r) { return r == 1; })));
  Json request = make_request("eval");
  request.set("model", learned.at("model").as_string());
  Json inputs = Json::array();
  inputs.push_back(Json("10"));
  request.set("inputs", std::move(inputs));
  const std::string line = request.dump();
  const std::string first = service.handle_line(line);
  EXPECT_EQ(service.handle_line(line), first);
  EXPECT_EQ(service.stats().eval_sweeps.load(), 2u);
  EXPECT_EQ(service.stats().eval_coalesced.load(), 0u);
}

TEST(ServiceTest, SynthOptimizesAndStaysEquivalent) {
  Service service;
  core::Rng rng(7);
  aig::ConeOptions cone;
  cone.num_inputs = 12;
  cone.num_ands = 150;
  const aig::Aig in = aig::random_cone(cone, rng);

  Json request = make_request("synth");
  request.set("aag", aag_text(in));
  request.set("script", "resyn2");
  const Json response = handle(service, request);
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  EXPECT_EQ(response.at("script").as_string(),
            synth::Script::preset("resyn2").str());
  EXPECT_GT(response.at("trace").size(), 0u);
  EXPECT_LE(response.at("ands").as_int(), response.at("ands_in").as_int());

  std::istringstream optimized_text(response.at("aag").as_string());
  const aig::Aig optimized = aig::read_aag(optimized_text);
  const sat::CecResult cec = sat::cec(in, optimized);
  EXPECT_EQ(cec.status, sat::CecStatus::kEquivalent);
}

TEST(ServiceTest, SynthAutoSearchesAndNamesTheWinner) {
  Service service;
  core::Rng rng(11);
  aig::ConeOptions cone;
  cone.num_inputs = 10;
  cone.num_ands = 120;
  const aig::Aig in = aig::random_cone(cone, rng);

  Json request = make_request("synth");
  request.set("aag", aag_text(in));
  request.set("script", "auto");
  const Json response = handle(service, request);
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  // The chosen script is a real, parseable pass list, and its fingerprint
  // rides along so clients can key replays on the winner's identity.
  const synth::Script winner =
      synth::Script::parse(response.at("script").as_string());
  EXPECT_FALSE(winner.passes.empty());
  EXPECT_EQ(response.at("script_fp").as_string().size(), 16u);

  std::istringstream optimized_text(response.at("aag").as_string());
  const aig::Aig optimized = aig::read_aag(optimized_text);
  const sat::CecResult cec = sat::cec(in, optimized);
  EXPECT_EQ(cec.status, sat::CecStatus::kEquivalent);

  // Auto never loses to the fixed default: same request with resyn2.
  Json fixed = make_request("synth");
  fixed.set("aag", aag_text(in));
  const Json baseline = handle(service, fixed);
  ASSERT_TRUE(baseline.at("ok").as_bool());
  EXPECT_LE(response.at("ands").as_int(), baseline.at("ands").as_int());
  // Fixed-script responses stay byte-compatible: no script_fp field.
  EXPECT_FALSE(baseline.has("script_fp"));
}

TEST(ServiceTest, SynthRejectsBadScript) {
  Service service;
  Json request = make_request("synth");
  request.set("aag", aag_text(or2_circuit()));
  request.set("script", "zz;yy");
  EXPECT_NE(handle(service, request).at("error").as_string().find(
                "bad 'script'"),
            std::string::npos);
}

TEST(ServiceTest, CecVerdicts) {
  Service service;
  Json request = make_request("cec");
  request.set("a", aag_text(or2_circuit()));
  request.set("b", aag_text(or2_circuit()));
  EXPECT_EQ(handle(service, request).at("verdict").as_string(), "equivalent");

  request.set("b", aag_text(and2_circuit()));
  const Json response = handle(service, request);
  EXPECT_EQ(response.at("verdict").as_string(), "not_equivalent");
  const std::string cube = response.at("counterexample").as_string();
  ASSERT_EQ(cube.size(), 2u);
  std::vector<std::uint8_t> row{static_cast<std::uint8_t>(cube[0] == '1'),
                                static_cast<std::uint8_t>(cube[1] == '1')};
  EXPECT_NE(or2_circuit().eval_row(row)[0], and2_circuit().eval_row(row)[0]);

  // Shape mismatch is a usage error, not a verdict.
  Json mismatched = make_request("cec");
  mismatched.set("a", aag_text(or2_circuit()));
  aig::Aig three(3);
  three.add_output(three.pi(2));
  mismatched.set("b", aag_text(three));
  EXPECT_FALSE(handle(service, mismatched).at("ok").as_bool());
}

// =========================================================== Service: caches

TEST(ServiceTest, RepeatedLearnIsAMemoryCacheHit) {
  Service service;
  const std::string pla =
      pla_for(4, [](std::uint32_t r) { return (r & 3) == 2; });
  const std::string first = service.handle_line(learn_request(pla).dump());
  const std::string second = service.handle_line(learn_request(pla).dump());
  EXPECT_EQ(first, second);  // bit-identical, no cached-ness marker
  EXPECT_EQ(service.stats().learns.load(), 1u);
  EXPECT_GE(service.stats().model_memory_hits.load(), 1u);
}

TEST(ServiceTest, ModelIdDependsOnContent) {
  Service service;
  const std::string pla =
      pla_for(3, [](std::uint32_t r) { return r % 3 == 0; });
  const Json a = handle(service, learn_request(pla));
  Json with_seed = learn_request(pla);
  with_seed.set("seed", std::int64_t{1});
  const Json b = handle(service, with_seed);
  const Json c = handle(service, learn_request(pla, "rf"));
  EXPECT_NE(a.at("model").as_string(), b.at("model").as_string());
  EXPECT_NE(a.at("model").as_string(), c.at("model").as_string());
  EXPECT_EQ(service.stats().learns.load(), 3u);
}

TEST(ServiceTest, LruEvictsOldestModel) {
  ServiceOptions options;
  options.model_capacity = 2;
  Service service(options);
  std::vector<std::string> ids;
  for (std::uint32_t k = 0; k < 3; ++k) {
    const Json learned = handle(
        service, learn_request(pla_for(
                     3, [k](std::uint32_t r) { return (r & 3) == k; })));
    ASSERT_TRUE(learned.at("ok").as_bool());
    ids.push_back(learned.at("model").as_string());
  }
  EXPECT_EQ(service.models_cached(), 2u);
  // No disk level configured, so the evicted model is gone...
  Json request = make_request("eval");
  request.set("model", ids[0]);
  Json inputs = Json::array();
  inputs.push_back(Json("000"));
  request.set("inputs", std::move(inputs));
  EXPECT_FALSE(handle(service, request).at("ok").as_bool());
  // ...while the two recent ones still serve.
  request.set("model", ids[2]);
  EXPECT_TRUE(handle(service, request).at("ok").as_bool());
}

TEST(ServiceTest, ShardedStoreKeepsGlobalLruOrder) {
  // Entries land in different shards by id hash, but eviction must still
  // follow the GLOBAL access order — exactly what a single-map LRU did.
  ServiceOptions options;
  options.model_capacity = 4;
  options.store_shards = 4;
  Service service(options);
  std::vector<std::string> ids;
  for (std::uint32_t k = 0; k < 6; ++k) {
    const Json learned = handle(
        service, learn_request(pla_for(
                     3, [k](std::uint32_t r) { return (r % 7) == k; })));
    ASSERT_TRUE(learned.at("ok").as_bool());
    ids.push_back(learned.at("model").as_string());
  }
  EXPECT_EQ(service.models_cached(), 4u);
  EXPECT_EQ(service.stats().model_evictions.load(), 2u);
  Json request = make_request("eval");
  Json inputs = Json::array();
  inputs.push_back(Json("000"));
  request.set("inputs", std::move(inputs));
  // The two oldest are gone, the four recent ones serve.
  for (std::size_t k = 0; k < ids.size(); ++k) {
    request.set("model", ids[k]);
    EXPECT_EQ(handle(service, request).at("ok").as_bool(), k >= 2) << k;
  }
  EXPECT_GT(service.models_cached_bytes(), 0u);
}

TEST(ServiceTest, StoreByteBudgetEvicts) {
  ServiceOptions options;
  options.model_capacity = 64;
  options.model_store_bytes = 1;  // nothing fits: every put evicts
  Service service(options);
  const std::string pla =
      pla_for(3, [](std::uint32_t r) { return r % 2 == 1; });
  ASSERT_TRUE(handle(service, learn_request(pla)).at("ok").as_bool());
  EXPECT_EQ(service.models_cached(), 0u);
  EXPECT_GE(service.stats().model_evictions.load(), 1u);
  // With no memory entry and no disk level, the same learn refits.
  ASSERT_TRUE(handle(service, learn_request(pla)).at("ok").as_bool());
  EXPECT_EQ(service.stats().learns.load(), 2u);
}

TEST(ServiceTest, DiskCacheServesAcrossServiceInstances) {
  const std::string dir = temp_dir("disk_cache");
  ServiceOptions options;
  options.cache_dir = dir;
  const std::string pla =
      pla_for(4, [](std::uint32_t r) { return (r >> 1) % 2 == 1; });

  std::string first_line;
  std::string model_id;
  {
    Service service(options);
    first_line = service.handle_line(learn_request(pla).dump());
    model_id = Json::parse(first_line).at("model").as_string();
    EXPECT_EQ(service.stats().learns.load(), 1u);
  }
  {
    // A "restarted server": same cache dir, fresh memory.
    Service service(options);
    const std::string replay = service.handle_line(learn_request(pla).dump());
    EXPECT_EQ(replay, first_line);
    EXPECT_EQ(service.stats().learns.load(), 0u);  // no refit
    EXPECT_EQ(service.stats().model_disk_hits.load(), 1u);

    // eval by model id alone also restores from disk.
    Service fresh(options);
    Json request = make_request("eval");
    request.set("model", model_id);
    Json inputs = Json::array();
    inputs.push_back(Json("0100"));
    request.set("inputs", std::move(inputs));
    EXPECT_TRUE(handle(fresh, request).at("ok").as_bool());
    EXPECT_EQ(fresh.stats().model_disk_hits.load(), 1u);
  }
  std::filesystem::remove_all(dir);
}

// ========================================================= Service: deadlines

TEST(ServiceTest, ExpiredDeadlineGatesHeavyWork) {
  Service service;
  Json request = learn_request(
      pla_for(3, [](std::uint32_t r) { return r % 5 == 0; }));
  request.set("deadline_ms", std::int64_t{10});
  const Json response =
      Json::parse(service.handle_line(request.dump(), received_ago(100)));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("expired").as_bool());
  EXPECT_EQ(service.stats().deadline_expired.load(), 1u);
  EXPECT_EQ(service.stats().learns.load(), 0u);

  // The same request with a live deadline succeeds.
  const Json live =
      Json::parse(service.handle_line(request.dump(), received_ago(0)));
  EXPECT_TRUE(live.at("ok").as_bool());
}

TEST(ServiceTest, ExpiredDeadlineStillServesCacheHits) {
  Service service;
  const std::string pla =
      pla_for(3, [](std::uint32_t r) { return r % 5 == 1; });
  ASSERT_TRUE(handle(service, learn_request(pla)).at("ok").as_bool());
  Json request = learn_request(pla);
  request.set("deadline_ms", std::int64_t{10});
  const Json response =
      Json::parse(service.handle_line(request.dump(), received_ago(100)));
  EXPECT_TRUE(response.at("ok").as_bool());  // cache hits beat deadlines
}

TEST(ServiceTest, CecDeadlineDegradesToUndecided) {
  Service service;
  Json request = make_request("cec");
  request.set("a", aag_text(or2_circuit()));
  request.set("b", aag_text(and2_circuit()));
  request.set("deadline_ms", std::int64_t{5});
  const Json response =
      Json::parse(service.handle_line(request.dump(), received_ago(50)));
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("verdict").as_string(), "undecided");
  EXPECT_TRUE(response.at("expired").as_bool());
  EXPECT_EQ(service.stats().deadline_expired.load(), 1u);
}

TEST(ServiceTest, SynthDeadlineExpiryIsAnError) {
  Service service;
  Json request = make_request("synth");
  request.set("aag", aag_text(or2_circuit()));
  request.set("deadline_ms", std::int64_t{5});
  const Json response =
      Json::parse(service.handle_line(request.dump(), received_ago(50)));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("expired").as_bool());
}

// ============================================================ Service: stdio

TEST(ServiceTest, ServeStreamAnswersLineByLine) {
  Service service;
  std::istringstream in(
      "{\"id\":1,\"type\":\"ping\"}\n"
      "\n"  // blank lines are skipped
      "this is not json\n"
      "{\"id\":2,\"type\":\"ping\"}\n");
  std::ostringstream out;
  const std::uint64_t answered = service.serve_stream(in, out, 1 << 20);
  EXPECT_EQ(answered, 3u);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(Json::parse(line).at("id").as_int(), 1);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_FALSE(Json::parse(line).at("ok").as_bool());
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(Json::parse(line).at("id").as_int(), 2);
}

TEST(ServiceTest, ServeStreamEnforcesRequestCap) {
  Service service;
  const std::string big(512, 'x');
  std::istringstream in("{\"type\":\"ping\"}\n" + big + "\n");
  std::ostringstream out;
  service.serve_stream(in, out, 256);
  EXPECT_NE(out.str().find("max-request-bytes"), std::string::npos);
}

// ================================================================ telemetry

TEST(ServiceTest, MetricsOpExposesPrometheusFamilies) {
  Service service;
  const std::string pla =
      pla_for(3, [](std::uint32_t r) { return (r & 1) != 0; });
  ASSERT_TRUE(handle(service, learn_request(pla)).at("ok").as_bool());
  const Json response = handle(service, make_request("metrics"));
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string text = response.at("text").as_string();
  // Families from the server, synth, and per-op histogram layers; the
  // learn above guarantees each is non-trivial.
  EXPECT_NE(text.find("# TYPE lsml_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lsml_server_op_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("lsml_server_op_us_count{op=\"learn\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lsml_synth_runs_total"), std::string::npos);
  EXPECT_NE(text.find("lsml_server_models_cached 1"), std::string::npos);
}

TEST(ServiceTest, StatsAndMetricsReadTheSameCells) {
  // Satellite contract: `stats` fields are aliases over the registry, so
  // the two ops can never disagree on a quiesced service.
  Service service;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(handle(service, make_request("ping")).at("ok").as_bool());
  }
  const Json stats = handle(service, make_request("stats"));
  const std::string text =
      handle(service, make_request("metrics")).at("text").as_string();
  // stats itself bumped `requests` after its own snapshot, so read the
  // metrics text for the final value and compare pings exactly.
  EXPECT_EQ(stats.at("pings").as_int(), 3);
  EXPECT_NE(text.find("lsml_server_pings_total 3"), std::string::npos);
}

TEST(ServiceTest, ResponsesAreBitIdenticalWithTracingOnOrOff) {
  // The determinism contract: telemetry is a side channel, so the same
  // request stream yields byte-identical responses with the tracer off,
  // on, and re-enabled mid-stream.
  const std::string pla =
      pla_for(4, [](std::uint32_t r) { return (r * 5 + 1) % 3 == 0; });
  aig::ConeOptions cone;
  cone.num_inputs = 6;
  cone.num_ands = 40;
  core::Rng rng(7);
  const aig::Aig circuit = aig::random_cone(cone, rng);
  const auto transcript = [&](bool tracing) {
    if (tracing) {
      obs::Tracer::enable();
    } else {
      obs::Tracer::disable();
    }
    Service service;
    std::vector<std::string> lines;
    lines.push_back(service.handle_line(learn_request(pla).dump()));
    const Json learned = Json::parse(lines.back());
    Json eval = make_request("eval");
    eval.set("model", learned.at("model").as_string());
    Json inputs = Json::array();
    inputs.push_back(Json("0110"));
    inputs.push_back(Json("1011"));
    eval.set("inputs", std::move(inputs));
    lines.push_back(service.handle_line(eval.dump()));
    Json synth = make_request("synth");
    synth.set("aag", aag_text(circuit));
    lines.push_back(service.handle_line(synth.dump()));
    Json cec = make_request("cec");
    cec.set("a", aag_text(or2_circuit()));
    cec.set("b", aag_text(and2_circuit()));
    lines.push_back(service.handle_line(cec.dump()));
    return lines;
  };
  const std::vector<std::string> off = transcript(false);
  const std::vector<std::string> on = transcript(true);
  obs::Tracer::disable();
  obs::Tracer::reset();
  const std::vector<std::string> off_again = transcript(false);
  EXPECT_EQ(off, on);
  EXPECT_EQ(off, off_again);
}

// ================================================================ TCP daemon

ServerOptions test_server_options() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_threads = 4;
  return options;
}

TEST(ServerTest, StartServeStop) {
  Server server(test_server_options());
  server.start();
  ASSERT_GT(server.port(), 0);
  Client client;
  client.connect("127.0.0.1", server.port());
  const Json pong = client.request(make_request("ping"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_EQ(server.stats().connections.load(), 1u);
  server.stop();
  // stop() is idempotent and re-entrant with the destructor.
  server.stop();
}

TEST(ServerTest, ProtocolErrorKeepsTheConnectionOpen) {
  Server server(test_server_options());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const std::string error_line = client.roundtrip("definitely not json");
  EXPECT_FALSE(Json::parse(error_line).at("ok").as_bool());
  // Same connection, next request fine.
  EXPECT_TRUE(client.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServerTest, OversizedRequestIsRejectedAndConnectionClosed) {
  ServerOptions options = test_server_options();
  options.max_request_bytes = 256;
  Server server(options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const std::string big(4096, 'a');
  const std::string response = client.roundtrip(big);
  EXPECT_NE(response.find("max-request-bytes"), std::string::npos);
  std::string next;
  EXPECT_FALSE(client.recv_line(&next));  // server hung up

  // Also when the oversized line trickles in without a newline.
  Client slow;
  slow.connect("127.0.0.1", server.port());
  slow.send_raw(std::string(8192, 'b'));  // no terminator
  std::string reject;
  ASSERT_TRUE(slow.recv_line(&reject));
  EXPECT_NE(reject.find("max-request-bytes"), std::string::npos);
  EXPECT_GE(server.stats().oversized_rejects.load(), 2u);

  // The daemon itself survives.
  Client again;
  again.connect("127.0.0.1", server.port());
  EXPECT_TRUE(again.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServerTest, ClientDisconnectsDoNotKillTheDaemon) {
  Server server(test_server_options());
  server.start();

  {  // mid-request: partial line, then gone
    Client client;
    client.connect("127.0.0.1", server.port());
    client.send_raw("{\"type\":\"pi");
    client.close();
  }
  {  // half-close mid-request
    Client client;
    client.connect("127.0.0.1", server.port());
    client.send_raw("{\"type\":\"ping\"");
    client.shutdown_write();
    std::string line;
    EXPECT_FALSE(client.recv_line(&line));  // dropped, never answered
  }
  {  // full request, then gone before the response is read
    Client client;
    client.connect("127.0.0.1", server.port());
    client.send_line(make_request("ping").dump());
    client.close();
  }
  // Daemon still healthy.
  Client client;
  client.connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServerTest, RequestsDrippedOneByteAtATimeAreFramedCorrectly) {
  // Regression for the raw-byte path: the transport must frame lines
  // incrementally no matter how the bytes arrive — including one byte per
  // segment across two pipelined requests.
  Server server(test_server_options());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Json first = make_request("ping");
  first.set("id", std::int64_t{1});
  Json second = make_request("ping");
  second.set("id", std::int64_t{2});
  const std::string bytes = first.dump() + "\n" + second.dump() + "\n";
  for (const char c : bytes) {
    client.send_raw(std::string(1, c));
  }
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_EQ(Json::parse(line).at("id").as_int(), 1);
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_EQ(Json::parse(line).at("id").as_int(), 2);
}

TEST(ServerTest, HalfOpenPeerStillReceivesOwedResponses) {
  // A peer that half-closes AFTER a complete request is owed its response:
  // shutdown(SHUT_WR) ends requests, not the connection.
  Server server(test_server_options());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Json request = make_request("ping");
  request.set("sleep_ms", std::int64_t{100});  // half-close races the work
  client.send_line(request.dump());
  client.shutdown_write();
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_TRUE(Json::parse(line).at("ok").as_bool());
  EXPECT_FALSE(client.recv_line(&line));  // then an orderly EOF
}

TEST(ServerTest, OversizedLineMidPipelineAnswersEarlierRequestsFirst) {
  // One segment carrying a valid request AND the start of a poison line:
  // the framed request is answered, then the reject, then the close.
  ServerOptions options = test_server_options();
  options.max_request_bytes = 256;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  client.send_raw(make_request("ping").dump() + "\n" +
                  std::string(4096, 'x'));  // no terminator, already > cap
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_TRUE(Json::parse(line).at("ok").as_bool());
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("max-request-bytes"), std::string::npos);
  EXPECT_FALSE(client.recv_line(&line));  // connection closed
  EXPECT_EQ(server.stats().oversized_rejects.load(), 1u);
}

TEST(ServerTest, SlowReaderTriggersBackpressureAndLosesNothing) {
  ServerOptions options = test_server_options();
  options.write_high_water_bytes = 4096;
  options.send_buffer_bytes = 16384;  // fixed, so ~100 KB responses jam
  Server server(options);
  server.start();

  // Learn a tiny model, then request wide evals (~100k-char outputs) on a
  // connection whose receive window is clamped to 4 KB and whose reader
  // does not read for a while: responses pile up server-side, cross the
  // high-water mark, and pause the read side — without dropping a byte.
  Client setup;
  setup.connect("127.0.0.1", server.port());
  const Json learned = Json::parse(setup.roundtrip(
      learn_request(pla_for(2, [](std::uint32_t r) { return r != 0; }))
          .dump()));
  ASSERT_TRUE(learned.at("ok").as_bool());

  Json eval = make_request("eval");
  eval.set("model", learned.at("model").as_string());
  Json inputs = Json::array();
  for (int i = 0; i < 100000; ++i) {
    inputs.push_back(Json(i % 2 != 0 ? "11" : "00"));
  }
  eval.set("inputs", std::move(inputs));
  const std::string line = eval.dump();
  const std::string expected = setup.roundtrip(line);

  constexpr int kRequests = 6;
  Client slow;
  slow.connect("127.0.0.1", server.port(), 4096);
  std::thread writer([&] {
    for (int i = 0; i < kRequests; ++i) {
      slow.send_line(line);
    }
  });
  // Let responses pile into the paused connection before draining them.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int i = 0; i < kRequests; ++i) {
    std::string response;
    ASSERT_TRUE(slow.recv_line(&response)) << i;
    EXPECT_EQ(response, expected) << i;
  }
  writer.join();
  EXPECT_GE(server.stats().backpressure_pauses.load(), 1u);
}

TEST(ServerTest, ConnectionCapRejectsTheExtraClient) {
  ServerOptions options = test_server_options();
  options.max_connections = 2;
  Server server(options);
  server.start();

  Client a;
  Client b;
  a.connect("127.0.0.1", server.port());
  b.connect("127.0.0.1", server.port());
  // Both slots land before the cap check sees the third connection.
  EXPECT_TRUE(a.request(make_request("ping")).at("ok").as_bool());
  EXPECT_TRUE(b.request(make_request("ping")).at("ok").as_bool());

  Client extra;
  extra.connect("127.0.0.1", server.port());
  std::string line;
  ASSERT_TRUE(extra.recv_line(&line));
  EXPECT_NE(line.find("connection limit"), std::string::npos);
  EXPECT_FALSE(extra.recv_line(&line));  // closed right after
  EXPECT_EQ(server.stats().over_connection_cap.load(), 1u);

  // Freeing a slot readmits new clients (once the loop sees the close).
  b.close();
  bool admitted = false;
  for (int attempt = 0; attempt < 200 && !admitted; ++attempt) {
    try {
      Client again;
      again.connect("127.0.0.1", server.port());
      admitted = again.request(make_request("ping")).at("ok").as_bool();
    } catch (const std::exception&) {
      // Rejected connections may RST before the error line arrives.
    }
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST(ServerTest, DeadlineExpiresWhileQueuedBehindABusyWorker) {
  ServerOptions options = test_server_options();
  options.num_threads = 1;  // one worker: the sleeper blocks the queue
  Server server(options);
  server.start();

  Client sleeper;
  sleeper.connect("127.0.0.1", server.port());
  Json sleep_request = make_request("ping");
  sleep_request.set("sleep_ms", std::int64_t{400});
  sleeper.send_line(sleep_request.dump());
  // Give the worker time to claim the sleeping ping.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client hurried;
  hurried.connect("127.0.0.1", server.port());
  Json learn = learn_request(
      pla_for(4, [](std::uint32_t r) { return r % 7 == 0; }));
  learn.set("deadline_ms", std::int64_t{50});
  const Json response = Json::parse(hurried.roundtrip(learn.dump()));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("expired").as_bool());

  std::string pong;
  ASSERT_TRUE(sleeper.recv_line(&pong));
  EXPECT_TRUE(Json::parse(pong).at("ok").as_bool());
}

TEST(ServerTest, PipelinedRequestsAreStampedWhenFramedNotWhenServed) {
  // Two requests written in one batch on one connection: a slow ping and
  // a tightly-deadlined learn. The learn's deadline clock must start when
  // its line arrived — i.e. the time it spends waiting behind the ping
  // counts — not when the ping finished.
  ServerOptions options = test_server_options();
  options.num_threads = 1;
  Server server(options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  Json slow = make_request("ping");
  slow.set("sleep_ms", std::int64_t{300});
  Json hurried = learn_request(
      pla_for(4, [](std::uint32_t r) { return r % 9 == 2; }));
  hurried.set("deadline_ms", std::int64_t{50});
  client.send_raw(slow.dump() + "\n" + hurried.dump() + "\n");

  std::string first;
  std::string second;
  ASSERT_TRUE(client.recv_line(&first));
  ASSERT_TRUE(client.recv_line(&second));
  EXPECT_TRUE(Json::parse(first).at("ok").as_bool());
  const Json response = Json::parse(second);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("expired").as_bool());
  EXPECT_EQ(server.service().stats().learns.load(), 0u);
}

// The acceptance-criteria test: 256 concurrent clients replaying a fixed
// request set get byte-identical responses to a serial replay — across the
// event loop, the eval coalescer, and the sharded store. Runs under TSan
// in CI, so it is also the concurrency torture test.
TEST(ServerTest, ConcurrentClientsAreBitIdenticalToSerial) {
  // A request mix that exercises every stateful path: learns (shared model
  // store), evals (reads), synth (process-wide memo), cec (SAT).
  std::vector<std::string> request_set;
  for (int k = 0; k < 4; ++k) {
    request_set.push_back(
        learn_request(pla_for(4, [k](std::uint32_t r) {
          return ((r >> (k % 3)) & 1u) == (k % 2 ? 1u : 0u) && r % 3 != 2;
        })).dump());
  }
  core::Rng rng(11);
  aig::ConeOptions cone;
  cone.num_inputs = 10;
  cone.num_ands = 80;
  const aig::Aig circuit = aig::random_cone(cone, rng);
  {
    Json synth = make_request("synth");
    synth.set("aag", aag_text(circuit));
    synth.set("script", "fast");
    request_set.push_back(synth.dump());
    Json cec = make_request("cec");
    cec.set("a", aag_text(or2_circuit()));
    cec.set("b", aag_text(and2_circuit()));
    request_set.push_back(cec.dump());
  }

  ServerOptions options = test_server_options();
  options.num_threads = 0;  // hardware width
  Server server(options);
  server.start();
  const int port = server.port();

  // Serial baseline, including the eval that depends on a learned id.
  std::vector<std::string> baseline;
  {
    Client client;
    client.connect("127.0.0.1", port);
    for (const std::string& line : request_set) {
      baseline.push_back(client.roundtrip(line));
    }
    const Json learned = Json::parse(baseline[0]);
    Json eval = make_request("eval");
    eval.set("model", learned.at("model").as_string());
    Json inputs = Json::array();
    for (const char* row : {"0000", "1010", "1111"}) {
      inputs.push_back(Json(row));
    }
    eval.set("inputs", std::move(inputs));
    request_set.push_back(eval.dump());
    baseline.push_back(client.roundtrip(request_set.back()));
  }

  constexpr int kClients = 256;
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client;
        client.connect("127.0.0.1", port);
        for (const std::string& line : request_set) {
          responses[c].push_back(client.roundtrip(line));
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& thread : clients) {
    thread.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
    ASSERT_EQ(responses[c].size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(responses[c][i], baseline[i])
          << "client " << c << ", request " << i;
    }
  }
  // All that load refit each model exactly once.
  EXPECT_EQ(server.service().stats().learns.load(), 4u);
}

}  // namespace
}  // namespace lsml
