// The sat:: subsystem: CDCL solver core on hand-built CNFs, CNF encoding,
// SAT-based equivalence checking with counterexample replay, and the
// simulation-guided fraig pass — including the acceptance properties that
// `fs` is SAT-verified function-preserving on 200 random AIGs and that
// `resyn2fs` never loses to `resyn2`.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "sat/cec.hpp"
#include "sat/cnf.hpp"
#include "sat/fraig.hpp"
#include "sat/solver.hpp"
#include "portfolio/team.hpp"
#include "suite/result_cache.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script.hpp"

namespace lsml {
namespace {

using sat::CecStatus;
using sat::Lit;
using sat::Solver;
using sat::Status;
using sat::Var;
using sat::make_lit;

Lit pos(Var v) { return make_lit(v, false); }
Lit neg(Var v) { return make_lit(v, true); }

// ------------------------------------------------------------ solver core

TEST(Solver, UnitPropagationChain) {
  // x0, x0->x1, x1->x2, ..., x18->x19: one long implication chain that
  // must resolve by propagation alone (zero decisions).
  Solver s;
  constexpr int kChain = 20;
  for (int i = 0; i < kChain; ++i) {
    s.new_var();
  }
  ASSERT_TRUE(s.add_clause({pos(0)}));
  for (Var v = 0; v + 1 < kChain; ++v) {
    ASSERT_TRUE(s.add_clause({neg(v), pos(v + 1)}));
  }
  ASSERT_EQ(s.solve(), Status::kSat);
  for (Var v = 0; v < kChain; ++v) {
    EXPECT_TRUE(s.model_value(pos(v))) << "var " << v;
  }
  EXPECT_EQ(s.stats().decisions, 0u);

  // Closing the chain against x19 is a root-level contradiction.
  EXPECT_FALSE(s.add_clause({neg(kChain - 1)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

std::vector<std::vector<Lit>> pigeonhole(Solver* s, int pigeons, int holes) {
  // Var p*holes + h: pigeon p sits in hole h.
  std::vector<std::vector<Lit>> clauses;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (int h = 0; h < holes; ++h) {
      somewhere.push_back(pos(static_cast<Var>(p * holes + h)));
    }
    clauses.push_back(somewhere);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        clauses.push_back({neg(static_cast<Var>(p1 * holes + h)),
                           neg(static_cast<Var>(p2 * holes + h))});
      }
    }
  }
  while (s->num_vars() < static_cast<std::uint32_t>(pigeons * holes)) {
    s->new_var();
  }
  return clauses;
}

TEST(Solver, Pigeonhole3IsUnsat) {
  // 4 pigeons, 3 holes: UNSAT, and only provable through real conflict
  // analysis (no unit propagation shortcut exists from the start).
  Solver s;
  for (const auto& clause : pigeonhole(&s, 4, 3)) {
    s.add_clause(clause);
  }
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, Pigeonhole3FitsWithEqualHoles) {
  Solver s;
  for (const auto& clause : pigeonhole(&s, 3, 3)) {
    ASSERT_TRUE(s.add_clause(clause));
  }
  ASSERT_EQ(s.solve(), Status::kSat);
  // The model must place each pigeon in exactly one distinct hole.
  int placed = 0;
  for (int h = 0; h < 3; ++h) {
    int in_hole = 0;
    for (int p = 0; p < 3; ++p) {
      in_hole += s.model_value(pos(static_cast<Var>(p * 3 + h))) ? 1 : 0;
    }
    EXPECT_LE(in_hole, 1);
    placed += in_hole;
  }
  EXPECT_EQ(placed, 3);
}

TEST(Solver, AssumptionIncrementality) {
  // One solver, many queries: assumptions never leave permanent marks,
  // and clauses added between queries take effect.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(b), pos(c)}));

  EXPECT_EQ(s.solve({neg(a), neg(b)}), Status::kSat);
  EXPECT_TRUE(s.model_value(pos(c)));
  EXPECT_EQ(s.solve({neg(a), neg(b), neg(c)}), Status::kUnsat);
  // The UNSAT answer was relative to the assumptions only.
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), Status::kSat);

  ASSERT_TRUE(s.add_clause({neg(c)}));
  EXPECT_EQ(s.solve({neg(a), neg(b)}), Status::kUnsat);
  EXPECT_EQ(s.solve({neg(a)}), Status::kSat);
  EXPECT_TRUE(s.model_value(pos(b)));
  // Contradictory assumptions about one variable short-circuit cleanly.
  EXPECT_EQ(s.solve({pos(a), neg(a)}), Status::kUnsat);
}

TEST(Solver, ConflictBudgetReturnsUnknownNeverWrong) {
  Solver s;
  for (const auto& clause : pigeonhole(&s, 6, 5)) {
    s.add_clause(clause);
  }
  sat::Budget tiny;
  tiny.max_conflicts = 1;
  EXPECT_EQ(s.solve({}, tiny), Status::kUnknown);
  // The same solver still reaches the exact verdict without the budget.
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

TEST(Solver, RandomCnfAgreesWithBruteForce) {
  // Fuzz soundness + completeness: 400 random small CNFs checked against
  // exhaustive enumeration; SAT answers must come with a real model.
  core::Rng rng(0xc0ffee);
  for (int instance = 0; instance < 400; ++instance) {
    const int num_vars = 3 + static_cast<int>(rng.below(8));
    const int num_clauses = 4 + static_cast<int>(rng.below(36));
    std::vector<std::vector<Lit>> clauses;
    for (int ci = 0; ci < num_clauses; ++ci) {
      std::vector<Lit> clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < len; ++k) {
        clause.push_back(make_lit(static_cast<Var>(rng.below(num_vars)),
                                  rng.flip(0.5)));
      }
      clauses.push_back(clause);
    }
    bool brute_sat = false;
    for (int m = 0; m < (1 << num_vars) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit l : clause) {
          any = any || (((m >> sat::lit_var(l)) & 1) !=
                        static_cast<int>(sat::lit_sign(l)));
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    Solver s;
    for (int v = 0; v < num_vars; ++v) {
      s.new_var();
    }
    for (const auto& clause : clauses) {
      s.add_clause(clause);
    }
    const Status verdict = s.solve();
    ASSERT_EQ(verdict == Status::kSat, brute_sat) << "instance " << instance;
    if (verdict == Status::kSat) {
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit l : clause) {
          any = any || s.model_value(l);
        }
        ASSERT_TRUE(any) << "bogus model, instance " << instance;
      }
    }
  }
}

// ------------------------------------------------------------ cnf gadgets

TEST(Cnf, XorAndOrGadgetsBehave) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Lit x = sat::add_xor(s, pos(a), pos(b));
  // XOR forced true requires a != b.
  ASSERT_EQ(s.solve({x, pos(a)}), Status::kSat);
  EXPECT_FALSE(s.model_value(pos(b)));
  ASSERT_EQ(s.solve({sat::lit_not(x), pos(a)}), Status::kSat);
  EXPECT_TRUE(s.model_value(pos(b)));
  EXPECT_EQ(s.solve({x, pos(a), pos(b)}), Status::kUnsat);

  const Lit o = sat::add_or(s, {pos(a), pos(b)});
  EXPECT_EQ(s.solve({o, sat::lit_not(pos(a)), sat::lit_not(pos(b))}),
            Status::kUnsat);
  const Lit empty = sat::add_or(s, {});
  EXPECT_EQ(s.solve({empty}), Status::kUnsat);  // empty OR is false
}

// --------------------------------------------------------------------- cec

aig::Aig small_cone(core::Rng& rng, std::uint32_t inputs = 0) {
  aig::ConeOptions cone;
  cone.num_inputs = inputs != 0 ? inputs : 5 + static_cast<std::uint32_t>(
                                               rng.below(4));
  cone.num_ands = 40 + static_cast<std::uint32_t>(rng.below(40));
  cone.max_tries = 2;  // balance quality is irrelevant here
  cone.flavor = rng.flip(0.5) ? aig::ConeFlavor::kXorRich
                              : aig::ConeFlavor::kRandom;
  return aig::random_cone(cone, rng);
}

TEST(Cec, EquivalentCopyAndFlippedOutputOn200RandomAigs) {
  core::Rng rng(2020);
  for (int i = 0; i < 200; ++i) {
    const aig::Aig g = small_cone(rng);
    const aig::Aig copy = g;  // deep copy: Aig is a value type
    EXPECT_EQ(sat::cec(g, copy).status, CecStatus::kEquivalent)
        << "iteration " << i;

    aig::Aig flipped = g;
    flipped.set_output(0, aig::lit_not(flipped.output(0)));
    const sat::CecResult verdict = sat::cec(g, flipped);
    ASSERT_EQ(verdict.status, CecStatus::kNotEquivalent) << "iteration " << i;
    // The counterexample must actually distinguish the circuits.
    ASSERT_EQ(verdict.counterexample.size(), g.num_pis());
    EXPECT_NE(g.eval_row(verdict.counterexample)[verdict.failing_output],
              flipped.eval_row(verdict.counterexample)[verdict.failing_output]);
  }
}

TEST(Cec, ShapeMismatchesThrow) {
  const aig::Aig two_pis(2);
  const aig::Aig three_pis(3);
  EXPECT_THROW((void)sat::cec(two_pis, three_pis), std::invalid_argument);
  aig::Aig with_output(2);
  with_output.add_output(with_output.pi(0));
  aig::Aig no_output(2);
  EXPECT_THROW((void)sat::cec(with_output, no_output), std::invalid_argument);
}

TEST(Cec, UndecidedWithinTinyBudget) {
  // A miter of two big distinct cones under a 1-conflict budget: the
  // verdict must degrade to kUndecided, never guess.
  core::Rng rng(5);
  aig::ConeOptions cone;
  cone.num_inputs = 12;
  cone.num_ands = 500;
  cone.max_tries = 1;
  const aig::Aig a = aig::random_cone(cone, rng);
  const aig::Aig b = aig::random_cone(cone, rng);
  sat::CecLimits limits;
  limits.conflict_budget = 1;
  const CecStatus status = sat::cec(a, b, limits).status;
  EXPECT_TRUE(status == CecStatus::kUndecided ||
              status == CecStatus::kNotEquivalent);
}

TEST(Cec, CexToMintermReplaysThroughSimulation) {
  // One fixed oracle, twenty differently-mutated copies: every
  // NOT_EQUIVALENT verdict appends one labeled minterm to a shared dump,
  // and the oracle must agree with *every* dumped row under the existing
  // packed-simulation path — the dump is replayable training data.
  core::Rng rng(77);
  const aig::Aig g = small_cone(rng, 6);
  data::Dataset dump;
  int found = 0;
  for (int i = 0; i < 20; ++i) {
    aig::Aig mutated = g;
    const std::uint32_t j = static_cast<std::uint32_t>(rng.below(6));
    std::uint32_t k = static_cast<std::uint32_t>(rng.below(6));
    k = k == j ? (k + 1) % 6 : k;
    const aig::Lit term = mutated.and2(mutated.pi(j), mutated.pi(k));
    mutated.set_output(0, mutated.xor2(mutated.output(0), term));
    const sat::CecResult verdict = sat::cec(g, mutated);
    ASSERT_EQ(verdict.status, CecStatus::kNotEquivalent);

    // One-row conversion: inputs are the cube, the label is the oracle's
    // value on it.
    const data::Dataset row = sat::cex_to_minterm(verdict.counterexample, g);
    ASSERT_EQ(row.num_rows(), 1u);
    ASSERT_EQ(row.num_inputs(), g.num_pis());
    EXPECT_EQ(row.label(0), g.eval_row(verdict.counterexample)[0]);

    sat::append_cex_minterm(verdict.counterexample, g, &dump);
    ++found;
    ASSERT_EQ(dump.num_rows(), static_cast<std::size_t>(found));

    // The mutated circuit disagrees with the oracle's label on its own
    // counterexample row by construction.
    const auto bad = mutated.simulate(dump.column_ptrs());
    EXPECT_NE(bad[0].get(dump.num_rows() - 1), dump.label(found - 1));
  }
  const auto sim = g.simulate(dump.column_ptrs());
  EXPECT_EQ(data::accuracy(sim[0], dump.labels()), 1.0);
}

// ------------------------------------------------------------------- fraig

TEST(Fraig, MergesStructurallyDistinctEquivalentLogic) {
  // (a&b)&c and a&(b&c) are structurally different cones computing the
  // same function; fraiging must collapse them and the XOR above them to
  // constant false, leaving one cone feeding both outputs.
  aig::Aig g(3);
  const aig::Lit left = g.and2(g.and2(g.pi(0), g.pi(1)), g.pi(2));
  const aig::Lit right = g.and2(g.pi(0), g.and2(g.pi(1), g.pi(2)));
  g.add_output(g.xor2(left, right));  // constant false, invisibly
  g.add_output(left);
  g.add_output(right);

  core::Rng rng(1);
  sat::FraigStats stats;
  const aig::Aig swept = sat::fraig(g, sat::FraigOptions{}, rng, &stats);
  EXPECT_EQ(sat::cec(g, swept, {0, 0}).status, CecStatus::kEquivalent);
  EXPECT_EQ(swept.output(0), aig::kLitFalse);
  EXPECT_EQ(swept.output(1), swept.output(2));
  EXPECT_LT(swept.num_ands(), g.cone_size());
  EXPECT_GT(stats.proved, 0u);
}

TEST(Fraig, FsPassIsSatVerifiedFunctionPreservingOn200RandomAigs) {
  // The acceptance property: the `fs` pass, run exactly as the pass
  // manager runs it, is certified function-preserving by an unlimited-
  // budget cec on 200 random AIGs — and never grows the circuit.
  core::Rng rng(42);
  const synth::Script fs = synth::Script::parse("fs");
  synth::SynthOptions options;
  options.max_rounds = 1;
  const synth::PassManager manager(options);
  std::uint64_t merged_total = 0;
  for (int i = 0; i < 200; ++i) {
    const aig::Aig g = small_cone(rng);
    const synth::SynthResult result = manager.run(g, fs);
    ASSERT_EQ(sat::cec(g, result.circuit, {0, 0}).status,
              CecStatus::kEquivalent)
        << "fs broke the function on iteration " << i;
    EXPECT_LE(result.circuit.num_ands(), g.cleanup().num_ands());
    merged_total += g.cleanup().num_ands() - result.circuit.num_ands();
  }
  // Across 200 random cones, sweeping must actually find merges.
  EXPECT_GT(merged_total, 0u);
}

TEST(Fraig, DeterministicGivenSeed) {
  core::Rng cone_rng(9);
  const aig::Aig g = small_cone(cone_rng, 8);
  core::Rng r1(123);
  core::Rng r2(123);
  sat::FraigOptions options;
  const aig::Aig a = sat::fraig(g, options, r1);
  const aig::Aig b = sat::fraig(g, options, r2);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

// --------------------------------------------------- synth:: integration

TEST(Script, FsSpellingAndPresets) {
  EXPECT_EQ(synth::Script::parse("fs").str(), "fs");
  EXPECT_EQ(synth::Script::parse("fraig -c 200").str(), "fs -c 200");
  // The default conflict budget spells (and fingerprints) like bare fs.
  EXPECT_EQ(synth::Script::parse("fs -c 1000").str(), "fs");
  EXPECT_EQ(synth::Script::parse("fs").passes[0].effective_conflict_budget(),
            1000);
  // "fs -c 0" is the canonical unlimited spelling: it round-trips, maps
  // to an unbudgeted fraig, and fingerprints apart from default fs (they
  // produce different circuits, so they must never share memo entries).
  EXPECT_EQ(synth::Script::parse("fs -c 0").str(), "fs -c 0");
  EXPECT_EQ(
      synth::Script::parse("fs -c 0").passes[0].effective_conflict_budget(),
      0);
  EXPECT_NE(synth::Script::parse("fs -c 0").fingerprint(),
            synth::Script::parse("fs").fingerprint());
  EXPECT_THROW(synth::Script::parse("fs -k 4"), std::invalid_argument);
  EXPECT_THROW(synth::Script::parse("b -c 7"), std::invalid_argument);
  EXPECT_THROW(synth::Script::parse("rw -c 0"), std::invalid_argument);

  const synth::Script preset = synth::Script::preset("resyn2fs");
  bool has_fs = false;
  for (const synth::Pass& pass : preset.passes) {
    has_fs = has_fs || pass.kind == synth::PassKind::kFraig;
  }
  EXPECT_TRUE(has_fs);
  EXPECT_NE(preset.fingerprint(), synth::Script::preset("resyn2").fingerprint());
}

TEST(Fraig, Resyn2fsNeverWorseThanResyn2) {
  // The acceptance bar: on every circuit of a mixed pool, resyn2fs ends
  // at most as large as resyn2 (ties allowed), under the default contest
  // options both presets run with.
  core::Rng rng(2020);
  std::vector<aig::Aig> pool;
  for (const auto flavor :
       {aig::ConeFlavor::kRandom, aig::ConeFlavor::kXorRich,
        aig::ConeFlavor::kArith}) {
    for (const std::uint32_t ands : {120u, 400u}) {
      aig::ConeOptions cone;
      cone.num_inputs = 12;
      cone.num_ands = ands;
      cone.max_tries = 2;
      cone.flavor = flavor;
      pool.push_back(aig::random_cone(cone, rng));
    }
  }
  const synth::PassManager manager{synth::SynthOptions{}};
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto with_fs =
        manager.run(pool[i], synth::Script::preset("resyn2fs"));
    const auto without =
        manager.run(pool[i], synth::Script::preset("resyn2"));
    EXPECT_LE(with_fs.circuit.num_ands(), without.circuit.num_ands())
        << "circuit " << i;
    EXPECT_EQ(sat::cec(pool[i], with_fs.circuit, {0, 0}).status,
              CecStatus::kEquivalent)
        << "circuit " << i;
  }
}

TEST(PassManager, VerifyEquivalenceHookCertifiesAndSkipsApprox) {
  core::Rng rng(31);
  const aig::Aig g = small_cone(rng, 8);

  synth::SynthOptions verified;
  verified.verify_equivalence = true;
  const synth::SynthResult exact =
      synth::PassManager(verified).run(g, synth::Script::preset("resyn2fs"));
  EXPECT_EQ(exact.verify, synth::VerifyStatus::kExact);
  EXPECT_EQ(exact.trace.back().pass, "verify");

  // An approx pass intentionally changes the function: nothing to certify.
  const synth::SynthResult approximated =
      synth::PassManager(verified).run(g, synth::Script::approx_to(5));
  EXPECT_EQ(approximated.verify, synth::VerifyStatus::kSkippedApprox);
  EXPECT_LE(approximated.circuit.num_ands(), 5u);

  // Budget enforcement is an approx pass too.
  synth::SynthOptions tight = verified;
  tight.node_budget = 5;
  const synth::SynthResult capped =
      synth::PassManager(tight).run(g, synth::Script::preset("fast"));
  EXPECT_EQ(capped.verify, synth::VerifyStatus::kSkippedApprox);

  // Off by default, and the fingerprint separates verified runs.
  const synth::SynthResult plain =
      synth::PassManager(synth::SynthOptions{}).run(g,
                                                    synth::Script::preset("fast"));
  EXPECT_EQ(plain.verify, synth::VerifyStatus::kNotRequested);
  EXPECT_NE(synth::SynthOptions{}.fingerprint(), verified.fingerprint());
}

TEST(Portfolio, TeamApproxFallbackNeverReportsExact) {
  // select_best_within_budget's over-budget fallback approximates the
  // candidate, so under a verify-enabled pipeline the returned model must
  // report kSkippedApprox — never the re-finish's "exact" — for both the
  // normal and the zero-budget (majority constant) branch.
  core::Rng rng(3);
  const aig::Aig g = small_cone(rng, 6);
  data::Dataset train(6, 64);
  for (std::size_t c = 0; c < 6; ++c) {
    train.column(c).randomize(rng);
  }
  train.labels().randomize(rng);

  synth::Pipeline verified = synth::default_pipeline();
  verified.options.verify_equivalence = true;
  const synth::ScopedPipeline scoped(verified);

  for (const std::uint32_t budget : {5u, 0u}) {
    learn::TrainedModel candidate;
    candidate.circuit = g;
    candidate.method = "stub";
    core::Rng task_rng(11);
    const learn::TrainedModel picked = portfolio::select_best_within_budget(
        {candidate}, train, train, budget, task_rng);
    EXPECT_NE(picked.method.find("+approx"), std::string::npos);
    EXPECT_EQ(picked.verified, synth::VerifyStatus::kSkippedApprox)
        << "budget " << budget;
  }
}

TEST(ResultCache, VerifiedStatusRoundTrips) {
  const std::string dir =
      ::testing::TempDir() + "/lsml-sat-cache-" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const suite::ResultCache cache(dir);
  suite::CachedTask task;
  task.result.benchmark = "ex99";
  task.result.method = "dt";
  task.result.verified = synth::VerifyStatus::kExact;
  task.aag = "aag 0 0 0 0 0\n";
  cache.store("teamX", "ex99", 0x1234, task);
  const auto loaded = cache.load("teamX", "ex99", 0x1234);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->result.verified, synth::VerifyStatus::kExact);

  synth::VerifyStatus parsed = synth::VerifyStatus::kNotRequested;
  EXPECT_TRUE(synth::verify_status_from_string("exact", &parsed));
  EXPECT_EQ(parsed, synth::VerifyStatus::kExact);
  EXPECT_FALSE(synth::verify_status_from_string("bogus", &parsed));
  EXPECT_STREQ(synth::to_string(synth::VerifyStatus::kSkippedApprox),
               "approx");
}

}  // namespace
}  // namespace lsml
