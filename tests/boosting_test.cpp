// Gradient boosting tests: learnability, quantized-vs-AIG equivalence,
// and the SHAP-like attribution patterns of Figs. 26/27.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/boosting.hpp"
#include "oracle/arith_oracles.hpp"
#include "oracle/suite.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(GradientBoosted, LearnsConjunction) {
  const auto f = [](const core::BitVec& r) { return r.get(0) && r.get(3); };
  const auto train = function_dataset(6, 400, 1, f);
  const auto test = function_dataset(6, 200, 2, f);
  BoostOptions options;
  options.num_trees = 20;
  options.max_depth = 3;
  core::Rng rng(3);
  const GradientBoosted model = GradientBoosted::fit(train, options, rng);
  EXPECT_GT(data::accuracy(model.predict(test), test.labels()), 0.97);
}

TEST(GradientBoosted, QuantizedPredictionMatchesAig) {
  const auto ds = function_dataset(8, 300, 4, [](const core::BitVec& r) {
    return r.get(2) || (r.get(5) && !r.get(6));
  });
  BoostOptions options;
  options.num_trees = 15;
  options.max_depth = 3;
  core::Rng rng(5);
  const GradientBoosted model = GradientBoosted::fit(ds, options, rng);
  const aig::Aig g = model.to_aig(8);
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], model.predict_quantized(ds))
      << "the AIG must compute exactly the quantized majority vote";
}

TEST(GradientBoosted, SaturationStopsAddingNoiseTrees) {
  // Once an easy function is fit, further trees would quantize to noise;
  // training must stop early and the circuit must stay accurate.
  const auto ds = function_dataset(6, 250, 6, [](const core::BitVec& r) {
    return r.get(1);
  });
  BoostOptions options;
  options.num_trees = 125;
  options.max_depth = 2;
  core::Rng rng(7);
  const GradientBoosted model = GradientBoosted::fit(ds, options, rng);
  EXPECT_LT(model.trees().size(), 125u) << "saturation guard";
  const aig::Aig g = model.to_aig(6);
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_GT(data::accuracy(sim[0], ds.labels()), 0.95);
}

TEST(GradientBoosted, Majority125NetworkPathOnHardFunction) {
  // Parity keeps the ensemble busy for all 125 rounds, exercising the
  // 3-layer 5-input majority aggregation of the paper.
  const auto ds = function_dataset(10, 400, 60, [](const core::BitVec& r) {
    return r.count() % 2 == 1;
  });
  BoostOptions options;
  options.num_trees = 125;
  options.max_depth = 3;
  core::Rng rng(61);
  const GradientBoosted model = GradientBoosted::fit(ds, options, rng);
  if (model.trees().size() == 125) {
    const aig::Aig g = model.to_aig(10);
    const auto sim = g.simulate(ds.column_ptrs());
    // Quantization + majority approximation must stay above chance on the
    // training set even for this adversarial target.
    EXPECT_GT(data::accuracy(sim[0], ds.labels()), 0.5);
  } else {
    GTEST_SKIP() << "ensemble saturated before 125 trees";
  }
}

TEST(GradientBoosted, ScoreIsMonotoneInRounds) {
  const auto ds = function_dataset(8, 400, 8, [](const core::BitVec& r) {
    return (r.get(0) && r.get(1)) || r.get(7);
  });
  core::Rng rng(9);
  BoostOptions few;
  few.num_trees = 3;
  BoostOptions many;
  many.num_trees = 30;
  const auto m_few = GradientBoosted::fit(ds, few, rng);
  const auto m_many = GradientBoosted::fit(ds, many, rng);
  EXPECT_GE(data::accuracy(m_many.predict(ds), ds.labels()),
            data::accuracy(m_few.predict(ds), ds.labels()));
}

TEST(GradientBoosted, ComparatorContributionsShowOppositePolarity) {
  // Fig. 27: for a comparator, the a-word bits should push positive and the
  // b-word bits negative, with magnitude growing toward the MSB.
  const std::size_t k = 8;
  const oracle::ComparatorOracle cmp(k);
  core::Rng rng(10);
  data::Dataset ds(2 * k, 800);
  for (std::size_t r = 0; r < 800; ++r) {
    core::BitVec row(2 * k);
    row.randomize(rng);
    for (std::size_t c = 0; c < 2 * k; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, cmp.eval(row));
  }
  BoostOptions options;
  options.num_trees = 40;
  options.max_depth = 4;
  const GradientBoosted model = GradientBoosted::fit(ds, options, rng);
  const auto contrib = model.mean_contributions(ds);
  // MSBs dominate and have opposite signs.
  EXPECT_GT(contrib[k - 1], 0.0);
  EXPECT_LT(contrib[2 * k - 1], 0.0);
  EXPECT_GT(contrib[k - 1], std::abs(contrib[0]));
  const auto abs_contrib = model.mean_abs_contributions(ds);
  EXPECT_GT(abs_contrib[k - 1], abs_contrib[0])
      << "Fig. 26: importance concentrates on MSBs";
}

TEST(BoostLearner, EndToEnd) {
  const auto f = [](const core::BitVec& r) { return r.get(0) != r.get(1); };
  const auto train = function_dataset(5, 300, 11, f);
  const auto valid = function_dataset(5, 150, 12, f);
  BoostOptions options;
  options.num_trees = 25;
  options.max_depth = 3;
  BoostLearner learner(options, "xgb-test");
  core::Rng rng(13);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_GT(model.valid_acc, 0.9);
}

}  // namespace
}  // namespace lsml::learn
