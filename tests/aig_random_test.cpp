// Random logic-cone generator tests, including the regression for the
// wide-cone fallback (a 200-input cone must always come back with an
// output, even when every attempt collapses below the size target).

#include <gtest/gtest.h>

#include "aig/aig_random.hpp"
#include "core/rng.hpp"

namespace lsml::aig {
namespace {

TEST(RandomCone, AlwaysHasAnOutput) {
  // Regression: ex59-sized cones (200 inputs) used to return an empty AIG
  // when no attempt met the structural-size threshold.
  for (const std::uint32_t inputs : {16u, 82u, 200u}) {
    core::Rng rng(inputs);
    ConeOptions options;
    options.num_inputs = inputs;
    options.num_ands = inputs * 12;
    options.max_tries = 8;  // few tries makes the fallback path likely
    const Aig g = random_cone(options, rng);
    ASSERT_EQ(g.num_outputs(), 1u) << inputs << " inputs";
    // And it must be evaluable.
    std::vector<std::uint8_t> row(inputs, 0);
    (void)g.eval_row(row);
  }
}

TEST(RandomCone, DeterministicGivenSeed) {
  ConeOptions options;
  options.num_inputs = 24;
  options.num_ands = 200;
  core::Rng rng_a(5);
  core::Rng rng_b(5);
  const Aig a = random_cone(options, rng_a);
  const Aig b = random_cone(options, rng_b);
  ASSERT_EQ(a.num_ands(), b.num_ands());
  core::Rng probe(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> row(24);
    for (auto& bit : row) {
      bit = probe.flip(0.5) ? 1 : 0;
    }
    ASSERT_EQ(a.eval_row(row)[0], b.eval_row(row)[0]);
  }
}

TEST(RandomCone, FlavorsProduceSubstantialCones) {
  for (const auto flavor :
       {ConeFlavor::kRandom, ConeFlavor::kXorRich, ConeFlavor::kArith}) {
    core::Rng rng(static_cast<std::uint64_t>(flavor) + 11);
    ConeOptions options;
    options.num_inputs = 23;
    options.num_ands = 300;
    options.flavor = flavor;
    const Aig g = random_cone(options, rng);
    EXPECT_GT(g.num_ands(), 30u);
    core::Rng probe(3);
    const double onset = onset_fraction(g, 2048, probe);
    EXPECT_GT(onset, 0.05);
    EXPECT_LT(onset, 0.95);
  }
}

TEST(OnsetFraction, ConstantCircuits) {
  Aig g(4);
  g.add_output(kLitTrue);
  core::Rng rng(1);
  EXPECT_DOUBLE_EQ(onset_fraction(g, 512, rng), 1.0);
  Aig z(4);
  z.add_output(kLitFalse);
  EXPECT_DOUBLE_EQ(onset_fraction(z, 512, rng), 0.0);
}

}  // namespace
}  // namespace lsml::aig
