// Arbitrary-width arithmetic checked against native integers, plus
// multi-limb carry/borrow paths.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "oracle/bigint.hpp"

namespace lsml::oracle {
namespace {

Limbs from_u64(std::uint64_t v, std::size_t limbs = 1) {
  Limbs out(limbs, 0);
  out[0] = v;
  return out;
}

std::uint64_t to_u64(const Limbs& x) { return x.empty() ? 0 : x[0]; }

TEST(BigInt, LimbsFromRow) {
  core::BitVec row(20);
  row.set(0, true);
  row.set(5, true);
  row.set(12, true);
  const Limbs a = limbs_from_row(row, 0, 10);   // bits 0..9 -> 0b0000100001
  const Limbs b = limbs_from_row(row, 10, 10);  // bits 10..19 -> bit2
  EXPECT_EQ(to_u64(a), 0b100001u);
  EXPECT_EQ(to_u64(b), 0b100u);
}

TEST(BigInt, AddSmallValues) {
  for (std::uint64_t a = 0; a < 40; a += 3) {
    for (std::uint64_t b = 0; b < 40; b += 7) {
      EXPECT_EQ(to_u64(add(from_u64(a), from_u64(b))), a + b);
    }
  }
}

TEST(BigInt, AddCarriesAcrossLimbs) {
  const Limbs a = from_u64(~0ULL);
  const Limbs b = from_u64(1);
  const Limbs s = add(a, b);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 1u);
}

TEST(BigInt, MulMatchesNative) {
  core::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next() & 0xffffffffULL;
    const std::uint64_t b = rng.next() & 0xffffffffULL;
    EXPECT_EQ(to_u64(mul(from_u64(a), from_u64(b))), a * b);
  }
}

TEST(BigInt, MulMultiLimb) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const Limbs p = mul(from_u64(~0ULL), from_u64(~0ULL));
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[1], ~0ULL - 1);
}

TEST(BigInt, CompareOrdersValues) {
  EXPECT_EQ(compare(from_u64(3), from_u64(5)), -1);
  EXPECT_EQ(compare(from_u64(5), from_u64(5)), 0);
  EXPECT_EQ(compare(from_u64(9), from_u64(5)), 1);
  // Different limb counts zero-extend.
  EXPECT_EQ(compare(from_u64(5, 2), from_u64(5, 1)), 0);
  Limbs big(2, 0);
  big[1] = 1;
  EXPECT_EQ(compare(big, from_u64(~0ULL)), 1);
}

TEST(BigInt, DivRemMatchesNative) {
  core::Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = rng.next() >> 1;
    const std::uint64_t b = (rng.next() >> 33) + 1;
    Limbs rem;
    const Limbs q = divrem(from_u64(a), from_u64(b), &rem);
    EXPECT_EQ(to_u64(q), a / b);
    EXPECT_EQ(to_u64(rem), a % b);
  }
}

TEST(BigInt, DivByZeroSaturates) {
  Limbs rem;
  const Limbs q = divrem(from_u64(123), from_u64(0), &rem);
  EXPECT_EQ(to_u64(q), ~0ULL);
  EXPECT_EQ(to_u64(rem), 123u);
}

class IsqrtSweep : public ::testing::TestWithParam<int> {};

TEST_P(IsqrtSweep, MatchesFloorSqrt) {
  core::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next() >> (GetParam() % 32);
    const std::uint64_t r = to_u64(isqrt(from_u64(a)));
    // Verify algebraically: r^2 <= a < (r+1)^2.
    EXPECT_LE(static_cast<unsigned __int128>(r) * r, a);
    EXPECT_GT(static_cast<unsigned __int128>(r + 1) * (r + 1), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsqrtSweep, ::testing::Range(1, 9));

TEST(BigInt, IsqrtExhaustiveSmall) {
  for (std::uint64_t a = 0; a < 4096; ++a) {
    const std::uint64_t r = to_u64(isqrt(from_u64(a)));
    EXPECT_EQ(r, static_cast<std::uint64_t>(std::sqrt(static_cast<double>(a))))
        << "a=" << a;
  }
}

TEST(BigInt, IsqrtMultiLimb) {
  // a = 2^100 -> sqrt = 2^50.
  Limbs a(2, 0);
  a[1] = 1ULL << 36;  // bit 100
  const Limbs r = isqrt(a);
  EXPECT_EQ(r[0], 1ULL << 50);
  EXPECT_EQ(r[1], 0u);
}

TEST(BigInt, GetBitOutOfRangeIsZero) {
  EXPECT_FALSE(get_bit(from_u64(1), 64));
  EXPECT_TRUE(get_bit(from_u64(1), 0));
}

}  // namespace
}  // namespace lsml::oracle
