// PART-style rule list tests.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/rules.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(RuleList, LearnsDnfTarget) {
  const auto f = [](const core::BitVec& r) {
    return (r.get(0) && r.get(1)) || (!r.get(2) && r.get(4));
  };
  const auto train = function_dataset(6, 500, 1, f);
  const auto test = function_dataset(6, 250, 2, f);
  core::Rng rng(3);
  const RuleList list = RuleList::fit(train, {}, rng);
  EXPECT_GT(data::accuracy(list.predict(test), test.labels()), 0.93);
  EXPECT_FALSE(list.rules().empty());
}

TEST(RuleList, FirstMatchingRuleWins) {
  // Construct a dataset where rule order matters: y = x0 ? 1 : x1.
  const auto train = function_dataset(3, 400, 4, [](const core::BitVec& r) {
    return r.get(0) || r.get(1);
  });
  core::Rng rng(5);
  const RuleList list = RuleList::fit(train, {}, rng);
  const core::BitVec pred = list.predict(train);
  EXPECT_GT(data::accuracy(pred, train.labels()), 0.97);
}

TEST(RuleList, AigMatchesPrediction) {
  const auto ds = function_dataset(7, 350, 6, [](const core::BitVec& r) {
    return r.get(2) != r.get(5);
  });
  RuleListOptions options;
  options.max_rules = 32;
  core::Rng rng(7);
  const RuleList list = RuleList::fit(ds, options, rng);
  const aig::Aig g = list.to_aig(7);
  const auto sim = g.simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], list.predict(ds))
      << "the priority-chain circuit must implement the rule semantics";
}

TEST(RuleList, MaxRulesBoundsModel) {
  const auto ds = function_dataset(10, 500, 8, [](const core::BitVec& r) {
    return r.count() % 2 == 0;  // hard target -> many candidate rules
  });
  RuleListOptions options;
  options.max_rules = 5;
  core::Rng rng(9);
  const RuleList list = RuleList::fit(ds, options, rng);
  EXPECT_LE(list.rules().size(), 5u);
}

TEST(RuleList, PureDatasetYieldsDefaultOnly) {
  data::Dataset ds(4, 60);
  for (std::size_t r = 0; r < 60; ++r) {
    ds.set_label(r, true);
  }
  core::Rng rng(10);
  const RuleList list = RuleList::fit(ds, {}, rng);
  EXPECT_TRUE(list.rules().empty());
  EXPECT_TRUE(list.default_value());
}

TEST(RuleListLearner, EndToEnd) {
  const auto f = [](const core::BitVec& r) { return r.get(1) && !r.get(3); };
  const auto train = function_dataset(6, 300, 11, f);
  const auto valid = function_dataset(6, 150, 12, f);
  RuleListLearner learner({}, "part-test");
  core::Rng rng(13);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_GT(model.valid_acc, 0.9);
}

}  // namespace
}  // namespace lsml::learn
