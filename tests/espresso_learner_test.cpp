// EspressoLearner (the Teams 1/9 two-level flow) and its interaction with
// the portfolio selection machinery.

#include <gtest/gtest.h>

#include "learn/espresso_learner.hpp"
#include "oracle/suite.hpp"
#include "portfolio/team.hpp"

namespace lsml::learn {
namespace {

TEST(EspressoLearner, ExactOnTrainingData) {
  oracle::SuiteOptions so;
  so.rows_per_split = 250;
  const auto bench = oracle::make_benchmark(30, so);  // 10-bit comparator
  EspressoLearner learner({}, "espresso");
  core::Rng rng(1);
  const TrainedModel model = learner.fit(bench.train, bench.valid, rng);
  EXPECT_DOUBLE_EQ(model.train_acc, 1.0)
      << "the cover must be exact on the care set";
  EXPECT_GT(model.valid_acc, 0.55) << "expansion should generalize a bit";
}

TEST(EspressoLearner, GeneralizesOnStructuredCone) {
  oracle::SuiteOptions so;
  so.rows_per_split = 300;
  const auto bench = oracle::make_benchmark(50, so);  // 16-input cone
  EspressoLearner learner({}, "espresso");
  core::Rng rng(2);
  const TrainedModel model = learner.fit(bench.train, bench.valid, rng);
  const double test = circuit_accuracy(model.circuit, bench.test);
  EXPECT_GT(test, 0.6);
}

TEST(EspressoLearner, CapsKeepCircuitsBounded) {
  oracle::SuiteOptions so;
  so.rows_per_split = 400;
  const auto bench = oracle::make_benchmark(80, so);  // 784-input MNIST-like
  sop::EspressoOptions options;
  options.max_onset = 100;
  options.max_offset = 200;
  EspressoLearner learner(options, "espresso-capped");
  core::Rng rng(3);
  const TrainedModel model = learner.fit(bench.train, bench.valid, rng);
  EXPECT_GT(model.valid_acc, 0.4);
  EXPECT_LT(model.circuit.num_ands(), 30000u);
}

TEST(EspressoLearner, WorksInsidePortfolioSelection) {
  oracle::SuiteOptions so;
  so.rows_per_split = 200;
  const auto bench = oracle::make_benchmark(33, so);
  std::vector<TrainedModel> candidates;
  core::Rng rng(4);
  EspressoLearner espresso({}, "espresso");
  candidates.push_back(espresso.fit(bench.train, bench.valid, rng));
  const auto chosen = portfolio::select_best_within_budget(
      std::move(candidates), bench.train, bench.valid, 5000, rng);
  EXPECT_LE(chosen.circuit.num_ands(), 5000u);
}

}  // namespace
}  // namespace lsml::learn
