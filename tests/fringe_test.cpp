// Fringe feature extraction (Team 3): feature bank mechanics and the
// headline behaviour — Fr-DT beats plain DT on XOR-structured functions.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/fringe.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(FeatureBank, ExtendComputesCompositeColumns) {
  data::Dataset ds(3, 4);
  // rows: x0 x1 x2 = (0,0,0), (1,0,1), (1,1,0), (0,1,1)
  ds.set_input(1, 0, true);
  ds.set_input(1, 2, true);
  ds.set_input(2, 0, true);
  ds.set_input(2, 1, true);
  ds.set_input(3, 1, true);
  ds.set_input(3, 2, true);

  FeatureBank bank(3);
  DerivedFeature andf;
  andf.op = DerivedFeature::Op::kAnd;
  andf.a = 0;
  andf.b = 1;
  EXPECT_TRUE(bank.add(andf));
  EXPECT_FALSE(bank.add(andf)) << "duplicates are rejected";
  DerivedFeature xorf;
  xorf.op = DerivedFeature::Op::kXor;
  xorf.a = 0;
  xorf.b = 2;
  EXPECT_TRUE(bank.add(xorf));

  const data::Dataset ext = bank.extend(ds);
  ASSERT_EQ(ext.num_inputs(), 5u);
  // AND(x0,x1) = 0,0,1,0 ; XOR(x0,x2) = 0,0,1,1
  EXPECT_FALSE(ext.input(0, 3));
  EXPECT_TRUE(ext.input(2, 3));
  EXPECT_FALSE(ext.input(1, 4));
  EXPECT_TRUE(ext.input(2, 4));
  EXPECT_TRUE(ext.input(3, 4));
}

TEST(FeatureBank, CanonicalizationMergesEquivalentAnds) {
  FeatureBank bank(4);
  DerivedFeature a;
  a.op = DerivedFeature::Op::kAnd;
  a.a = 2;
  a.b = 1;
  a.not_a = true;
  EXPECT_TRUE(bank.add(a));
  DerivedFeature swapped;
  swapped.op = DerivedFeature::Op::kAnd;
  swapped.a = 1;
  swapped.b = 2;
  swapped.not_b = true;
  EXPECT_FALSE(bank.add(swapped)) << "operand order must not matter";
}

TEST(FeatureBank, LitsMatchColumns) {
  core::Rng rng(3);
  data::Dataset ds(4, 64);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      ds.set_input(r, c, rng.flip(0.5));
    }
  }
  FeatureBank bank(4);
  DerivedFeature f1;
  f1.op = DerivedFeature::Op::kXor;
  f1.a = 0;
  f1.b = 3;
  bank.add(f1);
  DerivedFeature f2;  // derived-of-derived
  f2.op = DerivedFeature::Op::kAnd;
  f2.a = 4;  // the xor feature
  f2.b = 1;
  bank.add(f2);

  const data::Dataset ext = bank.extend(ds);
  aig::Aig g(4);
  const auto lits = bank.build_lits(g);
  ASSERT_EQ(lits.size(), 6u);
  for (std::size_t fidx = 4; fidx < 6; ++fidx) {
    // Check via simulation of a fresh circuit exposing lits[fidx].
    aig::Aig h(4);
    const auto hl = bank.build_lits(h);
    h.add_output(hl[fidx]);
    const auto sim = h.simulate(ds.column_ptrs());
    EXPECT_EQ(sim[0], ext.column(fidx)) << "feature " << fidx;
  }
}

TEST(ExtractFringe, FindsCompositeOnConjunctionTree) {
  const auto ds = function_dataset(6, 400, 5, [](const core::BitVec& r) {
    return r.get(0) && r.get(1);
  });
  core::Rng rng(6);
  const DecisionTree tree = DecisionTree::fit(ds, {}, rng);
  const auto feats = extract_fringe_features(tree);
  EXPECT_FALSE(feats.empty());
}

TEST(FringeLearner, BeatsPlainDtOnXorOfPairs) {
  // f = (x0 & x1) XOR (x2 & x3): composite features make this learnable.
  const auto f = [](const core::BitVec& r) {
    return (r.get(0) && r.get(1)) != (r.get(2) && r.get(3));
  };
  const auto train = function_dataset(10, 700, 7, f);
  const auto valid = function_dataset(10, 300, 8, f);

  FringeOptions options;
  FringeLearner fringe(options, "fr");
  core::Rng rng(9);
  const TrainedModel fr_model = fringe.fit(train, valid, rng);

  DtOptions plain;
  plain.max_depth = 4;  // matched complexity budget
  DtLearner dt(plain, "dt");
  core::Rng rng2(9);
  const TrainedModel dt_model = dt.fit(train, valid, rng2);

  EXPECT_GE(fr_model.valid_acc, dt_model.valid_acc);
  EXPECT_GT(fr_model.valid_acc, 0.9);
}

TEST(FringeLearner, AigMatchesOnTrainingData) {
  const auto f = [](const core::BitVec& r) {
    return (r.get(1) != r.get(2)) && r.get(0);
  };
  const auto train = function_dataset(8, 500, 10, f);
  const auto valid = function_dataset(8, 200, 11, f);
  FringeLearner learner(FringeOptions{}, "fr");
  core::Rng rng(12);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_GT(model.train_acc, 0.97);
  EXPECT_GT(model.valid_acc, 0.9);
}

}  // namespace
}  // namespace lsml::learn
