// Cross-module property tests.
//
// These pin down the invariants the reproduction leans on everywhere:
//  * every learner's synthesized AIG computes exactly its native prediction,
//  * optimization passes preserve functionality on structured circuits,
//  * ESPRESSO covers are consistent with the care set by construction,
//  * matching-produced circuits equal their oracle on unseen data,
//  * benchmark generation is deterministic and split-disjoint across ids.

#include <gtest/gtest.h>

#include <unordered_set>

#include "aig/aig_build.hpp"
#include "aig/aig_opt.hpp"
#include "oracle/logic_oracles.hpp"
#include "learn/boosting.hpp"
#include "learn/dt.hpp"
#include "learn/forest.hpp"
#include "learn/lutnet.hpp"
#include "learn/rules.hpp"
#include "oracle/suite.hpp"
#include "sop/espresso.hpp"
#include "sop/sop_to_aig.hpp"

namespace lsml {
namespace {

data::Dataset random_labelled(std::size_t inputs, std::size_t rows, int seed) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t c = 0; c < inputs; ++c) {
    ds.column(c).randomize(rng);
  }
  // Structured-but-noisy labels: two conjunctions plus 5% flips.
  for (std::size_t r = 0; r < rows; ++r) {
    bool y = (ds.input(r, 0) && ds.input(r, 1)) ||
             (ds.input(r, 2) && !ds.input(r, 3));
    if (rng.flip(0.05)) {
      y = !y;
    }
    ds.set_label(r, y);
  }
  return ds;
}

class LearnerAigEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LearnerAigEquivalence, DtCircuitEqualsNativePrediction) {
  const auto ds = random_labelled(9, 400, GetParam());
  core::Rng rng(GetParam() * 3 + 1);
  learn::DtOptions options;
  options.min_samples_leaf = 1 + GetParam() % 4;
  const auto tree = learn::DecisionTree::fit(ds, options, rng);
  const auto sim = tree.to_aig(9).simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], tree.predict(ds));
}

TEST_P(LearnerAigEquivalence, OptimizedDtCircuitStaysEquivalent) {
  const auto ds = random_labelled(9, 400, GetParam() + 100);
  core::Rng rng(GetParam());
  const auto tree = learn::DecisionTree::fit(ds, {}, rng);
  const aig::Aig raw = tree.to_aig(9);
  const aig::Aig opt = aig::optimize(raw);
  const auto a = raw.simulate(ds.column_ptrs());
  const auto b = opt.simulate(ds.column_ptrs());
  EXPECT_EQ(a[0], b[0]) << "optimize() must never change the function";
}

TEST_P(LearnerAigEquivalence, ForestCircuitEqualsVote) {
  const auto ds = random_labelled(8, 300, GetParam() + 200);
  core::Rng rng(GetParam() * 7);
  learn::ForestOptions options;
  options.num_trees = 3 + 2 * (GetParam() % 3);
  options.tree.max_depth = 5;
  const auto forest = learn::RandomForest::fit(ds, options, rng);
  const auto sim = forest.to_aig(8).simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], forest.predict(ds));
}

TEST_P(LearnerAigEquivalence, BoostedCircuitEqualsQuantizedVote) {
  const auto ds = random_labelled(8, 300, GetParam() + 300);
  core::Rng rng(GetParam() * 11);
  learn::BoostOptions options;
  options.num_trees = 10 + GetParam();
  options.max_depth = 3;
  const auto model = learn::GradientBoosted::fit(ds, options, rng);
  const auto sim = model.to_aig(8).simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], model.predict_quantized(ds));
}

TEST_P(LearnerAigEquivalence, LutNetCircuitEqualsForwardPass) {
  const auto ds = random_labelled(10, 300, GetParam() + 400);
  core::Rng rng(GetParam() * 13);
  learn::LutNetOptions options;
  options.num_layers = 1 + GetParam() % 3;
  options.luts_per_layer = 16;
  options.lut_inputs = 2 + GetParam() % 5;
  const auto net = learn::LutNetwork::fit(ds, options, rng);
  const auto sim = net.to_aig(10).simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], net.predict(ds));
}

TEST_P(LearnerAigEquivalence, RuleListCircuitEqualsFirstMatchSemantics) {
  const auto ds = random_labelled(8, 300, GetParam() + 500);
  core::Rng rng(GetParam() * 17);
  learn::RuleListOptions options;
  options.max_rules = 4 + static_cast<std::size_t>(GetParam());
  const auto list = learn::RuleList::fit(ds, options, rng);
  const auto sim = list.to_aig(8).simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], list.predict(ds));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerAigEquivalence, ::testing::Range(1, 9));

class EspressoConsistency : public ::testing::TestWithParam<int> {};

TEST_P(EspressoConsistency, CoverReproducesEveryTrainingLabel) {
  // Distinct rows only: duplicated rows with contradictory (noisy) labels
  // make a consistent cover impossible by definition.
  auto ds = random_labelled(10 + GetParam(), 250, GetParam());
  {
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < ds.num_rows(); ++r) {
      if (seen.insert(ds.row_hash(r)).second) {
        keep.push_back(r);
      }
    }
    ds = ds.select_rows(keep);
  }
  core::Rng rng(GetParam());
  const auto cover = sop::espresso(ds, {}, rng);
  EXPECT_EQ(data::accuracy(sop::cover_predict(cover, ds), ds.labels()), 1.0);
  // And the AIG build agrees with the cover.
  const auto sim =
      sop::cover_to_aig(cover, ds.num_inputs()).simulate(ds.column_ptrs());
  EXPECT_EQ(sim[0], sop::cover_predict(cover, ds));
}

INSTANTIATE_TEST_SUITE_P(Widths, EspressoConsistency, ::testing::Range(0, 8));

class ArithmeticOptimize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArithmeticOptimize, AdderCircuitSurvivesOptimize) {
  const std::size_t k = GetParam();
  aig::Aig g(static_cast<std::uint32_t>(2 * k));
  std::vector<aig::Lit> a;
  std::vector<aig::Lit> b;
  for (std::uint32_t i = 0; i < k; ++i) {
    a.push_back(g.pi(i));
    b.push_back(g.pi(static_cast<std::uint32_t>(k + i)));
  }
  const auto sum = aig::ripple_adder(g, a, b);
  g.add_output(sum[k]);      // carry out
  g.add_output(sum[k - 1]);  // 2nd MSB
  const aig::Aig opt = aig::optimize(g);
  EXPECT_LE(opt.num_ands(), g.cleanup().num_ands());
  core::Rng rng(k);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> row(2 * k);
    std::uint64_t va = 0;
    std::uint64_t vb = 0;
    for (std::size_t i = 0; i < k; ++i) {
      row[i] = rng.flip(0.5);
      row[k + i] = rng.flip(0.5);
      va |= static_cast<std::uint64_t>(row[i]) << i;
      vb |= static_cast<std::uint64_t>(row[k + i]) << i;
    }
    const auto out = opt.eval_row(row);
    const std::uint64_t sum_val = va + vb;
    EXPECT_EQ(out[0], ((sum_val >> k) & 1) == 1);
    EXPECT_EQ(out[1], ((sum_val >> (k - 1)) & 1) == 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithmeticOptimize,
                         ::testing::Values(4u, 8u, 16u, 24u));

class SuiteDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(SuiteDeterminism, RegenerationIsBitIdentical) {
  oracle::SuiteOptions options;
  options.rows_per_split = 120;
  const auto a = oracle::make_benchmark(GetParam(), options);
  const auto b = oracle::make_benchmark(GetParam(), options);
  ASSERT_EQ(a.num_inputs, b.num_inputs);
  EXPECT_EQ(a.train.labels(), b.train.labels());
  EXPECT_EQ(a.valid.labels(), b.valid.labels());
  EXPECT_EQ(a.test.labels(), b.test.labels());
  for (std::size_t c = 0; c < a.num_inputs; c += 7) {
    EXPECT_EQ(a.train.column(c), b.train.column(c));
  }
}

TEST_P(SuiteDeterminism, SplitsShareNoRows) {
  oracle::SuiteOptions options;
  options.rows_per_split = 120;
  const auto bench = oracle::make_benchmark(GetParam(), options);
  std::unordered_set<std::uint64_t> seen;
  for (const auto* ds : {&bench.train, &bench.valid, &bench.test}) {
    for (std::size_t r = 0; r < ds->num_rows(); ++r) {
      EXPECT_TRUE(seen.insert(ds->row_hash(r)).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AcrossCategories, SuiteDeterminism,
                         ::testing::Values(0, 11, 22, 33, 44, 55, 66, 73, 74,
                                           77, 83, 95));

TEST(SymmetricBuilderProperty, MatchesOracleForAllPaperSignatures) {
  const char* signatures[5] = {
      "00000000111111111", "11111100000111111", "00011110001111000",
      "00001110101110000", "00000011111000000"};
  for (const char* sig : signatures) {
    const oracle::SymmetricOracle oracle_fn(16, sig);
    aig::Aig g(16);
    std::vector<aig::Lit> lits;
    std::vector<bool> bits;
    for (std::uint32_t i = 0; i < 16; ++i) {
      lits.push_back(g.pi(i));
    }
    for (const char* c = sig; *c != '\0'; ++c) {
      bits.push_back(*c == '1');
    }
    g.add_output(aig::symmetric_function(g, lits, bits));
    core::Rng rng(1);
    for (int trial = 0; trial < 300; ++trial) {
      core::BitVec row(16);
      row.randomize(rng);
      std::vector<std::uint8_t> bytes(16);
      for (std::size_t i = 0; i < 16; ++i) {
        bytes[i] = row.get(i);
      }
      ASSERT_EQ(g.eval_row(bytes)[0], oracle_fn.eval(row)) << sig;
    }
  }
}

TEST(BalanceProperty, NeverIncreasesDepthOnConeSweeps) {
  for (int seed = 1; seed <= 10; ++seed) {
    core::Rng rng(seed);
    aig::ConeOptions options;
    options.num_inputs = 12;
    options.num_ands = 200;
    options.max_tries = 3;
    const aig::Aig g = aig::random_cone(options, rng);
    const aig::Aig b = aig::balance(g);
    EXPECT_LE(b.num_levels(), g.num_levels()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lsml
