// Feature scoring and selection tests.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "feature/selection.hpp"

namespace lsml::feature {
namespace {

// Column 2 equals the label, column 5 is its complement, others are noise.
data::Dataset planted_dataset(std::size_t rows, int seed) {
  core::Rng rng(seed);
  data::Dataset ds(8, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const bool y = rng.flip(0.5);
    ds.set_label(r, y);
    for (std::size_t c = 0; c < 8; ++c) {
      if (c == 2) {
        ds.set_input(r, c, y);
      } else if (c == 5) {
        ds.set_input(r, c, !y);
      } else {
        ds.set_input(r, c, rng.flip(0.5));
      }
    }
  }
  return ds;
}

TEST(Scores, MutualInformationFindsPlantedFeatures) {
  const auto ds = planted_dataset(500, 1);
  const auto mi = mutual_information(ds);
  for (std::size_t c = 0; c < 8; ++c) {
    if (c == 2 || c == 5) {
      EXPECT_GT(mi[c], 0.5);
    } else {
      EXPECT_LT(mi[c], 0.05);
    }
  }
}

TEST(Scores, Chi2FindsPlantedFeatures) {
  const auto ds = planted_dataset(500, 2);
  const auto chi2 = chi2_scores(ds);
  const auto top = select_k_best(chi2, 2);
  EXPECT_EQ(top, (std::vector<std::size_t>{2, 5}));
}

TEST(Scores, CorrelationSymmetricInPolarity) {
  const auto ds = planted_dataset(500, 3);
  const auto corr = correlation_scores(ds);
  EXPECT_NEAR(corr[2], corr[5], 1e-9) << "|corr| ignores polarity";
  EXPECT_NEAR(corr[2], 1.0, 1e-9);
}

TEST(Scores, ConstantColumnScoresZero) {
  data::Dataset ds(2, 100);
  core::Rng rng(4);
  for (std::size_t r = 0; r < 100; ++r) {
    ds.set_label(r, rng.flip(0.5));
    ds.set_input(r, 0, true);  // constant
    ds.set_input(r, 1, ds.label(r));
  }
  EXPECT_EQ(correlation_scores(ds)[0], 0.0);
  EXPECT_EQ(mutual_information(ds)[0], 0.0);
  EXPECT_GT(mutual_information(ds)[1], 0.5);
}

TEST(Select, KBestOrdersAndSortsIndices) {
  const std::vector<double> scores{0.1, 0.9, 0.5, 0.9, 0.2};
  EXPECT_EQ(select_k_best(scores, 2), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(select_k_best(scores, 3), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(select_k_best(scores, 99).size(), 5u);
}

TEST(Select, PercentileRoundsUp) {
  const std::vector<double> scores{0.4, 0.3, 0.2, 0.1};
  EXPECT_EQ(select_percentile(scores, 25).size(), 1u);
  EXPECT_EQ(select_percentile(scores, 26).size(), 2u);
  EXPECT_EQ(select_percentile(scores, 100).size(), 4u);
  EXPECT_EQ(select_percentile(scores, 1).size(), 1u) << "at least one";
}

TEST(Scores, EmptyDataset) {
  data::Dataset ds(3, 0);
  EXPECT_EQ(mutual_information(ds), (std::vector<double>{0, 0, 0}));
  EXPECT_EQ(chi2_scores(ds), (std::vector<double>{0, 0, 0}));
}

}  // namespace
}  // namespace lsml::feature
