// AIG core tests: structural hashing, gate semantics, simulation paths,
// levels, cleanup, and ensemble append.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "core/rng.hpp"

namespace lsml::aig {
namespace {

TEST(Aig, TrivialAndSimplifications) {
  Aig g(2);
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  EXPECT_EQ(g.and2(kLitFalse, a), kLitFalse);
  EXPECT_EQ(g.and2(kLitTrue, a), a);
  EXPECT_EQ(g.and2(a, a), a);
  EXPECT_EQ(g.and2(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0u);
  const Lit ab = g.and2(a, b);
  EXPECT_EQ(g.num_ands(), 1u);
  EXPECT_EQ(g.and2(b, a), ab) << "structural hashing must be commutative";
  EXPECT_EQ(g.num_ands(), 1u);
}

TEST(Aig, GateSemantics) {
  Aig g(3);
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit c = g.pi(2);
  g.add_output(g.and2(a, b));
  g.add_output(g.or2(a, b));
  g.add_output(g.xor2(a, b));
  g.add_output(g.xnor2(a, b));
  g.add_output(g.mux(a, b, c));
  g.add_output(g.maj3(a, b, c));
  for (int m = 0; m < 8; ++m) {
    const bool va = m & 1;
    const bool vb = m & 2;
    const bool vc = m & 4;
    const auto out = g.eval_row({static_cast<std::uint8_t>(va),
                                 static_cast<std::uint8_t>(vb),
                                 static_cast<std::uint8_t>(vc)});
    EXPECT_EQ(out[0], va && vb);
    EXPECT_EQ(out[1], va || vb);
    EXPECT_EQ(out[2], va != vb);
    EXPECT_EQ(out[3], va == vb);
    EXPECT_EQ(out[4], va ? vb : vc);
    EXPECT_EQ(out[5], (va && vb) || (va && vc) || (vb && vc));
  }
}

TEST(Aig, SimulateMatchesEvalRow) {
  core::Rng rng(5);
  Aig g(6);
  // Random structure.
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < 6; ++i) {
    pool.push_back(g.pi(i));
  }
  for (int i = 0; i < 40; ++i) {
    const Lit a = lit_notc(pool[rng.below(pool.size())], rng.flip(0.5));
    const Lit b = lit_notc(pool[rng.below(pool.size())], rng.flip(0.5));
    pool.push_back(g.and2(a, b));
  }
  g.add_output(lit_notc(pool.back(), true));

  const std::size_t rows = 100;
  std::vector<core::BitVec> cols(6, core::BitVec(rows));
  std::vector<const core::BitVec*> ptrs;
  for (auto& c : cols) {
    c.randomize(rng);
    ptrs.push_back(&c);
  }
  const auto sim = g.simulate(ptrs);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::uint8_t> row(6);
    for (int i = 0; i < 6; ++i) {
      row[static_cast<std::size_t>(i)] = cols[static_cast<std::size_t>(i)].get(r);
    }
    EXPECT_EQ(sim[0].get(r), g.eval_row(row)[0]) << "row " << r;
  }
}

TEST(Aig, SimulateComplementedOutputKeepsTailClean) {
  Aig g(1);
  g.add_output(lit_not(g.pi(0)));
  core::BitVec col(70);  // deliberately not a multiple of 64
  std::vector<const core::BitVec*> ptrs{&col};
  const auto out = g.simulate(ptrs);
  EXPECT_EQ(out[0].count(), 70u) << "tail bits beyond size must stay zero";
}

TEST(Aig, LevelsAndDepth) {
  Aig g(4);
  const Lit n1 = g.and2(g.pi(0), g.pi(1));
  const Lit n2 = g.and2(g.pi(2), g.pi(3));
  const Lit n3 = g.and2(n1, n2);
  g.add_output(n3);
  EXPECT_EQ(g.num_levels(), 2u);
  const auto levels = g.levels();
  EXPECT_EQ(levels[lit_var(n1)], 1u);
  EXPECT_EQ(levels[lit_var(n3)], 2u);
}

TEST(Aig, CleanupDropsDanglingAndPreservesFunction) {
  Aig g(3);
  const Lit keep = g.and2(g.pi(0), g.pi(1));
  (void)g.and2(g.pi(1), g.pi(2));  // dangling
  g.add_output(lit_not(keep));
  EXPECT_EQ(g.num_ands(), 2u);
  EXPECT_EQ(g.cone_size(), 1u);
  const Aig clean = g.cleanup();
  EXPECT_EQ(clean.num_ands(), 1u);
  for (int m = 0; m < 8; ++m) {
    const std::vector<std::uint8_t> row{
        static_cast<std::uint8_t>(m & 1), static_cast<std::uint8_t>(m / 2 & 1),
        static_cast<std::uint8_t>(m / 4 & 1)};
    EXPECT_EQ(g.eval_row(row)[0], clean.eval_row(row)[0]);
  }
}

TEST(Aig, FanoutCounts) {
  Aig g(2);
  const Lit shared = g.and2(g.pi(0), g.pi(1));
  const Lit top = g.and2(shared, lit_not(g.pi(0)));
  g.add_output(shared);
  g.add_output(top);
  const auto refs = g.fanout_counts();
  EXPECT_EQ(refs[lit_var(shared)], 2u);  // used by top and as output
  EXPECT_EQ(refs[lit_var(top)], 1u);
}

TEST(Aig, AppendAigComputesSameFunction) {
  Aig src(2);
  src.add_output(src.xor2(src.pi(0), src.pi(1)));
  Aig dst(4);
  const Lit sub = append_aig(dst, src);
  dst.add_output(dst.and2(sub, dst.pi(2)));
  for (int m = 0; m < 16; ++m) {
    const bool x0 = m & 1;
    const bool x1 = m & 2;
    const bool x2 = m & 4;
    const auto out = dst.eval_row({static_cast<std::uint8_t>(x0),
                                   static_cast<std::uint8_t>(x1),
                                   static_cast<std::uint8_t>(x2), 0});
    EXPECT_EQ(out[0], (x0 != x1) && x2);
  }
}

TEST(Aig, AgreementMetric) {
  Aig g(1);
  g.add_output(g.pi(0));
  core::BitVec col(8);
  col.set(0, true);
  col.set(1, true);
  core::BitVec labels(8);
  labels.set(0, true);  // agree on row 0; disagree on row 1; agree on 2..7
  std::vector<const core::BitVec*> ptrs{&col};
  EXPECT_DOUBLE_EQ(agreement(g, ptrs, labels), 7.0 / 8.0);
}

}  // namespace
}  // namespace lsml::aig
