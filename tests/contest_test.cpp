// Contest analytics tests: aggregates, Pareto, win rates, leaderboard.

#include <gtest/gtest.h>

#include "learn/dt.hpp"
#include "portfolio/contest.hpp"

namespace lsml::portfolio {
namespace {

portfolio::BenchmarkResult make_result(int id, std::string bench,
                                       std::string method, double train_acc,
                                       double valid_acc, double test_acc,
                                       std::uint32_t num_ands,
                                       std::uint32_t num_levels) {
  BenchmarkResult r;
  r.benchmark_id = id;
  r.benchmark = std::move(bench);
  r.method = std::move(method);
  r.train_acc = train_acc;
  r.valid_acc = valid_acc;
  r.test_acc = test_acc;
  r.num_ands = num_ands;
  r.num_levels = num_levels;
  return r;
}

std::vector<oracle::Benchmark> tiny_suite() {
  oracle::SuiteOptions options;
  options.rows_per_split = 200;
  std::vector<oracle::Benchmark> suite;
  suite.push_back(oracle::make_benchmark(30, options));  // comparator
  suite.push_back(oracle::make_benchmark(75, options));  // symmetric
  return suite;
}

TEST(Contest, RunSuiteProducesPerBenchmarkResults) {
  const auto suite = tiny_suite();
  learn::DtOptions dt;
  dt.max_depth = 8;
  learn::DtLearner learner(dt, "dt8");
  const TeamRun run = run_suite(learner, 42, suite, 1);
  EXPECT_EQ(run.team, 42);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_EQ(run.results[0].benchmark, "ex30");
  EXPECT_GT(run.results[0].test_acc, 0.6);
  EXPECT_GT(run.avg_test_acc(), 0.5);
  EXPECT_GE(run.avg_ands(), 0.0);
}

TEST(Contest, SerialAndParallelRunsAreBitIdentical) {
  const auto suite = tiny_suite();
  const auto factory = learn::LearnerFactory::from_registry("dt8");

  learn::DtOptions dt;
  dt.max_depth = 8;
  learn::DtLearner learner(dt, "dt8");
  const TeamRun serial = run_suite(learner, 42, suite, 1);

  ContestOptions parallel;
  parallel.num_threads = 8;
  const TeamRun threaded = run_suite(factory, 42, suite, 1, parallel);

  ASSERT_EQ(serial.results.size(), threaded.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const auto& s = serial.results[i];
    const auto& p = threaded.results[i];
    EXPECT_EQ(s.benchmark_id, p.benchmark_id);
    EXPECT_EQ(s.method, p.method);
    EXPECT_EQ(s.train_acc, p.train_acc);
    EXPECT_EQ(s.valid_acc, p.valid_acc);
    EXPECT_EQ(s.test_acc, p.test_acc);
    EXPECT_EQ(s.num_ands, p.num_ands);
    EXPECT_EQ(s.num_levels, p.num_levels);
  }
}

TEST(Contest, RunContestMatchesPerTeamSerialRuns) {
  const auto suite = tiny_suite();
  const auto factory = learn::LearnerFactory::from_registry("dt8");

  ContestOptions options;
  options.num_threads = 4;
  ContestStats stats;
  const auto runs = run_contest({{1, factory}, {2, factory}}, suite, 7,
                                options, &stats);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(stats.tasks_completed, 4);
  EXPECT_GT(stats.elapsed_ms, 0.0);
  EXPECT_FALSE(stats.budget_exceeded);

  for (const auto& run : runs) {
    auto learner = factory.make();
    const TeamRun serial = run_suite(*learner, run.team, suite, 7);
    ASSERT_EQ(serial.results.size(), run.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      EXPECT_EQ(serial.results[i].test_acc, run.results[i].test_acc);
      EXPECT_EQ(serial.results[i].num_ands, run.results[i].num_ands);
    }
  }
  // Both teams cover the same suite in the same order...
  EXPECT_EQ(runs[0].results[0].benchmark, runs[1].results[0].benchmark);
  // ...but draw different RNG streams: split() must key on the team number.
  core::Rng root(7);
  EXPECT_NE(root.split(1, suite[0].id).next(),
            root.split(2, suite[0].id).next());
}

TEST(Contest, TimeBudgetIsReportedConsistently) {
  const auto suite = tiny_suite();
  const auto factory = learn::LearnerFactory::from_registry("dt8");
  ContestOptions options;
  options.num_threads = 2;
  options.time_budget_ms = 1;  // tight enough that real runs usually blow it
  ContestStats stats;
  const auto runs = run_suite(factory, 3, suite, 1, options, &stats);
  EXPECT_EQ(runs.results.size(), suite.size()) << "all tasks still run";
  // The flag is defined by the contract, not by how fast this machine is.
  EXPECT_EQ(stats.budget_exceeded,
            stats.elapsed_ms > static_cast<double>(options.time_budget_ms));

  ContestOptions unlimited;
  unlimited.num_threads = 2;
  ContestStats unlimited_stats;
  run_suite(factory, 3, suite, 1, unlimited, &unlimited_stats);
  EXPECT_FALSE(unlimited_stats.budget_exceeded) << "0 means no budget";
}

TEST(Contest, OverfitIsValidMinusTest) {
  TeamRun run;
  run.results.push_back(
      make_result(0, "a", "m", 1.0, 0.9, 0.8, 10, 3));
  run.results.push_back(
      make_result(1, "b", "m", 1.0, 0.7, 0.7, 20, 4));
  EXPECT_NEAR(run.overfit(), 0.05, 1e-12);
  EXPECT_NEAR(run.avg_ands(), 15.0, 1e-12);
}

TEST(Contest, ParetoIsMonotoneInBudget) {
  // Two synthetic teams: cheap/weak and expensive/strong.
  TeamRun cheap;
  cheap.team = 1;
  TeamRun strong;
  strong.team = 2;
  for (int b = 0; b < 5; ++b) {
    cheap.results.push_back(
        make_result(b, "ex", "m", 0, 0, 0.7, 50, 5));
    strong.results.push_back(
        make_result(b, "ex", "m", 0, 0, 0.95, 2000, 9));
  }
  const auto points =
      virtual_best_pareto({cheap, strong}, {100.0, 5000.0});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].avg_test_acc, 0.7, 1e-12);
  EXPECT_NEAR(points[1].avg_test_acc, 0.95, 1e-12);
  EXPECT_LE(points[0].avg_test_acc, points[1].avg_test_acc)
      << "a larger budget can only help the virtual best";
}

TEST(Contest, MaxAccuracyPerBenchmark) {
  TeamRun a;
  a.results.push_back(make_result(0, "x", "m", 0, 0, 0.6, 1, 1));
  a.results.push_back(make_result(1, "y", "m", 0, 0, 0.9, 1, 1));
  TeamRun b;
  b.results.push_back(make_result(0, "x", "m", 0, 0, 0.8, 1, 1));
  b.results.push_back(make_result(1, "y", "m", 0, 0, 0.5, 1, 1));
  const auto best = max_accuracy_per_benchmark({a, b});
  EXPECT_EQ(best, (std::vector<double>{0.8, 0.9}));
}

TEST(Contest, WinRatesCountBestAndNearBest) {
  TeamRun a;
  a.team = 1;
  a.results.push_back(make_result(0, "x", "m", 0, 0, 0.90, 1, 1));
  TeamRun b;
  b.team = 2;
  b.results.push_back(make_result(0, "x", "m", 0, 0, 0.895, 1, 1));
  TeamRun c;
  c.team = 3;
  c.results.push_back(make_result(0, "x", "m", 0, 0, 0.5, 1, 1));
  const auto rates = win_rates({a, b, c});
  EXPECT_EQ(rates[0].best, 1);
  EXPECT_EQ(rates[1].best, 0);
  EXPECT_EQ(rates[1].within_top1pct, 1);
  EXPECT_EQ(rates[2].within_top1pct, 0);
}

TEST(Contest, LeaderboardSortsByAccuracy) {
  TeamRun a;
  a.team = 1;
  a.results.push_back(make_result(0, "x", "m", 0, 0.8, 0.6, 10, 2));
  TeamRun b;
  b.team = 2;
  b.results.push_back(make_result(0, "x", "m", 0, 0.9, 0.9, 30, 3));
  const std::string table = format_leaderboard({a, b});
  const auto pos2 = table.find("  2 ");
  const auto pos1 = table.find("  1 ");
  ASSERT_NE(pos1, std::string::npos);
  ASSERT_NE(pos2, std::string::npos);
  EXPECT_LT(pos2, pos1) << "team 2 has higher accuracy, should be first";
}

}  // namespace
}  // namespace lsml::portfolio
