// Contest analytics tests: aggregates, Pareto, win rates, leaderboard.

#include <gtest/gtest.h>

#include "learn/dt.hpp"
#include "portfolio/contest.hpp"

namespace lsml::portfolio {
namespace {

std::vector<oracle::Benchmark> tiny_suite() {
  oracle::SuiteOptions options;
  options.rows_per_split = 200;
  std::vector<oracle::Benchmark> suite;
  suite.push_back(oracle::make_benchmark(30, options));  // comparator
  suite.push_back(oracle::make_benchmark(75, options));  // symmetric
  return suite;
}

TEST(Contest, RunSuiteProducesPerBenchmarkResults) {
  const auto suite = tiny_suite();
  learn::DtOptions dt;
  dt.max_depth = 8;
  learn::DtLearner learner(dt, "dt8");
  const TeamRun run = run_suite(learner, 42, suite, 1);
  EXPECT_EQ(run.team, 42);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_EQ(run.results[0].benchmark, "ex30");
  EXPECT_GT(run.results[0].test_acc, 0.6);
  EXPECT_GT(run.avg_test_acc(), 0.5);
  EXPECT_GE(run.avg_ands(), 0.0);
}

TEST(Contest, OverfitIsValidMinusTest) {
  TeamRun run;
  run.results.push_back(
      BenchmarkResult{0, "a", "m", 1.0, 0.9, 0.8, 10, 3});
  run.results.push_back(
      BenchmarkResult{1, "b", "m", 1.0, 0.7, 0.7, 20, 4});
  EXPECT_NEAR(run.overfit(), 0.05, 1e-12);
  EXPECT_NEAR(run.avg_ands(), 15.0, 1e-12);
}

TEST(Contest, ParetoIsMonotoneInBudget) {
  // Two synthetic teams: cheap/weak and expensive/strong.
  TeamRun cheap;
  cheap.team = 1;
  TeamRun strong;
  strong.team = 2;
  for (int b = 0; b < 5; ++b) {
    cheap.results.push_back(
        BenchmarkResult{b, "ex", "m", 0, 0, 0.7, 50, 5});
    strong.results.push_back(
        BenchmarkResult{b, "ex", "m", 0, 0, 0.95, 2000, 9});
  }
  const auto points =
      virtual_best_pareto({cheap, strong}, {100.0, 5000.0});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].avg_test_acc, 0.7, 1e-12);
  EXPECT_NEAR(points[1].avg_test_acc, 0.95, 1e-12);
  EXPECT_LE(points[0].avg_test_acc, points[1].avg_test_acc)
      << "a larger budget can only help the virtual best";
}

TEST(Contest, MaxAccuracyPerBenchmark) {
  TeamRun a;
  a.results.push_back(BenchmarkResult{0, "x", "m", 0, 0, 0.6, 1, 1});
  a.results.push_back(BenchmarkResult{1, "y", "m", 0, 0, 0.9, 1, 1});
  TeamRun b;
  b.results.push_back(BenchmarkResult{0, "x", "m", 0, 0, 0.8, 1, 1});
  b.results.push_back(BenchmarkResult{1, "y", "m", 0, 0, 0.5, 1, 1});
  const auto best = max_accuracy_per_benchmark({a, b});
  EXPECT_EQ(best, (std::vector<double>{0.8, 0.9}));
}

TEST(Contest, WinRatesCountBestAndNearBest) {
  TeamRun a;
  a.team = 1;
  a.results.push_back(BenchmarkResult{0, "x", "m", 0, 0, 0.90, 1, 1});
  TeamRun b;
  b.team = 2;
  b.results.push_back(BenchmarkResult{0, "x", "m", 0, 0, 0.895, 1, 1});
  TeamRun c;
  c.team = 3;
  c.results.push_back(BenchmarkResult{0, "x", "m", 0, 0, 0.5, 1, 1});
  const auto rates = win_rates({a, b, c});
  EXPECT_EQ(rates[0].best, 1);
  EXPECT_EQ(rates[1].best, 0);
  EXPECT_EQ(rates[1].within_top1pct, 1);
  EXPECT_EQ(rates[2].within_top1pct, 0);
}

TEST(Contest, LeaderboardSortsByAccuracy) {
  TeamRun a;
  a.team = 1;
  a.results.push_back(BenchmarkResult{0, "x", "m", 0, 0.8, 0.6, 10, 2});
  TeamRun b;
  b.team = 2;
  b.results.push_back(BenchmarkResult{0, "x", "m", 0, 0.9, 0.9, 30, 3});
  const std::string table = format_leaderboard({a, b});
  const auto pos2 = table.find("  2 ");
  const auto pos1 = table.find("  1 ");
  ASSERT_NE(pos1, std::string::npos);
  ASSERT_NE(pos2, std::string::npos);
  EXPECT_LT(pos2, pos1) << "team 2 has higher accuracy, should be first";
}

}  // namespace
}  // namespace lsml::portfolio
