// synth::ScriptSearch tests: feature extraction pinning, the unified
// OptRequest contract, search determinism under a fixed seed, experience
// persistence through suite::ResultCache, the never-worse-than-preset
// guarantee over a 50-cone pool, and policy/search agreement once a
// feature bucket is warm.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "aig/aig_io.hpp"
#include "aig/aig_random.hpp"
#include "core/rng.hpp"
#include "synth/features.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script_search.hpp"

namespace lsml::synth {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "lsml_scriptsearch_" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

aig::Aig test_cone(int seed, std::uint32_t inputs = 8,
                   std::uint32_t ands = 100) {
  core::Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  aig::ConeOptions cone;
  cone.num_inputs = inputs;
  cone.num_ands = ands;
  cone.flavor = seed % 3 == 0   ? aig::ConeFlavor::kXorRich
                : seed % 3 == 1 ? aig::ConeFlavor::kArith
                                : aig::ConeFlavor::kRandom;
  return aig::random_cone(cone, rng);
}

std::string aag_text(const aig::Aig& g) {
  std::ostringstream os;
  aig::write_aag(g, os);
  return os.str();
}

bool equivalent_exhaustive(const aig::Aig& a, const aig::Aig& b) {
  const std::size_t rows = std::size_t{1} << a.num_pis();
  std::vector<core::BitVec> cols(a.num_pis(), core::BitVec(rows));
  std::vector<const core::BitVec*> ptrs;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      if ((r >> c) & 1) {
        cols[c].set(r, true);
      }
    }
    ptrs.push_back(&cols[c]);
  }
  return a.simulate(ptrs)[0] == b.simulate(ptrs)[0];
}

// ---------------------------------------------------------------- features

TEST(Features, PinsTheExtractionRecipe) {
  // A hand-built 3-gate tree pins every extracted quantity; any change to
  // the recipe must show up here (and bump kFeatureSchemaVersion).
  aig::Aig g(4);
  const aig::Lit ab = g.and2(g.pi(0), g.pi(1));
  const aig::Lit cd = g.and2(g.pi(2), g.pi(3));
  g.add_output(g.and2(ab, cd));

  const FeatureVector f = extract_features(g);
  EXPECT_EQ(f.num_pis, 4u);
  EXPECT_EQ(f.num_pos, 1u);
  EXPECT_EQ(f.num_ands, 3u);
  EXPECT_EQ(f.num_levels, 2u);
  EXPECT_EQ(f.max_fanout, 1u);
  EXPECT_EQ(f.max_cone, 3u);
  EXPECT_DOUBLE_EQ(f.avg_fanout, 1.0);
  EXPECT_DOUBLE_EQ(f.avg_cone, 3.0);
  // Level octiles over depth 2: levels {1, 1} land in bucket 0, level {2}
  // in bucket 8 * (2 - 1) / 2 = 4.
  EXPECT_DOUBLE_EQ(f.level_histogram[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(f.level_histogram[4], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(f.level_histogram[1] + f.level_histogram[2] +
                       f.level_histogram[3] + f.level_histogram[5] +
                       f.level_histogram[6] + f.level_histogram[7],
                   0.0);
  // The serialized form carries the schema version.
  EXPECT_EQ(f.str().rfind("fv v1 ", 0), 0u) << f.str();
  EXPECT_EQ(f.bucket_name().rfind("fb-", 0), 0u);
  EXPECT_EQ(f.bucket_name().size(), 3u + 16u);
}

TEST(Features, DeterministicAndRoundTrips) {
  for (int seed = 0; seed < 6; ++seed) {
    const aig::Aig g = test_cone(seed);
    const FeatureVector a = extract_features(g);
    const FeatureVector b = extract_features(g);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(a.bucket_hash(), b.bucket_hash());
    EXPECT_DOUBLE_EQ(feature_distance(a, b), 0.0);

    FeatureVector back;
    ASSERT_TRUE(FeatureVector::parse(a.str(), &back)) << a.str();
    EXPECT_EQ(back.str(), a.str()) << "bit-exact text round-trip";
    EXPECT_EQ(back.bucket_hash(), a.bucket_hash());
  }
  FeatureVector out;
  EXPECT_FALSE(FeatureVector::parse("", &out));
  EXPECT_FALSE(FeatureVector::parse("fv v999 pis 1", &out));
  EXPECT_FALSE(FeatureVector::parse("not features at all", &out));
}

TEST(Features, BucketsSeparateDissimilarCircuits) {
  // A 4-PI tree and a 32-PI cone must never share an experience bucket;
  // distance must see the difference too.
  aig::Aig tiny(4);
  tiny.add_output(tiny.and2(tiny.and2(tiny.pi(0), tiny.pi(1)),
                            tiny.and2(tiny.pi(2), tiny.pi(3))));
  const aig::Aig big = test_cone(2, 32, 500);
  const FeatureVector ft = extract_features(tiny);
  const FeatureVector fb = extract_features(big);
  EXPECT_NE(ft.bucket_hash(), fb.bucket_hash());
  EXPECT_GT(feature_distance(ft, fb), 0.0);
}

// -------------------------------------------------------------- OptRequest

TEST(OptRequest, ValidatesScriptOrAuto) {
  OptRequest request;
  request.script = "resyn2";
  EXPECT_NO_THROW(request.validate());
  EXPECT_EQ(request.script_display(), Script::preset("resyn2").str());
  EXPECT_FALSE(request.is_auto());

  request.script = "b; rw -k 6; fs -c 100";
  EXPECT_NO_THROW(request.validate());

  request.script = kAutoScript;
  EXPECT_TRUE(request.is_auto());
  EXPECT_NO_THROW(request.validate());
  EXPECT_EQ(request.script_display(), "auto");
  EXPECT_THROW(request.resolved_script(), std::invalid_argument);

  request.script = "frobnicate";
  EXPECT_THROW(request.validate(), std::invalid_argument);
}

TEST(OptRequest, FingerprintCoversBehaviorNotState) {
  OptRequest fixed;
  fixed.script = "resyn2";
  OptRequest from_text = fixed;
  from_text.script = Script::preset("resyn2").str();  // same passes, spelled
  EXPECT_EQ(fixed.fingerprint(), from_text.fingerprint());

  OptRequest automatic;
  automatic.script = kAutoScript;
  EXPECT_NE(fixed.fingerprint(), automatic.fingerprint());

  OptRequest reseeded = automatic;
  reseeded.search_seed = 7;
  EXPECT_NE(automatic.fingerprint(), reseeded.fingerprint());

  OptRequest rebudgeted = automatic;
  rebudgeted.search_budget = 8;
  EXPECT_NE(automatic.fingerprint(), rebudgeted.fingerprint());

  OptRequest capped = fixed;
  capped.options.node_budget = 123;
  EXPECT_NE(fixed.fingerprint(), capped.fingerprint());

  // Where experience lives is state, not configuration: same key, so a
  // cache row computed with one store directory serves any other.
  OptRequest elsewhere = automatic;
  elsewhere.experience_dir = "/tmp/somewhere-else";
  EXPECT_EQ(automatic.fingerprint(), elsewhere.fingerprint());
}

// ------------------------------------------------------------ ScriptSearch

TEST(ScriptSearch, FixedRequestIsThePassManagerRun) {
  const aig::Aig g = test_cone(3);
  OptRequest request;
  request.script = "resyn2";
  const ScriptSearch optimizer(request);
  const OptOutcome out = optimizer.optimize(g);
  EXPECT_FALSE(out.searched);
  EXPECT_FALSE(out.from_policy);
  EXPECT_EQ(out.candidates_evaluated, 0);
  EXPECT_EQ(out.script.str(), Script::preset("resyn2").str());

  const SynthResult direct =
      PassManager(request.options).run_cached(g, Script::preset("resyn2"));
  EXPECT_EQ(aag_text(out.result.circuit), aag_text(direct.circuit));
}

TEST(ScriptSearch, AutoIsDeterministicUnderAFixedSeed) {
  const aig::Aig g = test_cone(4);
  OptRequest request;
  request.script = kAutoScript;
  request.search_budget = 10;
  request.search_seed = 42;

  const ScriptSearch first(request);
  const OptOutcome a = first.optimize(g);
  EXPECT_TRUE(a.searched);
  EXPECT_FALSE(a.from_policy);
  EXPECT_GE(a.candidates_evaluated, 4) << "the presets always compete";

  // A fresh instance and a cold memo must reproduce the byte pattern.
  PassManager::clear_memo();
  const ScriptSearch second(request);
  const OptOutcome b = second.optimize(g);
  EXPECT_EQ(a.script.str(), b.script.str());
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
  EXPECT_EQ(aag_text(a.result.circuit), aag_text(b.result.circuit));

  // A different seed explores a different neighborhood (scripts may still
  // coincide, but the stream must not be the seed-independent one).
  OptRequest reseeded = request;
  reseeded.search_seed = 43;
  const OptOutcome c = ScriptSearch(reseeded).optimize(g);
  EXPECT_TRUE(equivalent_exhaustive(g, c.result.circuit));
}

TEST(ScriptSearch, ExperienceRoundTripsThroughTheResultCache) {
  const std::string dir = fresh_dir("experience");
  const aig::Aig g = test_cone(5);
  OptRequest request;
  request.script = kAutoScript;
  request.search_budget = 10;
  request.experience_dir = dir;

  const ScriptSearch cold(request);
  EXPECT_EQ(cold.experience_size(), 0u);
  const OptOutcome searched = cold.optimize(g);
  EXPECT_TRUE(searched.searched);

  // The row landed under team key "scripts", named by feature bucket.
  const FeatureVector features = extract_features(g);
  const suite::ResultCache store(dir);
  const auto row = store.load("scripts", features.bucket_name(),
                              features.bucket_hash());
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->result.method, searched.script.str());
  EXPECT_EQ(row->result.opt_script, searched.script.str());
  FeatureVector stored;
  ASSERT_TRUE(FeatureVector::parse(row->aag, &stored));
  EXPECT_EQ(stored.bucket_hash(), features.bucket_hash());

  // A new instance snapshots it and answers warm: same script, same
  // circuit, no mutation loop (only presets + the stored script compete).
  PassManager::clear_memo();
  const ScriptSearch warm(request);
  EXPECT_EQ(warm.experience_size(), 1u);
  const OptOutcome recalled = warm.optimize(g);
  EXPECT_TRUE(recalled.from_policy);
  EXPECT_FALSE(recalled.searched);
  EXPECT_LE(recalled.candidates_evaluated, 5);
  EXPECT_EQ(recalled.script.str(), searched.script.str());
  EXPECT_EQ(aag_text(recalled.result.circuit),
            aag_text(searched.result.circuit));
}

TEST(ScriptSearch, AutoNeverWorseThanThePresetsOnAPool) {
  // The headline guarantee over 50 varied cones: the auto winner is never
  // worse than `fast` or `resyn2` (the presets always compete), and every
  // winner preserves the function.
  OptRequest request;
  request.script = kAutoScript;
  request.search_budget = 8;
  const ScriptSearch optimizer(request);
  SynthOptions fixed_options;
  const PassManager manager(fixed_options);

  int strictly_better_than_resyn2 = 0;
  for (int seed = 0; seed < 50; ++seed) {
    const aig::Aig g = test_cone(seed, 7, 60 + (seed % 5) * 20);
    const OptOutcome out = optimizer.optimize(g);
    const SynthResult fast = manager.run_cached(g, Script::preset("fast"));
    const SynthResult resyn2 =
        manager.run_cached(g, Script::preset("resyn2"));
    EXPECT_LE(out.result.circuit.num_ands(), fast.circuit.num_ands())
        << "seed " << seed;
    EXPECT_LE(out.result.circuit.num_ands(), resyn2.circuit.num_ands())
        << "seed " << seed;
    EXPECT_TRUE(equivalent_exhaustive(g, out.result.circuit))
        << "seed " << seed;
    if (out.result.circuit.num_ands() < resyn2.circuit.num_ands()) {
      ++strictly_better_than_resyn2;
    }
  }
  EXPECT_GT(strictly_better_than_resyn2, 0)
      << "search should beat resyn2 outright somewhere in 50 cones";
}

TEST(ScriptSearch, PolicyAgreesWithTheSearchAfterWarmup) {
  const std::string dir = fresh_dir("policy");
  OptRequest request;
  request.script = kAutoScript;
  request.search_budget = 10;
  request.experience_dir = dir;

  // Warm-up: cold-search a handful of structurally distinct cones.
  std::vector<aig::Aig> pool;
  std::set<std::uint64_t> buckets;
  for (int seed = 0; buckets.size() < 4 && seed < 32; ++seed) {
    aig::Aig g = test_cone(seed, 6 + (seed % 3), 40 + seed * 11);
    if (buckets.insert(extract_features(g).bucket_hash()).second) {
      pool.push_back(std::move(g));
    }
  }
  ASSERT_EQ(pool.size(), 4u);
  const ScriptSearch cold(request);
  std::vector<OptOutcome> winners;
  for (const aig::Aig& g : pool) {
    winners.push_back(cold.optimize(g));
    EXPECT_TRUE(winners.back().searched);
  }

  // After warm-up the trained policy alone names each bucket's winner, and
  // a warm optimize() reproduces the searched artifact bit for bit.
  const ScriptSearch warm(request);
  EXPECT_EQ(warm.experience_size(), 4u);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Script recommended = warm.recommend(extract_features(pool[i]));
    EXPECT_EQ(recommended.str(), winners[i].script.str()) << "cone " << i;
    const OptOutcome recalled = warm.optimize(pool[i]);
    EXPECT_TRUE(recalled.from_policy);
    EXPECT_EQ(recalled.script.str(), winners[i].script.str());
    EXPECT_EQ(aag_text(recalled.result.circuit),
              aag_text(winners[i].result.circuit));
  }
  // Unseen features fall back to the nearest stored neighbour (or the
  // resyn2 prior when nothing is stored) — never an invalid script.
  const Script fallback =
      warm.recommend(extract_features(test_cone(99, 16, 300)));
  EXPECT_FALSE(fallback.passes.empty());
  const ScriptSearch empty(OptRequest{});
  EXPECT_EQ(empty.recommend(extract_features(pool[0])).str(),
            Script::preset("resyn2").str());
}

TEST(ScriptSearch, AutoCertifiesOnlyTheWinnerUnderVerify) {
  const aig::Aig g = test_cone(6);
  OptRequest request;
  request.script = kAutoScript;
  request.search_budget = 8;
  request.options.verify_equivalence = true;
  const OptOutcome out = ScriptSearch(request).optimize(g);
  EXPECT_EQ(out.result.verify, VerifyStatus::kExact);
  EXPECT_TRUE(equivalent_exhaustive(g, out.result.circuit));
}

// ------------------------------------------------- process default plumbing

TEST(DefaultOptRequest, ScopedInstallAndPipelineShimAgree) {
  const OptRequest baseline = default_opt_request();
  {
    OptRequest automatic;
    automatic.script = kAutoScript;
    automatic.search_budget = 6;
    const ScopedOptRequest scoped(automatic);
    EXPECT_TRUE(default_opt_request().is_auto());
    EXPECT_EQ(default_opt_request().search_budget, 6);
    EXPECT_EQ(default_optimizer()->request().script, kAutoScript);
    // The deprecated Pipeline view mirrors the install.
    EXPECT_EQ(default_pipeline().script.name, "auto");
  }
  EXPECT_EQ(default_opt_request().fingerprint(), baseline.fingerprint());

  // The legacy writer keeps working and round-trips through the shim.
  Pipeline legacy;
  legacy.script = Script::preset("resyn2");
  legacy.options.node_budget = 777;
  {
    const ScopedPipeline scoped(legacy);
    EXPECT_EQ(default_pipeline().script.str(), legacy.script.str());
    EXPECT_EQ(default_opt_request().options.node_budget, 777u);
    EXPECT_EQ(default_optimizer()->request().script, legacy.script.str());
  }
  EXPECT_EQ(default_opt_request().fingerprint(), baseline.fingerprint());
}

}  // namespace
}  // namespace lsml::synth
