// Arithmetic/symmetric AIG builders checked against integer references,
// with parameterized width sweeps.

#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig_build.hpp"
#include "core/rng.hpp"

namespace lsml::aig {
namespace {

std::vector<Lit> pi_word(Aig& g, std::size_t start, std::size_t width) {
  std::vector<Lit> w;
  for (std::size_t i = 0; i < width; ++i) {
    w.push_back(g.pi(static_cast<std::uint32_t>(start + i)));
  }
  return w;
}

std::vector<std::uint8_t> row_from_words(std::uint64_t a, std::uint64_t b,
                                         std::size_t k) {
  std::vector<std::uint8_t> row(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    row[i] = (a >> i) & 1;
    row[k + i] = (b >> i) & 1;
  }
  return row;
}

class AdderWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidths, RippleAdderMatchesInteger) {
  const std::size_t k = GetParam();
  Aig g(static_cast<std::uint32_t>(2 * k));
  const auto sum = ripple_adder(g, pi_word(g, 0, k), pi_word(g, k, k));
  ASSERT_EQ(sum.size(), k + 1);
  for (Lit s : sum) {
    g.add_output(s);
  }
  core::Rng rng(k);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t mask = k == 64 ? ~0ULL : (1ULL << k) - 1;
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const auto out = g.eval_row(row_from_words(a, b, k));
    const unsigned __int128 expect =
        static_cast<unsigned __int128>(a) + b;
    for (std::size_t i = 0; i <= k; ++i) {
      EXPECT_EQ(out[i], static_cast<bool>((expect >> i) & 1))
          << "k=" << k << " bit=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths,
                         ::testing::Values(1, 2, 3, 8, 16, 33));

class ComparatorWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComparatorWidths, GreaterThanMatchesInteger) {
  const std::size_t k = GetParam();
  Aig g(static_cast<std::uint32_t>(2 * k));
  g.add_output(greater_than(g, pi_word(g, 0, k), pi_word(g, k, k)));
  g.add_output(greater_equal(g, pi_word(g, 0, k), pi_word(g, k, k)));
  g.add_output(equals(g, pi_word(g, 0, k), pi_word(g, k, k)));
  core::Rng rng(k * 7 + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t mask = (1ULL << k) - 1;
    // Mix nearby values so equality paths get exercised.
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = trial % 3 == 0 ? a : rng.next() & mask;
    const auto out = g.eval_row(row_from_words(a, b, k));
    EXPECT_EQ(out[0], a > b);
    EXPECT_EQ(out[1], a >= b);
    EXPECT_EQ(out[2], a == b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ComparatorWidths,
                         ::testing::Values(1, 2, 5, 10, 20));

TEST(Popcount, MatchesBuiltin) {
  for (const std::size_t n : {1u, 3u, 7u, 16u, 21u}) {
    Aig g(static_cast<std::uint32_t>(n));
    std::vector<Lit> lits;
    for (std::size_t i = 0; i < n; ++i) {
      lits.push_back(g.pi(static_cast<std::uint32_t>(i)));
    }
    const auto count = popcount(g, lits);
    for (Lit c : count) {
      g.add_output(c);
    }
    core::Rng rng(n);
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<std::uint8_t> row(n);
      int expect = 0;
      for (auto& bit : row) {
        bit = rng.flip(0.5) ? 1 : 0;
        expect += bit;
      }
      const auto out = g.eval_row(row);
      int got = 0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        got |= out[i] ? (1 << i) : 0;
      }
      EXPECT_EQ(got, expect);
    }
  }
}

TEST(Threshold, BoundaryBehaviour) {
  const std::size_t n = 9;
  Aig g(n);
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < n; ++i) {
    lits.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  for (std::uint32_t k = 0; k <= n + 1; ++k) {
    g.add_output(threshold_ge(g, lits, k));
  }
  for (std::size_t ones = 0; ones <= n; ++ones) {
    std::vector<std::uint8_t> row(n, 0);
    std::fill_n(row.begin(), ones, std::uint8_t{1});
    const auto out = g.eval_row(row);
    for (std::uint32_t k = 0; k <= n + 1; ++k) {
      EXPECT_EQ(out[k], ones >= k) << "ones=" << ones << " k=" << k;
    }
  }
}

TEST(Majority, OddVoters) {
  for (const std::size_t n : {3u, 5u, 17u}) {
    Aig g(static_cast<std::uint32_t>(n));
    std::vector<Lit> lits;
    for (std::size_t i = 0; i < n; ++i) {
      lits.push_back(g.pi(static_cast<std::uint32_t>(i)));
    }
    g.add_output(majority(g, lits));
    core::Rng rng(n);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<std::uint8_t> row(n);
      std::size_t ones = 0;
      for (auto& bit : row) {
        bit = rng.flip(0.5) ? 1 : 0;
        ones += bit;
      }
      EXPECT_EQ(g.eval_row(row)[0], ones > n / 2);
    }
  }
}

TEST(Majority125, NetworkApproximatesTrueMajority) {
  Aig g(125);
  std::vector<Lit> lits;
  for (std::uint32_t i = 0; i < 125; ++i) {
    lits.push_back(g.pi(i));
  }
  g.add_output(majority125_network(g, lits));
  // The 3-layer 5-input majority network is exact at the extremes and a
  // good approximation near the middle; check extremes plus monotone-ish
  // agreement with the real majority.
  std::vector<std::uint8_t> row(125, 0);
  EXPECT_FALSE(g.eval_row(row)[0]);
  std::fill(row.begin(), row.end(), 1);
  EXPECT_TRUE(g.eval_row(row)[0]);
  core::Rng rng(9);
  int agree = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    int ones = 0;
    for (auto& bit : row) {
      bit = rng.flip(0.5) ? 1 : 0;
      ones += bit;
    }
    agree += g.eval_row(row)[0] == (ones > 62) ? 1 : 0;
  }
  EXPECT_GT(agree, trials * 7 / 10);
}

TEST(Symmetric, SignatureFunction) {
  const std::size_t n = 6;
  Aig g(n);
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < n; ++i) {
    lits.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  // signature: 1 iff popcount in {2, 5}
  std::vector<bool> sig(n + 1, false);
  sig[2] = sig[5] = true;
  g.add_output(symmetric_function(g, lits, sig));
  for (int m = 0; m < 64; ++m) {
    std::vector<std::uint8_t> row(n);
    int ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = (m >> i) & 1;
      ones += row[i];
    }
    EXPECT_EQ(g.eval_row(row)[0], ones == 2 || ones == 5);
  }
}

TEST(Symmetric, ParityViaXorTree) {
  Aig g(8);
  std::vector<Lit> lits;
  for (std::uint32_t i = 0; i < 8; ++i) {
    lits.push_back(g.pi(i));
  }
  g.add_output(xor_tree(g, lits));
  core::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> row(8);
    int ones = 0;
    for (auto& bit : row) {
      bit = rng.flip(0.5) ? 1 : 0;
      ones += bit;
    }
    EXPECT_EQ(g.eval_row(row)[0], ones % 2 == 1);
  }
}

TEST(Multiplier, MatchesInteger) {
  const std::size_t k = 6;
  Aig g(2 * k);
  const auto product =
      multiplier(g, pi_word(g, 0, k), pi_word(g, k, k));
  ASSERT_EQ(product.size(), 2 * k);
  for (Lit p : product) {
    g.add_output(p);
  }
  for (std::uint64_t a = 0; a < 64; a += 7) {
    for (std::uint64_t b = 0; b < 64; b += 5) {
      const auto out = g.eval_row(row_from_words(a, b, k));
      const std::uint64_t expect = a * b;
      for (std::size_t i = 0; i < 2 * k; ++i) {
        EXPECT_EQ(out[i], static_cast<bool>((expect >> i) & 1));
      }
    }
  }
}

TEST(FromTruthTable, ChoosesPolarityAndIsCorrect) {
  core::Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const int vars = 2 + static_cast<int>(rng.below(5));
    tt::TruthTable f(vars);
    for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
      if (rng.flip(0.5)) {
        f.set(m, true);
      }
    }
    Aig g(static_cast<std::uint32_t>(vars));
    std::vector<Lit> leaves;
    for (int i = 0; i < vars; ++i) {
      leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
    }
    g.add_output(from_truth_table(g, f, leaves));
    for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
      std::vector<std::uint8_t> row(static_cast<std::size_t>(vars));
      for (int i = 0; i < vars; ++i) {
        row[static_cast<std::size_t>(i)] = (m >> i) & 1;
      }
      EXPECT_EQ(g.eval_row(row)[0], f.get(m));
    }
  }
}

}  // namespace
}  // namespace lsml::aig
