// synth:: pass-manager tests: script parsing, preset properties over
// random AIGs (equivalence, budget, determinism, monotonicity), the
// process-wide memo, and the one-pipeline-per-task contract.

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_io.hpp"
#include "aig/aig_random.hpp"
#include "learn/factory.hpp"
#include "oracle/suite.hpp"
#include "portfolio/contest.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script.hpp"

namespace lsml::synth {
namespace {

// ---------------------------------------------------------------- scripts

TEST(Script, ParsesAndRoundTrips) {
  const Script s = Script::parse("b;rw;b;rw -k 6");
  ASSERT_EQ(s.passes.size(), 4u);
  EXPECT_EQ(s.passes[0].kind, PassKind::kBalance);
  EXPECT_EQ(s.passes[1].kind, PassKind::kRewrite);
  EXPECT_EQ(s.passes[1].effective_cut_size(), 4);
  EXPECT_EQ(s.passes[3].cut_size, 6);
  EXPECT_EQ(s.str(), "b; rw; b; rw -k 6");
  EXPECT_EQ(Script::parse(s.str()).str(), s.str()) << "canonical round-trip";
  // Long spellings and loose whitespace are accepted.
  const Script long_form =
      Script::parse(" balance ; rewrite -k 5 ; cleanup; approx -n 100 ");
  EXPECT_EQ(long_form.str(), "b; rw -k 5; c; approx -n 100");
}

TEST(Script, RejectsMalformedInput) {
  EXPECT_THROW(Script::parse(""), std::invalid_argument);
  EXPECT_THROW(Script::parse("  ;  "), std::invalid_argument);
  EXPECT_THROW(Script::parse("b; frobnicate"), std::invalid_argument);
  EXPECT_THROW(Script::parse("rw -k"), std::invalid_argument);
  EXPECT_THROW(Script::parse("rw -k 9"), std::invalid_argument);
  EXPECT_THROW(Script::parse("rw -k -3"), std::invalid_argument);
  EXPECT_THROW(Script::parse("b -k 4"), std::invalid_argument);
  EXPECT_THROW(Script::parse("approx -k 4"), std::invalid_argument);
  EXPECT_THROW(Script::parse("rw -n 100"), std::invalid_argument);
  EXPECT_THROW(Script::preset("resyn3"), std::invalid_argument);
}

TEST(Script, PresetsResolveAndFingerprintsDiffer) {
  for (const std::string& name : Script::preset_names()) {
    const Script s = Script::preset(name);
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(s.passes.empty());
    EXPECT_EQ(Script::named_or_parse(name).str(), s.str());
  }
  EXPECT_NE(Script::preset("fast").fingerprint(),
            Script::preset("resyn2").fingerprint());
  EXPECT_NE(Script::preset("resyn2").fingerprint(),
            Script::preset("compress2max").fingerprint());
  // A parsed script spelled like a preset fingerprints like it too.
  EXPECT_EQ(Script::parse("c; b; rw").fingerprint(),
            Script::preset("fast").fingerprint());
  EXPECT_EQ(Script::approx_to(50).str(), "approx -n 50");
}

// ------------------------------------------------- preset property tests

bool equivalent_exhaustive(const aig::Aig& a, const aig::Aig& b) {
  // Packed simulation over every minterm of up to 16 PIs.
  const std::size_t rows = std::size_t{1} << a.num_pis();
  std::vector<core::BitVec> cols(a.num_pis(), core::BitVec(rows));
  std::vector<const core::BitVec*> ptrs;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      if ((r >> c) & 1) {
        cols[c].set(r, true);
      }
    }
    ptrs.push_back(&cols[c]);
  }
  const auto sa = a.simulate(ptrs);
  const auto sb = b.simulate(ptrs);
  return sa[0] == sb[0];
}

class PresetProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PresetProperty, PreservesFunctionNeverRegressesAndIsDeterministic) {
  const auto& [preset, seed] = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(seed) * 97 + 11);
  aig::ConeOptions cone;
  cone.num_inputs = 8;
  cone.num_ands = 140;
  cone.flavor = seed % 2 ? aig::ConeFlavor::kXorRich
                         : aig::ConeFlavor::kRandom;
  const aig::Aig g = aig::random_cone(cone, rng);

  SynthOptions options;  // default budget far above these cones
  const PassManager manager(options);
  const SynthResult result = manager.run(g, Script::preset(preset));

  // Functionality-preserving scripts must be exhaustively equivalent.
  EXPECT_TRUE(equivalent_exhaustive(g, result.circuit))
      << preset << " changed the function (seed " << seed << ")";
  // Monotonicity: never worse than plain cleanup.
  EXPECT_LE(result.circuit.num_ands(), g.cleanup().num_ands());
  // Budget: trivially satisfied here, but the contract is unconditional.
  EXPECT_LE(result.circuit.num_ands(), options.node_budget);
  // The trace observed every pass of at least one round.
  EXPECT_GE(result.trace.size(), Script::preset(preset).passes.size());
  EXPECT_EQ(result.ands_in(), g.num_ands());

  // Determinism: an identical second run serializes identically.
  const SynthResult again = manager.run(g, Script::preset(preset));
  std::ostringstream first, second;
  aig::write_aag(result.circuit, first);
  aig::write_aag(again.circuit, second);
  EXPECT_EQ(first.str(), second.str());
  ASSERT_EQ(result.trace.size(), again.trace.size());
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i].pass, again.trace[i].pass);
    EXPECT_EQ(result.trace[i].ands_after, again.trace[i].ands_after);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetProperty,
    ::testing::Combine(::testing::Values("fast", "resyn2", "resyn2fs",
                                         "compress2max"),
                       ::testing::Range(1, 5)));

TEST(PassManager, BudgetIsEnforcedByApproximation) {
  core::Rng rng(12);
  aig::ConeOptions cone;
  cone.num_inputs = 10;
  cone.num_ands = 300;
  const aig::Aig g = aig::random_cone(cone, rng);

  SynthOptions options;
  options.node_budget = 50;
  const PassManager manager(options);
  const SynthResult result = manager.run(g, Script::preset("fast"));
  EXPECT_LE(result.circuit.num_ands(), 50u);
  bool saw_approx = false;
  for (const PassStats& s : result.trace) {
    saw_approx |= s.pass.rfind("approx", 0) == 0;
  }
  EXPECT_TRUE(saw_approx) << "the cap must come from an approx pass";

  // Approximation draws from options.approx_seed when no RNG is passed,
  // so even the function-changing path is reproducible.
  const SynthResult again = manager.run(g, Script::preset("fast"));
  std::ostringstream first, second;
  aig::write_aag(result.circuit, first);
  aig::write_aag(again.circuit, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(PassManager, ExplicitApproxPassRespectsItsOwnBudget) {
  core::Rng rng(5);
  aig::ConeOptions cone;
  cone.num_inputs = 9;
  cone.num_ands = 200;
  const aig::Aig g = aig::random_cone(cone, rng);
  SynthOptions options;
  options.node_budget = 0;  // uncapped overall...
  const PassManager manager(options);
  const SynthResult result = manager.run(g, Script::parse("b; approx -n 40"));
  EXPECT_LE(result.circuit.num_ands(), 40u)
      << "...but the script's own approx budget still applies";
}

// ----------------------------------------------------------- memo + tasks

TEST(PassManager, MemoDeduplicatesStructurallyIdenticalCircuits) {
  PassManager::clear_memo();
  PassManager::reset_counters();
  // Two independently built but structurally identical circuits.
  const auto build = [] {
    aig::Aig g(4);
    g.add_output(g.and2(g.xor2(g.pi(0), g.pi(1)), g.or2(g.pi(2), g.pi(3))));
    return g;
  };
  const aig::Aig a = build();
  const aig::Aig b = build();
  ASSERT_EQ(a.content_hash(), b.content_hash());

  const PassManager manager;
  const SynthResult ra = manager.run_cached(a, Script::preset("fast"));
  const SynthResult rb = manager.run_cached(b, Script::preset("fast"));
  EXPECT_EQ(PassManager::runs_executed(), 1u)
      << "the second circuit must be served from the memo";
  EXPECT_EQ(PassManager::memo_hits(), 1u);
  EXPECT_EQ(ra.circuit.num_ands(), rb.circuit.num_ands());

  // A different script is a different memo row.
  (void)manager.run_cached(a, Script::preset("resyn2"));
  EXPECT_EQ(PassManager::runs_executed(), 2u);
}

TEST(PassManager, EachContestTaskRunsThePipelineExactlyOnce) {
  oracle::SuiteOptions suite_options;
  suite_options.rows_per_split = 120;
  const oracle::Benchmark bench = oracle::make_benchmark(30, suite_options);

  PassManager::clear_memo();
  PassManager::reset_counters();
  const auto learner = learn::LearnerFactory::from_registry("dt").make();
  core::Rng rng = portfolio::contest_rng(2020, 1, bench.id);
  const portfolio::BenchmarkResult result =
      portfolio::evaluate_on(*learner, bench, rng);
  EXPECT_EQ(PassManager::runs_executed(), 1u)
      << "one task, one pipeline invocation (got "
      << PassManager::runs_executed() << ")";
  EXPECT_FALSE(result.synth_trace.empty());
  EXPECT_LE(result.num_ands, default_pipeline().options.node_budget);
  EXPECT_EQ(result.synth_ands_in(), result.synth_trace.front().ands_before);
  PassManager::clear_memo();
}

namespace {

/// A rogue learner that hands back an over-budget raw circuit without
/// going through finish_model, to exercise evaluate_on's hard guarantee.
class RogueLearner final : public learn::Learner {
 public:
  [[nodiscard]] std::string name() const override { return "rogue"; }
  learn::TrainedModel fit(const data::Dataset& train,
                          const data::Dataset& valid,
                          core::Rng& rng) override {
    (void)train;
    (void)valid;
    aig::ConeOptions cone;
    cone.num_inputs = 10;
    cone.num_ands = 400;
    learn::TrainedModel m;
    m.circuit = aig::random_cone(cone, rng);
    m.method = "rogue";
    return m;
  }
};

}  // namespace

TEST(PassManager, EvaluateOnEnforcesTheArtifactBudget) {
  Pipeline small = default_pipeline();
  small.options.node_budget = 100;
  const ScopedPipeline scoped(small);

  oracle::SuiteOptions suite_options;
  suite_options.rows_per_split = 64;
  const oracle::Benchmark bench = oracle::make_benchmark(30, suite_options);
  RogueLearner rogue;
  core::Rng rng(9);
  aig::Aig circuit{0};
  const portfolio::BenchmarkResult result =
      portfolio::evaluate_on(rogue, bench, rng, &circuit);
  EXPECT_LE(result.num_ands, 100u);
  EXPECT_LE(circuit.num_ands(), 100u);
  EXPECT_NE(result.method.find("+budget"), std::string::npos);
  EXPECT_FALSE(result.synth_trace.empty());
}

TEST(ContestStats, BothDriversFlagTheSoftBudgetConsistently) {
  const double elapsed = 12.5;
  portfolio::ContestStats a;
  portfolio::ContestStats b;
  EXPECT_TRUE(portfolio::finalize_contest_stats(elapsed, 4, 1, 0, &a));
  EXPECT_FALSE(portfolio::finalize_contest_stats(elapsed, 4, 0, 0, &b));
  EXPECT_TRUE(a.budget_exceeded);
  EXPECT_EQ(a.tasks_completed, 4);
  EXPECT_EQ(a.elapsed_ms, elapsed);
  EXPECT_FALSE(b.budget_exceeded) << "0 means unlimited";
  EXPECT_FALSE(
      portfolio::finalize_contest_stats(12.5, 4, 13, 0, nullptr));
}

}  // namespace
}  // namespace lsml::synth
