// MLP pipeline tests: training, pruning, LUT synthesis, staged accuracy.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/mlp.hpp"

namespace lsml::learn {
namespace {

data::Dataset function_dataset(std::size_t inputs, std::size_t rows, int seed,
                               bool (*f)(const core::BitVec&)) {
  core::Rng rng(seed);
  data::Dataset ds(inputs, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    core::BitVec row(inputs);
    row.randomize(rng);
    for (std::size_t c = 0; c < inputs; ++c) {
      ds.set_input(r, c, row.get(c));
    }
    ds.set_label(r, f(row));
  }
  return ds;
}

TEST(Mlp, LearnsLinearlySeparableFunction) {
  const auto f = [](const core::BitVec& r) { return r.get(0) || r.get(2); };
  const auto train = function_dataset(5, 400, 1, f);
  const auto test = function_dataset(5, 200, 2, f);
  MlpOptions options;
  options.hidden = {8};
  options.epochs = 20;
  core::Rng rng(3);
  const Mlp net = Mlp::fit(train, options, rng);
  EXPECT_GT(data::accuracy(net.predict(test), test.labels()), 0.95);
}

TEST(Mlp, WideInputsAreFeatureSelected) {
  const auto f = [](const core::BitVec& r) { return r.get(33); };
  const auto train = function_dataset(100, 300, 4, f);
  MlpOptions options;
  options.max_input_features = 16;
  options.epochs = 10;
  core::Rng rng(5);
  const Mlp net = Mlp::fit(train, options, rng);
  EXPECT_EQ(net.selected_features().size(), 16u);
  // The informative feature must survive MI selection.
  bool found = false;
  for (std::size_t v : net.selected_features()) {
    found |= v == 33;
  }
  EXPECT_TRUE(found);
}

TEST(Mlp, PruningReachesFaninTarget) {
  const auto f = [](const core::BitVec& r) { return r.get(1) && r.get(2); };
  const auto train = function_dataset(20, 300, 6, f);
  MlpOptions options;
  options.hidden = {24, 12};
  options.epochs = 8;
  options.prune_max_fanin = 6;
  options.prune_retrain_epochs = 2;
  core::Rng rng(7);
  Mlp net = Mlp::fit(train, options, rng);
  EXPECT_GT(net.max_fanin(), 6u);
  net.prune_to_fanin(train, rng);
  EXPECT_LE(net.max_fanin(), 6u);
  // Should still classify the simple target well.
  EXPECT_GT(data::accuracy(net.predict(train), train.labels()), 0.9);
}

TEST(Mlp, SynthesizedAigIsSmallAndAccurate) {
  const auto f = [](const core::BitVec& r) { return r.get(0) != r.get(3); };
  const auto train = function_dataset(6, 500, 8, f);
  MlpOptions options;
  options.hidden = {10};
  options.epochs = 25;
  options.prune_max_fanin = 6;
  core::Rng rng(9);
  Mlp net = Mlp::fit(train, options, rng);
  net.prune_to_fanin(train, rng);
  const aig::Aig g = net.to_aig(6);
  const auto sim = g.simulate(train.column_ptrs());
  EXPECT_GT(data::accuracy(sim[0], train.labels()), 0.9);
  EXPECT_LT(g.num_ands(), 2000u);
}

TEST(Mlp, SineActivationHandlesParity) {
  // Team 8's observation: periodic activations capture parity-like latent
  // frequency structure better than monotone ones.
  const auto f = [](const core::BitVec& r) {
    return (static_cast<int>(r.get(0)) + r.get(1) + r.get(2)) % 2 == 1;
  };
  const auto train = function_dataset(3, 300, 10, f);
  MlpOptions options;
  options.hidden = {12};
  options.activation = Activation::kSin;
  options.epochs = 60;
  options.learning_rate = 0.3;
  core::Rng rng(11);
  const Mlp net = Mlp::fit(train, options, rng);
  EXPECT_GT(data::accuracy(net.predict(train), train.labels()), 0.85);
}

TEST(MlpStages, DegradationIsOrderedAndBounded) {
  // Table V's shape: pruning and synthesis each cost some accuracy, but the
  // synthesized circuit stays well above chance.
  const auto f = [](const core::BitVec& r) {
    return (r.get(0) && r.get(1)) || (r.get(2) && r.get(3));
  };
  const auto train = function_dataset(8, 500, 12, f);
  const auto valid = function_dataset(8, 250, 13, f);
  const auto test = function_dataset(8, 250, 14, f);
  MlpOptions options;
  options.hidden = {16, 8};
  options.epochs = 20;
  options.prune_max_fanin = 8;
  core::Rng rng(15);
  const MlpStageAccuracy stages =
      mlp_staged_accuracy(train, valid, test, options, rng);
  EXPECT_GT(stages.initial_test, 0.9);
  EXPECT_GT(stages.synth_test, 0.75);
  EXPECT_LE(stages.synth_test, stages.initial_test + 0.05);
}

TEST(MlpLearner, EndToEnd) {
  const auto f = [](const core::BitVec& r) { return r.get(2); };
  const auto train = function_dataset(6, 200, 16, f);
  const auto valid = function_dataset(6, 100, 17, f);
  MlpOptions options;
  options.hidden = {6};
  options.epochs = 15;
  MlpLearner learner(options, "mlp-test");
  core::Rng rng(18);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_GT(model.valid_acc, 0.9);
}

}  // namespace
}  // namespace lsml::learn
