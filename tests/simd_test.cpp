// Kernel-parity suite for the explicit SIMD layer (core/simd.hpp) and the
// levelized / parallel SimEngine sweeps built on it.
//
// The contract under test: every compiled-in backend — and every way of
// driving it (serial run(), column-parallel run_parallel() at any pool
// width, scratch-reuse extraction) — produces bit-identical results, all
// agreeing with the one-row-at-a-time Aig::eval_row oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_random.hpp"
#include "aig/sim_engine.hpp"
#include "core/bits.hpp"
#include "core/rng.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"

namespace lsml {
namespace {

using aig::Aig;
using aig::SimEngine;
using core::BitVec;
using core::Rng;
namespace simd = core::simd;

/// Restores auto-dispatch no matter how a test exits.
struct ForcedBackend {
  explicit ForcedBackend(simd::Backend b) { simd::force_backend(b); }
  ~ForcedBackend() { simd::clear_forced_backend(); }
};

std::vector<BitVec> random_columns(std::uint32_t num_pis, std::size_t rows,
                                   Rng& rng) {
  std::vector<BitVec> columns(num_pis, BitVec(rows));
  for (auto& column : columns) {
    column.randomize(rng);
  }
  return columns;
}

std::vector<const BitVec*> column_ptrs(const std::vector<BitVec>& columns) {
  std::vector<const BitVec*> ptrs;
  ptrs.reserve(columns.size());
  for (const auto& column : columns) {
    ptrs.push_back(&column);
  }
  return ptrs;
}

TEST(SimdDispatchTest, ScalarAlwaysAvailableAndNamesRoundTrip) {
  const std::vector<simd::Backend> available = simd::available_backends();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.front(), simd::Backend::kScalar);
  for (simd::Backend b : available) {
    const simd::Ops* ops = simd::ops_for(b);
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->backend, b);
    simd::Backend parsed;
    ASSERT_TRUE(simd::backend_from_string(simd::to_string(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
  simd::Backend ignored;
  EXPECT_FALSE(simd::backend_from_string("sse9", &ignored));
}

TEST(SimdDispatchTest, ForceBackendPinsActiveBackend) {
  for (simd::Backend b : simd::available_backends()) {
    ForcedBackend forced(b);
    EXPECT_EQ(simd::active_backend(), b);
    EXPECT_EQ(simd::ops().backend, b);
  }
  // Guard restored auto-dispatch: active must be one of the available set.
  const std::vector<simd::Backend> available = simd::available_backends();
  bool found = false;
  for (simd::Backend b : available) {
    found = found || b == simd::active_backend();
  }
  EXPECT_TRUE(found);
}

// 200 random AIGs: the scalar sweep must match Aig::eval_row on every row,
// and every other available backend must reproduce the scalar arena
// bit-for-bit (node_values compares all rows, tails included).
TEST(SimdKernelParityTest, AllBackendsMatchEvalRowOn200RandomAigs) {
  const std::vector<simd::Backend> backends = simd::available_backends();
  Rng rng(20260808);
  // Ragged on purpose: word tails, single-word rows, multi-word rows.
  const std::size_t row_choices[] = {1, 17, 63, 64, 65, 127, 128, 200, 320};
  for (int c = 0; c < 200; ++c) {
    aig::ConeOptions cone;
    cone.num_inputs = 3 + (c % 8);
    cone.num_ands = 8 + (c * 7) % 80;
    cone.flavor = static_cast<aig::ConeFlavor>(c % 3);
    cone.max_tries = 1;  // no balance requirement for a parity check
    const Aig g = aig::random_cone(cone, rng);
    const std::size_t rows = row_choices[c % std::size(row_choices)];
    const std::vector<BitVec> columns = random_columns(g.num_pis(), rows, rng);
    const std::vector<const BitVec*> ptrs = column_ptrs(columns);

    std::vector<BitVec> reference;
    {
      ForcedBackend forced(simd::Backend::kScalar);
      SimEngine engine(g);
      engine.run(ptrs);
      reference = engine.node_values();
      // Scalar vs the per-row oracle, every row, every output.
      for (std::size_t r = 0; r < rows; ++r) {
        std::vector<std::uint8_t> row_bits(g.num_pis());
        for (std::uint32_t i = 0; i < g.num_pis(); ++i) {
          row_bits[i] = columns[i].get(r) ? 1 : 0;
        }
        const std::vector<bool> expect = g.eval_row(row_bits);
        for (std::uint32_t o = 0; o < g.num_outputs(); ++o) {
          ASSERT_EQ(engine.extract(g.output(o)).get(r), expect[o])
              << "circuit " << c << " row " << r << " output " << o;
        }
      }
    }
    for (simd::Backend b : backends) {
      if (b == simd::Backend::kScalar) {
        continue;
      }
      ForcedBackend forced(b);
      SimEngine engine(g);
      engine.run(ptrs);
      ASSERT_EQ(engine.node_values(), reference)
          << "backend " << simd::to_string(b) << " circuit " << c << " rows "
          << rows;
    }
  }
}

// run_parallel must be bit-identical to run() at 1/2/8 pool threads, on
// ragged and tail-masked batches, with the engine reused across batch
// sizes (arena/schedule reuse is part of the contract). This test also
// runs under TSan in CI: the column partition must be race-free.
TEST(SimdKernelParityTest, RunParallelBitIdenticalToRunAt1_2_8Threads) {
  Rng rng(777);
  aig::ConeOptions cone;
  cone.num_inputs = 12;
  cone.num_ands = 300;
  cone.max_tries = 1;
  const Aig g = aig::random_cone(cone, rng);
  const std::size_t row_choices[] = {1, 63, 64, 65, 127, 512, 1000, 1024,
                                     1500, 4113};
  for (std::size_t threads : {1u, 2u, 8u}) {
    core::ThreadPool pool(threads);
    SimEngine serial(g);
    SimEngine parallel(g);
    for (std::size_t rows : row_choices) {
      const std::vector<BitVec> columns =
          random_columns(g.num_pis(), rows, rng);
      const std::vector<const BitVec*> ptrs = column_ptrs(columns);
      serial.run(ptrs);
      parallel.run_parallel(ptrs, pool);
      ASSERT_EQ(parallel.node_values(), serial.node_values())
          << threads << " threads, " << rows << " rows";
    }
  }
}

TEST(SimdKernelParityTest, BitVecReductionsMatchNaiveUnderEveryBackend) {
  Rng rng(4242);
  const std::size_t sizes[] = {0, 1, 63, 64, 65, 200, 1024, 4113};
  for (std::size_t n : sizes) {
    BitVec a(n);
    BitVec b(n);
    a.randomize(rng);
    b.randomize(rng);
    std::size_t ones = 0, equal = 0, both = 0, only_a = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ones += a.get(i);
      equal += a.get(i) == b.get(i);
      both += a.get(i) && b.get(i);
      only_a += a.get(i) && !b.get(i);
    }
    for (simd::Backend backend : simd::available_backends()) {
      ForcedBackend forced(backend);
      EXPECT_EQ(a.count(), ones) << simd::to_string(backend) << " n=" << n;
      EXPECT_EQ(a.count_equal(b), equal);
      EXPECT_EQ(a.count_and(b), both);
      EXPECT_EQ(a.count_andnot(b), only_a);
    }
  }
}

TEST(SimdKernelParityTest, ExtractIntoAndOutputsIntoReuseScratch) {
  Rng rng(99);
  aig::ConeOptions cone;
  cone.num_inputs = 6;
  cone.num_ands = 40;
  cone.max_tries = 1;
  const Aig g = aig::random_cone(cone, rng);
  const std::size_t rows = 130;
  const std::vector<BitVec> columns = random_columns(g.num_pis(), rows, rng);
  SimEngine engine(g);
  engine.run(column_ptrs(columns));

  // Dirty, wrong-sized scratch must come out identical to a fresh extract.
  BitVec scratch(7, true);
  for (bool compl_edge : {false, true}) {
    const aig::Lit l = aig::lit_notc(g.output(0), compl_edge);
    engine.extract_into(l, &scratch);
    EXPECT_EQ(scratch, engine.extract(l));
  }
  std::vector<BitVec> outs_scratch(3, BitVec(11, true));
  engine.outputs_into(&outs_scratch);
  EXPECT_EQ(outs_scratch, engine.outputs());

  // Scratch reuse across differently-sized sweeps stays exact.
  const std::size_t rows2 = 65;
  const std::vector<BitVec> columns2 =
      random_columns(g.num_pis(), rows2, rng);
  engine.run(column_ptrs(columns2));
  engine.outputs_into(&outs_scratch);
  EXPECT_EQ(outs_scratch, engine.outputs());
}

TEST(SimdKernelParityTest, CountEqualManyMatchesPerLiteralCounts) {
  Rng rng(31337);
  aig::ConeOptions cone;
  cone.num_inputs = 8;
  cone.num_ands = 60;
  cone.max_tries = 1;
  const Aig g = aig::random_cone(cone, rng);
  for (std::size_t rows : {64u, 100u, 1024u}) {
    const std::vector<BitVec> columns = random_columns(g.num_pis(), rows, rng);
    BitVec ref(rows);
    ref.randomize(rng);
    SimEngine engine(g);
    engine.run(column_ptrs(columns));
    std::vector<aig::Lit> candidates;
    for (std::uint32_t v = g.num_pis() + 1; v < g.num_nodes(); ++v) {
      candidates.push_back(aig::make_lit(v, (v & 1) != 0));
    }
    std::vector<std::size_t> batched(candidates.size());
    engine.count_equal_many(candidates.data(), candidates.size(), ref,
                            batched.data());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const BitVec values = engine.extract(candidates[i]);
      ASSERT_EQ(batched[i], values.count_equal(ref)) << "candidate " << i;
      ASSERT_EQ(batched[i], engine.count_equal(candidates[i], ref));
    }
  }
}

}  // namespace
}  // namespace lsml
