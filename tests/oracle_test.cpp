// Benchmark oracle tests: arithmetic oracles against integer references,
// symmetric/parity/nested logic, vision generators, and suite assembly.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "oracle/arith_oracles.hpp"
#include "oracle/logic_oracles.hpp"
#include "oracle/suite.hpp"
#include "oracle/vision_oracles.hpp"

namespace lsml::oracle {
namespace {

core::BitVec row_from_words(std::uint64_t a, std::uint64_t b, std::size_t k) {
  core::BitVec row(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    row.set(i, (a >> i) & 1);
    row.set(k + i, (b >> i) & 1);
  }
  return row;
}

TEST(ArithOracles, AdderBits) {
  const AdderBitOracle msb(16, 16);
  const AdderBitOracle second(16, 15);
  EXPECT_EQ(msb.num_inputs(), 32u);
  for (const auto& [a, b] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0xffff, 1}, {0x8000, 0x8000}, {123, 456}, {0, 0}}) {
    const std::uint64_t sum = a + b;
    EXPECT_EQ(msb.eval(row_from_words(a, b, 16)), ((sum >> 16) & 1) == 1);
    EXPECT_EQ(second.eval(row_from_words(a, b, 16)), ((sum >> 15) & 1) == 1);
  }
}

TEST(ArithOracles, DividerAndRemainder) {
  const DividerBitOracle quot(8, 7, true);
  const DividerBitOracle rem(8, 7, false);
  EXPECT_EQ(quot.eval(row_from_words(255, 1, 8)), true);   // 255/1 bit7
  EXPECT_EQ(quot.eval(row_from_words(255, 2, 8)), false);  // 127 bit7=0
  EXPECT_EQ(rem.eval(row_from_words(200, 150, 8)), false); // 50
  EXPECT_EQ(rem.eval(row_from_words(250, 130, 8)), false); // 120
  EXPECT_EQ(rem.eval(row_from_words(129, 255, 8)), true);  // 129 -> bit7
}

TEST(ArithOracles, MultiplierBits) {
  const MultiplierBitOracle msb(8, 15);
  const MultiplierBitOracle mid(8, 7);
  EXPECT_TRUE(msb.eval(row_from_words(255, 255, 8)));  // 65025 has bit 15
  EXPECT_FALSE(msb.eval(row_from_words(2, 3, 8)));
  EXPECT_EQ(mid.eval(row_from_words(16, 9, 8)), ((16 * 9) >> 7 & 1) == 1);
}

TEST(ArithOracles, Comparator) {
  const ComparatorOracle cmp(10);
  EXPECT_TRUE(cmp.eval(row_from_words(512, 511, 10)));
  EXPECT_FALSE(cmp.eval(row_from_words(511, 512, 10)));
  EXPECT_FALSE(cmp.eval(row_from_words(77, 77, 10)));
}

TEST(ArithOracles, SqrtBits) {
  const SqrtBitOracle lsb(16, 0);
  const SqrtBitOracle mid(16, 4);
  for (std::uint64_t a : {0ULL, 1ULL, 99ULL, 1024ULL, 65535ULL}) {
    core::BitVec row(16);
    for (std::size_t i = 0; i < 16; ++i) {
      row.set(i, (a >> i) & 1);
    }
    const auto root = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(a)));
    EXPECT_EQ(lsb.eval(row), (root & 1) == 1) << a;
    EXPECT_EQ(mid.eval(row), ((root >> 4) & 1) == 1) << a;
  }
}

TEST(LogicOracles, SymmetricSignature) {
  const SymmetricOracle sym(4, "01010");
  core::BitVec row(4);
  EXPECT_FALSE(sym.eval(row));  // popcount 0
  row.set(0, true);
  EXPECT_TRUE(sym.eval(row));  // popcount 1
  row.set(1, true);
  EXPECT_FALSE(sym.eval(row));  // popcount 2
  EXPECT_THROW(SymmetricOracle(4, "011"), std::invalid_argument);
}

TEST(LogicOracles, Parity) {
  const ParityOracle parity(16);
  core::BitVec row(16);
  EXPECT_FALSE(parity.eval(row));
  row.set(3, true);
  EXPECT_TRUE(parity.eval(row));
  row.set(9, true);
  EXPECT_FALSE(parity.eval(row));
}

TEST(LogicOracles, NestedIsNonTrivial) {
  const NestedOracle nested;
  core::Rng rng(3);
  int ones = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    core::BitVec row(16);
    row.randomize(rng);
    ones += nested.eval(row) ? 1 : 0;
  }
  EXPECT_GT(ones, trials / 10);
  EXPECT_LT(ones, trials * 99 / 100);
}

TEST(LogicOracles, AigOracleBatchMatchesRowEval) {
  auto cone = make_cone_oracle(12, 120, aig::ConeFlavor::kRandom, 77);
  core::Rng rng(5);
  data::Dataset inputs(12, 200);
  for (std::size_t r = 0; r < 200; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      inputs.set_input(r, c, rng.flip(0.5));
    }
  }
  const core::BitVec batch = cone->label_rows(inputs);
  const auto rows = [&](std::size_t r) {
    core::BitVec row(12);
    for (std::size_t c = 0; c < 12; ++c) {
      row.set(c, inputs.input(r, c));
    }
    return row;
  };
  for (std::size_t r = 0; r < 200; ++r) {
    EXPECT_EQ(batch.get(r), cone->eval(rows(r)));
  }
}

TEST(VisionOracles, Table2Groups) {
  const GroupComparison g1 = table2_groups(1);
  EXPECT_EQ(g1.group_a, (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(g1.group_b, (std::vector<int>{0, 2, 4, 6, 8}));
  EXPECT_THROW(table2_groups(10), std::invalid_argument);
}

TEST(VisionOracles, SamplesAreLearnableAndBalanced) {
  const VisionOracle mnist(VisionDomain::kMnistLike, table2_groups(0), 5);
  EXPECT_EQ(mnist.num_inputs(), 784u);
  core::Rng rng(7);
  int ones = 0;
  for (int t = 0; t < 400; ++t) {
    core::BitVec row;
    bool label = false;
    mnist.sample(&row, &label, rng);
    EXPECT_EQ(row.size(), 784u);
    ones += label ? 1 : 0;
  }
  EXPECT_GT(ones, 120);
  EXPECT_LT(ones, 280);
}

TEST(VisionOracles, MnistEasierThanCifar) {
  // The Bayes classifier itself should label MNIST-like samples more
  // consistently than CIFAR-like ones.
  core::Rng rng(11);
  const auto consistency = [&](VisionDomain domain) {
    const VisionOracle oracle(domain, table2_groups(3), 9);
    int agree = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      core::BitVec row;
      bool label = false;
      oracle.sample(&row, &label, rng);
      agree += oracle.eval(row) == label ? 1 : 0;
    }
    return static_cast<double>(agree) / trials;
  };
  const double mnist = consistency(VisionDomain::kMnistLike);
  const double cifar = consistency(VisionDomain::kCifarLike);
  EXPECT_GT(mnist, cifar) << "the MNIST >> CIFAR gap must be preserved";
  EXPECT_GT(mnist, 0.9);
}

TEST(Suite, CategoriesFollowTable1) {
  EXPECT_EQ(benchmark_category(0), "adder-msb");
  EXPECT_EQ(benchmark_category(1), "adder-msb2");
  EXPECT_EQ(benchmark_category(10), "divider-msb");
  EXPECT_EQ(benchmark_category(25), "multiplier-mid");
  EXPECT_EQ(benchmark_category(33), "comparator");
  EXPECT_EQ(benchmark_category(44), "sqrt-lsb");
  EXPECT_EQ(benchmark_category(55), "picojava-cone");
  EXPECT_EQ(benchmark_category(65), "i10-cone");
  EXPECT_EQ(benchmark_category(74), "mcnc-misc");
  EXPECT_EQ(benchmark_category(77), "symmetric");
  EXPECT_EQ(benchmark_category(85), "mnist-like");
  EXPECT_EQ(benchmark_category(95), "cifar-like");
}

TEST(Suite, OracleInputWidthsMatchTable1) {
  EXPECT_EQ(make_oracle(0, 1)->num_inputs(), 32u);    // 16-bit adder
  EXPECT_EQ(make_oracle(8, 1)->num_inputs(), 512u);   // 256-bit adder
  EXPECT_EQ(make_oracle(20, 1)->num_inputs(), 16u);   // 8-bit multiplier
  EXPECT_EQ(make_oracle(30, 1)->num_inputs(), 20u);   // 10-bit comparator
  EXPECT_EQ(make_oracle(39, 1)->num_inputs(), 200u);  // 100-bit comparator
  EXPECT_EQ(make_oracle(74, 1)->num_inputs(), 16u);   // parity
  EXPECT_EQ(make_oracle(75, 1)->num_inputs(), 16u);   // symmetric
  EXPECT_EQ(make_oracle(80, 1)->num_inputs(), 784u);  // MNIST-like
  EXPECT_THROW(make_oracle(100, 1), std::invalid_argument);
}

TEST(Suite, BenchmarkSplitsAreDisjointAndSized) {
  SuiteOptions options;
  options.rows_per_split = 150;
  const Benchmark b = make_benchmark(31, options);  // 20-bit comparator
  EXPECT_EQ(b.name, "ex31");
  EXPECT_EQ(b.train.num_rows(), 150u);
  EXPECT_EQ(b.valid.num_rows(), 150u);
  EXPECT_EQ(b.test.num_rows(), 150u);
  std::unordered_set<std::uint64_t> seen;
  for (const auto* ds : {&b.train, &b.valid, &b.test}) {
    for (std::size_t r = 0; r < ds->num_rows(); ++r) {
      EXPECT_TRUE(seen.insert(ds->row_hash(r)).second)
          << "splits must not share rows";
    }
  }
}

TEST(Suite, GenerationIsDeterministic) {
  SuiteOptions options;
  options.rows_per_split = 60;
  const Benchmark a = make_benchmark(75, options);
  const Benchmark b = make_benchmark(75, options);
  EXPECT_EQ(a.train.labels(), b.train.labels());
  EXPECT_EQ(a.test.labels(), b.test.labels());
}

TEST(Suite, ConeBenchmarksAreRoughlyBalanced) {
  SuiteOptions options;
  options.rows_per_split = 300;
  const Benchmark b = make_benchmark(52, options);
  const double frac = b.train.label_fraction();
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.8);
}

}  // namespace
}  // namespace lsml::oracle
