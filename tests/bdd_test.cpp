// BDD package tests: apply correctness, minterm construction, don't-care
// minimization soundness, and the adder-learning result from the appendix.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "learn/bdd.hpp"
#include "oracle/arith_oracles.hpp"
#include "oracle/suite.hpp"

namespace lsml::learn {
namespace {

TEST(BddMgr, ApplyMatchesTruthTables) {
  BddMgr mgr(4);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  const auto c = mgr.var(2);
  const auto f = mgr.bdd_or(mgr.bdd_and(a, b), mgr.bdd_xor(b, c));
  for (int m = 0; m < 16; ++m) {
    core::BitVec row(4);
    for (int i = 0; i < 4; ++i) {
      row.set(static_cast<std::size_t>(i), (m >> i) & 1);
    }
    const bool va = m & 1;
    const bool vb = m & 2;
    const bool vc = m & 4;
    EXPECT_EQ(mgr.eval(f, row), (va && vb) || (vb != vc));
  }
}

TEST(BddMgr, NotViaXor) {
  BddMgr mgr(2);
  const auto a = mgr.var(0);
  const auto na = mgr.bdd_not(a);
  core::BitVec row(2);
  EXPECT_TRUE(mgr.eval(na, row));
  row.set(0, true);
  EXPECT_FALSE(mgr.eval(na, row));
}

TEST(BddMgr, MintermEvaluatesUniquely) {
  BddMgr mgr(6);
  core::Rng rng(1);
  core::BitVec target(6);
  target.randomize(rng);
  const auto m = mgr.minterm(target);
  EXPECT_TRUE(mgr.eval(m, target));
  for (int flip = 0; flip < 6; ++flip) {
    core::BitVec other = target;
    other.set(static_cast<std::size_t>(flip), !other.get(static_cast<std::size_t>(flip)));
    EXPECT_FALSE(mgr.eval(m, other));
  }
}

TEST(BddMgr, HashConsingSharesStructure) {
  BddMgr mgr(3);
  const auto f1 = mgr.bdd_and(mgr.var(0), mgr.var(1));
  const auto f2 = mgr.bdd_and(mgr.var(1), mgr.var(0));
  EXPECT_EQ(f1, f2);
}

TEST(BddMgr, MinimizeRespectsCareSet) {
  // Property: on&care <= minimized <= on | ~care, checked exhaustively.
  core::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    BddMgr mgr(5);
    // Random onset/careset from minterms.
    auto on = BddMgr::kFalse;
    auto care = BddMgr::kFalse;
    std::vector<bool> on_tt(32, false);
    std::vector<bool> care_tt(32, false);
    for (int m = 0; m < 32; ++m) {
      core::BitVec row(5);
      for (int i = 0; i < 5; ++i) {
        row.set(static_cast<std::size_t>(i), (m >> i) & 1);
      }
      if (rng.flip(0.6)) {
        care = mgr.bdd_or(care, mgr.minterm(row));
        care_tt[static_cast<std::size_t>(m)] = true;
        if (rng.flip(0.5)) {
          on = mgr.bdd_or(on, mgr.minterm(row));
          on_tt[static_cast<std::size_t>(m)] = true;
        }
      }
    }
    const auto minimized = mgr.minimize(on, care);
    for (int m = 0; m < 32; ++m) {
      if (!care_tt[static_cast<std::size_t>(m)]) {
        continue;  // free to be anything outside the care set
      }
      core::BitVec row(5);
      for (int i = 0; i < 5; ++i) {
        row.set(static_cast<std::size_t>(i), (m >> i) & 1);
      }
      EXPECT_EQ(mgr.eval(minimized, row), on_tt[static_cast<std::size_t>(m)])
          << "care minterm " << m << " must keep its value";
    }
  }
}

TEST(BddMgr, MinimizeShrinksSize) {
  BddMgr mgr(8);
  core::Rng rng(3);
  auto on = BddMgr::kFalse;
  auto care = BddMgr::kFalse;
  for (int s = 0; s < 60; ++s) {
    core::BitVec row(8);
    row.randomize(rng);
    const auto m = mgr.minterm(row);
    care = mgr.bdd_or(care, m);
    if (row.get(0)) {  // underlying function: x0
      on = mgr.bdd_or(on, m);
    }
  }
  const auto minimized = mgr.minimize(on, care);
  EXPECT_LT(mgr.size(minimized), mgr.size(on));
}

TEST(BddMgr, ToLitMatchesEval) {
  BddMgr mgr(5);
  const auto f = mgr.bdd_xor(mgr.bdd_and(mgr.var(0), mgr.var(3)), mgr.var(4));
  aig::Aig g(5);
  std::vector<aig::Lit> leaves;
  for (std::uint32_t i = 0; i < 5; ++i) {
    leaves.push_back(g.pi(i));
  }
  g.add_output(mgr.to_lit(f, g, leaves));
  for (int m = 0; m < 32; ++m) {
    core::BitVec row(5);
    std::vector<std::uint8_t> bytes(5);
    for (int i = 0; i < 5; ++i) {
      row.set(static_cast<std::size_t>(i), (m >> i) & 1);
      bytes[static_cast<std::size_t>(i)] = (m >> i) & 1;
    }
    EXPECT_EQ(g.eval_row(bytes)[0], mgr.eval(f, row));
  }
}

TEST(BddLearner, LearnsAdderSecondMsbWell) {
  // The appendix result: with the MSB-first interleaved order, one/two-sided
  // matching learns 2-word adder top bits with high accuracy.
  oracle::SuiteOptions options;
  options.rows_per_split = 800;
  const oracle::Benchmark bench = oracle::make_benchmark(1, options);  // 16-bit
  BddLearnerOptions bo;
  BddLearner learner(bo, "bdd");
  core::Rng rng(5);
  const TrainedModel model = learner.fit(bench.train, bench.valid, rng);
  EXPECT_GT(model.train_acc, 0.99) << "exact on the care set";
  const double test_acc = circuit_accuracy(model.circuit, bench.test);
  EXPECT_GT(test_acc, 0.85) << "the paper reports ~98% for 2-word adders";
}

TEST(BddLearner, RefusesVeryWideInputs) {
  data::Dataset train(128, 10);
  data::Dataset valid(128, 10);
  BddLearnerOptions bo;
  bo.max_inputs = 64;
  BddLearner learner(bo, "bdd");
  core::Rng rng(6);
  const TrainedModel model = learner.fit(train, valid, rng);
  EXPECT_NE(model.method.find("const"), std::string::npos);
}

}  // namespace
}  // namespace lsml::learn
