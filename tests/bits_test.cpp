// Unit and property tests for core::BitVec and core::Rng.

#include <gtest/gtest.h>

#include <set>

#include "core/bits.hpp"
#include "core/config.hpp"

namespace lsml::core {
namespace {

TEST(BitVec, SetAndGet) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.get(0));
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 3u);
  v.set(64, false);
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, FillKeepsTailInvariant) {
  BitVec v(70, true);
  EXPECT_EQ(v.count(), 70u);
  v.flip();
  EXPECT_EQ(v.count(), 0u);
  v.flip();
  EXPECT_EQ(v.count(), 70u);
}

TEST(BitVec, LogicOps) {
  BitVec a(100);
  BitVec b(100);
  a.set(3, true);
  a.set(70, true);
  b.set(70, true);
  b.set(99, true);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a ^ b).count(), 2u);
  EXPECT_EQ((~a).count(), 98u);
}

TEST(BitVec, CountHelpers) {
  Rng rng(7);
  BitVec a(257);
  BitVec b(257);
  BitVec c(257);
  a.randomize(rng);
  b.randomize(rng);
  c.randomize(rng);
  EXPECT_EQ(a.count_and(b), (a & b).count());
  EXPECT_EQ(a.count_andnot(b), (a & ~b).count());
  EXPECT_EQ(a.count_and2(b, c), (a & b & c).count());
  EXPECT_EQ(a.count_and_andnot(b, c), (a & b & ~c).count());
  EXPECT_EQ(a.count_equal(b), 257u - (a ^ b).count());
}

// The tail-zero invariant is the contract word-level code (SimEngine,
// fraig signatures, popcount reductions) relies on: no operation may
// leave a set bit past size() in the last word.
TEST(BitVec, WordLevelOpsNeverLeakPastSize) {
  Rng rng(31);
  const auto tail_clean = [](const BitVec& v) {
    const std::size_t rem = v.size() & 63;
    if (rem == 0 || v.num_words() == 0) {
      return true;
    }
    return (v.word(v.num_words() - 1) & ~((1ULL << rem) - 1)) == 0;
  };
  for (int round = 0; round < 200; ++round) {
    const auto n = static_cast<std::size_t>(1 + rng.below(300));
    BitVec a(n);
    BitVec b(n);
    a.randomize(rng);
    b.randomize(rng, 0.3);
    EXPECT_TRUE(tail_clean(a));
    EXPECT_TRUE(tail_clean(b));
    switch (rng.below(8)) {
      case 0: a &= b; break;
      case 1: a |= b; break;
      case 2: a ^= b; break;
      case 3: a.flip(); break;
      case 4: a.fill(true); break;
      case 5: a = ~b; break;
      case 6: a.set(rng.below(n), true); break;
      default: a = a | (b ^ a); break;
    }
    EXPECT_TRUE(tail_clean(a)) << "op leaked past size() at n=" << n;
    // popcount reductions agree with a bit-by-bit count, i.e. no
    // phantom bits participate.
    std::size_t expect = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect += a.get(i) ? 1 : 0;
    }
    EXPECT_EQ(a.count(), expect);
  }
}

// mask_tail() is the public repair step for raw words() writers.
TEST(BitVec, MaskTailRestoresInvariantAfterRawWrite) {
  BitVec v(70);
  v.words()[1] = ~0ULL;  // a word-level writer scribbled past size()
  EXPECT_NE(v.count(), 6u);
  v.mask_tail();
  EXPECT_EQ(v.count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(v.get(64 + i));
  }
  // No-ops on word-aligned sizes and empty vectors.
  BitVec aligned(128, true);
  aligned.mask_tail();
  EXPECT_EQ(aligned.count(), 128u);
  BitVec empty;
  empty.mask_tail();
  EXPECT_EQ(empty.size(), 0u);
}

TEST(BitVec, HashDistinguishes) {
  BitVec a(64);
  BitVec b(64);
  b.set(5, true);
  EXPECT_NE(a.hash(), b.hash());
  b.set(5, false);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(3);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    ones += rng.flip(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.03);
}

TEST(ScaleConfig, EnvParsingDefaults) {
  const ScaleConfig fast = make_scale(Scale::kFast);
  const ScaleConfig full = make_scale(Scale::kFull);
  const ScaleConfig smoke = make_scale(Scale::kSmoke);
  EXPECT_EQ(full.train_rows, 6400u);  // the paper's protocol
  EXPECT_LT(fast.train_rows, full.train_rows);
  EXPECT_LT(smoke.num_benchmarks, fast.num_benchmarks);
  EXPECT_EQ(fast.name(), "fast");
}

class BitVecRandomized : public ::testing::TestWithParam<int> {};

TEST_P(BitVecRandomized, RandomizeHitsRequestedDensity) {
  Rng rng(GetParam());
  BitVec v(20000);
  const double p = 0.1 * (1 + GetParam() % 9);
  v.randomize(rng, p);
  EXPECT_NEAR(static_cast<double>(v.count()) / 20000.0, p, 0.03);
}

TEST_P(BitVecRandomized, DoubleFlipIsIdentity) {
  Rng rng(GetParam());
  BitVec v(777);
  v.randomize(rng);
  BitVec w = v;
  w.flip();
  w.flip();
  EXPECT_EQ(v, w);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecRandomized, ::testing::Range(1, 10));

}  // namespace
}  // namespace lsml::core
