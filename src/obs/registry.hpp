#pragma once
// obs: process-wide telemetry registry.
//
// Counters, gauges, and log2-bucketed latency histograms, named with an
// embedded-label convention (`lsml_server_op_us{op="eval"}`) and exported
// as Prometheus text exposition. Design constraints, in order:
//
//  1. Telemetry is side-channel only. Nothing in here may influence any
//     response, cache entry, or artifact byte. The registry is written on
//     hot paths and read by `metrics`/benches; both directions are
//     relaxed-atomic and TSan-clean.
//  2. The write path is lock-free. Counter::add is a relaxed fetch_add on
//     a cache-line-private cell (cells are striped per thread and merged
//     on read), Histogram::record is three relaxed fetch_adds. The only
//     mutex in the subsystem guards metric *registration* and exposition.
//  3. Metrics owned by short-lived objects (a `server::Service`'s request
//     counters) join the process registry through a RAII `Registration`
//     so `stats` and `metrics` can never disagree, and leave it on
//     destruction so tests with fresh Service instances stay isolated.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace lsml::obs {

// A monotonically increasing counter striped across cache-line-aligned
// cells: each thread picks one cell round-robin at first use and only ever
// fetch_adds that cell, so concurrent writers never contend on a line.
// Reads merge all cells. API is a drop-in superset of the
// std::atomic<std::uint64_t> members the pre-registry stats structs used
// (fetch_add / load), so existing call sites and tests compile unchanged.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;

  Counter() noexcept = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    cell().fetch_add(n, std::memory_order_relaxed);
  }
  // atomic<> compatibility shim; the return value is intentionally absent —
  // a striped counter has no cheap "value before this add".
  void fetch_add(std::uint64_t n,
                 std::memory_order = std::memory_order_relaxed) noexcept {
    add(n);
  }
  std::uint64_t load(
      std::memory_order = std::memory_order_relaxed) const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  // Not linearizable against concurrent adds; for tests and the
  // PassManager::reset_counters() hook only.
  void reset() noexcept {
    for (Cell& c : cells_) {
      c.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Cell {
    alignas(64) std::atomic<std::uint64_t> v{0};
  };
  static std::size_t slot() noexcept;
  std::atomic<std::uint64_t>& cell() noexcept { return cells_[slot()].v; }

  std::array<Cell, kCells> cells_{};
};

// A last-write-wins signed value (queue depths, cache occupancy).
class Gauge {
 public:
  Gauge() noexcept = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed log2 buckets: bucket 0 holds the value 0, bucket i (i >= 1) holds
// values v with bit_width(v) == i, i.e. 2^(i-1) <= v < 2^i. 40 buckets
// cover [0, 2^39) — about 9 days when recording microseconds. Recording is
// three relaxed fetch_adds; merging two histograms is bucket-wise addition,
// so snapshots merge associatively (pinned by obs_test).
inline constexpr std::size_t kHistogramBuckets = 40;

inline std::size_t histogram_bucket_index(std::uint64_t v) noexcept {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

// Inclusive upper bound of bucket i (2^i - 1); the last bucket is +Inf.
inline std::uint64_t histogram_bucket_le(std::size_t i) noexcept {
  return (std::uint64_t{1} << i) - 1;
}

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void merge(const HistogramSnapshot& other) noexcept;
  // Bucket-interpolated quantile, q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const noexcept;
  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Histogram {
 public:
  Histogram() noexcept = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    buckets_[histogram_bucket_index(v)].fetch_add(1,
                                                  std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// The process-wide registry. Metric names follow
//   lsml_<subsystem>_<what>[_total|_us|_bytes]{label="value",...}
// where the label block is part of the registry key. Two kinds of entry
// share a name space: metrics the registry owns (subsystem singletons,
// created by counter()/gauge()/histogram() and never destroyed) and
// externally-owned metrics aliased in via Registration (per-instance stats
// structs). Exposition merges same-named entries by summation, so N live
// Service instances export one combined series.
class Registry {
 public:
  static Registry& instance();

  // Get-or-create an owned metric. References stay valid for the process
  // lifetime; callers cache them in function-local statics.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // RAII alias for an externally-owned metric. Unregisters on destruction;
  // destroy before the metric it points at.
  class Registration {
   public:
    Registration() noexcept = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept;
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { release(); }
    void release() noexcept;

   private:
    friend class Registry;
    Registration(Registry* r, std::uint64_t id) noexcept
        : registry_(r), id_(id) {}
    Registry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  [[nodiscard]] Registration register_counter(const std::string& name,
                                              const Counter* c);
  [[nodiscard]] Registration register_histogram(const std::string& name,
                                                const Histogram* h);
  // Gauge sampled at exposition time (cache occupancy, config echoes).
  [[nodiscard]] Registration register_gauge_fn(
      const std::string& name, std::function<std::int64_t()> fn);

  // Point reads for benches and the --watch client. Same-named entries
  // are merged exactly as exposition would merge them.
  std::uint64_t counter_value(const std::string& name) const;
  std::optional<HistogramSnapshot> histogram_snapshot(
      const std::string& name) const;

  // Deterministically ordered Prometheus text exposition: families sorted
  // by name, one # TYPE line each, histogram buckets cumulative with
  // trailing empty buckets elided before the +Inf bound.
  std::string expose_prometheus() const;

 private:
  Registry() = default;
  void unregister(std::uint64_t id) noexcept;

  struct ExternalCounter {
    std::uint64_t id;
    const Counter* c;
  };
  struct ExternalHistogram {
    std::uint64_t id;
    const Histogram* h;
  };
  struct ExternalGauge {
    std::uint64_t id;
    std::function<std::int64_t()> fn;
  };

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::vector<ExternalCounter>> ext_counters_;
  std::map<std::string, std::vector<ExternalHistogram>> ext_histograms_;
  std::map<std::string, std::vector<ExternalGauge>> ext_gauges_;
};

}  // namespace lsml::obs
