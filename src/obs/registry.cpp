#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace lsml::obs {

std::size_t Counter::slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t s =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cum);
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) {
      if (i == 0) {
        return 0.0;
      }
      // Linear interpolation inside [2^(i-1), 2^i).
      const double lower = static_cast<double>(std::uint64_t{1} << (i - 1));
      const double width = lower;
      const double frac =
          (target - before) / static_cast<double>(buckets[i]);
      return lower + frac * width;
    }
  }
  return static_cast<double>(histogram_bucket_le(kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // never destroyed: outlive statics
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

Registry::Registration& Registry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Registry::Registration::release() noexcept {
  if (registry_ != nullptr) {
    registry_->unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

Registry::Registration Registry::register_counter(const std::string& name,
                                                  const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  ext_counters_[name].push_back({id, c});
  return Registration(this, id);
}

Registry::Registration Registry::register_histogram(const std::string& name,
                                                    const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  ext_histograms_[name].push_back({id, h});
  return Registration(this, id);
}

Registry::Registration Registry::register_gauge_fn(
    const std::string& name, std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  ext_gauges_[name].push_back({id, std::move(fn)});
  return Registration(this, id);
}

void Registry::unregister(std::uint64_t id) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  const auto erase_id = [id](auto& by_name) {
    for (auto it = by_name.begin(); it != by_name.end();) {
      auto& vec = it->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [id](const auto& e) { return e.id == id; }),
                vec.end());
      it = vec.empty() ? by_name.erase(it) : std::next(it);
    }
  };
  erase_id(ext_counters_);
  erase_id(ext_histograms_);
  erase_id(ext_gauges_);
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  if (const auto it = counters_.find(name); it != counters_.end()) {
    total += it->second->load();
  }
  if (const auto it = ext_counters_.find(name); it != ext_counters_.end()) {
    for (const auto& e : it->second) {
      total += e.c->load();
    }
  }
  return total;
}

std::optional<HistogramSnapshot> Registry::histogram_snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<HistogramSnapshot> out;
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    out = it->second->snapshot();
  }
  if (const auto it = ext_histograms_.find(name);
      it != ext_histograms_.end()) {
    for (const auto& e : it->second) {
      if (!out) {
        out = e.h->snapshot();
      } else {
        out->merge(e.h->snapshot());
      }
    }
  }
  return out;
}

namespace {

// "lsml_server_op_us{op=\"eval\"}" -> {"lsml_server_op_us", "op=\"eval\""}
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return {name, ""};
  }
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') {
    labels.pop_back();
  }
  return {name.substr(0, brace), labels};
}

std::string with_labels(const std::string& base, const std::string& labels) {
  return labels.empty() ? base : base + "{" + labels + "}";
}

void emit_histogram(std::ostringstream& os, const std::string& base,
                    const std::string& labels, const HistogramSnapshot& s) {
  // Cumulative buckets, trailing empty buckets elided before +Inf.
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (s.buckets[i] != 0) {
      last = i;
    }
  }
  std::uint64_t cum = 0;
  char bound[32];
  for (std::size_t i = 0; i <= last; ++i) {
    cum += s.buckets[i];
    std::snprintf(bound, sizeof(bound), "%" PRIu64, histogram_bucket_le(i));
    const std::string le = "le=\"" + std::string(bound) + "\"";
    os << base << "_bucket{"
       << (labels.empty() ? le : labels + "," + le) << "} " << cum << "\n";
  }
  const std::string inf = "le=\"+Inf\"";
  os << base << "_bucket{" << (labels.empty() ? inf : labels + "," + inf)
     << "} " << s.count << "\n";
  os << with_labels(base + "_sum", labels) << " " << s.sum << "\n";
  os << with_labels(base + "_count", labels) << " " << s.count << "\n";
}

}  // namespace

std::string Registry::expose_prometheus() const {
  // Collapse same-named entries (owned + external aliases) by summation,
  // then group series into families (name up to the label block) so each
  // family gets exactly one # TYPE line. std::map keeps everything sorted,
  // so the output is deterministic for a given set of live metrics.
  std::map<std::string, std::uint64_t> counter_series;
  std::map<std::string, std::int64_t> gauge_series;
  std::map<std::string, HistogramSnapshot> histogram_series;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      counter_series[name] += c->load();
    }
    for (const auto& [name, vec] : ext_counters_) {
      for (const auto& e : vec) {
        counter_series[name] += e.c->load();
      }
    }
    for (const auto& [name, g] : gauges_) {
      gauge_series[name] += g->load();
    }
    for (const auto& [name, vec] : ext_gauges_) {
      for (const auto& e : vec) {
        gauge_series[name] += e.fn();
      }
    }
    for (const auto& [name, h] : histograms_) {
      histogram_series[name].merge(h->snapshot());
    }
    for (const auto& [name, vec] : ext_histograms_) {
      for (const auto& e : vec) {
        histogram_series[name].merge(e.h->snapshot());
      }
    }
  }

  struct Family {
    const char* type = nullptr;
    std::vector<std::string> lines;  // pre-rendered series lines
  };
  std::map<std::string, Family> families;

  for (const auto& [name, value] : counter_series) {
    const auto [base, labels] = split_labels(name);
    Family& f = families[base];
    f.type = "counter";
    std::ostringstream line;
    line << with_labels(base, labels) << " " << value << "\n";
    f.lines.push_back(line.str());
  }
  for (const auto& [name, value] : gauge_series) {
    const auto [base, labels] = split_labels(name);
    Family& f = families[base];
    f.type = "gauge";
    std::ostringstream line;
    line << with_labels(base, labels) << " " << value << "\n";
    f.lines.push_back(line.str());
  }
  for (const auto& [name, snap] : histogram_series) {
    const auto [base, labels] = split_labels(name);
    Family& f = families[base];
    f.type = "histogram";
    std::ostringstream block;
    emit_histogram(block, base, labels, snap);
    f.lines.push_back(block.str());
  }

  std::ostringstream os;
  for (const auto& [base, family] : families) {
    os << "# TYPE " << base << " " << family.type << "\n";
    for (const std::string& line : family.lines) {
      os << line;
    }
  }
  return os.str();
}

}  // namespace lsml::obs
