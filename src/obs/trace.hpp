#pragma once
// obs: scoped spans -> per-thread ring buffers -> Chrome trace-event JSON.
//
// Tracing is off by default and costs one relaxed atomic load per
// ScopedSpan when disabled. When enabled (serve/run/synth `--trace-out`),
// each thread records completed spans into its own fixed-capacity ring
// (oldest entries are overwritten and counted as dropped), and
// export_chrome_trace() merges the rings into a chrome://tracing /
// Perfetto loadable JSON file of "X" (complete) events. Span names and
// categories must be string literals (or otherwise outlive the tracer) —
// the rings store the pointers, not copies.
//
// Determinism contract: spans never feed back into any response or
// artifact; the tracer only observes.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lsml::obs {

struct TraceEvent {
  const char* name;
  const char* cat;
  std::int64_t start_ns;  // relative to the enable() epoch
  std::int64_t dur_ns;
  std::uint32_t tid;      // small per-thread id, assigned at first record
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 15;

  static bool enabled() noexcept;
  static void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  static void disable() noexcept;
  // Drop all recorded spans and the dropped count; keeps enabled state.
  static void reset();

  static void record(const char* name, const char* cat,
                     std::chrono::steady_clock::time_point begin,
                     std::chrono::steady_clock::time_point end) noexcept;

  static std::uint64_t dropped() noexcept;
  static std::size_t recorded();

  // Events sorted by (tid, start) for byte-deterministic output given the
  // same recorded spans.
  static void export_chrome_trace(std::ostream& os);
  static bool export_to_file(const std::string& path);
};

// Stable process-lifetime copy of `name` for use as a span name (the
// rings store pointers). Interned: equal strings return the same pointer.
// For dynamic names (synth pass spellings, task labels); literals don't
// need it.
const char* intern_name(const std::string& name);

// RAII span: captures the start time at construction when tracing is
// enabled, records on destruction. A disabled span does no clock reads.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) noexcept
      : name_(Tracer::enabled() ? name : nullptr), cat_(cat) {
    if (name_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::record(name_, cat_, start_, std::chrono::steady_clock::now());
    }
  }

 private:
  const char* name_;
  const char* cat_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace lsml::obs
