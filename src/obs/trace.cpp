#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_set>
#include <vector>

namespace lsml::obs {

namespace {

struct Ring {
  Ring(std::size_t cap, std::uint32_t tid_) : capacity(cap), tid(tid_) {
    events.reserve(cap);
  }
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t capacity;
  std::size_t next = 0;  // overwrite cursor once the ring is full
  std::uint32_t tid;
};

struct Global {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dropped{0};
  // Epoch as steady_clock nanoseconds so record() can read it without the
  // mutex; generation invalidates thread-cached rings after enable/reset.
  std::atomic<std::int64_t> epoch_ns{0};
  std::atomic<std::uint64_t> generation{0};
  std::mutex mu;  // guards rings, capacity, next_tid
  std::vector<std::shared_ptr<Ring>> rings;
  std::size_t capacity = Tracer::kDefaultRingCapacity;
  std::uint32_t next_tid = 1;
};

Global& g() {
  static Global* instance = new Global();  // outlive thread-local teardown
  return *instance;
}

struct ThreadRing {
  std::shared_ptr<Ring> ring;
  std::uint64_t generation = 0;
};
thread_local ThreadRing t_ring;

Ring* this_thread_ring() {
  Global& gl = g();
  const std::uint64_t gen = gl.generation.load(std::memory_order_acquire);
  if (t_ring.ring != nullptr && t_ring.generation == gen) {
    return t_ring.ring.get();
  }
  std::lock_guard<std::mutex> lock(gl.mu);
  auto ring = std::make_shared<Ring>(gl.capacity, gl.next_tid++);
  gl.rings.push_back(ring);
  t_ring.ring = std::move(ring);
  t_ring.generation = gen;
  return t_ring.ring.get();
}

std::int64_t to_ns(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace

const char* intern_name(const std::string& name) {
  // std::unordered_set is node-based, so element addresses are stable;
  // never destroyed so interned pointers outlive every static consumer.
  static std::mutex* mu = new std::mutex();
  static std::unordered_set<std::string>* names =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  return names->insert(name).first->c_str();
}

bool Tracer::enabled() noexcept {
  return g().enabled.load(std::memory_order_relaxed);
}

void Tracer::enable(std::size_t ring_capacity) {
  Global& gl = g();
  {
    std::lock_guard<std::mutex> lock(gl.mu);
    gl.capacity = ring_capacity == 0 ? 1 : ring_capacity;
    gl.rings.clear();
    gl.next_tid = 1;
  }
  gl.epoch_ns.store(to_ns(std::chrono::steady_clock::now()),
                    std::memory_order_relaxed);
  gl.dropped.store(0, std::memory_order_relaxed);
  // Release pairs with the acquire in this_thread_ring: a thread that sees
  // the new generation also sees the cleared ring list.
  gl.generation.fetch_add(1, std::memory_order_release);
  gl.enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() noexcept {
  g().enabled.store(false, std::memory_order_relaxed);
}

void Tracer::reset() {
  Global& gl = g();
  {
    std::lock_guard<std::mutex> lock(gl.mu);
    gl.rings.clear();
    gl.next_tid = 1;
  }
  gl.dropped.store(0, std::memory_order_relaxed);
  gl.generation.fetch_add(1, std::memory_order_release);
}

void Tracer::record(const char* name, const char* cat,
                    std::chrono::steady_clock::time_point begin,
                    std::chrono::steady_clock::time_point end) noexcept {
  Global& gl = g();
  if (!gl.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  const std::int64_t epoch = gl.epoch_ns.load(std::memory_order_relaxed);
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.start_ns = to_ns(begin) - epoch;
  e.dur_ns = to_ns(end) - to_ns(begin);
  Ring* ring = this_thread_ring();
  std::lock_guard<std::mutex> lock(ring->mu);
  e.tid = ring->tid;
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(e);
  } else {
    ring->events[ring->next] = e;
    ring->next = (ring->next + 1) % ring->capacity;
    gl.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t Tracer::dropped() noexcept {
  return g().dropped.load(std::memory_order_relaxed);
}

namespace {

std::vector<TraceEvent> collect_events() {
  Global& gl = g();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(gl.mu);
    rings = gl.rings;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    // Oldest first: [next, end) then [0, next) once wrapped.
    if (ring->events.size() == ring->capacity && ring->next != 0) {
      out.insert(out.end(), ring->events.begin() + ring->next,
                 ring->events.end());
      out.insert(out.end(), ring->events.begin(),
                 ring->events.begin() + ring->next);
    } else {
      out.insert(out.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) {
                return a.tid < b.tid;
              }
              if (a.start_ns != b.start_ns) {
                return a.start_ns < b.start_ns;
              }
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

}  // namespace

std::size_t Tracer::recorded() { return collect_events().size(); }

void Tracer::export_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = collect_events();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // Chrome trace-event timestamps are microseconds (doubles).
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,",
                  i == 0 ? "\n" : ",\n", e.tid,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
    os << buf << "\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name
       << "\"}";
  }
  os << "\n]}\n";
}

bool Tracer::export_to_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  export_chrome_trace(os);
  return static_cast<bool>(os);
}

}  // namespace lsml::obs
