#include "data/dataset.hpp"

#include <cassert>
#include <stdexcept>

namespace lsml::data {

Dataset::Dataset(std::size_t num_inputs, std::size_t num_rows)
    : num_rows_(num_rows), columns_(num_inputs, core::BitVec(num_rows)),
      labels_(num_rows) {}

std::size_t Dataset::add_column(core::BitVec column) {
  if (column.size() != num_rows_) {
    throw std::invalid_argument("add_column: row count mismatch");
  }
  columns_.push_back(std::move(column));
  return columns_.size() - 1;
}

std::vector<const core::BitVec*> Dataset::column_ptrs() const {
  std::vector<const core::BitVec*> ptrs;
  ptrs.reserve(columns_.size());
  for (const auto& c : columns_) {
    ptrs.push_back(&c);
  }
  return ptrs;
}

std::vector<std::uint8_t> Dataset::row(std::size_t r) const {
  std::vector<std::uint8_t> out(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out[c] = columns_[c].get(r) ? 1 : 0;
  }
  return out;
}

std::uint64_t Dataset::row_hash(std::size_t r) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& col : columns_) {
    h ^= col.get(r) ? 0x9eULL : 0x31ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Dataset::content_hash() const {
  // FNV-1a over the shape and packed words. The tail words of every
  // BitVec are zero by invariant, so equal contents hash equal.
  const std::size_t num_cols = columns_.size();
  std::uint64_t h = core::fnv1a(&num_rows_, sizeof(num_rows_));
  h = core::fnv1a(&num_cols, sizeof(num_cols), h);
  for (const auto& col : columns_) {
    h = core::fnv1a(col.words(), col.num_words() * sizeof(std::uint64_t), h);
  }
  return core::fnv1a(labels_.words(),
                     labels_.num_words() * sizeof(std::uint64_t), h);
}

double Dataset::label_fraction() const {
  if (num_rows_ == 0) {
    return 0.0;
  }
  return static_cast<double>(labels_.count()) /
         static_cast<double>(num_rows_);
}

Dataset Dataset::select_rows(const std::vector<std::size_t>& idx) const {
  Dataset out(columns_.size(), idx.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (columns_[c].get(idx[r])) {
        out.columns_[c].set(r, true);
      }
    }
    if (labels_.get(idx[r])) {
      out.labels_.set(r, true);
    }
  }
  return out;
}

Dataset Dataset::select_columns(const std::vector<std::size_t>& cols) const {
  Dataset out(cols.size(), num_rows_);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out.columns_[c] = columns_[cols[c]];
  }
  out.labels_ = labels_;
  return out;
}

Dataset Dataset::merged_with(const Dataset& other) const {
  if (other.num_inputs() != num_inputs()) {
    throw std::invalid_argument("merged_with: input count mismatch");
  }
  Dataset out(num_inputs(), num_rows_ + other.num_rows_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (columns_[c].get(r)) {
        out.columns_[c].set(r, true);
      }
    }
    for (std::size_t r = 0; r < other.num_rows_; ++r) {
      if (other.columns_[c].get(r)) {
        out.columns_[c].set(num_rows_ + r, true);
      }
    }
  }
  for (std::size_t r = 0; r < num_rows_; ++r) {
    if (labels_.get(r)) {
      out.labels_.set(r, true);
    }
  }
  for (std::size_t r = 0; r < other.num_rows_; ++r) {
    if (other.labels_.get(r)) {
      out.labels_.set(num_rows_ + r, true);
    }
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double frac, core::Rng& rng,
                                           bool stratified) const {
  std::vector<std::size_t> order(num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    order[i] = i;
  }
  // Fisher-Yates shuffle.
  for (std::size_t i = num_rows_; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<std::size_t> first;
  std::vector<std::size_t> second;
  if (!stratified) {
    const auto cut = static_cast<std::size_t>(frac * num_rows_);
    first.assign(order.begin(), order.begin() + static_cast<long>(cut));
    second.assign(order.begin() + static_cast<long>(cut), order.end());
  } else {
    // Walk each class independently and cut at the same fraction.
    std::vector<std::size_t> pos;
    std::vector<std::size_t> neg;
    for (std::size_t i : order) {
      (labels_.get(i) ? pos : neg).push_back(i);
    }
    const auto pos_cut = static_cast<std::size_t>(frac * pos.size());
    const auto neg_cut = static_cast<std::size_t>(frac * neg.size());
    first.assign(pos.begin(), pos.begin() + static_cast<long>(pos_cut));
    first.insert(first.end(), neg.begin(),
                 neg.begin() + static_cast<long>(neg_cut));
    second.assign(pos.begin() + static_cast<long>(pos_cut), pos.end());
    second.insert(second.end(), neg.begin() + static_cast<long>(neg_cut),
                  neg.end());
  }
  return {select_rows(first), select_rows(second)};
}

double accuracy(const core::BitVec& predictions, const core::BitVec& labels) {
  if (labels.size() == 0) {
    return 0.0;
  }
  return static_cast<double>(predictions.count_equal(labels)) /
         static_cast<double>(labels.size());
}

}  // namespace lsml::data
