#pragma once
// Column-packed binary datasets.
//
// A dataset is the contest's unit of training data: rows of input bits with
// a single binary label. Columns are packed BitVecs so learners can score
// candidate splits with word-parallel popcounts, and so a dataset's columns
// can be fed directly to aig::Aig::simulate.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/bits.hpp"
#include "core/rng.hpp"

namespace lsml::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t num_inputs, std::size_t num_rows);

  [[nodiscard]] std::size_t num_inputs() const { return columns_.size(); }
  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }

  [[nodiscard]] const core::BitVec& column(std::size_t i) const {
    return columns_[i];
  }
  [[nodiscard]] core::BitVec& column(std::size_t i) { return columns_[i]; }
  [[nodiscard]] const core::BitVec& labels() const { return labels_; }
  [[nodiscard]] core::BitVec& labels() { return labels_; }

  [[nodiscard]] bool input(std::size_t row, std::size_t col) const {
    return columns_[col].get(row);
  }
  void set_input(std::size_t row, std::size_t col, bool v) {
    columns_[col].set(row, v);
  }
  [[nodiscard]] bool label(std::size_t row) const { return labels_.get(row); }
  void set_label(std::size_t row, bool v) { labels_.set(row, v); }

  /// Adds a derived feature column (used by fringe feature extraction).
  /// Returns the new column index.
  std::size_t add_column(core::BitVec column);

  /// Pointers to the first `n` columns, in Aig::simulate layout.
  [[nodiscard]] std::vector<const core::BitVec*> column_ptrs() const;

  /// One row as a byte vector (for row-oriented learners).
  [[nodiscard]] std::vector<std::uint8_t> row(std::size_t r) const;
  [[nodiscard]] std::uint64_t row_hash(std::size_t r) const;

  /// Order-sensitive 64-bit digest of the full contents (shape, every
  /// input column, labels). Equal datasets hash equal across processes;
  /// used to key on-disk result caches.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Fraction of rows with label 1.
  [[nodiscard]] double label_fraction() const;

  [[nodiscard]] Dataset select_rows(const std::vector<std::size_t>& idx) const;
  [[nodiscard]] Dataset select_columns(
      const std::vector<std::size_t>& cols) const;

  /// Row-wise concatenation; input counts must match.
  [[nodiscard]] Dataset merged_with(const Dataset& other) const;

  /// Random split into (first, second) with `frac` of rows in first.
  /// If `stratified`, the label distribution is preserved in both halves.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double frac, core::Rng& rng,
                                                  bool stratified = false) const;

 private:
  std::size_t num_rows_ = 0;
  std::vector<core::BitVec> columns_;
  core::BitVec labels_;
};

/// Fraction of rows where prediction equals label.
double accuracy(const core::BitVec& predictions, const core::BitVec& labels);

}  // namespace lsml::data
