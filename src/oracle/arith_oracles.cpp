#include "oracle/arith_oracles.hpp"

namespace lsml::oracle {

bool AdderBitOracle::eval(const core::BitVec& row) const {
  const Limbs a = limbs_from_row(row, 0, k_);
  const Limbs b = limbs_from_row(row, k_, k_);
  return get_bit(add(a, b), out_bit_);
}

bool DividerBitOracle::eval(const core::BitVec& row) const {
  const Limbs a = limbs_from_row(row, 0, k_);
  const Limbs b = limbs_from_row(row, k_, k_);
  Limbs rem;
  const Limbs q = divrem(a, b, &rem);
  return get_bit(quotient_ ? q : rem, out_bit_);
}

bool MultiplierBitOracle::eval(const core::BitVec& row) const {
  const Limbs a = limbs_from_row(row, 0, k_);
  const Limbs b = limbs_from_row(row, k_, k_);
  return get_bit(mul(a, b), out_bit_);
}

bool ComparatorOracle::eval(const core::BitVec& row) const {
  const Limbs a = limbs_from_row(row, 0, k_);
  const Limbs b = limbs_from_row(row, k_, k_);
  return compare(a, b) > 0;
}

bool SqrtBitOracle::eval(const core::BitVec& row) const {
  const Limbs a = limbs_from_row(row, 0, k_);
  return get_bit(isqrt(a), out_bit_);
}

}  // namespace lsml::oracle
