#include "oracle/suite.hpp"

#include <array>
#include <stdexcept>
#include <unordered_set>

#include "oracle/arith_oracles.hpp"
#include "oracle/logic_oracles.hpp"
#include "oracle/vision_oracles.hpp"

namespace lsml::oracle {

void Oracle::sample(core::BitVec* row, bool* label, core::Rng& rng) const {
  *row = core::BitVec(num_inputs());
  row->randomize(rng);
  *label = eval(*row);
}

namespace {

data::Dataset rows_to_dataset(const std::vector<core::BitVec>& rows,
                              const std::vector<bool>& labels) {
  data::Dataset ds(rows.empty() ? 0 : rows[0].size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (rows[r].get(c)) {
        ds.set_input(r, c, true);
      }
    }
    ds.set_label(r, labels[r]);
  }
  return ds;
}

}  // namespace

data::Dataset sample_dataset(const Oracle& oracle, std::size_t rows,
                             core::Rng& rng) {
  std::vector<core::BitVec> collected;
  std::vector<bool> labels;
  std::unordered_set<std::uint64_t> seen;
  while (collected.size() < rows) {
    core::BitVec row;
    bool label = false;
    oracle.sample(&row, &label, rng);
    if (!seen.insert(row.hash()).second) {
      continue;
    }
    collected.push_back(std::move(row));
    labels.push_back(label);
  }
  return rows_to_dataset(collected, labels);
}

void sample_disjoint(const Oracle& oracle, std::size_t rows_each,
                     core::Rng& rng, data::Dataset* train,
                     data::Dataset* valid, data::Dataset* test) {
  std::unordered_set<std::uint64_t> seen;
  const auto fill = [&](data::Dataset* out) {
    std::vector<core::BitVec> collected;
    std::vector<bool> labels;
    while (collected.size() < rows_each) {
      core::BitVec row;
      bool label = false;
      oracle.sample(&row, &label, rng);
      if (!seen.insert(row.hash()).second) {
        continue;
      }
      collected.push_back(std::move(row));
      labels.push_back(label);
    }
    *out = rows_to_dataset(collected, labels);
  };
  fill(train);
  fill(valid);
  fill(test);
}

namespace {

constexpr std::array<std::size_t, 5> kAdderWidths{16, 32, 64, 128, 256};
constexpr std::array<std::size_t, 5> kMultWidths{8, 16, 32, 64, 128};
constexpr std::array<std::size_t, 5> kSqrtWidths{16, 32, 64, 128, 256};

// Input counts for the PicoJava-like and i10-like cone substitutes; the
// paper specifies "16-200 inputs".
constexpr std::array<std::uint32_t, 10> kPicoInputs{16,  32,  50,  66,  82,
                                                    100, 120, 145, 170, 200};
constexpr std::array<std::uint32_t, 10> kI10Inputs{18,  25,  40,  60,  80,
                                                   105, 130, 155, 180, 200};

const char* kSymSignatures[5] = {
    "00000000111111111", "11111100000111111", "00011110001111000",
    "00001110101110000", "00000011111000000"};

}  // namespace

std::string benchmark_category(int id) {
  if (id < 10) {
    return id % 2 == 0 ? "adder-msb" : "adder-msb2";
  }
  if (id < 20) {
    return id % 2 == 0 ? "divider-msb" : "remainder-msb";
  }
  if (id < 30) {
    return id % 2 == 0 ? "multiplier-msb" : "multiplier-mid";
  }
  if (id < 40) {
    return "comparator";
  }
  if (id < 50) {
    return id % 2 == 0 ? "sqrt-lsb" : "sqrt-mid";
  }
  if (id < 60) {
    return "picojava-cone";
  }
  if (id < 70) {
    return "i10-cone";
  }
  if (id < 75) {
    return "mcnc-misc";
  }
  if (id < 80) {
    return "symmetric";
  }
  if (id < 90) {
    return "mnist-like";
  }
  return "cifar-like";
}

std::unique_ptr<Oracle> make_oracle(int id, std::uint64_t seed) {
  if (id < 0 || id >= 100) {
    throw std::invalid_argument("make_oracle: id out of range");
  }
  if (id < 10) {
    const std::size_t k = kAdderWidths[static_cast<std::size_t>(id) / 2];
    const std::size_t bit = id % 2 == 0 ? k : k - 1;  // MSB / 2nd MSB
    return std::make_unique<AdderBitOracle>(k, bit);
  }
  if (id < 20) {
    const std::size_t k = kAdderWidths[static_cast<std::size_t>(id - 10) / 2];
    return std::make_unique<DividerBitOracle>(k, k - 1, id % 2 == 0);
  }
  if (id < 30) {
    const std::size_t k = kMultWidths[static_cast<std::size_t>(id - 20) / 2];
    const std::size_t bit = id % 2 == 0 ? 2 * k - 1 : k - 1;
    return std::make_unique<MultiplierBitOracle>(k, bit);
  }
  if (id < 40) {
    return std::make_unique<ComparatorOracle>(
        static_cast<std::size_t>(id - 29) * 10);
  }
  if (id < 50) {
    const std::size_t k = kSqrtWidths[static_cast<std::size_t>(id - 40) / 2];
    const std::size_t bit = id % 2 == 0 ? 0 : k / 4;
    return std::make_unique<SqrtBitOracle>(k, bit);
  }
  if (id < 60) {
    const auto inputs = kPicoInputs[static_cast<std::size_t>(id - 50)];
    return make_cone_oracle(inputs, inputs * 12, aig::ConeFlavor::kRandom,
                            seed * 7919 + static_cast<std::uint64_t>(id));
  }
  if (id < 70) {
    const auto inputs = kI10Inputs[static_cast<std::size_t>(id - 60)];
    return make_cone_oracle(inputs, inputs * 10, aig::ConeFlavor::kRandom,
                            seed * 104729 + static_cast<std::uint64_t>(id));
  }
  if (id == 70 || id == 71) {
    // cordic substitutes: 23-input arithmetic-flavoured cones.
    return make_cone_oracle(23, 300, aig::ConeFlavor::kArith,
                            seed * 1299709 + static_cast<std::uint64_t>(id));
  }
  if (id == 72) {
    // too_large substitute: 38-input XOR-rich cone.
    return make_cone_oracle(38, 500, aig::ConeFlavor::kXorRich,
                            seed * 15485863 + 72);
  }
  if (id == 73) {
    return std::make_unique<NestedOracle>();  // t481 substitute
  }
  if (id == 74) {
    return std::make_unique<ParityOracle>(16);
  }
  if (id < 80) {
    return std::make_unique<SymmetricOracle>(
        16, kSymSignatures[static_cast<std::size_t>(id - 75)]);
  }
  if (id < 90) {
    return std::make_unique<VisionOracle>(VisionDomain::kMnistLike,
                                          table2_groups(id - 80),
                                          seed + static_cast<std::uint64_t>(id));
  }
  return std::make_unique<VisionOracle>(VisionDomain::kCifarLike,
                                        table2_groups(id - 90),
                                        seed + static_cast<std::uint64_t>(id));
}

Benchmark make_benchmark(int id, const SuiteOptions& options) {
  Benchmark b;
  b.id = id;
  b.name = id < 10 ? "ex0" + std::to_string(id) : "ex" + std::to_string(id);
  b.category = benchmark_category(id);
  const auto oracle = make_oracle(id, options.seed);
  b.num_inputs = oracle->num_inputs();
  core::Rng rng(options.seed * 6364136223846793005ULL +
                static_cast<std::uint64_t>(id));
  sample_disjoint(*oracle, options.rows_per_split, rng, &b.train, &b.valid,
                  &b.test);
  return b;
}

std::vector<Benchmark> make_suite(const SuiteOptions& options, int count) {
  std::vector<Benchmark> suite;
  suite.reserve(static_cast<std::size_t>(count));
  for (int id = 0; id < count; ++id) {
    suite.push_back(make_benchmark(id, options));
  }
  return suite;
}

}  // namespace lsml::oracle
