#pragma once
// Arbitrary-width unsigned integer arithmetic on 64-bit limbs.
//
// Backing store for the arithmetic benchmark oracles (Table I): adders,
// dividers/remainders, multipliers, comparators and square-rooters with
// operand widths up to 256 bits.

#include <cstdint>
#include <vector>

#include "core/bits.hpp"

namespace lsml::oracle {

/// Little-endian limb vector (limb 0 = least significant 64 bits).
using Limbs = std::vector<std::uint64_t>;

/// Extracts bits [start, start+width) of a row as a number (LSB first).
Limbs limbs_from_row(const core::BitVec& row, std::size_t start,
                     std::size_t width);

[[nodiscard]] bool get_bit(const Limbs& x, std::size_t i);

/// a + b, result one limb wider than the wider operand (carry preserved).
Limbs add(const Limbs& a, const Limbs& b);

/// a * b, full double-width product.
Limbs mul(const Limbs& a, const Limbs& b);

/// Floor division; *rem receives the remainder. By convention a/0 returns
/// all-ones of a's width with remainder a (matching a saturating divider).
Limbs divrem(const Limbs& a, const Limbs& b, Limbs* rem);

/// Floor square root (result has ceil(width/2) meaningful bits).
Limbs isqrt(const Limbs& a);

/// -1, 0, +1 for a < b, a == b, a > b (operands zero-extended as needed).
int compare(const Limbs& a, const Limbs& b);

}  // namespace lsml::oracle
