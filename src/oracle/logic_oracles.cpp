#include "oracle/logic_oracles.hpp"

#include <stdexcept>

#include "aig/sim_engine.hpp"

namespace lsml::oracle {

bool AigOracle::eval(const core::BitVec& row) const {
  std::vector<std::uint8_t> bits(aig_.num_pis());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = row.get(i) ? 1 : 0;
  }
  return aig_.eval_row(bits)[0];
}

core::BitVec AigOracle::label_rows(const data::Dataset& inputs) const {
  // Dataset generation sweeps once per split; extract only the labeled
  // output instead of materializing every output column.
  aig::SimEngine engine(aig_);
  engine.run(inputs.column_ptrs());
  return engine.extract(aig_.output(0));
}

SymmetricOracle::SymmetricOracle(std::size_t num_inputs,
                                 const std::string& signature)
    : n_(num_inputs) {
  if (signature.size() != num_inputs + 1) {
    throw std::invalid_argument("SymmetricOracle: bad signature length");
  }
  signature_.reserve(signature.size());
  for (char c : signature) {
    signature_.push_back(c == '1');
  }
}

bool SymmetricOracle::eval(const core::BitVec& row) const {
  return signature_[row.count()];
}

bool NestedOracle::eval(const core::BitVec& row) const {
  // g(a,b,c,d) = (a XOR b) OR (c AND !d): a mixing function with both
  // linear and monotone parts, applied over a 4x4 -> 1 tree.
  const auto g = [](bool a, bool b, bool c, bool d) {
    return (a != b) || (c && !d);
  };
  bool mid[4];
  for (int block = 0; block < 4; ++block) {
    mid[block] = g(row.get(4 * block), row.get(4 * block + 1),
                   row.get(4 * block + 2), row.get(4 * block + 3));
  }
  return g(mid[0], mid[1], mid[2], mid[3]);
}

std::unique_ptr<AigOracle> make_cone_oracle(std::uint32_t num_inputs,
                                            std::uint32_t num_ands,
                                            aig::ConeFlavor flavor,
                                            std::uint64_t seed) {
  aig::ConeOptions options;
  options.num_inputs = num_inputs;
  options.num_ands = num_ands;
  options.flavor = flavor;
  core::Rng rng(seed);
  return std::make_unique<AigOracle>(aig::random_cone(options, rng));
}

}  // namespace lsml::oracle
