#pragma once
// Random-logic and symmetric benchmark oracles (Table I, ex50-ex79).
//
// The PicoJava / MCNC cones are substituted by seeded random AIG cones with
// the paper's input counts and balance requirement; see DESIGN.md.

#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_random.hpp"
#include "oracle/oracle.hpp"

namespace lsml::oracle {

/// A logic cone backed by an AIG (random or constructed).
class AigOracle final : public Oracle {
 public:
  explicit AigOracle(aig::Aig g) : aig_(std::move(g)) {}
  [[nodiscard]] std::size_t num_inputs() const override {
    return aig_.num_pis();
  }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;
  [[nodiscard]] const aig::Aig& graph() const { return aig_; }

  /// Labels a whole dataset's rows in one packed simulation.
  [[nodiscard]] core::BitVec label_rows(const data::Dataset& inputs) const;

 private:
  aig::Aig aig_;
};

/// Totally symmetric function from a popcount signature (ex75-ex79).
class SymmetricOracle final : public Oracle {
 public:
  /// `signature` has num_inputs+1 characters of '0'/'1'.
  SymmetricOracle(std::size_t num_inputs, const std::string& signature);
  [[nodiscard]] std::size_t num_inputs() const override { return n_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;
  [[nodiscard]] const std::vector<bool>& signature() const {
    return signature_;
  }

 private:
  std::size_t n_;
  std::vector<bool> signature_;
};

/// Odd parity of n inputs (ex74; "16-XOR" in the paper's appendix).
class ParityOracle final : public Oracle {
 public:
  explicit ParityOracle(std::size_t n) : n_(n) {}
  [[nodiscard]] std::size_t num_inputs() const override { return n_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override {
    return row.count() & 1;
  }

 private:
  std::size_t n_;
};

/// t481 substitute: a two-level recursive composition g(g(..),..) of a fixed
/// 4-input function, giving a compact structured 16-input function.
class NestedOracle final : public Oracle {
 public:
  [[nodiscard]] std::size_t num_inputs() const override { return 16; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;
};

/// Factory for the random-cone benchmarks (ex50-ex73 substitutes).
std::unique_ptr<AigOracle> make_cone_oracle(std::uint32_t num_inputs,
                                            std::uint32_t num_ands,
                                            aig::ConeFlavor flavor,
                                            std::uint64_t seed);

}  // namespace lsml::oracle
