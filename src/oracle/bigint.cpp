#include "oracle/bigint.hpp"

#include <algorithm>
#include <cassert>

namespace lsml::oracle {

Limbs limbs_from_row(const core::BitVec& row, std::size_t start,
                     std::size_t width) {
  Limbs out((width + 63) / 64, 0);
  for (std::size_t i = 0; i < width; ++i) {
    if (row.get(start + i)) {
      out[i >> 6] |= 1ULL << (i & 63);
    }
  }
  return out;
}

bool get_bit(const Limbs& x, std::size_t i) {
  const std::size_t limb = i >> 6;
  if (limb >= x.size()) {
    return false;
  }
  return (x[limb] >> (i & 63)) & 1ULL;
}

Limbs add(const Limbs& a, const Limbs& b) {
  const std::size_t n = std::max(a.size(), b.size());
  Limbs out(n + 1, 0);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned __int128 s = carry;
    if (i < a.size()) {
      s += a[i];
    }
    if (i < b.size()) {
      s += b[i];
    }
    out[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out[n] = static_cast<std::uint64_t>(carry);
  return out;
}

Limbs mul(const Limbs& a, const Limbs& b) {
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      unsigned __int128 cur = out[i + j];
      cur += static_cast<unsigned __int128>(a[i]) * b[j];
      cur += carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      unsigned __int128 cur = out[k];
      cur += carry;
      out[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  return out;
}

int compare(const Limbs& a, const Limbs& b) {
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t av = i < a.size() ? a[i] : 0;
    const std::uint64_t bv = i < b.size() ? b[i] : 0;
    if (av != bv) {
      return av < bv ? -1 : 1;
    }
  }
  return 0;
}

namespace {

bool is_zero(const Limbs& x) {
  return std::all_of(x.begin(), x.end(),
                     [](std::uint64_t w) { return w == 0; });
}

// x -= y, assuming x >= y; operands same size.
void sub_in_place(Limbs& x, const Limbs& y) {
  unsigned __int128 borrow = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const unsigned __int128 yv = (i < y.size() ? y[i] : 0) + borrow;
    if (x[i] >= yv) {
      x[i] = static_cast<std::uint64_t>(x[i] - yv);
      borrow = 0;
    } else {
      x[i] = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) + x[i] - yv);
      borrow = 1;
    }
  }
  assert(borrow == 0 && "sub_in_place underflow");
}

// x = (x << 1) | bit.
void shl1_in_place(Limbs& x, bool bit) {
  std::uint64_t carry = bit ? 1 : 0;
  for (auto& limb : x) {
    const std::uint64_t next = limb >> 63;
    limb = (limb << 1) | carry;
    carry = next;
  }
}

void set_bit(Limbs& x, std::size_t i) {
  if ((i >> 6) < x.size()) {
    x[i >> 6] |= 1ULL << (i & 63);
  }
}

}  // namespace

Limbs divrem(const Limbs& a, const Limbs& b, Limbs* rem) {
  Limbs q(a.size(), 0);
  if (is_zero(b)) {
    // Saturating divider convention: q = all ones, remainder = a.
    for (auto& limb : q) {
      limb = ~0ULL;
    }
    if (rem != nullptr) {
      *rem = a;
    }
    return q;
  }
  Limbs r(std::max(a.size(), b.size()) + 1, 0);
  for (std::size_t i = a.size() * 64; i-- > 0;) {
    shl1_in_place(r, get_bit(a, i));
    if (compare(r, b) >= 0) {
      sub_in_place(r, b);
      set_bit(q, i);
    }
  }
  if (rem != nullptr) {
    *rem = r;
    rem->resize(a.size(), 0);
  }
  return q;
}

Limbs isqrt(const Limbs& a) {
  const std::size_t width = a.size() * 64;
  // Digit-by-digit method in base 2.
  Limbs x = a;
  Limbs res(a.size(), 0);
  // `bit` starts at the highest even power of two <= width-1.
  std::size_t bit_pos = width - 2;
  while (true) {
    // one = res + 2^bit_pos
    Limbs trial = res;
    set_bit(trial, bit_pos);
    if (compare(x, trial) >= 0) {
      sub_in_place(x, trial);
      // res = (res >> 1) + 2^bit_pos
      std::uint64_t carry = 0;
      for (std::size_t i = res.size(); i-- > 0;) {
        const std::uint64_t next = res[i] & 1;
        res[i] = (res[i] >> 1) | (carry << 63);
        carry = next;
      }
      set_bit(res, bit_pos);
    } else {
      std::uint64_t carry = 0;
      for (std::size_t i = res.size(); i-- > 0;) {
        const std::uint64_t next = res[i] & 1;
        res[i] = (res[i] >> 1) | (carry << 63);
        carry = next;
      }
    }
    if (bit_pos < 2) {
      break;
    }
    bit_pos -= 2;
  }
  return res;
}

}  // namespace lsml::oracle
