#include "oracle/vision_oracles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsml::oracle {

GroupComparison table2_groups(int index) {
  switch (index) {
    case 0:
      return {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
    case 1:
      return {{1, 3, 5, 7, 9}, {0, 2, 4, 6, 8}};  // odd vs even
    case 2:
      return {{0, 1, 2}, {3, 4, 5}};
    case 3:
      return {{0, 1}, {2, 3}};
    case 4:
      return {{4, 5}, {6, 7}};
    case 5:
      return {{6, 7}, {8, 9}};
    case 6:
      return {{1, 7}, {3, 8}};
    case 7:
      return {{0, 9}, {3, 8}};
    case 8:
      return {{1, 3}, {7, 8}};
    case 9:
      return {{0, 3}, {8, 9}};
    default:
      throw std::invalid_argument("table2_groups: index out of range");
  }
}

namespace {

struct GridSpec {
  std::size_t width;
  std::size_t height;
  std::size_t planes;
};

GridSpec grid_for(VisionDomain domain) {
  if (domain == VisionDomain::kMnistLike) {
    return {28, 28, 1};  // 784 inputs, like thresholded MNIST
  }
  return {16, 16, 3};  // 768 inputs, like heavily downsampled CIFAR
}

}  // namespace

VisionOracle::VisionOracle(VisionDomain domain, GroupComparison groups,
                           std::uint64_t seed)
    : domain_(domain), groups_(std::move(groups)) {
  const GridSpec grid = grid_for(domain);
  num_pixels_ = grid.width * grid.height * grid.planes;

  const bool mnist = domain == VisionDomain::kMnistLike;
  // Per-plane noise field shared by all classes (CIFAR-like only): makes
  // classes overlap, which is what keeps attainable accuracy low.
  core::Rng shared_rng(seed * 0x51ed2701u + 17);
  std::vector<double> shared(num_pixels_, 0.0);
  if (!mnist) {
    for (auto& v : shared) {
      v = (shared_rng.uniform() - 0.5) * 0.5;
    }
  }

  for (int cls = 0; cls < 10; ++cls) {
    core::Rng rng(seed * 1315423911u + static_cast<std::uint64_t>(cls) + 1);
    auto& field = probs_[static_cast<std::size_t>(cls)];
    field.assign(num_pixels_, mnist ? 0.06 : 0.5);
    // Structured blobs: a handful of random rectangles per plane.
    const int blobs = mnist ? 5 : 3;
    const double strength = mnist ? 0.82 : 0.22;
    for (std::size_t plane = 0; plane < grid.planes; ++plane) {
      for (int b = 0; b < blobs; ++b) {
        const std::size_t x0 = rng.below(grid.width);
        const std::size_t y0 = rng.below(grid.height);
        const std::size_t w = 2 + rng.below(grid.width / 3);
        const std::size_t h = 2 + rng.below(grid.height / 3);
        for (std::size_t y = y0; y < std::min(y0 + h, grid.height); ++y) {
          for (std::size_t x = x0; x < std::min(x0 + w, grid.width); ++x) {
            const std::size_t p =
                plane * grid.width * grid.height + y * grid.width + x;
            field[p] = std::min(0.97, field[p] + strength);
          }
        }
      }
    }
    for (std::size_t p = 0; p < num_pixels_; ++p) {
      field[p] = std::clamp(field[p] + shared[p], 0.03, 0.97);
    }
    if (!mnist) {
      // CIFAR-like hardness: squash the class-conditional fields toward
      // one half so classes overlap heavily. This reproduces the paper's
      // accuracy gap (MNIST-group tasks reach ~90%+, CIFAR-group tasks
      // saturate in the 55-75% range even for the best teams).
      for (auto& p : field) {
        p = 0.5 + (p - 0.5) * 0.15;
      }
    }
  }
}

void VisionOracle::sample(core::BitVec* row, bool* label,
                          core::Rng& rng) const {
  const bool from_b = rng.flip(0.5);
  const auto& group = from_b ? groups_.group_b : groups_.group_a;
  const int cls = group[rng.below(group.size())];
  *row = core::BitVec(num_pixels_);
  const auto& field = probs_[static_cast<std::size_t>(cls)];
  for (std::size_t p = 0; p < num_pixels_; ++p) {
    if (rng.flip(field[p])) {
      row->set(p, true);
    }
  }
  *label = from_b;
}

bool VisionOracle::eval(const core::BitVec& row) const {
  // Bayes rule: compare total log-likelihood of the two groups.
  const auto group_loglik = [&](const std::vector<int>& group) {
    double best = -1e300;
    for (int cls : group) {
      const auto& field = probs_[static_cast<std::size_t>(cls)];
      double ll = 0.0;
      for (std::size_t p = 0; p < num_pixels_; ++p) {
        const double pr = field[p];
        ll += row.get(p) ? std::log(pr) : std::log(1.0 - pr);
      }
      best = std::max(best, ll);
    }
    return best;
  };
  return group_loglik(groups_.group_b) > group_loglik(groups_.group_a);
}

}  // namespace lsml::oracle
