#pragma once
// Synthetic image-classification oracles (ex80-ex99 substitutes).
//
// The contest derived 20 binary classification benchmarks from MNIST and
// CIFAR-10 by comparing groups of class labels (Table II). Those datasets
// are not available offline, so we substitute a class-prototype generative
// model (see DESIGN.md): each class is a per-pixel Bernoulli field. The
// MNIST-like domain uses well-separated structured blobs on a 28x28 grid
// (784 inputs, high attainable accuracy); the CIFAR-like domain uses
// overlapping noisy prototypes on a 16x16x3 grid (768 inputs, low
// attainable accuracy), reproducing the paper's MNIST >> CIFAR gap.

#include <array>
#include <vector>

#include "oracle/oracle.hpp"

namespace lsml::oracle {

enum class VisionDomain { kMnistLike, kCifarLike };

/// Group comparison per Table II: classes in group A -> 0, group B -> 1.
struct GroupComparison {
  std::vector<int> group_a;
  std::vector<int> group_b;
};

/// The ten group comparisons of Table II (index 0-9).
GroupComparison table2_groups(int index);

class VisionOracle final : public Oracle {
 public:
  VisionOracle(VisionDomain domain, GroupComparison groups,
               std::uint64_t seed);

  [[nodiscard]] std::size_t num_inputs() const override { return num_pixels_; }

  /// Bayes-optimal label (likelihood-ratio test between the two groups).
  [[nodiscard]] bool eval(const core::BitVec& row) const override;

  /// Samples a class from A ∪ B, draws an image, labels it by group.
  void sample(core::BitVec* row, bool* label, core::Rng& rng) const override;

 private:
  [[nodiscard]] double pixel_prob(int cls, std::size_t pixel) const {
    return probs_[static_cast<std::size_t>(cls)][pixel];
  }

  VisionDomain domain_;
  GroupComparison groups_;
  std::size_t num_pixels_;
  std::array<std::vector<double>, 10> probs_;  ///< per-class pixel fields
};

}  // namespace lsml::oracle
