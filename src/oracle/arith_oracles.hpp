#pragma once
// Arithmetic benchmark oracles (Table I, ex00-ex49).
//
// Input layout follows the contest convention: both operand words appear
// LSB-to-MSB, first all bits of a, then all bits of b.

#include "oracle/bigint.hpp"
#include "oracle/oracle.hpp"

namespace lsml::oracle {

/// Bit `out_bit` of the (k+1)-bit sum a+b (out_bit = k is the carry/MSB).
class AdderBitOracle final : public Oracle {
 public:
  AdderBitOracle(std::size_t k, std::size_t out_bit)
      : k_(k), out_bit_(out_bit) {}
  [[nodiscard]] std::size_t num_inputs() const override { return 2 * k_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;

 private:
  std::size_t k_;
  std::size_t out_bit_;
};

/// Bit `out_bit` of a/b (quotient = true) or a%b (quotient = false).
class DividerBitOracle final : public Oracle {
 public:
  DividerBitOracle(std::size_t k, std::size_t out_bit, bool quotient)
      : k_(k), out_bit_(out_bit), quotient_(quotient) {}
  [[nodiscard]] std::size_t num_inputs() const override { return 2 * k_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;

 private:
  std::size_t k_;
  std::size_t out_bit_;
  bool quotient_;
};

/// Bit `out_bit` of the 2k-bit product a*b.
class MultiplierBitOracle final : public Oracle {
 public:
  MultiplierBitOracle(std::size_t k, std::size_t out_bit)
      : k_(k), out_bit_(out_bit) {}
  [[nodiscard]] std::size_t num_inputs() const override { return 2 * k_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;

 private:
  std::size_t k_;
  std::size_t out_bit_;
};

/// a > b over k-bit unsigned words.
class ComparatorOracle final : public Oracle {
 public:
  explicit ComparatorOracle(std::size_t k) : k_(k) {}
  [[nodiscard]] std::size_t num_inputs() const override { return 2 * k_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;

 private:
  std::size_t k_;
};

/// Bit `out_bit` of floor(sqrt(a)) for a k-bit radicand.
class SqrtBitOracle final : public Oracle {
 public:
  SqrtBitOracle(std::size_t k, std::size_t out_bit)
      : k_(k), out_bit_(out_bit) {}
  [[nodiscard]] std::size_t num_inputs() const override { return k_; }
  [[nodiscard]] bool eval(const core::BitVec& row) const override;

 private:
  std::size_t k_;
  std::size_t out_bit_;
};

}  // namespace lsml::oracle
