#pragma once
// The 100-benchmark contest suite (Table I).
//
// ex00-09  2 MSBs of k-bit adders,            k in {16,32,64,128,256}
// ex10-19  MSB of k-bit dividers/remainders,  k in {16,32,64,128,256}
// ex20-29  MSB and middle bit of multipliers, k in {8,16,32,64,128}
// ex30-39  k-bit comparators,                 k in {10,20,...,100}
// ex40-49  LSB and middle bit of square-rooters, k in {16,...,256}
// ex50-59  PicoJava-like cones (16-200 inputs, balanced; substitute)
// ex60-69  MCNC i10-like cones (16-200 inputs, balanced; substitute)
// ex70-74  cordic x2 / too_large / t481 substitutes + 16-input parity
// ex75-79  16-input symmetric functions (signatures from the paper)
// ex80-89  MNIST-like group comparisons (Table II; synthetic substitute)
// ex90-99  CIFAR-like group comparisons (Table II; synthetic substitute)

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "oracle/oracle.hpp"

namespace lsml::oracle {

struct Benchmark {
  int id = 0;                ///< 0..99
  std::string name;          ///< "ex00".."ex99"
  std::string category;      ///< e.g. "adder-msb"
  std::size_t num_inputs = 0;
  data::Dataset train;
  data::Dataset valid;
  data::Dataset test;
};

struct SuiteOptions {
  std::size_t rows_per_split = 6400;  ///< contest protocol value
  std::uint64_t seed = 2020;          ///< IWLS vintage

  static SuiteOptions from_scale(const core::ScaleConfig& cfg) {
    SuiteOptions o;
    o.rows_per_split = cfg.train_rows;
    return o;
  }
};

/// Builds the oracle behind benchmark `id` (owned by the caller).
std::unique_ptr<Oracle> make_oracle(int id, std::uint64_t seed);

/// Category string for a benchmark id.
std::string benchmark_category(int id);

/// Generates one benchmark with disjoint train/valid/test splits.
Benchmark make_benchmark(int id, const SuiteOptions& options);

/// Generates benchmarks [0, count).
std::vector<Benchmark> make_suite(const SuiteOptions& options,
                                  int count = 100);

}  // namespace lsml::oracle
