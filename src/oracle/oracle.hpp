#pragma once
// Oracle interface: a (possibly stochastic) source of labelled rows.
//
// Deterministic oracles (arithmetic, logic cones) label uniformly sampled
// input rows; generative oracles (the synthetic MNIST/CIFAR substitutes)
// sample rows from a class-conditional distribution together with their
// label, mirroring how the contest's ML benchmarks were produced.

#include <memory>

#include "core/bits.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"

namespace lsml::oracle {

class Oracle {
 public:
  virtual ~Oracle() = default;

  [[nodiscard]] virtual std::size_t num_inputs() const = 0;

  /// Label of a fully specified input row. Generative oracles return the
  /// Bayes-optimal label here (used only for diagnostics).
  [[nodiscard]] virtual bool eval(const core::BitVec& row) const = 0;

  /// Draws one labelled example. Default: uniform row, label = eval(row).
  virtual void sample(core::BitVec* row, bool* label, core::Rng& rng) const;
};

/// Draws `rows` distinct examples from the oracle.
data::Dataset sample_dataset(const Oracle& oracle, std::size_t rows,
                             core::Rng& rng);

/// Draws train/valid/test with mutually distinct rows (contest protocol).
void sample_disjoint(const Oracle& oracle, std::size_t rows_each,
                     core::Rng& rng, data::Dataset* train,
                     data::Dataset* valid, data::Dataset* test);

}  // namespace lsml::oracle
