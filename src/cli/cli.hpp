#pragma once
// The `lsml` command-line driver as a library entry point.
//
// src/cli/lsml_main.cpp is a three-line wrapper around run(): keeping the
// implementation in the library lets tests invoke subcommands in-process
// and assert the exit-code contract below instead of spawning binaries.
//
// Exit-code convention, unified across every subcommand:
//
//   0 (kExitOk)       the command did what was asked
//   1 (kExitRuntime)  a valid invocation failed at runtime (I/O error,
//                     malformed input file, failed verification, a query
//                     the server answered with ok:false)
//   2 (kExitUsage)    the command line itself is wrong (unknown command
//                     or option, missing/invalid value)
//
// `cec` is the one necessary exception: its 0/1/2 are verdicts
// (equivalent / not equivalent / undecided), so *both* usage and runtime
// errors map to 3 (kExitCecError) — an error is not a verdict.

#include <string>
#include <vector>

namespace lsml::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;

inline constexpr int kExitCecNotEquivalent = 1;
inline constexpr int kExitCecUndecided = 2;
inline constexpr int kExitCecError = 3;

/// Runs one `lsml` invocation (args exclude argv[0]) and returns its exit
/// code. Never throws; never calls exit().
int run(const std::vector<std::string>& args);

}  // namespace lsml::cli
