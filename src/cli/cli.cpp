// lsml — command-line driver for the contest over on-disk benchmark
// suites, and for the learning-as-a-service daemon.
//
//   lsml gen <out-dir>    write a contest-format PLA suite from the
//                         Table I oracles (so `run` works with no data)
//   lsml ls <suite-dir>   list the benchmark triples a directory provides
//   lsml run <suite-dir>  run teams/learners over the suite: AIGER
//                         artifacts + JSON/CSV leaderboard, incremental
//                         via the content-hash result cache
//   lsml synth <in.aag>   run an optimization script over a standalone
//                         AIGER file and print the pass trace
//   lsml cec <a> <b>      SAT equivalence check of two AIGER files
//   lsml serve            long-running request/response daemon (NDJSON
//                         over TCP, or --stdio) for learn/eval/synth/cec
//   lsml query            one-shot client for a running `lsml serve`
//   lsml teams            list contest teams and registered learners
//
// Every run is deterministic in (suite contents, entries, seed, script):
// thread count never changes results, and a second run over unchanged
// inputs is served entirely from the cache, byte-identical to the first.
//
// Exit codes follow cli.hpp: 0 ok, 1 runtime failure, 2 usage error —
// except `cec`, whose 0/1/2 are verdicts and whose errors are 3.

#include "cli/cli.hpp"

#include <atomic>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig_io.hpp"
#include "core/config.hpp"
#include "learn/factory.hpp"
#include "obs/trace.hpp"
#include "pla/pla.hpp"
#include "portfolio/contest.hpp"
#include "portfolio/team.hpp"
#include "sat/cec.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "suite/generate.hpp"
#include "suite/manifest.hpp"
#include "suite/runner.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script_search.hpp"

namespace lsml::cli {
namespace {

using namespace lsml;

constexpr const char* kUsage =
    "usage: lsml <command> [options]\n"
    "\n"
    "commands:\n"
    "  gen <out-dir>    generate a contest-format PLA suite\n"
    "      --first N --last N   benchmark id range        [0, 9]\n"
    "      --rows N             minterms per split        [1000]\n"
    "      --seed S             oracle sampling seed      [2020]\n"
    "  ls <suite-dir>   list the benchmark triples of a suite\n"
    "  run <suite-dir>  contest over a suite directory\n"
    "      --teams A,B,...      contest teams to run      [1..10]\n"
    "      --learners X,Y,...   registered learners to add as entries\n"
    "      --out DIR            artifact directory        [lsml-out]\n"
    "      --cache DIR          incremental result store  [.lsml-cache]\n"
    "      --no-cache           disable the result store\n"
    "      --threads N          workers (0 = hardware)    [0]\n"
    "      --seed S             contest seed              [2020]\n"
    "      --scale smoke|fast|full  team grid sizes       [fast]\n"
    "      --opt-script S       preset, pass script, or auto  [fast]\n"
    "                           (presets: fast, resyn2, resyn2fs,\n"
    "                            compress2max; script syntax e.g.\n"
    "                            \"b;rw;b;rw -k 6\" or \"b;rw;fs -c 500\";\n"
    "                            auto = learned per-circuit script search,\n"
    "                            experience kept in the result cache)\n"
    "      --max-gates N        AND-gate cap on artifacts [5000, 0 = off]\n"
    "      --opt-rounds N       script repetitions        [3]\n"
    "      --time-budget-ms N   soft run budget, 0 = off  [0]\n"
    "      --verify             SAT-certify every artifact's pipeline run\n"
    "                           (adds the leaderboard's verified column)\n"
    "      --trace-out FILE     write a Chrome trace (chrome://tracing,\n"
    "                           Perfetto) of the run's spans on exit\n"
    "  synth <in.aag>   optimize one AIGER file, print the pass trace\n"
    "                   (`-` reads the AIGER text from stdin)\n"
    "      --script S           preset, pass script, or auto [resyn2]\n"
    "                           (--opt-script is an alias; presets include\n"
    "                            resyn2fs = resyn2 + SAT sweeping; auto\n"
    "                            searches per circuit, learns across runs)\n"
    "      --max-gates N        AND-gate cap              [5000, 0 = off]\n"
    "      --rounds N           script repetitions        [1]\n"
    "      --seed S             approximation + auto-search RNG seed\n"
    "      --cache DIR          auto-search experience    [.lsml-cache]\n"
    "      --no-cache           search cold, remember nothing\n"
    "      --out FILE           write the optimized AIGER here\n"
    "      --verify             SAT-certify the run (exit 1 if it failed)\n"
    "      --trace-out FILE     write a Chrome trace of the pass spans\n"
    "  cec <a.aag> <b.aag>  SAT equivalence check (`-` = stdin, once)\n"
    "      --conflicts N        solver conflict budget, 0 = unlimited\n"
    "                           [100000]\n"
    "      --cex-out FILE       append the counterexample minterm (labeled\n"
    "                           by circuit a) to a replayable .pla dump\n"
    "      exit: 0 equivalent, 1 not equivalent (counterexample printed),\n"
    "            2 undecided within budget, 3 usage/input error\n"
    "  serve            learning-as-a-service daemon (see README Serving)\n"
    "      --host H             bind address              [127.0.0.1]\n"
    "      --port P             TCP port (0 = ephemeral)  [7333]\n"
    "      --stdio              serve stdin/stdout instead of TCP\n"
    "      --threads N          worker pool (0 = hardware) [0]\n"
    "      --max-request-bytes N  per-request line cap    [8388608]\n"
    "      --max-connections N  concurrent-connection cap (0 = off) [0]\n"
    "      --models N           in-memory LRU model slots [64]\n"
    "      --shards N           model-store shard count   [8]\n"
    "      --sim-threads N      eval sweep pool, 0 = serial sweeps [0]\n"
    "      --model-store-bytes N  in-memory store byte budget (0 = off)\n"
    "      --cache DIR          on-disk model store       [.lsml-serve-cache]\n"
    "      --no-cache           disable the on-disk model store\n"
    "      --opt-script S --max-gates N --opt-rounds N --verify\n"
    "                           optimization request applied to every learn\n"
    "                           request (auto = per-circuit script search)\n"
    "                           [fast, 5000, 3, off]\n"
    "      --trace-out FILE     dump a Chrome trace of request spans on\n"
    "                           shutdown (SIGINT/SIGTERM)\n"
    "  query            send requests to a running `lsml serve`\n"
    "      --host H --port P    server address        [127.0.0.1:7333]\n"
    "      --deadline-ms N      attach a per-request deadline\n"
    "      what: ping | stats | metrics\n"
    "            - (default)    read raw JSON request lines from stdin\n"
    "            metrics prints the server's Prometheus text exposition\n"
    "            stats --watch SEC [--count N] polls and prints\n"
    "                  per-interval rates (req/s, evictions/s, ...)\n"
    "            learn <train.pla> [--learner NAME] [--valid FILE]\n"
    "                  [--seed S]\n"
    "            eval <model-id> <bits> [<bits>...]\n"
    "            synth <in.aag> [--script S] [--verify]\n"
    "            cec <a.aag> <b.aag> [--conflicts N]\n"
    "      exit: 0 every response ok, 1 any failed, 2 usage error\n"
    "  teams            list team numbers and registered learner names\n"
    "\n"
    "common run/synth flags: -v / -vv for progress on stderr\n"
    "exit codes: 0 ok, 1 runtime failure, 2 usage error (cec: see above)\n";

int usage_error(const std::string& message) {
  std::fprintf(stderr, "lsml: %s\n\n%s", message.c_str(), kUsage);
  return kExitUsage;
}

// Shared by run/synth/serve --trace-out. Spans are a side channel, so a
// trace that cannot be written is a warning, never a changed exit code.
void export_trace(const std::string& path) {
  if (path.empty()) {
    return;
  }
  if (obs::Tracer::export_to_file(path)) {
    std::fprintf(stderr,
                 "lsml: wrote %zu span(s) (%llu dropped) to %s\n",
                 obs::Tracer::recorded(),
                 static_cast<unsigned long long>(obs::Tracer::dropped()),
                 path.c_str());
  } else {
    std::fprintf(stderr, "lsml: could not write trace to %s\n",
                 path.c_str());
  }
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-') {
    return false;  // strtoull would silently wrap negatives around
  }
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

bool parse_int(const std::string& text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < INT_MIN || v > INT_MAX) {
    return false;  // reject rather than wrap out-of-range values
  }
  *out = static_cast<int>(v);
  return true;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t end = list.find(',', begin);
    const std::string item =
        list.substr(begin, end == std::string::npos ? end : end - begin);
    if (!item.empty()) {
      items.push_back(item);
    }
    if (end == std::string::npos) {
      break;
    }
    begin = end + 1;
  }
  return items;
}

/// Pulls the value of `--flag value`; returns false (after reporting) if
/// the value is missing.
bool flag_value(const std::vector<std::string>& args, std::size_t* i,
                std::string* value) {
  if (*i + 1 >= args.size()) {
    std::fprintf(stderr, "lsml: %s needs a value\n", args[*i].c_str());
    return false;
  }
  *value = args[++*i];
  return true;
}

/// One parser for the optimization-request flags every optimization
/// surface shares (`run`, `synth`, `serve`): --opt-script/--script S
/// (preset, pass syntax, or "auto"), --max-gates N, --opt-rounds/--rounds
/// N, --verify. A command seeds the request with its own defaults, lets
/// try_flag() consume what it recognizes inside its option loop, and calls
/// finish() once — which validates the script and reports any failure in
/// the one shared usage-error format. Command-specific semantics (seeds,
/// time budgets, experience directories) are applied by the caller through
/// request().
class OptRequestFlags {
 public:
  enum class Status { kNotMine, kConsumed, kBad };

  OptRequestFlags(const char* default_script, int default_rounds) {
    request_.script = default_script;
    request_.options.max_rounds = default_rounds;
  }

  Status try_flag(const std::vector<std::string>& args, std::size_t* i) {
    std::string value;
    if (args[*i] == "--opt-script" || args[*i] == "--script") {
      return flag_value(args, i, &request_.script) ? Status::kConsumed
                                                   : Status::kBad;
    }
    if (args[*i] == "--max-gates") {
      std::uint64_t gates = 0;
      if (!flag_value(args, i, &value) || !parse_u64(value, &gates) ||
          gates > 0xffffffffULL) {
        usage_error("--max-gates must be in [0, 2^32) (0 = uncapped)");
        return Status::kBad;
      }
      request_.options.node_budget = static_cast<std::uint32_t>(gates);
      return Status::kConsumed;
    }
    if (args[*i] == "--opt-rounds" || args[*i] == "--rounds") {
      const std::string flag = args[*i];
      int rounds = 0;
      if (!flag_value(args, i, &value) || !parse_int(value, &rounds) ||
          rounds < 1) {
        usage_error(flag + " must be >= 1");
        return Status::kBad;
      }
      request_.options.max_rounds = rounds;
      return Status::kConsumed;
    }
    if (args[*i] == "--verify") {
      request_.options.verify_equivalence = true;
      return Status::kConsumed;
    }
    return Status::kNotMine;
  }

  /// Validates the accumulated script text; prints the shared usage error
  /// and returns false when it is neither "auto", a preset, nor valid pass
  /// syntax.
  bool finish() {
    try {
      request_.validate();
      return true;
    } catch (const std::invalid_argument& e) {
      usage_error(e.what());
      return false;
    }
  }

  [[nodiscard]] synth::OptRequest& request() { return request_; }

 private:
  synth::OptRequest request_;
};

/// Whole file as a string; `-` reads stdin to EOF.
std::string read_text_file(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.empty() || args[0][0] == '-') {
    return usage_error("gen needs an output directory");
  }
  const std::string out_dir = args[0];
  suite::GenerateOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string value;
    std::uint64_t u = 0;
    if (args[i] == "--first" || args[i] == "--last") {
      const bool is_first = args[i] == "--first";
      int v = 0;
      if (!flag_value(args, &i, &value) || !parse_int(value, &v)) {
        return kExitUsage;
      }
      (is_first ? options.first : options.last) = v;
    } else if (args[i] == "--rows") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return kExitUsage;
      }
      options.rows_per_split = u;
    } else if (args[i] == "--seed") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return kExitUsage;
      }
      options.seed = u;
    } else {
      return usage_error("unknown gen option " + args[i]);
    }
  }
  const std::vector<std::string> names =
      suite::generate_suite(out_dir, options);
  std::printf("wrote %zu benchmark triples (%zu minterms/split) to %s\n",
              names.size(), options.rows_per_split, out_dir.c_str());
  // Generation never deletes files it did not just write, so point out
  // leftovers from previous generations — `lsml run` would include them.
  try {
    const std::size_t found = suite::discover_suite(out_dir).size();
    if (found > names.size()) {
      std::fprintf(stderr,
                   "lsml: warning: %s holds %zu other triple(s) from "
                   "previous generations; `lsml run` will include them\n",
                   out_dir.c_str(), found - names.size());
    }
  } catch (const std::exception&) {
    // A stale, incomplete triple makes discovery throw; `lsml run` will
    // report it with full context.
  }
  return kExitOk;
}

int cmd_ls(const std::vector<std::string>& args) {
  if (args.empty()) {
    return usage_error("ls needs a suite directory");
  }
  const std::vector<suite::SuiteEntry> entries =
      suite::discover_suite(args[0]);
  for (const auto& entry : entries) {
    const oracle::Benchmark bench = suite::load_benchmark(entry);
    std::printf("%-12s id=%-3d %3zu inputs  %zu/%zu/%zu rows\n",
                entry.name.c_str(), entry.id, bench.num_inputs,
                bench.train.num_rows(), bench.valid.num_rows(),
                bench.test.num_rows());
  }
  std::printf("%zu benchmarks in %s\n", entries.size(), args[0].c_str());
  return kExitOk;
}

int cmd_teams() {
  std::printf("contest teams (lsml run --teams):\n ");
  for (const int team : portfolio::all_team_numbers()) {
    std::printf(" %d", team);
  }
  std::printf("\nregistered learner factories (lsml run --learners):\n");
  for (const auto& name : learn::LearnerFactory::registered()) {
    std::printf("  %s\n", name.c_str());
  }
  return kExitOk;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty() || args[0][0] == '-') {
    return usage_error("run needs a suite directory");
  }
  const std::string suite_dir = args[0];
  suite::RunnerOptions options;
  options.num_threads = 0;
  std::vector<int> teams = portfolio::all_team_numbers();
  std::vector<std::string> learners;
  core::Scale scale = core::Scale::kFast;
  OptRequestFlags opt_flags("fast", 3);
  std::string trace_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string value;
    std::uint64_t u = 0;
    switch (opt_flags.try_flag(args, &i)) {
      case OptRequestFlags::Status::kConsumed:
        continue;
      case OptRequestFlags::Status::kBad:
        return kExitUsage;
      case OptRequestFlags::Status::kNotMine:
        break;
    }
    if (args[i] == "--teams") {
      if (!flag_value(args, &i, &value)) {
        return kExitUsage;
      }
      teams.clear();
      for (const auto& item : split_csv(value)) {
        int team = 0;
        if (!parse_int(item, &team)) {
          return usage_error("bad team number '" + item + "'");
        }
        teams.push_back(team);
      }
    } else if (args[i] == "--learners") {
      if (!flag_value(args, &i, &value)) {
        return kExitUsage;
      }
      learners = split_csv(value);
    } else if (args[i] == "--out") {
      if (!flag_value(args, &i, &options.out_dir)) {
        return kExitUsage;
      }
    } else if (args[i] == "--cache") {
      if (!flag_value(args, &i, &options.cache_dir)) {
        return kExitUsage;
      }
    } else if (args[i] == "--no-cache") {
      options.cache_dir.clear();
    } else if (args[i] == "--threads") {
      if (!flag_value(args, &i, &value) ||
          !parse_int(value, &options.num_threads)) {
        return kExitUsage;
      }
      // Same bound threads_from_env enforces for the env-var path.
      if (options.num_threads < 0 || options.num_threads > 4096) {
        return usage_error("--threads must be in [0, 4096] (0 = hardware)");
      }
    } else if (args[i] == "--seed") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return kExitUsage;
      }
      options.seed = u;
    } else if (args[i] == "--scale") {
      if (!flag_value(args, &i, &value)) {
        return kExitUsage;
      }
      if (value == "smoke") {
        scale = core::Scale::kSmoke;
      } else if (value == "fast") {
        scale = core::Scale::kFast;
      } else if (value == "full") {
        scale = core::Scale::kFull;
      } else {
        return usage_error("bad scale '" + value + "'");
      }
    } else if (args[i] == "--time-budget-ms") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return kExitUsage;
      }
      options.time_budget_ms = static_cast<std::int64_t>(u);
    } else if (args[i] == "--trace-out") {
      if (!flag_value(args, &i, &trace_out)) {
        return kExitUsage;
      }
    } else if (args[i] == "-v") {
      options.verbosity = 1;
    } else if (args[i] == "-vv") {
      options.verbosity = 2;
    } else {
      return usage_error("unknown run option " + args[i]);
    }
  }
  if (!opt_flags.finish()) {
    return kExitUsage;  // a bad --opt-script is a bad command line
  }
  options.opt = opt_flags.request();
  // One --seed steers every random stream of the run: the contest RNG and
  // (under --opt-script auto) the script search.
  options.opt.search_seed = options.seed;
  const std::uint32_t max_gates = options.opt.options.node_budget;

  portfolio::TeamOptions team_options;
  team_options.scale = scale;
  // Teams select candidates under the same cap the artifacts must honor;
  // "uncapped" lifts their selection pressure entirely.
  team_options.node_budget = max_gates == 0 ? 0xffffffffu : max_gates;
  // The scale changes team hyper-parameter grids without changing entry
  // keys, so it must participate in cache invalidation.
  options.config_salt = static_cast<std::uint64_t>(scale);
  std::vector<portfolio::ContestEntry> entries =
      portfolio::contest_entries(teams, team_options);
  // Named learners join as extra contestants. Their team ids (100, 101,
  // ...) depend only on their position in --learners, so reruns of the
  // same command line reuse the same RNG streams and cache rows.
  for (std::size_t i = 0; i < learners.size(); ++i) {
    learn::LearnerFactory factory =
        learn::LearnerFactory::try_from_registry(learners[i]);
    if (!factory) {
      std::fprintf(stderr,
                   "lsml: no learner named '%s' (see `lsml teams`)\n",
                   learners[i].c_str());
      return kExitUsage;
    }
    entries.push_back({100 + static_cast<int>(i), std::move(factory)});
  }
  if (entries.empty()) {
    return usage_error("nothing to run: --teams and --learners both empty");
  }

  if (!trace_out.empty()) {
    obs::Tracer::enable();
  }
  const suite::RunnerReport report =
      suite::run_suite_dir(suite_dir, entries, options);
  export_trace(trace_out);
  std::printf("%s", portfolio::format_leaderboard(report.runs).c_str());
  std::printf(
      "\n%zu benchmarks x %zu entries: %d task(s) from cache, %d computed "
      "in %.0f ms\n",
      report.benchmarks.size(), entries.size(), report.cache_hits,
      report.cache_misses, report.elapsed_ms);
  std::printf("opt script: %s (max-gates %u, rounds %d)\n",
              options.opt.script_display().c_str(),
              options.opt.options.node_budget,
              options.opt.options.max_rounds);
  if (options.opt.options.verify_equivalence) {
    double verified = 0.0;
    for (const auto& run : report.runs) {
      verified += run.verified_fraction();
    }
    std::printf("verification: %.0f%% of artifacts SAT-certified exact "
                "(see the leaderboard's verified column)\n",
                report.runs.empty()
                    ? 0.0
                    : 100.0 * verified /
                          static_cast<double>(report.runs.size()));
  }
  {
    double saved = 0.0;
    double synth_ms = 0.0;
    for (const auto& run : report.runs) {
      saved += run.avg_synth_saved();
      synth_ms += run.total_synth_ms();
    }
    std::printf("optimization removed %.0f gates per task on average "
                "(%.0f ms total pass time)\n",
                report.runs.empty()
                    ? 0.0
                    : saved / static_cast<double>(report.runs.size()),
                synth_ms);
  }
  if (report.stats.budget_exceeded) {
    std::printf("warning: run exceeded --time-budget-ms (%.0f ms > %lld ms)\n",
                report.stats.elapsed_ms,
                static_cast<long long>(options.time_budget_ms));
  }
  std::printf("leaderboard: %s\n             %s\n",
              report.leaderboard_csv_path.c_str(),
              report.leaderboard_json_path.c_str());
  std::printf("AIGER artifacts under %s/aig/\n", options.out_dir.c_str());
  if (!options.cache_dir.empty()) {
    std::printf("result cache: %s\n", options.cache_dir.c_str());
  }
  return kExitOk;
}

int cmd_synth(const std::vector<std::string>& args) {
  if (args.empty() || (args[0][0] == '-' && args[0] != "-")) {
    return usage_error("synth needs an input .aag file (or - for stdin)");
  }
  const std::string in_path = args[0];
  std::string out_path;
  std::string trace_out;
  std::string cache_dir = ".lsml-cache";
  OptRequestFlags opt_flags("resyn2", 1);
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string value;
    std::uint64_t u = 0;
    switch (opt_flags.try_flag(args, &i)) {
      case OptRequestFlags::Status::kConsumed:
        continue;
      case OptRequestFlags::Status::kBad:
        return kExitUsage;
      case OptRequestFlags::Status::kNotMine:
        break;
    }
    if (args[i] == "--out") {
      if (!flag_value(args, &i, &out_path)) {
        return kExitUsage;
      }
    } else if (args[i] == "--seed") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return kExitUsage;
      }
      // One seed steers both randomized approximation and the auto search.
      opt_flags.request().options.approx_seed = u;
      opt_flags.request().search_seed = u;
    } else if (args[i] == "--time-budget-ms") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return kExitUsage;
      }
      opt_flags.request().options.time_budget_ms = static_cast<std::int64_t>(u);
    } else if (args[i] == "--cache") {
      if (!flag_value(args, &i, &cache_dir)) {
        return kExitUsage;
      }
    } else if (args[i] == "--no-cache") {
      cache_dir.clear();
    } else if (args[i] == "--trace-out") {
      if (!flag_value(args, &i, &trace_out)) {
        return kExitUsage;
      }
    } else if (args[i] == "-v" || args[i] == "-vv") {
      // The trace is always printed; nothing further to say.
    } else {
      return usage_error("unknown synth option " + args[i]);
    }
  }
  if (!opt_flags.finish()) {
    return kExitUsage;  // a bad --script is a bad command line
  }
  synth::OptRequest request = opt_flags.request();
  // Auto searches remember what they learn next to the run cache, so the
  // second `lsml synth --opt-script auto` over a similar circuit answers
  // from experience instead of searching again.
  request.experience_dir = cache_dir;

  const aig::Aig in =
      in_path == "-" ? aig::read_aag(std::cin) : aig::read_aag_file(in_path);
  if (!trace_out.empty()) {
    obs::Tracer::enable();
  }
  const synth::ScriptSearch optimizer(request);
  const synth::OptOutcome outcome = optimizer.optimize(in);
  const synth::SynthResult& result = outcome.result;
  export_trace(trace_out);

  std::printf("%s: %u inputs, %u AND gates, %u levels\n", in_path.c_str(),
              in.num_pis(), in.num_ands(), in.num_levels());
  std::printf("script %s (%s), max-gates %u, rounds %d\n",
              request.is_auto() ? "auto" : outcome.script.name.c_str(),
              outcome.script.str().c_str(), request.options.node_budget,
              request.options.max_rounds);
  if (request.is_auto()) {
    // The one greppable line describing how auto decided: "searched" on a
    // cold feature bucket, "experience" when the stored script answered.
    std::printf("auto: %s winner after %d candidate(s), experience %s\n",
                outcome.from_policy ? "experience" : "searched",
                outcome.candidates_evaluated,
                cache_dir.empty() ? "off" : cache_dir.c_str());
  }
  std::printf("\n");
  std::printf("%-14s %9s %9s %8s %8s %9s\n", "pass", "ands", "->", "levels",
              "->", "ms");
  for (const synth::PassStats& s : result.trace) {
    std::printf("%-14s %9u %9u %8u %8u %9.2f\n", s.pass.c_str(),
                s.ands_before, s.ands_after, s.levels_before, s.levels_after,
                s.ms);
  }
  const std::uint32_t in_ands = result.ands_in();
  const std::uint32_t out_ands = result.circuit.num_ands();
  std::printf("\n%u -> %u AND gates (%s%.1f%%), %u -> %u levels, %.2f ms\n",
              in_ands, out_ands, out_ands <= in_ands ? "-" : "+",
              in_ands == 0
                  ? 0.0
                  : 100.0 *
                        (in_ands > out_ands
                             ? static_cast<double>(in_ands - out_ands)
                             : static_cast<double>(out_ands - in_ands)) /
                        static_cast<double>(in_ands),
              in.num_levels(), result.circuit.num_levels(),
              result.total_ms());
  if (request.options.verify_equivalence) {
    std::printf("verification: %s\n", synth::to_string(result.verify));
  }
  if (!out_path.empty()) {
    aig::write_aag_file(result.circuit, out_path);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return result.verify == synth::VerifyStatus::kFailed ? kExitRuntime
                                                       : kExitOk;
}

int cmd_cec(const std::vector<std::string>& args) {
  const auto cec_usage = [](const std::string& message) {
    std::fprintf(stderr, "lsml: %s\n\n%s", message.c_str(), kUsage);
    return kExitCecError;  // 0/1/2 are verdicts; an error is not a verdict
  };
  std::vector<std::string> paths;
  sat::CecLimits limits;
  std::string cex_out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    std::uint64_t u = 0;
    if (args[i] == "--conflicts") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return cec_usage("--conflicts needs a non-negative integer");
      }
      limits.conflict_budget = static_cast<std::int64_t>(u);
    } else if (args[i] == "--cex-out") {
      if (!flag_value(args, &i, &cex_out)) {
        return cec_usage("--cex-out needs a file path");
      }
    } else if (args[i] == "-" || args[i][0] != '-') {
      paths.push_back(args[i]);
    } else {
      return cec_usage("unknown cec option " + args[i]);
    }
  }
  if (paths.size() != 2) {
    return cec_usage("cec needs exactly two .aag files");
  }
  if (paths[0] == "-" && paths[1] == "-") {
    return cec_usage("only one cec input may be stdin");
  }
  const auto load = [](const std::string& path) {
    return path == "-" ? aig::read_aag(std::cin) : aig::read_aag_file(path);
  };
  const aig::Aig a = load(paths[0]);
  const aig::Aig b = load(paths[1]);
  const sat::CecResult result = sat::cec(a, b, limits);
  switch (result.status) {
    case sat::CecStatus::kEquivalent:
      std::printf("EQUIVALENT (%llu conflicts)\n",
                  static_cast<unsigned long long>(
                      result.solver_stats.conflicts));
      return kExitOk;
    case sat::CecStatus::kUndecided:
      std::printf("UNDECIDED: conflict budget (%lld) exhausted\n",
                  static_cast<long long>(limits.conflict_budget));
      return kExitCecUndecided;
    case sat::CecStatus::kNotEquivalent:
      break;
  }
  // Print the counterexample as a PLA-style minterm so it pastes straight
  // into the contest's data files: input cube, then each circuit's value.
  std::string cube;
  for (const std::uint8_t v : result.counterexample) {
    cube += v != 0 ? '1' : '0';
  }
  const std::size_t o = result.failing_output;
  std::printf("NOT EQUIVALENT on output %zu\ncounterexample %s  (%s -> %d, "
              "%s -> %d)\n",
              o, cube.c_str(), paths[0].c_str(),
              a.eval_row(result.counterexample)[o] ? 1 : 0, paths[1].c_str(),
              b.eval_row(result.counterexample)[o] ? 1 : 0);
  if (!cex_out.empty()) {
    // Grow a Dataset-compatible cube dump: one labeled minterm per
    // NOT_EQUIVALENT verdict, labeled by circuit a (the reference),
    // replayable through Aig::simulate / the PLA loaders.
    data::Dataset dump;
    if (std::filesystem::exists(cex_out)) {
      dump = pla::read_pla_file(cex_out).to_dataset();
    }
    sat::append_cex_minterm(result.counterexample, a, &dump, o);
    pla::write_pla_file(pla::Pla::from_dataset(dump), cex_out);
    std::printf("appended counterexample to %s (%zu minterm(s))\n",
                cex_out.c_str(), dump.num_rows());
  }
  return kExitCecNotEquivalent;
}

// ------------------------------------------------------------------ serve

std::atomic<bool> g_serve_interrupted{false};

void serve_signal_handler(int) { g_serve_interrupted.store(true); }

int cmd_serve(const std::vector<std::string>& args) {
  server::ServerOptions options;
  options.port = 7333;
  options.service.cache_dir = ".lsml-serve-cache";
  bool stdio = false;
  OptRequestFlags opt_flags("fast", 3);
  std::string trace_out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    std::uint64_t u = 0;
    switch (opt_flags.try_flag(args, &i)) {
      case OptRequestFlags::Status::kConsumed:
        continue;
      case OptRequestFlags::Status::kBad:
        return kExitUsage;
      case OptRequestFlags::Status::kNotMine:
        break;
    }
    if (args[i] == "--host") {
      if (!flag_value(args, &i, &options.host)) {
        return kExitUsage;
      }
    } else if (args[i] == "--port") {
      int port = 0;
      if (!flag_value(args, &i, &value) || !parse_int(value, &port) ||
          port < 0 || port > 65535) {
        return usage_error("--port must be in [0, 65535] (0 = ephemeral)");
      }
      options.port = port;
    } else if (args[i] == "--stdio") {
      stdio = true;
    } else if (args[i] == "--threads") {
      if (!flag_value(args, &i, &value) ||
          !parse_int(value, &options.num_threads) ||
          options.num_threads < 0 || options.num_threads > 4096) {
        return usage_error("--threads must be in [0, 4096] (0 = hardware)");
      }
    } else if (args[i] == "--max-request-bytes") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u) || u == 0) {
        return usage_error("--max-request-bytes must be a positive integer");
      }
      options.max_request_bytes = u;
    } else if (args[i] == "--max-connections") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return usage_error(
            "--max-connections must be a non-negative integer (0 = "
            "unlimited)");
      }
      options.max_connections = u;
    } else if (args[i] == "--models") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return usage_error("--models must be a non-negative integer");
      }
      options.service.model_capacity = u;
    } else if (args[i] == "--shards") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u) || u == 0 ||
          u > 4096) {
        return usage_error("--shards must be in [1, 4096]");
      }
      options.service.store_shards = static_cast<std::size_t>(u);
    } else if (args[i] == "--sim-threads") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u) || u > 4096) {
        return usage_error(
            "--sim-threads must be in [0, 4096] (0 = serial sweeps)");
      }
      options.service.sim_threads = static_cast<std::size_t>(u);
    } else if (args[i] == "--model-store-bytes") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u)) {
        return usage_error(
            "--model-store-bytes must be a non-negative integer (0 = "
            "uncapped)");
      }
      options.service.model_store_bytes = u;
    } else if (args[i] == "--cache") {
      if (!flag_value(args, &i, &options.service.cache_dir)) {
        return kExitUsage;
      }
    } else if (args[i] == "--no-cache") {
      options.service.cache_dir.clear();
    } else if (args[i] == "--trace-out") {
      if (!flag_value(args, &i, &trace_out)) {
        return kExitUsage;
      }
    } else if (args[i] == "-v") {
      options.verbosity = 1;
    } else if (args[i] == "-vv") {
      options.verbosity = 2;
    } else {
      return usage_error("unknown serve option " + args[i]);
    }
  }

  // The optimization request every learn request runs under, and the
  // default the synth op's per-request overrides start from. Installed
  // process-wide before the Service exists (the documented
  // set_default_opt_request contract); requests cannot change it, only a
  // restart can. Auto experience lives next to the on-disk model store.
  if (!opt_flags.finish()) {
    return kExitUsage;  // a bad --opt-script is a bad command line
  }
  synth::OptRequest request = opt_flags.request();
  request.experience_dir = options.service.cache_dir;
  synth::set_default_opt_request(request);

  if (!trace_out.empty()) {
    obs::Tracer::enable();
  }

  if (stdio) {
    server::Service service(options.service);
    const std::uint64_t answered = service.serve_stream(
        std::cin, std::cout, options.max_request_bytes);
    std::fprintf(stderr, "lsml serve: stdin closed after %llu request(s)\n",
                 static_cast<unsigned long long>(answered));
    export_trace(trace_out);
    return kExitOk;
  }

  server::Server server(options);
  server.start();
  std::printf("lsml serve: listening on %s:%d (%s workers, opt %s%s)\n",
              options.host.c_str(), server.port(),
              options.num_threads == 0
                  ? "hardware"
                  : std::to_string(options.num_threads).c_str(),
              request.script_display().c_str(),
              request.options.verify_equivalence ? ", --verify" : "");
  if (!options.service.cache_dir.empty()) {
    std::printf("lsml serve: model store: %s\n",
                options.service.cache_dir.c_str());
  }
  std::fflush(stdout);

  g_serve_interrupted.store(false);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (!g_serve_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  server.stop();
  export_trace(trace_out);

  const server::ServiceStats& stats = server.service().stats();
  std::printf("lsml serve: stopped after %llu request(s) on %llu "
              "connection(s), %llu error(s)\n",
              static_cast<unsigned long long>(stats.requests.load()),
              static_cast<unsigned long long>(
                  server.stats().connections.load()),
              static_cast<unsigned long long>(stats.errors.load()));
  return kExitOk;
}

// ------------------------------------------------------------------ query

int cmd_query(const std::vector<std::string>& args) {
  std::string host = "127.0.0.1";
  int port = 7333;
  std::int64_t deadline_ms = 0;
  std::string learner = "dt";
  std::string valid_path;
  std::string script;
  std::uint64_t seed = 2020;
  bool have_seed = false;
  std::uint64_t conflicts = 0;
  bool have_conflicts = false;
  bool verify = false;
  std::int64_t watch_sec = 0;
  std::uint64_t watch_count = 0;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    std::uint64_t u = 0;
    if (args[i] == "--host") {
      if (!flag_value(args, &i, &host)) {
        return kExitUsage;
      }
    } else if (args[i] == "--port") {
      if (!flag_value(args, &i, &value) || !parse_int(value, &port) ||
          port <= 0 || port > 65535) {
        return usage_error("--port must be in [1, 65535]");
      }
    } else if (args[i] == "--deadline-ms") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u) || u == 0) {
        return usage_error("--deadline-ms must be a positive integer");
      }
      deadline_ms = static_cast<std::int64_t>(u);
    } else if (args[i] == "--learner") {
      if (!flag_value(args, &i, &learner)) {
        return kExitUsage;
      }
    } else if (args[i] == "--valid") {
      if (!flag_value(args, &i, &valid_path)) {
        return kExitUsage;
      }
    } else if (args[i] == "--script") {
      if (!flag_value(args, &i, &script)) {
        return kExitUsage;
      }
    } else if (args[i] == "--seed") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &seed)) {
        return kExitUsage;
      }
      have_seed = true;
    } else if (args[i] == "--conflicts") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &conflicts)) {
        return kExitUsage;
      }
      have_conflicts = true;
    } else if (args[i] == "--verify") {
      verify = true;
    } else if (args[i] == "--watch") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &u) || u == 0 ||
          u > 3600) {
        return usage_error("--watch must be in [1, 3600] seconds");
      }
      watch_sec = static_cast<std::int64_t>(u);
    } else if (args[i] == "--count") {
      if (!flag_value(args, &i, &value) || !parse_u64(value, &watch_count) ||
          watch_count == 0) {
        return usage_error("--count must be a positive integer");
      }
    } else if (args[i] == "-" || args[i][0] != '-') {
      positional.push_back(args[i]);
    } else {
      return usage_error("unknown query option " + args[i]);
    }
  }
  const std::string what = positional.empty() ? "-" : positional[0];

  if (watch_sec > 0 || (watch_count > 0 && what == "stats")) {
    if (what != "stats") {
      return usage_error("--watch only applies to `query stats`");
    }
    if (watch_sec == 0) {
      return usage_error("--count needs --watch SEC");
    }
    server::Client client;
    try {
      client.connect(host, port);
      server::Json request = server::Json::object();
      request.set("type", "stats");
      const std::string request_line = request.dump();
      const auto sample = [&client, &request_line] {
        return server::Json::parse(client.roundtrip(request_line));
      };
      server::Json prev = sample();
      auto prev_time = std::chrono::steady_clock::now();
      std::printf("%10s %10s %10s %10s %10s %12s %10s %8s\n", "req/s",
                  "err/s", "learn/s", "eval/s", "sweep/s", "rows/s",
                  "evict/s", "models");
      std::fflush(stdout);
      for (std::uint64_t tick = 0; watch_count == 0 || tick < watch_count;
           ++tick) {
        std::this_thread::sleep_for(std::chrono::seconds(watch_sec));
        const server::Json cur = sample();
        const auto now = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(now - prev_time).count();
        const auto rate = [&cur, &prev, secs](const char* key) {
          return (cur.at(key).as_double() - prev.at(key).as_double()) /
                 (secs > 0.0 ? secs : 1.0);
        };
        std::printf(
            "%10.1f %10.1f %10.1f %10.1f %10.1f %12.1f %10.1f %8lld\n",
            rate("requests"), rate("errors"), rate("learns"), rate("evals"),
            rate("eval_sweeps"), rate("eval_rows"), rate("model_evictions"),
            static_cast<long long>(cur.at("models_cached").as_int()));
        std::fflush(stdout);
        prev = cur;
        prev_time = now;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lsml: %s\n", e.what());
      return kExitRuntime;
    }
    return kExitOk;
  }

  // Build the request list before connecting, so usage errors never need
  // a live server.
  std::vector<std::string> request_lines;
  const auto with_deadline = [&](server::Json request) {
    if (deadline_ms > 0) {
      request.set("deadline_ms", deadline_ms);
    }
    return request.dump();
  };
  try {
    if (what == "-") {
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty()) {
          continue;
        }
        if (deadline_ms > 0) {
          // --deadline-ms applies to raw lines too: inject it unless the
          // request already carries its own.
          try {
            server::Json request = server::Json::parse(line);
            if (request.is_object() && !request.has("deadline_ms")) {
              request.set("deadline_ms", deadline_ms);
              line = request.dump();
            }
          } catch (const std::exception&) {
            // Not parseable here; forward verbatim and let the server
            // report the protocol error.
          }
        }
        request_lines.push_back(line);
      }
    } else if (what == "ping" || what == "stats" || what == "metrics") {
      server::Json request = server::Json::object();
      request.set("type", what);
      request_lines.push_back(with_deadline(std::move(request)));
    } else if (what == "learn") {
      if (positional.size() != 2) {
        return usage_error("query learn needs a training .pla file");
      }
      server::Json request = server::Json::object();
      request.set("type", "learn");
      request.set("learner", learner);
      request.set("pla", read_text_file(positional[1]));
      if (!valid_path.empty()) {
        request.set("valid_pla", read_text_file(valid_path));
      }
      if (have_seed) {
        request.set("seed", seed);
      }
      request_lines.push_back(with_deadline(std::move(request)));
    } else if (what == "eval") {
      if (positional.size() < 3) {
        return usage_error(
            "query eval needs a model id and at least one minterm");
      }
      server::Json request = server::Json::object();
      request.set("type", "eval");
      request.set("model", positional[1]);
      server::Json inputs = server::Json::array();
      for (std::size_t i = 2; i < positional.size(); ++i) {
        inputs.push_back(server::Json(positional[i]));
      }
      request.set("inputs", std::move(inputs));
      request_lines.push_back(with_deadline(std::move(request)));
    } else if (what == "synth") {
      if (positional.size() != 2) {
        return usage_error("query synth needs an input .aag file");
      }
      server::Json request = server::Json::object();
      request.set("type", "synth");
      request.set("aag", read_text_file(positional[1]));
      if (!script.empty()) {
        request.set("script", script);
      }
      if (verify) {
        request.set("verify", true);
      }
      if (have_seed) {
        request.set("seed", seed);
      }
      request_lines.push_back(with_deadline(std::move(request)));
    } else if (what == "cec") {
      if (positional.size() != 3) {
        return usage_error("query cec needs two .aag files");
      }
      server::Json request = server::Json::object();
      request.set("type", "cec");
      request.set("a", read_text_file(positional[1]));
      request.set("b", read_text_file(positional[2]));
      if (have_conflicts) {
        request.set("conflicts", conflicts);
      }
      request_lines.push_back(with_deadline(std::move(request)));
    } else {
      return usage_error("unknown query '" + what +
                         "' (expected ping, stats, metrics, learn, eval, "
                         "synth, cec, or - for raw JSON lines)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lsml: %s\n", e.what());
    return kExitRuntime;
  }
  if (request_lines.empty()) {
    std::fprintf(stderr, "lsml: no requests on stdin\n");
    return kExitRuntime;
  }

  server::Client client;
  bool all_ok = true;
  try {
    client.connect(host, port);
    for (const std::string& line : request_lines) {
      const std::string response = client.roundtrip(line);
      try {
        const server::Json parsed = server::Json::parse(response);
        const bool ok = parsed.is_object() && parsed.at("ok").as_bool();
        if (!ok) {
          all_ok = false;
        }
        // `metrics` is a Prometheus text exposition wrapped in JSON for
        // the wire; unwrap it so the output pipes straight into
        // promtool/grep.
        if (ok && what == "metrics" && parsed.has("text")) {
          std::printf("%s", parsed.at("text").as_string().c_str());
        } else {
          std::printf("%s\n", response.c_str());
        }
      } catch (const std::exception&) {
        std::printf("%s\n", response.c_str());
        all_ok = false;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lsml: %s\n", e.what());
    return kExitRuntime;
  }
  return all_ok ? kExitOk : kExitRuntime;
}

}  // namespace

int run(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    std::printf("%s", kUsage);
    return args.empty() ? kExitUsage : kExitOk;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "gen") {
      return cmd_gen(rest);
    }
    if (command == "ls") {
      return cmd_ls(rest);
    }
    if (command == "run") {
      return cmd_run(rest);
    }
    if (command == "synth") {
      return cmd_synth(rest);
    }
    if (command == "cec") {
      try {
        return cmd_cec(rest);
      } catch (const std::exception& e) {
        // 0/1/2 are verdicts; anything that prevented a verdict is 3.
        std::fprintf(stderr, "lsml: %s\n", e.what());
        return kExitCecError;
      }
    }
    if (command == "serve") {
      return cmd_serve(rest);
    }
    if (command == "query") {
      return cmd_query(rest);
    }
    if (command == "teams") {
      return cmd_teams();
    }
    return usage_error("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lsml: %s\n", e.what());
    return kExitRuntime;
  }
}

}  // namespace lsml::cli
