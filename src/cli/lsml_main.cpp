// Thin executable wrapper: the whole driver lives in cli/cli.cpp (inside
// the library) so tests can invoke subcommands in-process and assert the
// exit-code contract documented in cli/cli.hpp.

#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  return lsml::cli::run(std::vector<std::string>(argv + 1, argv + argc));
}
