#pragma once
// Small blocking client for the `lsml serve` protocol.
//
// One TCP connection, newline-delimited JSON both ways. This is the
// client `lsml query` and bench/bench_serve are built on; tests also use
// the raw byte-level entry points (send_raw, shutdown_write) to poke the
// daemon with truncated and malformed traffic.
//
// Not thread-safe: one Client per thread (the protocol is strictly
// request/response per connection anyway).

#include <cstdint>
#include <string>

#include "server/json.hpp"

namespace lsml::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port (numeric IPv4 or "localhost"); throws
  /// std::runtime_error with errno context on failure. A nonzero
  /// `recv_buffer_bytes` clamps SO_RCVBUF before connecting, capping the
  /// TCP window — how tests model a slow reader that cannot absorb the
  /// server's responses (the backpressure path).
  void connect(const std::string& host, int port,
               int recv_buffer_bytes = 0);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Half-close: signals end-of-requests while keeping the read side open
  /// (and lets tests model a client vanishing mid-request).
  void shutdown_write();

  /// Sends `line` plus the protocol's '\n' framing.
  void send_line(const std::string& line);
  /// Sends bytes exactly as given — no framing (malformed-input tests).
  void send_raw(const std::string& bytes);

  /// Reads one response line (without the '\n'); false on EOF.
  bool recv_line(std::string* line);

  /// send_line + recv_line; throws on connection loss.
  std::string roundtrip(const std::string& request_line);

  /// Typed convenience: dump, roundtrip, parse.
  Json request(const Json& request_object);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace lsml::server
