#pragma once
// `lsml serve` — the TCP transport around server::Service.
//
// One daemon, three moving parts:
//
//   accept loop   one background thread; hands each connection to an I/O
//                 thread and reaps finished ones.
//   I/O threads   one per live connection; they only frame bytes into
//                 newline-delimited request lines and write response lines
//                 back (TCP_NODELAY, partial-write safe). They never run
//                 learner/SAT/synth work themselves.
//   worker pool   the existing core::ThreadPool. Every request line is
//                 submitted as one task; the I/O thread blocks on the
//                 future, which keeps requests on one connection FIFO
//                 while CPU-bound work across connections is capped at the
//                 pool width no matter how many clients connect.
//
// Robustness contract (pinned by tests/server_test.cpp): a malformed line
// gets an error response and the connection lives on; a line that grows
// past `max_request_bytes` gets an error response and the connection is
// closed (the only way to bound memory without trusting the client); a
// client that disconnects mid-request or mid-response affects nothing but
// its own connection. The daemon itself only stops via stop().
//
// Binding port 0 picks an ephemeral port, readable via port() — how tests
// and the bench run many servers without colliding.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "server/service.hpp"

namespace lsml::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (see Server::port())
  /// Worker pool width, ThreadPool convention: 0 = hardware concurrency.
  int num_threads = 0;
  /// Hard cap on one request line; longer requests are rejected and the
  /// connection closed. 0 disables the cap (tests only).
  std::size_t max_request_bytes = 8u << 20;
  ServiceOptions service;
  int verbosity = 0;  ///< 1 = connection lifecycle lines on stderr
};

/// Transport-level counters (request-level ones live in ServiceStats).
struct ServerStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> oversized_rejects{0};
  std::atomic<std::uint64_t> io_errors{0};
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop. Throws std::runtime_error
  /// (with errno context) when the address cannot be bound.
  void start();

  /// Stops accepting, shuts every live connection down, joins all
  /// threads. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// The bound port (resolves an ephemeral request); 0 before start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] Service& service() { return service_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(Connection* conn);
  void reap_finished_locked();

  ServerOptions options_;
  Service service_;
  ServerStats stats_;
  std::unique_ptr<core::ThreadPool> pool_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace lsml::server
