#pragma once
// `lsml serve` — the TCP transport around server::Service.
//
// One daemon, three moving parts:
//
//   event loop    one core::EventLoop thread owns every socket: it accepts
//                 connections, reads nonblocking, frames bytes into
//                 newline-delimited request lines, and flushes response
//                 bytes back. No thread is ever parked on one connection,
//                 so thousands of idle or slow clients cost four kilobytes
//                 of buffer each, not a stack.
//   worker pool   the existing core::ThreadPool. Every framed request line
//                 is submitted as one task; its completion is posted back
//                 to the loop, which serializes the response onto the
//                 connection. One request per connection is in flight at a
//                 time, so requests on one connection stay FIFO (and keep
//                 the historical serial semantics) while CPU-bound work
//                 across connections is capped at the pool width.
//   service       server::Service — the transport-agnostic request
//                 handler, with its own batching and sharded model store
//                 (see service.hpp).
//
// Backpressure: a connection whose write buffer climbs past
// `write_high_water_bytes` (a slow or stalled reader) stops being read
// until the buffer drains below the mark again — the daemon's memory per
// connection stays bounded by high-water + max_request_bytes no matter
// what the peer does.
//
// Robustness contract (pinned by tests/server_test.cpp): a malformed line
// gets an error response and the connection lives on; a line that grows
// past `max_request_bytes` gets an error response and the connection is
// closed (the only way to bound memory without trusting the client); a
// client that disconnects or half-closes mid-request affects nothing but
// its own connection (a half-closed peer still receives every response it
// was owed). stop() drains: it stops accepting, lets in-flight requests
// finish and their responses flush for up to `drain_ms`, then force-closes
// whatever is left.
//
// Binding port 0 picks an ephemeral port, readable via port() — how tests
// and the bench run many servers without colliding.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/event_loop.hpp"
#include "core/thread_pool.hpp"
#include "server/service.hpp"

namespace lsml::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (see Server::port())
  /// Worker pool width, ThreadPool convention: 0 = hardware concurrency.
  int num_threads = 0;
  /// Hard cap on one request line; longer requests are rejected and the
  /// connection closed. 0 disables the cap (tests only).
  std::size_t max_request_bytes = 8u << 20;
  /// Concurrent-connection cap; a connection past it is answered with one
  /// error line and closed. 0 = unlimited.
  std::size_t max_connections = 0;
  /// Stop reading a connection whose unsent response bytes exceed this.
  std::size_t write_high_water_bytes = 1u << 20;
  /// Fixed SO_SNDBUF for accepted sockets; 0 keeps kernel autotuning.
  /// Setting it bounds kernel-side memory per connection and makes the
  /// write high-water mark bite at a predictable depth.
  int send_buffer_bytes = 0;
  /// How long stop() waits for in-flight requests to finish and responses
  /// to flush before force-closing connections.
  std::int64_t drain_ms = 5000;
  ServiceOptions service;
  int verbosity = 0;  ///< 1 = connection lifecycle lines on stderr
};

/// Transport-level counters (request-level ones live in ServiceStats).
/// Fields are obs::Counter and aliased into the process obs::Registry as
/// lsml_server_*_total, so the `metrics` op sees the same cells.
struct ServerStats {
  obs::Counter connections;
  obs::Counter over_connection_cap;
  obs::Counter oversized_rejects;
  obs::Counter io_errors;
  /// Times a connection crossed the write high-water mark and had its
  /// read side paused (the backpressure path).
  obs::Counter backpressure_pauses;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event-loop thread. Throws
  /// std::runtime_error (with errno context) when the address cannot be
  /// bound.
  void start();

  /// Stops accepting, drains in-flight requests (up to drain_ms), closes
  /// every connection, joins the loop and the pool. Idempotent; called by
  /// the destructor.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// The bound port (resolves an ephemeral request); 0 before start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] Service& service() { return service_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  /// Everything the loop knows about one connection. Touched only on the
  /// loop thread; workers reach it exclusively through posted tasks that
  /// re-look it up by id (the connection may be gone by then).
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    std::string read_buf;   ///< trailing partial line awaiting more bytes
    std::string write_buf;  ///< response bytes not yet accepted by send()
    std::size_t write_off = 0;
    /// Framed-but-undispatched request lines, stamped at frame time (the
    /// documented "queueing counts against the deadline" semantics).
    std::deque<std::pair<std::string, std::chrono::steady_clock::time_point>>
        pending;
    bool busy = false;         ///< one request is out on the pool
    bool read_open = true;     ///< peer has not EOF'd / errored
    bool read_paused = false;  ///< backpressure: EPOLLIN disabled
    bool oversized = false;    ///< reject owed once pending drains
    bool close_after_flush = false;  ///< oversized reject or drain
  };

  void loop_main();
  void on_listen_ready();
  void on_conn_event(std::uint64_t id, std::uint32_t ready);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  /// Frames request lines straight out of a recv chunk (read_buf carries
  /// only a trailing partial line between chunks). Stops — and must not
  /// touch `conn` again — once a line is rejected as oversized.
  void frame_data(Conn& conn, const char* data, std::size_t len);
  /// Admits one framed line into conn.pending; false = rejected oversized.
  bool take_line(Conn& conn, std::string line);
  void dispatch_next(Conn& conn);
  void finish_request(std::uint64_t id, std::string response);
  void queue_response_bytes(Conn& conn, std::string bytes);
  void flush(Conn& conn);
  void update_read_interest(Conn& conn);
  void reject_oversized(Conn& conn);
  /// Emits the owed oversized-reject error line once earlier framed
  /// requests have been answered, then arms close-after-flush.
  void maybe_send_reject(Conn& conn);
  /// True once nothing will ever happen on the connection again.
  [[nodiscard]] static bool finished(const Conn& conn);
  void close_conn(std::uint64_t id);
  void maybe_finish_drain();

  ServerOptions options_;
  Service service_;
  ServerStats stats_;
  /// Registry aliases for stats_; destroyed before stats_ (declared after).
  std::vector<obs::Registry::Registration> metric_regs_;
  std::unique_ptr<core::ThreadPool> pool_;
  std::unique_ptr<core::EventLoop> loop_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread loop_thread_;

  // Loop-thread state.
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  bool draining_ = false;

  // stop() rendezvous: the loop signals when the last connection is gone.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool drained_ = false;
};

}  // namespace lsml::server
