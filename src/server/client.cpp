#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace lsml::server {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT), retrying
/// EINTR. The sockets here are blocking, but a socket can still report
/// EAGAIN (receive timeouts, nonblocking fds handed in by callers), and a
/// short-write loop must wait for POLLOUT rather than spin.
void wait_ready(int fd, short events, const char* what) {
  while (true) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int n = ::poll(&p, 1, -1);
    if (n > 0) {
      return;
    }
    if (n < 0 && errno != EINTR) {
      fail_errno(std::string("poll (") + what + ")");
    }
  }
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::connect(const std::string& host, int port,
                     int recv_buffer_bytes) {
  close();
  const std::string spelled = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, spelled.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("cannot parse host '" + host +
                             "' (use a numeric IPv4 address)");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    fail_errno("socket");
  }
  if (recv_buffer_bytes > 0) {
    // Must happen before connect(): the window scale is negotiated in the
    // handshake from the buffer size at that moment.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes,
                 sizeof recv_buffer_bytes);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::shutdown_write() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_WR);
  }
}

void Client::send_raw(const std::string& bytes) {
  if (fd_ < 0) {
    throw std::runtime_error("client is not connected");
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLOUT, "send");
        continue;
      }
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);  // a short write just loops
  }
}

void Client::send_line(const std::string& line) { send_raw(line + "\n"); }

bool Client::recv_line(std::string* line) {
  if (fd_ < 0) {
    return false;
  }
  char chunk[64 * 1024];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') {
        line->pop_back();
      }
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      return false;  // server closed; any partial line is dropped
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLIN, "recv");
        continue;
      }
      fail_errno("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::roundtrip(const std::string& request_line) {
  send_line(request_line);
  std::string response;
  if (!recv_line(&response)) {
    throw std::runtime_error("server closed the connection before replying");
  }
  return response;
}

Json Client::request(const Json& request_object) {
  return Json::parse(roundtrip(request_object.dump()));
}

}  // namespace lsml::server
