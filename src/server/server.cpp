#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

namespace lsml::server {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Numeric IPv4 only, plus the "localhost" spelling — the daemon is a
/// loopback/cluster-internal service, not a name-resolving client.
in_addr_t resolve_host(const std::string& host) {
  const std::string spelled = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    throw std::runtime_error("cannot parse host '" + host +
                             "' (use a numeric IPv4 address)");
  }
  return addr.s_addr;
}

/// write() the whole buffer; MSG_NOSIGNAL so a vanished client yields an
/// error return instead of SIGPIPE killing the daemon.
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) {
    return;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    fail_errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = resolve_host(options_.host);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  pool_ = std::make_unique<core::ThreadPool>(
      options_.num_threads > 0 ? static_cast<std::size_t>(options_.num_threads)
                               : 0);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Unblock accept(): shutdown makes a blocked accept return on Linux;
  // close() finishes the job.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the I/O thread's recv
    }
  }
  // Join outside the lock: connection threads take it on exit.
  std::vector<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    ::close(conn->fd);
  }
  pool_.reset();  // drains in-flight work
}

void Server::reap_finished_locked() {
  for (std::size_t i = 0; i < connections_.size();) {
    if (connections_[i]->done.load()) {
      if (connections_[i]->thread.joinable()) {
        connections_[i]->thread.join();
      }
      ::close(connections_[i]->fd);
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void Server::accept_loop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (!running_.load()) {
        return;  // stop() closed the listener
      }
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbosity >= 1) {
      std::fprintf(stderr, "lsml serve: connection from %s:%d\n",
                   inet_ntoa(peer.sin_addr), ntohs(peer.sin_port));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    conn->thread = std::thread([this, raw] { connection_loop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void Server::connection_loop(Connection* conn) {
  const int fd = conn->fd;
  const std::size_t max_bytes = options_.max_request_bytes;
  std::string buffer;
  char chunk[64 * 1024];
  // Requests framed but not yet answered, each stamped with the time its
  // line became available. Pipelined requests (several lines in one write)
  // are all stamped before the first one is processed, so a later
  // request's deadline clock covers the time it spends waiting behind its
  // predecessors — the documented "queueing counts" semantics.
  std::deque<std::pair<std::string, std::chrono::steady_clock::time_point>>
      pending;
  bool open = true;
  while (open) {
    // Frame every complete line already buffered before processing any.
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (line.empty()) {
        continue;
      }
      if (max_bytes > 0 && line.size() > max_bytes) {
        // A complete-but-oversized line (it fit in the read buffer before
        // the cap check below could trip): same reject-and-close policy.
        stats_.oversized_rejects.fetch_add(1, std::memory_order_relaxed);
        Json r = Json::object();
        r.set("ok", false);
        r.set("error", "request exceeds --max-request-bytes (" +
                           std::to_string(max_bytes) +
                           "); closing connection");
        const std::string response = r.dump() + "\n";
        send_all(fd, response.data(), response.size());
        open = false;
        break;
      }
      pending.emplace_back(std::move(line), std::chrono::steady_clock::now());
    }
    while (open && !pending.empty()) {
      const std::string& line = pending.front().first;
      const auto received_at = pending.front().second;
      std::string response =
          pool_->submit([this, &line, received_at] {
                 return service_.handle_line(line, received_at);
               })
              .get();
      pending.pop_front();
      response.push_back('\n');
      if (!send_all(fd, response.data(), response.size())) {
        stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
        open = false;
      }
    }
    if (!open) {
      break;
    }
    if (max_bytes > 0 && buffer.size() > max_bytes) {
      // An unterminated request past the cap: answer, then hang up — the
      // only way to bound memory is to stop reading this stream.
      stats_.oversized_rejects.fetch_add(1, std::memory_order_relaxed);
      Json r = Json::object();
      r.set("ok", false);
      r.set("error", "request exceeds --max-request-bytes (" +
                         std::to_string(max_bytes) + "); closing connection");
      const std::string response = r.dump() + "\n";
      send_all(fd, response.data(), response.size());
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      break;  // orderly client close (any partial line is dropped)
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // reset mid-request: this connection only
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  // Signal EOF to the peer now; the fd itself is closed when the accept
  // loop (or stop()) reaps this connection, so stop()'s own shutdown call
  // never races a reused descriptor number.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true);
}

}  // namespace lsml::server
