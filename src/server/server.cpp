#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace lsml::server {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Numeric IPv4 only, plus the "localhost" spelling — the daemon is a
/// loopback/cluster-internal service, not a name-resolving client.
in_addr_t resolve_host(const std::string& host) {
  const std::string spelled = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    throw std::runtime_error("cannot parse host '" + host +
                             "' (use a numeric IPv4 address)");
  }
  return addr.s_addr;
}

std::string oversized_error_line(std::size_t max_bytes) {
  Json r = Json::object();
  r.set("ok", false);
  r.set("error", "request exceeds --max-request-bytes (" +
                     std::to_string(max_bytes) + "); closing connection");
  return r.dump() + "\n";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  obs::Registry& reg = obs::Registry::instance();
  const auto alias = [&](const char* name, const obs::Counter& c) {
    metric_regs_.push_back(reg.register_counter(name, &c));
  };
  alias("lsml_server_connections_total", stats_.connections);
  alias("lsml_server_over_connection_cap_total", stats_.over_connection_cap);
  alias("lsml_server_oversized_rejects_total", stats_.oversized_rejects);
  alias("lsml_server_io_errors_total", stats_.io_errors);
  alias("lsml_server_backpressure_pauses_total", stats_.backpressure_pauses);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) {
    return;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    fail_errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = resolve_host(options_.host);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 1024) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  pool_ = std::make_unique<core::ThreadPool>(
      options_.num_threads > 0 ? static_cast<std::size_t>(options_.num_threads)
                               : 0);
  loop_ = std::make_unique<core::EventLoop>();
  draining_ = false;
  drained_ = false;
  running_.store(true);
  loop_thread_ = std::thread([this] { loop_main(); });
}

void Server::loop_main() {
  loop_->add(listen_fd_, core::EventLoop::kRead,
             [this](std::uint32_t) { on_listen_ready(); });
  loop_->run();
  // Anything still registered when the loop exits (force-closed drain
  // path) is torn down here, on the loop thread, after run() returned.
  for (auto& [id, conn] : conns_) {
    ::close(conn->fd);
  }
  conns_.clear();
}

void Server::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Phase 1 — drain: stop accepting, stop reading, let in-flight requests
  // finish and their responses flush.
  loop_->post([this] {
    draining_ = true;
    if (listen_fd_ >= 0) {
      loop_->remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& [id, conn] : conns_) {
      conn->read_open = false;
      conn->read_buf.clear();  // partial lines are dropped, as before
      update_read_interest(*conn);
    }
    // Close everything already idle; what stays is busy or flushing.
    std::vector<std::uint64_t> idle;
    for (auto& [id, conn] : conns_) {
      if (finished(*conn)) {
        idle.push_back(id);
      }
    }
    for (const std::uint64_t id : idle) {
      close_conn(id);
    }
    maybe_finish_drain();
  });
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_ms),
                       [this] { return drained_; });
  }
  // Phase 2 — whatever outlived the drain window (stalled reader, runaway
  // request) is cut off; its worker's late response is dropped harmlessly.
  loop_->post([this] {
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (auto& [id, conn] : conns_) {
      ids.push_back(id);
    }
    for (const std::uint64_t id : ids) {
      close_conn(id);
    }
    loop_->stop();
  });
  loop_->stop();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  pool_.reset();  // drains in-flight work; late posts land in a dead loop
  loop_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------- accept

void Server::on_listen_ready() {
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof options_.send_buffer_bytes);
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      stats_.over_connection_cap.fetch_add(1, std::memory_order_relaxed);
      Json r = Json::object();
      r.set("ok", false);
      r.set("error", "connection limit (" +
                         std::to_string(options_.max_connections) +
                         ") reached; closing connection");
      const std::string line = r.dump() + "\n";
      // Best effort: the kernel buffer of a fresh socket always holds one
      // short line, and a peer that vanished first does not matter.
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbosity >= 1) {
      std::fprintf(stderr, "lsml serve: connection from %s:%d\n",
                   inet_ntoa(peer.sin_addr), ntohs(peer.sin_port));
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    const std::uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    loop_->add(fd, core::EventLoop::kRead,
               [this, id](std::uint32_t ready) { on_conn_event(id, ready); });
  }
}

// ------------------------------------------------------------ connection

void Server::on_conn_event(std::uint64_t id, std::uint32_t ready) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  if ((ready & core::EventLoop::kError) != 0) {
    // EPOLLERR/EPOLLHUP: the peer is gone in both directions — nothing we
    // still hold can be delivered. A busy worker's response is dropped
    // when its post() fails to find the id.
    close_conn(id);
    return;
  }
  if ((ready & core::EventLoop::kWrite) != 0) {
    handle_writable(conn);
    if (conns_.find(id) == conns_.end()) {
      return;  // fatal write error closed it
    }
  }
  if ((ready & core::EventLoop::kRead) != 0 && conn.read_open &&
      !conn.read_paused) {
    handle_readable(conn);
    if (conns_.find(id) == conns_.end()) {
      return;
    }
  }
  if (finished(conn)) {
    close_conn(id);
  }
}

void Server::handle_readable(Conn& conn) {
  // One chunk per readiness event: level-triggered epoll re-arms while
  // data remains, which keeps one firehose client from starving the rest.
  char chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      const std::uint64_t id = conn.id;
      frame_data(conn, chunk, static_cast<std::size_t>(n));
      // The oversized-reject path inside frame_data may flush and close
      // the connection synchronously; only touch it again if it is still
      // here.
      const auto it = conns_.find(id);
      if (it != conns_.end()) {
        dispatch_next(*it->second);
      }
      return;
    }
    if (n == 0) {
      conn.read_open = false;  // orderly EOF; partial line is dropped
      conn.read_buf.clear();
      update_read_interest(conn);
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
    conn.read_open = false;
    conn.read_buf.clear();
    update_read_interest(conn);
    return;
  }
}

bool Server::take_line(Conn& conn, std::string line) {
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  if (line.empty()) {
    return true;
  }
  if (options_.max_request_bytes > 0 &&
      line.size() > options_.max_request_bytes) {
    reject_oversized(conn);
    return false;
  }
  conn.pending.emplace_back(std::move(line), std::chrono::steady_clock::now());
  return true;
}

void Server::frame_data(Conn& conn, const char* data, std::size_t len) {
  // Frame straight out of the recv chunk: complete lines are copied once
  // (into pending), and read_buf only ever holds a trailing partial line —
  // the common whole-request-per-chunk case never round-trips through it.
  const std::size_t max_bytes = options_.max_request_bytes;
  std::size_t start = 0;
  if (!conn.read_buf.empty()) {
    // Finish the partial line carried over from earlier chunks.
    const auto* nl = static_cast<const char*>(::memchr(data, '\n', len));
    if (nl == nullptr) {
      conn.read_buf.append(data, len);
      if (max_bytes > 0 && conn.read_buf.size() > max_bytes) {
        // An unterminated line already past the cap mid-frame: same policy
        // as a framed oversized line — answer once, then hang up; reading
        // on would be unbounded memory.
        reject_oversized(conn);
      }
      return;
    }
    const auto idx = static_cast<std::size_t>(nl - data);
    std::string line = std::move(conn.read_buf);
    conn.read_buf.clear();
    line.append(data, idx);
    if (!take_line(conn, std::move(line))) {
      return;  // rejected: conn may already be gone
    }
    start = idx + 1;
  }
  while (start < len) {
    const auto* nl =
        static_cast<const char*>(::memchr(data + start, '\n', len - start));
    if (nl == nullptr) {
      conn.read_buf.assign(data + start, len - start);
      if (max_bytes > 0 && conn.read_buf.size() > max_bytes) {
        reject_oversized(conn);
      }
      return;
    }
    const auto idx = static_cast<std::size_t>(nl - data);
    if (!take_line(conn, std::string(data + start, idx - start))) {
      return;
    }
    start = idx + 1;
  }
}

void Server::reject_oversized(Conn& conn) {
  stats_.oversized_rejects.fetch_add(1, std::memory_order_relaxed);
  conn.read_open = false;
  conn.read_buf.clear();  // nothing past the poison line is trusted
  conn.oversized = true;
  update_read_interest(conn);
  // Requests framed before the poison line still get their responses (the
  // historical serial behavior); the error line goes out after them.
  maybe_send_reject(conn);
}

void Server::maybe_send_reject(Conn& conn) {
  if (!conn.oversized || conn.close_after_flush || conn.busy ||
      !conn.pending.empty()) {
    return;
  }
  conn.close_after_flush = true;
  queue_response_bytes(conn, oversized_error_line(options_.max_request_bytes));
}

void Server::dispatch_next(Conn& conn) {
  if (conn.busy || conn.pending.empty()) {
    return;
  }
  conn.busy = true;
  std::string line = std::move(conn.pending.front().first);
  const auto received_at = conn.pending.front().second;
  conn.pending.pop_front();
  const std::uint64_t id = conn.id;
  // The worker computes off-loop; only the post() hop touches loop state.
  // Dropping the future is safe: handle_line never throws.
  (void)pool_->submit([this, id, line = std::move(line), received_at] {
    std::string response = service_.handle_line(line, received_at);
    loop_->post([this, id, response = std::move(response)]() mutable {
      finish_request(id, std::move(response));
    });
  });
}

void Server::finish_request(std::uint64_t id, std::string response) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;  // connection died while the worker computed
  }
  Conn& conn = *it->second;
  conn.busy = false;
  response.push_back('\n');
  queue_response_bytes(conn, std::move(response));
  if (conns_.find(id) == conns_.end()) {
    return;  // fatal write error
  }
  dispatch_next(conn);
  maybe_send_reject(conn);
  if (conns_.find(id) == conns_.end()) {
    return;  // reject flushed instantly and closed the connection
  }
  if (finished(conn)) {
    close_conn(id);
    return;
  }
  if (draining_) {
    maybe_finish_drain();
  }
}

void Server::queue_response_bytes(Conn& conn, std::string bytes) {
  if (conn.write_buf.empty()) {
    conn.write_buf = std::move(bytes);
    conn.write_off = 0;
  } else {
    conn.write_buf.append(bytes);
  }
  flush(conn);
}

void Server::handle_writable(Conn& conn) { flush(conn); }

void Server::flush(Conn& conn) {
  // Span only when there are bytes to move (flush is also called to
  // re-evaluate interest with an empty buffer).
  obs::ScopedSpan write_span(
      conn.write_off < conn.write_buf.size() ? "write" : nullptr, "server");
  bool fatal = false;
  while (conn.write_off < conn.write_buf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + conn.write_off,
               conn.write_buf.size() - conn.write_off, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.write_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
    fatal = true;
    break;
  }
  if (fatal) {
    close_conn(conn.id);
    return;
  }
  if (conn.write_off >= conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_off = 0;
  } else if (conn.write_off > (conn.write_buf.size() >> 1)) {
    // Compact once the sent prefix dominates, keeping the buffer O(unsent).
    conn.write_buf.erase(0, conn.write_off);
    conn.write_off = 0;
  }
  const std::size_t unsent = conn.write_buf.size() - conn.write_off;
  if (!conn.read_paused && unsent > options_.write_high_water_bytes) {
    // Backpressure: a reader this far behind stops driving new requests
    // until it catches up.
    conn.read_paused = true;
    stats_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
  } else if (conn.read_paused &&
             unsent <= options_.write_high_water_bytes / 2) {
    conn.read_paused = false;
  }
  update_read_interest(conn);
  if (unsent == 0 && conn.close_after_flush) {
    close_conn(conn.id);
  }
}

void Server::update_read_interest(Conn& conn) {
  std::uint32_t interest = 0;
  if (conn.read_open && !conn.read_paused && !conn.close_after_flush) {
    interest |= core::EventLoop::kRead;
  }
  if (conn.write_off < conn.write_buf.size()) {
    interest |= core::EventLoop::kWrite;
  }
  loop_->set_interest(conn.fd, interest);
}

bool Server::finished(const Conn& conn) {
  const bool write_done = conn.write_off >= conn.write_buf.size();
  if (conn.close_after_flush) {
    return write_done && !conn.busy;
  }
  return !conn.read_open && !conn.busy && conn.pending.empty() && write_done;
}

void Server::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  loop_->remove(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
  if (draining_) {
    maybe_finish_drain();
  }
}

void Server::maybe_finish_drain() {
  if (!conns_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_ = true;
  }
  drain_cv_.notify_all();
}

}  // namespace lsml::server
