#pragma once
// The learning-as-a-service request handler behind `lsml serve`.
//
// A Service is the transport-agnostic core of the daemon: it maps one
// request line (newline-delimited JSON, see README "Serving") to one
// response line, reusing every layer built so far —
//
//   learn  PLA payload -> learn::LearnerFactory -> TrainedModel, optimized
//          through the installed synth::Pipeline (and SAT-verified when the
//          pipeline's SynthOptions say so)
//   eval   model id + minterm batch -> packed-simulation outputs
//   synth  AIGER text + script string -> optimized AIGER + pass trace
//   cec    two AIGER payloads -> verdict + counterexample cube
//   ping   liveness (optional server-side sleep, for load/deadline tests)
//   stats  service counters (the one intentionally non-deterministic reply)
//
// Learned models live in a bounded LRU store keyed by a content hash over
// (datasets, learner, seed, pipeline fingerprint) — the same
// Dataset::content_hash / task_content_hash machinery that keys the
// contest's on-disk suite::ResultCache, which doubles as this store's
// second level when `cache_dir` is set: a restarted server serves `learn`
// and `eval` requests for already-learned models without refitting.
//
// Determinism contract: every response except `stats` is a pure function
// of the request (given a fixed installed pipeline), with no wall times or
// cache-hit markers in the body — so N concurrent clients replaying a
// request set get byte-identical lines to a serial replay. Hit counts are
// observable through `stats` instead.
//
// Thread safety: handle_line is safe to call from any number of threads
// (the model store and counters are internally synchronized; the synth
// memo and learner stack are already thread-safe). Install the process
// synth::Pipeline (synth::set_default_pipeline) BEFORE constructing a
// Service: the constructor snapshots it for model-id fingerprints, and
// learners read it concurrently afterwards.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "server/json.hpp"
#include "suite/result_cache.hpp"
#include "synth/pass_manager.hpp"

namespace lsml::server {

struct ServiceOptions {
  /// LRU capacity of the in-memory model store (entries, not bytes).
  std::size_t model_capacity = 64;
  /// On-disk second level (a suite::ResultCache); empty disables it.
  std::string cache_dir;
  /// Contest seed used when a learn request does not send one.
  std::uint64_t default_seed = 2020;
  /// Default SAT conflict budget of a cec request (0 = unlimited).
  std::int64_t cec_conflict_budget = 100000;
  /// Row cap of one eval batch (guards against absurd payloads).
  std::size_t max_eval_rows = 1u << 20;
  /// Cap on ping's optional server-side sleep.
  std::int64_t max_ping_sleep_ms = 60000;
};

/// Per-request deadline: a budget in milliseconds counted from the moment
/// the transport finished reading the request line (so time spent queued
/// behind busy workers counts). budget_ms == 0 means "no deadline".
struct Deadline {
  std::chrono::steady_clock::time_point received_at{};
  std::int64_t budget_ms = 0;

  [[nodiscard]] bool active() const { return budget_ms > 0; }
  [[nodiscard]] std::int64_t elapsed_ms() const;
  /// Remaining budget, clamped at 0; meaningless unless active().
  [[nodiscard]] std::int64_t remaining_ms() const;
  [[nodiscard]] bool expired() const { return active() && remaining_ms() <= 0; }
};

/// Monotonic counters; every field is updated atomically and readable at
/// any time (the `stats` request serializes them).
struct ServiceStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};  ///< ok:false responses
  std::atomic<std::uint64_t> learns{0};  ///< learn requests that refit
  std::atomic<std::uint64_t> model_memory_hits{0};
  std::atomic<std::uint64_t> model_disk_hits{0};
  /// Requests that waited on a concurrent identical learn instead of
  /// refitting (single-flight).
  std::atomic<std::uint64_t> model_inflight_joins{0};
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::uint64_t> synths{0};
  std::atomic<std::uint64_t> cecs{0};
  std::atomic<std::uint64_t> pings{0};
  std::atomic<std::uint64_t> deadline_expired{0};
};

/// A learned circuit as the store keeps it (immutable once published).
struct StoredModel {
  aig::Aig circuit{0};
  std::string learner;
  std::string method;
  double train_acc = 0.0;
  double valid_acc = 0.0;
  synth::VerifyStatus verified = synth::VerifyStatus::kNotRequested;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Handles one request line; never throws. The returned response line
  /// carries no trailing newline. `received_at` stamps the deadline clock;
  /// the overload without it uses "now" (stdio mode, tests).
  [[nodiscard]] std::string handle_line(
      const std::string& line, std::chrono::steady_clock::time_point
                                   received_at);
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// NDJSON loop over streams — the `lsml serve --stdio` transport and the
  /// easiest test harness. Empty lines are skipped; lines longer than
  /// `max_request_bytes` are answered with an error (and not parsed).
  /// Returns the number of requests answered.
  std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                             std::size_t max_request_bytes);

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  /// The pipeline snapshot taken at construction (what learn requests run
  /// under and what model ids fingerprint).
  [[nodiscard]] const synth::Pipeline& pipeline() const { return pipeline_; }

  /// In-memory model count (tests assert LRU eviction through this).
  [[nodiscard]] std::size_t models_cached() const;

 private:
  Json dispatch(const Json& request, const Deadline& deadline);
  Json handle_learn(const Json& request, const Deadline& deadline);
  Json handle_eval(const Json& request);
  Json handle_synth(const Json& request, const Deadline& deadline);
  Json handle_cec(const Json& request, const Deadline& deadline);
  Json handle_ping(const Json& request, const Deadline& deadline);
  Json handle_stats();

  /// LRU lookup (bumps recency); nullptr on miss.
  std::shared_ptr<const StoredModel> store_get(const std::string& id);
  void store_put(const std::string& id, std::shared_ptr<const StoredModel> m);
  /// Second-level lookup in the on-disk ResultCache; fills the LRU on hit.
  std::shared_ptr<const StoredModel> disk_get(const std::string& id,
                                              std::uint64_t content_hash);
  void disk_put(const std::string& id, std::uint64_t content_hash,
                const StoredModel& model,
                const std::vector<synth::PassStats>& trace);

  ServiceOptions options_;
  synth::Pipeline pipeline_;
  suite::ResultCache disk_cache_;
  ServiceStats stats_;

  /// Single-flight table: model ids whose first learn is still running.
  /// Concurrent identical learns wait on the leader's future instead of
  /// refitting (the store alone cannot prevent N cold-start duplicates).
  std::mutex inflight_mutex_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const StoredModel>>>
      inflight_;

  mutable std::mutex store_mutex_;
  std::list<std::string> lru_order_;  ///< front = most recent
  std::unordered_map<std::string,
                     std::pair<std::list<std::string>::iterator,
                               std::shared_ptr<const StoredModel>>>
      models_;
};

/// "m-<hex16>" spelling of a model content hash (and its inverse; false
/// when `id` is not a well-formed model id).
std::string model_id_from_hash(std::uint64_t hash);
bool model_hash_from_id(const std::string& id, std::uint64_t* hash);

}  // namespace lsml::server
