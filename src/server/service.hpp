#pragma once
// The learning-as-a-service request handler behind `lsml serve`.
//
// A Service is the transport-agnostic core of the daemon: it maps one
// request line (newline-delimited JSON, see README "Serving") to one
// response line, reusing every layer built so far —
//
//   learn  PLA payload -> learn::LearnerFactory -> TrainedModel, optimized
//          through the installed synth::OptRequest (and SAT-verified when
//          the request's SynthOptions say so)
//   eval   model id + minterm rows -> packed-simulation outputs. One
//          request may carry many row batches ("batches"); they all ride
//          one SimEngine sweep. Concurrent evals against the same model
//          coalesce into shared sweeps (see "Batching" below).
//   synth  AIGER text + script string -> optimized AIGER + pass trace;
//          script "auto" runs the per-circuit synth::ScriptSearch and the
//          response names the winner (script + script_fp)
//   cec    two AIGER payloads -> verdict + counterexample cube
//   ping   liveness (optional server-side sleep, for load/deadline tests)
//   stats  service counters (the one intentionally non-deterministic reply)
//
// Batching: every eval bottoms out in one aig::SimEngine sweep no matter
// how many row batches the request carries, and when several requests for
// the same model id are in flight at once, one of them (the leader) sweeps
// while the rest enqueue; the leader then serves each round of enqueued
// requests with one combined sweep, scattering per-request outputs back.
// Outputs are computed from each request's own rows, so coalescing never
// changes a single response byte — it only changes how many sweeps ran,
// observable as `eval_sweeps` / `eval_coalesced` in `stats`.
//
// Model store: learned circuits live in a sharded LRU keyed by a content
// hash over (datasets, learner, seed, request fingerprint) — the same
// Dataset::content_hash / task_content_hash machinery that keys the
// contest's on-disk suite::ResultCache. Shards are selected by model-id
// hash, each with its own mutex + recency list, so concurrent learns and
// evals on different models never contend on one lock; eviction follows a
// global LRU order (a logical access clock) under a global entry capacity
// and optional byte budget. The ResultCache doubles as the store's second
// level when `cache_dir` is set: a restarted server serves `learn` and
// `eval` requests for already-learned models without refitting.
//
// Determinism contract: every response except `stats` is a pure function
// of the request (given a fixed installed OptRequest and experience
// snapshot), with no wall times or
// cache-hit markers in the body — so N concurrent clients replaying a
// request set get byte-identical lines to a serial replay. Hit counts are
// observable through `stats` instead.
//
// Thread safety: handle_line is safe to call from any number of threads
// (the store shards, the eval coalescer, and the counters are internally
// synchronized; the synth memo and learner stack are already thread-safe).
// Install the process synth::OptRequest (synth::set_default_opt_request)
// BEFORE constructing a Service: the constructor snapshots the installed
// optimizer for model-id fingerprints and synth dispatch, and learners
// read it concurrently afterwards.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "core/bits.hpp"
#include "core/thread_pool.hpp"
#include "obs/registry.hpp"
#include "server/json.hpp"
#include "suite/result_cache.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script_search.hpp"

namespace lsml::server {

struct ServiceOptions {
  /// Global entry capacity of the in-memory model store (0 disables it).
  std::size_t model_capacity = 64;
  /// Global byte budget of the in-memory model store (0 = entries only).
  std::size_t model_store_bytes = 0;
  /// Store shard count (rounded up to a power of two).
  std::size_t store_shards = 8;
  /// Coalesce concurrent same-model evals into shared sweeps.
  bool coalesce_evals = true;
  /// On-disk second level (a suite::ResultCache); empty disables it.
  std::string cache_dir;
  /// Contest seed used when a learn request does not send one.
  std::uint64_t default_seed = 2020;
  /// Default SAT conflict budget of a cec request (0 = unlimited).
  std::int64_t cec_conflict_budget = 100000;
  /// Row cap of one eval request, summed over its batches.
  std::size_t max_eval_rows = 1u << 20;
  /// Cap on ping's optional server-side sleep.
  std::int64_t max_ping_sleep_ms = 60000;
  /// Width of the Service-owned sweep pool for wide evals (0 = off, sweeps
  /// stay on the request thread). Deliberately a *separate* pool from the
  /// transport's workers: SimEngine::run_parallel blocks its caller, so
  /// sweeping on the pool the caller occupies could starve the daemon.
  std::size_t sim_threads = 0;
  /// Rows one sweep must reach (summed over coalesced jobs) before it is
  /// partitioned across the sweep pool; narrower sweeps run serially.
  /// Results are bit-identical either way.
  std::size_t sim_parallel_min_rows = 4096;
};

/// Per-request deadline: a budget in milliseconds counted from the moment
/// the transport finished reading the request line (so time spent queued
/// behind busy workers counts). budget_ms == 0 means "no deadline".
struct Deadline {
  std::chrono::steady_clock::time_point received_at{};
  std::int64_t budget_ms = 0;

  [[nodiscard]] bool active() const { return budget_ms > 0; }
  [[nodiscard]] std::int64_t elapsed_ms() const;
  /// Remaining budget, clamped at 0; meaningless unless active().
  [[nodiscard]] std::int64_t remaining_ms() const;
  [[nodiscard]] bool expired() const { return active() && remaining_ms() <= 0; }
};

/// Monotonic counters; every field is updated atomically and readable at
/// any time (the `stats` request serializes them). The fields are
/// obs::Counter (a striped drop-in for std::atomic<std::uint64_t>), and
/// every Service registers them into the process obs::Registry under
/// lsml_server_* names for the `metrics` op — the same cells back both
/// views, so `stats` and `metrics` can never disagree.
struct ServiceStats {
  obs::Counter requests;
  obs::Counter errors;  ///< ok:false responses
  obs::Counter learns;  ///< learn requests that refit
  obs::Counter model_memory_hits;
  obs::Counter model_disk_hits;
  /// Requests that waited on a concurrent identical learn instead of
  /// refitting (single-flight).
  obs::Counter model_inflight_joins;
  obs::Counter model_evictions;
  obs::Counter evals;
  /// SimEngine sweeps actually run for eval requests; under a same-model
  /// storm this stays well below `evals` (the coalescing headline).
  obs::Counter eval_sweeps;
  /// Eval requests whose rows rode another request's sweep.
  obs::Counter eval_coalesced;
  obs::Counter eval_rows;
  obs::Counter synths;
  obs::Counter cecs;
  obs::Counter pings;
  obs::Counter deadline_expired;
};

/// A learned circuit as the store keeps it (immutable once published).
struct StoredModel {
  aig::Aig circuit{0};
  std::string learner;
  std::string method;
  double train_acc = 0.0;
  double valid_acc = 0.0;
  synth::VerifyStatus verified = synth::VerifyStatus::kNotRequested;
};

class Service {
 public:
  /// Request ops with per-op latency histograms; order matches the
  /// kOpNames table in service.cpp.
  static constexpr std::size_t kNumOps = 7;

  explicit Service(ServiceOptions options = {});

  /// Handles one request line; never throws. The returned response line
  /// carries no trailing newline. `received_at` stamps the deadline clock;
  /// the overload without it uses "now" (stdio mode, tests).
  [[nodiscard]] std::string handle_line(
      const std::string& line, std::chrono::steady_clock::time_point
                                   received_at);
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// NDJSON loop over streams — the `lsml serve --stdio` transport and the
  /// easiest test harness. Empty lines are skipped; lines longer than
  /// `max_request_bytes` are answered with an error (and not parsed).
  /// Returns the number of requests answered.
  std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                             std::size_t max_request_bytes);

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  /// The optimizer snapshot taken at construction (what learn requests run
  /// under, what model ids fingerprint, and what synth "auto" searches
  /// with).
  [[nodiscard]] const synth::OptRequest& opt_request() const {
    return optimizer_->request();
  }

  /// In-memory model count across all shards (tests assert LRU eviction
  /// through this).
  [[nodiscard]] std::size_t models_cached() const;
  /// Approximate resident bytes of the in-memory store.
  [[nodiscard]] std::size_t models_cached_bytes() const {
    return store_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// One independently locked slice of the model store.
  struct StoreShard {
    struct Entry {
      std::list<std::string>::iterator lru_it;
      std::shared_ptr<const StoredModel> model;
      std::size_t bytes = 0;
      std::uint64_t stamp = 0;  ///< global logical access clock
    };
    mutable std::mutex mutex;
    std::list<std::string> lru;  ///< front = most recent within the shard
    std::unordered_map<std::string, Entry> map;
  };

  /// One eval request's rows, parsed into PI columns; the coalescer fills
  /// `outputs` (one BitVec per circuit output over this job's rows).
  struct EvalJob {
    std::size_t rows = 0;
    std::vector<core::BitVec> columns;
    std::vector<core::BitVec> outputs;
    bool done = false;
  };

  /// Single-flight state for one model id's in-flight eval sweeps.
  struct EvalFlight {
    bool running = false;
    std::vector<std::shared_ptr<EvalJob>> waiting;
    std::condition_variable cv;
  };

  Json dispatch(const Json& request, const Deadline& deadline);
  Json handle_learn(const Json& request, const Deadline& deadline);
  Json handle_eval(const Json& request);
  Json handle_synth(const Json& request, const Deadline& deadline);
  Json handle_cec(const Json& request, const Deadline& deadline);
  Json handle_ping(const Json& request, const Deadline& deadline);
  Json handle_stats();
  Json handle_metrics(const Json& request);
  /// Registers stats_ and the latency histograms into the process
  /// obs::Registry (constructor helper).
  void register_metrics();

  /// Runs `job` through the per-model coalescer (or directly when
  /// coalescing is off); on return job->outputs is filled.
  void run_eval_job(const std::string& id, const StoredModel& model,
                    const std::shared_ptr<EvalJob>& job);
  /// One combined SimEngine sweep over every job in `batch`.
  void sweep_jobs(const StoredModel& model,
                  const std::vector<std::shared_ptr<EvalJob>>& batch);

  [[nodiscard]] StoreShard& shard_for(const std::string& id);
  /// LRU lookup (bumps recency); nullptr on miss.
  std::shared_ptr<const StoredModel> store_get(const std::string& id);
  void store_put(const std::string& id, std::shared_ptr<const StoredModel> m);
  /// Evicts globally-least-recent entries until capacity/byte budget hold.
  void store_evict_to_budget();
  /// Second-level lookup in the on-disk ResultCache; fills the LRU on hit.
  std::shared_ptr<const StoredModel> disk_get(const std::string& id,
                                              std::uint64_t content_hash);
  void disk_put(const std::string& id, std::uint64_t content_hash,
                const StoredModel& model,
                const std::vector<synth::PassStats>& trace);

  ServiceOptions options_;
  std::shared_ptr<const synth::ScriptSearch> optimizer_;
  suite::ResultCache disk_cache_;
  ServiceStats stats_;

  /// Single-flight table: model ids whose first learn is still running.
  /// Concurrent identical learns wait on the leader's future instead of
  /// refitting (the store alone cannot prevent N cold-start duplicates).
  std::mutex inflight_mutex_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const StoredModel>>>
      inflight_;

  /// Eval coalescer: guards the flight table and every flight's state.
  /// Critical sections are O(1) pointer shuffling; sweeps run outside.
  std::mutex eval_mutex_;
  std::unordered_map<std::string, std::shared_ptr<EvalFlight>> eval_flights_;

  /// Column-parallel sweep pool (see ServiceOptions::sim_threads).
  std::unique_ptr<core::ThreadPool> sim_pool_;

  std::vector<std::unique_ptr<StoreShard>> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::uint64_t> store_clock_{0};
  std::atomic<std::size_t> store_entries_{0};
  std::atomic<std::size_t> store_bytes_{0};

  /// Telemetry side-channel: queue-wait and per-op latency histograms.
  obs::Histogram queue_wait_us_;
  std::array<obs::Histogram, kNumOps> op_us_;
  /// Registry aliases for stats_ and the histograms above. Must stay the
  /// LAST members: destruction runs in reverse declaration order, so the
  /// registrations (which point into this object) leave the registry
  /// before anything they reference is torn down.
  std::vector<obs::Registry::Registration> metric_regs_;
};

/// "m-<hex16>" spelling of a model content hash (and its inverse; false
/// when `id` is not a well-formed model id).
std::string model_id_from_hash(std::uint64_t hash);
bool model_hash_from_id(const std::string& id, std::uint64_t* hash);

}  // namespace lsml::server
