#pragma once
// Minimal JSON for the serving protocol.
//
// The `lsml serve` wire format is newline-delimited JSON: one request
// object per line in, one response object per line out. This is the whole
// JSON implementation behind it — a small tagged value with a recursive-
// descent parser and a canonical serializer. Design constraints, in order:
//
//   1. Determinism: objects preserve insertion order and dump() emits a
//      single canonical spelling (shortest round-trip numbers via
//      std::to_chars, fixed escape set, no whitespace), so two servers
//      answering the same request produce byte-identical lines — the
//      property the concurrent-vs-serial bit-identity tests pin.
//   2. Robustness: parse() throws JsonError with context on malformed
//      input and never reads past the buffer; it is fed straight from the
//      socket.
//   3. No dependencies: the container ships no JSON library, and this
//      repo adds none.
//
// Payloads (PLA text, AIGER text) travel as ordinary JSON strings with
// embedded "\n" escapes, which is what keeps the framing one-line-per-
// message without a length prefix.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lsml::server {

/// Malformed JSON text (or a type-mismatched accessor).
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool v) : type_(Type::kBool), bool_(v) {}                    // NOLINT
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}              // NOLINT
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}               // NOLINT
  Json(std::uint32_t v) : Json(static_cast<std::int64_t>(v)) {}     // NOLINT
  Json(std::uint64_t v) : Json(static_cast<std::int64_t>(v)) {}     // NOLINT
  Json(double v) : type_(Type::kDouble), double_(v) {}              // NOLINT
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : Json(std::string(v)) {}                     // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const;
  /// Any number as int64 (doubles are truncated toward zero).
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // ------------------------------------------------------------- arrays
  void push_back(Json v);
  /// Pre-sizes an array's backing storage (no-op on other types).
  void reserve(std::size_t n);
  /// Appends a null element to an array and returns it (the parser's
  /// in-place construction path).
  Json& emplace_back();
  /// Retypes this value as a string holding the given bytes.
  void assign_string(const char* data, std::size_t n);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;

  // ------------------------------------------------------------ objects
  /// Appends (or replaces) a member; insertion order is dump() order.
  void set(std::string key, Json value);
  [[nodiscard]] bool has(const std::string& key) const;
  /// Member lookup; throws JsonError when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Member lookup; nullptr when absent.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Canonical single-line serialization (no whitespace, shortest
  /// round-trip numbers, minimal escapes).
  [[nodiscard]] std::string dump() const;

  /// Parses exactly one JSON value; trailing non-whitespace throws.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace lsml::server
