#include "server/service.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "aig/aig_io.hpp"
#include "aig/sim_engine.hpp"
#include "core/bits.hpp"
#include "core/rng.hpp"
#include "learn/factory.hpp"
#include "learn/learner.hpp"
#include "obs/trace.hpp"
#include "pla/pla.hpp"
#include "portfolio/contest.hpp"
#include "sat/cec.hpp"
#include "synth/script.hpp"

namespace lsml::server {

namespace {

/// Op order of Service::op_us_; dispatch() indexes both by the same value.
/// The names double as span names and as the `op` label of
/// lsml_server_op_us, so they must stay protocol-exact.
constexpr const char* kOpNames[Service::kNumOps] = {
    "learn", "eval", "synth", "cec", "ping", "stats", "metrics"};

std::uint64_t us_since(std::chrono::steady_clock::time_point start,
                       std::chrono::steady_clock::time_point end) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

/// A request that cannot be served as asked; becomes an ok:false response.
class RequestError : public std::runtime_error {
 public:
  explicit RequestError(const std::string& what) : std::runtime_error(what) {}
};

/// A deadline that ran out before the heavy phase started; becomes an
/// ok:false response with "expired":true.
class DeadlineExpired : public std::runtime_error {
 public:
  explicit DeadlineExpired(const std::string& phase)
      : std::runtime_error("deadline expired before " + phase) {}
};

const Json* optional_member(const Json& request, const char* key) {
  return request.find(key);
}

std::string required_string(const Json& request, const char* key) {
  const Json* v = request.find(key);
  if (v == nullptr || !v->is_string()) {
    throw RequestError(std::string("request needs a string '") + key +
                       "' field");
  }
  return v->as_string();
}

std::int64_t optional_int(const Json& request, const char* key,
                          std::int64_t fallback, std::int64_t min,
                          std::int64_t max) {
  const Json* v = request.find(key);
  if (v == nullptr) {
    return fallback;
  }
  if (!v->is_number()) {
    throw RequestError(std::string("'") + key + "' must be a number");
  }
  const std::int64_t value = v->as_int();
  if (value < min || value > max) {
    throw RequestError(std::string("'") + key + "' must be in [" +
                       std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return value;
}

bool optional_bool(const Json& request, const char* key, bool fallback) {
  const Json* v = request.find(key);
  if (v == nullptr) {
    return fallback;
  }
  if (!v->is_bool()) {
    throw RequestError(std::string("'") + key + "' must be a boolean");
  }
  return v->as_bool();
}

data::Dataset parse_pla_payload(const std::string& text, const char* field) {
  try {
    std::istringstream is(text);
    return pla::read_pla(is).to_dataset();
  } catch (const std::exception& e) {
    throw RequestError(std::string("bad PLA in '") + field + "': " + e.what());
  }
}

aig::Aig parse_aag_payload(const std::string& text, const char* field) {
  try {
    std::istringstream is(text);
    return aig::read_aag(is);
  } catch (const std::exception& e) {
    throw RequestError(std::string("bad AIGER in '") + field +
                       "': " + e.what());
  }
}

std::string aag_to_string(const aig::Aig& aig) {
  std::ostringstream os;
  aig::write_aag(aig, os);
  return os.str();
}

/// Response skeleton: echoed id (if any) first, then ok and type, so every
/// response line starts with the fields a client dispatches on.
Json response_base(const Json& request, const char* type, bool ok) {
  Json r = Json::object();
  if (request.is_object()) {
    if (const Json* id = request.find("id")) {
      r.set("id", *id);
    }
  }
  r.set("ok", ok);
  r.set("type", type);
  return r;
}

/// How many SAT conflicts a cec deadline buys per remaining millisecond —
/// a deliberately conservative rate (small instances do thousands/ms), so
/// a deadline always wins over a pathological miter.
constexpr std::int64_t kCecConflictsPerMs = 2000;

}  // namespace

std::int64_t Deadline::elapsed_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - received_at)
      .count();
}

std::int64_t Deadline::remaining_ms() const {
  const std::int64_t left = budget_ms - elapsed_ms();
  return left > 0 ? left : 0;
}

std::string model_id_from_hash(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "m-%016" PRIx64, hash);
  return buf;
}

bool model_hash_from_id(const std::string& id, std::uint64_t* hash) {
  if (id.size() != 18 || id[0] != 'm' || id[1] != '-') {
    return false;
  }
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(id.c_str() + 2, &end, 16);
  if (end != id.c_str() + id.size()) {
    return false;
  }
  *hash = value;
  return true;
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      optimizer_(synth::default_optimizer()),
      disk_cache_(options_.cache_dir) {
  std::size_t shards = options_.store_shards == 0 ? 1 : options_.store_shards;
  std::size_t pow2 = 1;
  while (pow2 < shards) {
    pow2 <<= 1;
  }
  shards_.reserve(pow2);
  for (std::size_t i = 0; i < pow2; ++i) {
    shards_.push_back(std::make_unique<StoreShard>());
  }
  shard_mask_ = pow2 - 1;
  if (options_.sim_threads > 0) {
    sim_pool_ = std::make_unique<core::ThreadPool>(options_.sim_threads);
  }
  register_metrics();
}

void Service::register_metrics() {
  obs::Registry& reg = obs::Registry::instance();
  const auto alias = [&](const char* name, const obs::Counter& c) {
    metric_regs_.push_back(reg.register_counter(name, &c));
  };
  alias("lsml_server_requests_total", stats_.requests);
  alias("lsml_server_errors_total", stats_.errors);
  alias("lsml_server_learns_total", stats_.learns);
  alias("lsml_server_model_memory_hits_total", stats_.model_memory_hits);
  alias("lsml_server_model_disk_hits_total", stats_.model_disk_hits);
  alias("lsml_server_model_inflight_joins_total",
        stats_.model_inflight_joins);
  alias("lsml_server_model_evictions_total", stats_.model_evictions);
  alias("lsml_server_evals_total", stats_.evals);
  alias("lsml_server_eval_sweeps_total", stats_.eval_sweeps);
  alias("lsml_server_eval_coalesced_total", stats_.eval_coalesced);
  alias("lsml_server_eval_rows_total", stats_.eval_rows);
  alias("lsml_server_synths_total", stats_.synths);
  alias("lsml_server_cecs_total", stats_.cecs);
  alias("lsml_server_pings_total", stats_.pings);
  alias("lsml_server_deadline_expired_total", stats_.deadline_expired);
  metric_regs_.push_back(
      reg.register_histogram("lsml_server_queue_wait_us", &queue_wait_us_));
  for (std::size_t op = 0; op < kNumOps; ++op) {
    metric_regs_.push_back(reg.register_histogram(
        std::string("lsml_server_op_us{op=\"") + kOpNames[op] + "\"}",
        &op_us_[op]));
  }
  metric_regs_.push_back(reg.register_gauge_fn(
      "lsml_server_models_cached",
      [this] { return static_cast<std::int64_t>(models_cached()); }));
  metric_regs_.push_back(reg.register_gauge_fn(
      "lsml_server_models_cached_bytes",
      [this] { return static_cast<std::int64_t>(models_cached_bytes()); }));
}

std::string Service::handle_line(const std::string& line) {
  return handle_line(line, std::chrono::steady_clock::now());
}

std::string Service::handle_line(
    const std::string& line,
    std::chrono::steady_clock::time_point received_at) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  // Queue wait: transport frame time -> this worker picking the line up.
  const auto picked_up = std::chrono::steady_clock::now();
  if (picked_up >= received_at) {
    queue_wait_us_.record(us_since(received_at, picked_up));
    if (obs::Tracer::enabled()) {
      obs::Tracer::record("queue_wait", "server", received_at, picked_up);
    }
  }
  Json request;
  try {
    {
      obs::ScopedSpan parse_span("parse", "server");
      request = Json::parse(line);
    }
    if (!request.is_object()) {
      throw RequestError("request must be a JSON object");
    }
    Deadline deadline;
    deadline.received_at = received_at;
    deadline.budget_ms =
        optional_int(request, "deadline_ms", 0, 0, 24LL * 3600 * 1000);
    Json response = dispatch(request, deadline);
    obs::ScopedSpan serialize_span("serialize", "server");
    return response.dump();
  } catch (const DeadlineExpired& e) {
    stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    Json r = response_base(request, "error", false);
    r.set("error", e.what());
    r.set("expired", true);
    return r.dump();
  } catch (const std::exception& e) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    Json r = response_base(request, "error", false);
    r.set("error", e.what());
    return r.dump();
  }
}

Json Service::dispatch(const Json& request, const Deadline& deadline) {
  const std::string type = required_string(request, "type");
  std::size_t op = kNumOps;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (type == kOpNames[i]) {
      op = i;
      break;
    }
  }
  if (op == kNumOps) {
    throw RequestError(
        "unknown request type '" + type +
        "' (expected learn, eval, synth, cec, ping, stats, or metrics)");
  }
  // The per-request span and latency histogram wrap the whole handler;
  // nested spans (sweep, synth passes, SAT solving) land inside it.
  obs::ScopedSpan op_span(kOpNames[op], "server");
  const auto start = std::chrono::steady_clock::now();
  Json response = [&]() -> Json {
    switch (op) {
      case 0:
        return handle_learn(request, deadline);
      case 1:
        return handle_eval(request);
      case 2:
        return handle_synth(request, deadline);
      case 3:
        return handle_cec(request, deadline);
      case 4:
        return handle_ping(request, deadline);
      case 5:
        return handle_stats();
      default:
        return handle_metrics(request);
    }
  }();
  op_us_[op].record(us_since(start, std::chrono::steady_clock::now()));
  return response;
}

// ----------------------------------------------------------------- learn

Json Service::handle_learn(const Json& request, const Deadline& deadline) {
  const std::string learner_name = required_string(request, "learner");
  const learn::LearnerFactory factory =
      learn::LearnerFactory::try_from_registry(learner_name);
  if (!factory) {
    throw RequestError("no learner named '" + learner_name +
                       "' is registered");
  }
  const data::Dataset train =
      parse_pla_payload(required_string(request, "pla"), "pla");
  if (train.num_rows() == 0) {
    throw RequestError("'pla' holds no minterms");
  }
  data::Dataset valid = train;
  if (const Json* v = optional_member(request, "valid_pla")) {
    if (!v->is_string()) {
      throw RequestError("'valid_pla' must be a string");
    }
    valid = parse_pla_payload(v->as_string(), "valid_pla");
    if (valid.num_inputs() != train.num_inputs()) {
      throw RequestError("'valid_pla' input count differs from 'pla'");
    }
  }
  const auto seed = static_cast<std::uint64_t>(optional_int(
      request, "seed", static_cast<std::int64_t>(options_.default_seed), 0,
      INT64_MAX));

  // Model identity: the same content-hash recipe the contest's result
  // cache uses (datasets + seed + schema version), extended by who learns
  // and under which optimization request. Equal requests — across
  // connections, restarts, and replays — map to equal ids.
  const std::uint64_t valid_hash = valid.content_hash();
  std::uint64_t hash = suite::task_content_hash(
      0, seed, train.content_hash(), valid_hash, valid_hash);
  hash = core::hash_combine(
      hash, core::fnv1a(learner_name.data(), learner_name.size()));
  hash = core::hash_combine(hash, optimizer_->request().fingerprint());
  const std::string id = model_id_from_hash(hash);

  std::shared_ptr<const StoredModel> model = store_get(id);
  if (model == nullptr) {
    // Single-flight: concurrent identical learns elect one leader; the
    // rest wait on its future instead of refitting N times on a cold
    // server (the store alone cannot close that window).
    std::promise<std::shared_ptr<const StoredModel>> promise;
    std::shared_future<std::shared_ptr<const StoredModel>> shared;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      const auto it = inflight_.find(id);
      if (it != inflight_.end()) {
        shared = it->second;
      } else {
        shared = promise.get_future().share();
        inflight_.emplace(id, shared);
        leader = true;
      }
    }
    if (!leader) {
      stats_.model_inflight_joins.fetch_add(1, std::memory_order_relaxed);
      model = shared.get();  // rethrows whatever failed the leader
    } else {
      std::exception_ptr failure;
      try {
        // Re-check both cache levels now that this thread owns the
        // flight: a leader that just finished published to the store
        // *before* leaving the table, so this lookup cannot miss its
        // result.
        model = store_get(id);
        if (model == nullptr) {
          model = disk_get(id, hash);
        }
        if (model == nullptr) {
          // Cache hits are cheap enough to honor even past the deadline;
          // an actual refit is the phase a deadline exists to gate.
          if (deadline.expired()) {
            throw DeadlineExpired("learn started");
          }
          stats_.learns.fetch_add(1, std::memory_order_relaxed);
          core::Rng rng(hash);  // depends only on the request content hash
          const std::unique_ptr<learn::Learner> learner = factory.make();
          learn::TrainedModel trained = learner->fit(train, valid, rng);
          auto stored = std::make_shared<StoredModel>();
          stored->circuit = std::move(trained.circuit);
          stored->learner = learner_name;
          stored->method = std::move(trained.method);
          stored->train_acc = trained.train_acc;
          stored->valid_acc = trained.valid_acc;
          stored->verified = trained.verified;
          disk_put(id, hash, *stored, trained.synth_trace);
          store_put(id, stored);
          model = std::move(stored);
        }
      } catch (...) {
        failure = std::current_exception();
      }
      if (failure == nullptr) {
        promise.set_value(model);
      } else {
        promise.set_exception(failure);
      }
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(id);
      }
      if (failure != nullptr) {
        std::rethrow_exception(failure);
      }
    }
  }

  Json r = response_base(request, "learn", true);
  r.set("model", id);
  r.set("learner", model->learner);
  r.set("method", model->method);
  r.set("train_acc", model->train_acc);
  r.set("valid_acc", model->valid_acc);
  r.set("ands", model->circuit.num_ands());
  r.set("levels", model->circuit.num_levels());
  r.set("inputs", model->circuit.num_pis());
  r.set("verified", synth::to_string(model->verified));
  return r;
}

// ------------------------------------------------------------------ eval

namespace {

/// Parses one array of minterm strings into per-PI columns appended at
/// `offset` of `columns` (each already sized for the request's total rows).
/// `where` names the array in error messages ("inputs", "batches[2]").
void parse_rows_into_columns(const Json& rows_json, std::size_t num_pis,
                             std::size_t offset,
                             std::vector<core::BitVec>* columns,
                             const std::string& where) {
  const std::size_t rows = rows_json.size();
  for (std::size_t row = 0; row < rows; ++row) {
    const Json& line = rows_json.at(row);
    if (!line.is_string() || line.as_string().size() != num_pis) {
      throw RequestError(where + "[" + std::to_string(row) + "] must be a " +
                         std::to_string(num_pis) + "-character 0/1 string");
    }
    const std::string& bits = line.as_string();
    for (std::size_t col = 0; col < num_pis; ++col) {
      if (bits[col] == '1') {
        (*columns)[col].set(offset + row, true);
      } else if (bits[col] != '0') {
        throw RequestError(where + "[" + std::to_string(row) +
                           "] holds a character other than 0/1");
      }
    }
  }
}

/// Copies `n` bits from src[src_off..] to dst[dst_off..]. Word-blasts when
/// both offsets are word-aligned (the common case: coalesced batches whose
/// row counts are multiples of 64).
void copy_bits(core::BitVec* dst, std::size_t dst_off, const core::BitVec& src,
               std::size_t src_off, std::size_t n) {
  if (dst_off % 64 == 0 && src_off % 64 == 0) {
    const std::size_t words = n / 64;
    for (std::size_t w = 0; w < words; ++w) {
      dst->words()[dst_off / 64 + w] = src.words()[src_off / 64 + w];
    }
    dst_off += words * 64;
    src_off += words * 64;
    n -= words * 64;
  }
  for (std::size_t i = 0; i < n; ++i) {
    dst->set(dst_off + i, src.get(src_off + i));
  }
}

std::string bits_to_string(const core::BitVec& bits, std::size_t offset,
                           std::size_t rows) {
  std::string text(rows, '0');
  for (std::size_t row = 0; row < rows; ++row) {
    if (bits.get(offset + row)) {
      text[row] = '1';
    }
  }
  return text;
}

}  // namespace

void Service::sweep_jobs(const StoredModel& model,
                         const std::vector<std::shared_ptr<EvalJob>>& batch) {
  const std::size_t num_pis = model.circuit.num_pis();
  stats_.eval_sweeps.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedSpan sweep_span("sweep", "sim");
  // Per-transport-thread scratch: the engine's word arena and the combined
  // column/output buffers are reused across requests instead of
  // reallocated per sweep. The engine only borrows model.circuit for the
  // duration of this call (bind() rebinds it every time), so the
  // thread_local outliving the model's shared_ptr is fine.
  thread_local aig::SimEngine engine;
  thread_local std::vector<core::BitVec> combined;
  thread_local std::vector<core::BitVec> combined_outputs;
  engine.bind(model.circuit);
  const auto sweep = [this](aig::SimEngine& e,
                            const std::vector<const core::BitVec*>& ptrs,
                            std::size_t rows) {
    if (sim_pool_ != nullptr && rows >= options_.sim_parallel_min_rows) {
      e.run_parallel(ptrs, *sim_pool_);
    } else {
      e.run(ptrs);
    }
  };
  if (batch.size() == 1) {
    // One job: sweep its columns in place, no concatenation.
    EvalJob& job = *batch.front();
    std::vector<const core::BitVec*> ptrs(num_pis);
    for (std::size_t col = 0; col < num_pis; ++col) {
      ptrs[col] = &job.columns[col];
    }
    sweep(engine, ptrs, job.rows);
    engine.outputs_into(&job.outputs);
    return;
  }
  // Concatenate every job's rows into combined columns, sweep once, then
  // scatter each job's slice of the combined outputs back. Outputs are a
  // pure per-row function of the inputs, so slices are byte-identical to
  // what a solo sweep of that job would produce.
  std::size_t total = 0;
  for (const auto& job : batch) {
    total += job->rows;
  }
  combined.resize(num_pis);
  for (auto& column : combined) {
    column.reset(total);
  }
  std::size_t offset = 0;
  for (const auto& job : batch) {
    for (std::size_t col = 0; col < num_pis; ++col) {
      copy_bits(&combined[col], offset, job->columns[col], 0, job->rows);
    }
    offset += job->rows;
  }
  std::vector<const core::BitVec*> ptrs(num_pis);
  for (std::size_t col = 0; col < num_pis; ++col) {
    ptrs[col] = &combined[col];
  }
  sweep(engine, ptrs, total);
  engine.outputs_into(&combined_outputs);
  offset = 0;
  for (const auto& job : batch) {
    job->outputs.assign(combined_outputs.size(), core::BitVec(job->rows));
    for (std::size_t o = 0; o < combined_outputs.size(); ++o) {
      copy_bits(&job->outputs[o], 0, combined_outputs[o], offset, job->rows);
    }
    offset += job->rows;
  }
}

void Service::run_eval_job(const std::string& id, const StoredModel& model,
                           const std::shared_ptr<EvalJob>& job) {
  if (!options_.coalesce_evals) {
    sweep_jobs(model, {job});
    return;
  }
  std::unique_lock<std::mutex> lock(eval_mutex_);
  std::shared_ptr<EvalFlight>& slot = eval_flights_[id];
  if (slot == nullptr) {
    slot = std::make_shared<EvalFlight>();
  }
  // Keep the flight alive past a possible table erase by the leader.
  const std::shared_ptr<EvalFlight> flight = slot;
  if (flight->running) {
    // Follower: enqueue and ride the leader's next combined sweep.
    flight->waiting.push_back(job);
    stats_.eval_coalesced.fetch_add(1, std::memory_order_relaxed);
    flight->cv.wait(lock, [&] { return job->done; });
    return;
  }
  flight->running = true;
  lock.unlock();
  // Leader: sweep own rows immediately (coalescing never adds latency to
  // an uncontended eval), then serve rounds of followers that piled up.
  sweep_jobs(model, {job});
  while (true) {
    lock.lock();
    job->done = true;
    if (flight->waiting.empty()) {
      flight->running = false;
      const auto it = eval_flights_.find(id);
      if (it != eval_flights_.end() && it->second == flight) {
        eval_flights_.erase(it);  // keep the table to in-flight ids only
      }
      return;
    }
    std::vector<std::shared_ptr<EvalJob>> round;
    round.swap(flight->waiting);
    lock.unlock();
    sweep_jobs(model, round);
    lock.lock();
    for (const auto& j : round) {
      j->done = true;
    }
    flight->cv.notify_all();
    lock.unlock();
  }
}

Json Service::handle_eval(const Json& request) {
  const std::string id = required_string(request, "model");
  std::uint64_t hash = 0;
  if (!model_hash_from_id(id, &hash)) {
    throw RequestError("'" + id +
                       "' is not a model id (expected m-<16 hex digits>)");
  }
  std::shared_ptr<const StoredModel> model = store_get(id);
  if (model == nullptr) {
    model = disk_get(id, hash);
  }
  if (model == nullptr) {
    throw RequestError("unknown model '" + id + "' (learn it first)");
  }

  // Rows arrive either as one flat "inputs" array or as a "batches" array
  // of row arrays; either way every row rides ONE SimEngine sweep.
  const Json* inputs = optional_member(request, "inputs");
  const Json* batches = optional_member(request, "batches");
  if ((inputs == nullptr) == (batches == nullptr)) {
    throw RequestError(
        "request needs exactly one of 'inputs' (an array of minterm "
        "strings) or 'batches' (an array of such arrays)");
  }
  std::vector<const Json*> groups;
  if (inputs != nullptr) {
    if (!inputs->is_array() || inputs->size() == 0) {
      throw RequestError("'inputs' must be a non-empty array");
    }
    groups.push_back(inputs);
  } else {
    if (!batches->is_array() || batches->size() == 0) {
      throw RequestError("'batches' must be a non-empty array");
    }
    for (std::size_t b = 0; b < batches->size(); ++b) {
      const Json& group = batches->at(b);
      if (!group.is_array() || group.size() == 0) {
        throw RequestError("batches[" + std::to_string(b) +
                           "] must be a non-empty array of minterm strings");
      }
      groups.push_back(&group);
    }
  }
  std::size_t total_rows = 0;
  for (const Json* group : groups) {
    total_rows += group->size();
  }
  if (total_rows > options_.max_eval_rows) {
    throw RequestError("request exceeds the per-request row cap (" +
                       std::to_string(options_.max_eval_rows) +
                       " rows summed over batches)");
  }

  const std::size_t num_pis = model->circuit.num_pis();
  auto job = std::make_shared<EvalJob>();
  job->rows = total_rows;
  job->columns.assign(num_pis, core::BitVec(total_rows));
  std::size_t offset = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::string where =
        inputs != nullptr ? "inputs" : "batches[" + std::to_string(g) + "]";
    parse_rows_into_columns(*groups[g], num_pis, offset, &job->columns, where);
    offset += groups[g]->size();
  }

  run_eval_job(id, *model, job);
  stats_.evals.fetch_add(1, std::memory_order_relaxed);
  stats_.eval_rows.fetch_add(total_rows, std::memory_order_relaxed);

  Json r = response_base(request, "eval", true);
  r.set("model", id);
  r.set("rows", static_cast<std::int64_t>(total_rows));
  if (inputs != nullptr) {
    Json out = Json::array();
    for (const core::BitVec& bits : job->outputs) {
      out.push_back(Json(bits_to_string(bits, 0, total_rows)));
    }
    r.set("outputs", std::move(out));
  } else {
    Json out_batches = Json::array();
    offset = 0;
    for (const Json* group : groups) {
      const std::size_t rows = group->size();
      Json entry = Json::object();
      entry.set("rows", static_cast<std::int64_t>(rows));
      Json out = Json::array();
      for (const core::BitVec& bits : job->outputs) {
        out.push_back(Json(bits_to_string(bits, offset, rows)));
      }
      entry.set("outputs", std::move(out));
      out_batches.push_back(std::move(entry));
      offset += rows;
    }
    r.set("batches", std::move(out_batches));
  }
  return r;
}

// ----------------------------------------------------------------- synth

Json Service::handle_synth(const Json& request, const Deadline& deadline) {
  const aig::Aig in = parse_aag_payload(required_string(request, "aag"), "aag");
  // Per-request overrides on top of the installed request: script (or
  // "auto", which searches with the construction-time experience
  // snapshot), budgets, seed, verify. The options reset to the op's own
  // defaults first, so a request without a field gets the exact response
  // it always got regardless of what the daemon was started with.
  synth::OptRequest req = optimizer_->request();
  req.options = synth::SynthOptions{};
  req.script = [&] {
    const Json* s = optional_member(request, "script");
    if (s == nullptr) {
      return std::string("resyn2");
    }
    if (!s->is_string()) {
      throw RequestError("'script' must be a string");
    }
    return s->as_string();
  }();
  try {
    req.validate();
  } catch (const std::exception& e) {
    throw RequestError(std::string("bad 'script': ") + e.what());
  }
  req.options.node_budget = static_cast<std::uint32_t>(
      optional_int(request, "max_gates", 5000, 0, 0xffffffffLL));
  req.options.max_rounds =
      static_cast<int>(optional_int(request, "rounds", 1, 1, 1000));
  req.options.approx_seed = static_cast<std::uint64_t>(optional_int(
      request, "seed", static_cast<std::int64_t>(req.options.approx_seed), 0,
      INT64_MAX));
  if (optional_member(request, "seed") != nullptr) {
    // One seed field steers both randomized approximation and the auto
    // search stream.
    req.search_seed = req.options.approx_seed;
  }
  req.options.verify_equivalence = optional_bool(request, "verify", false);
  if (deadline.active()) {
    if (deadline.expired()) {
      throw DeadlineExpired("synth started");
    }
    // Map the remaining deadline onto the pass manager's existing soft
    // time budget; such runs bypass the process memo by design.
    req.options.time_budget_ms = deadline.remaining_ms();
  }
  const synth::OptOutcome out = optimizer_->optimize(in, req);

  stats_.synths.fetch_add(1, std::memory_order_relaxed);
  Json r = response_base(request, "synth", true);
  r.set("script", out.script.str());
  if (req.is_auto()) {
    // The winner's identity, only when the caller asked for search —
    // fixed-script responses stay byte-identical to older builds.
    char fp[17];
    std::snprintf(fp, sizeof fp, "%016" PRIx64, out.script.fingerprint());
    r.set("script_fp", std::string(fp));
  }
  r.set("ands_in", out.result.ands_in());
  r.set("ands", out.result.circuit.num_ands());
  r.set("levels", out.result.circuit.num_levels());
  r.set("verified", synth::to_string(out.result.verify));
  // Wall times stay out of the trace: responses must be bit-identical
  // across replays (the ms column is observable via the CLI instead).
  Json trace = Json::array();
  for (const synth::PassStats& pass : out.result.trace) {
    Json p = Json::object();
    p.set("pass", pass.pass);
    p.set("ands_before", pass.ands_before);
    p.set("ands_after", pass.ands_after);
    p.set("levels_before", pass.levels_before);
    p.set("levels_after", pass.levels_after);
    trace.push_back(std::move(p));
  }
  r.set("trace", std::move(trace));
  r.set("aag", aag_to_string(out.result.circuit));
  return r;
}

// ------------------------------------------------------------------- cec

Json Service::handle_cec(const Json& request, const Deadline& deadline) {
  const aig::Aig a = parse_aag_payload(required_string(request, "a"), "a");
  const aig::Aig b = parse_aag_payload(required_string(request, "b"), "b");
  sat::CecLimits limits;
  limits.conflict_budget = optional_int(request, "conflicts",
                                        options_.cec_conflict_budget, 0,
                                        INT64_MAX);
  stats_.cecs.fetch_add(1, std::memory_order_relaxed);

  Json r = response_base(request, "cec", true);
  if (deadline.active()) {
    const std::int64_t remaining = deadline.remaining_ms();
    if (remaining <= 0) {
      // A blown deadline degrades to the verdict a blown SAT budget gives:
      // undecided, never a wrong answer and never a stalled worker.
      stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      r.set("verdict", "undecided");
      r.set("expired", true);
      return r;
    }
    const std::int64_t cap = remaining * kCecConflictsPerMs;
    if (limits.conflict_budget == 0 || limits.conflict_budget > cap) {
      limits.conflict_budget = cap;
    }
  }
  sat::CecResult result;
  try {
    result = sat::cec(a, b, limits);
  } catch (const std::invalid_argument& e) {
    throw RequestError(e.what());  // PI/output shape mismatch
  }
  switch (result.status) {
    case sat::CecStatus::kEquivalent:
      r.set("verdict", "equivalent");
      break;
    case sat::CecStatus::kNotEquivalent: {
      r.set("verdict", "not_equivalent");
      std::string cube;
      for (const std::uint8_t v : result.counterexample) {
        cube += v != 0 ? '1' : '0';
      }
      r.set("counterexample", cube);
      r.set("failing_output",
            static_cast<std::int64_t>(result.failing_output));
      break;
    }
    case sat::CecStatus::kUndecided:
      r.set("verdict", "undecided");
      break;
  }
  r.set("conflicts",
        static_cast<std::int64_t>(result.solver_stats.conflicts));
  return r;
}

// ------------------------------------------------------------ ping/stats

Json Service::handle_ping(const Json& request, const Deadline& deadline) {
  if (deadline.expired()) {
    throw DeadlineExpired("ping ran");
  }
  const std::int64_t sleep_ms = optional_int(request, "sleep_ms", 0, 0,
                                             options_.max_ping_sleep_ms);
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  stats_.pings.fetch_add(1, std::memory_order_relaxed);
  return response_base(request, "ping", true);
}

Json Service::handle_stats() {
  Json r = response_base(Json(), "stats", true);
  const auto get = [](const obs::Counter& c) {
    return static_cast<std::int64_t>(c.load());
  };
  r.set("requests", get(stats_.requests));
  r.set("errors", get(stats_.errors));
  r.set("learns", get(stats_.learns));
  r.set("model_memory_hits", get(stats_.model_memory_hits));
  r.set("model_disk_hits", get(stats_.model_disk_hits));
  r.set("model_inflight_joins", get(stats_.model_inflight_joins));
  r.set("model_evictions", get(stats_.model_evictions));
  r.set("evals", get(stats_.evals));
  r.set("eval_sweeps", get(stats_.eval_sweeps));
  r.set("eval_coalesced", get(stats_.eval_coalesced));
  r.set("eval_rows", get(stats_.eval_rows));
  r.set("synths", get(stats_.synths));
  r.set("cecs", get(stats_.cecs));
  r.set("pings", get(stats_.pings));
  r.set("deadline_expired", get(stats_.deadline_expired));
  r.set("models_cached", static_cast<std::int64_t>(models_cached()));
  r.set("models_cached_bytes",
        static_cast<std::int64_t>(models_cached_bytes()));
  r.set("store_shards", static_cast<std::int64_t>(shards_.size()));
  r.set("synth_memo_hits",
        static_cast<std::int64_t>(synth::PassManager::memo_hits()));
  r.set("pipeline", optimizer_->request().script_display());
  return r;
}

Json Service::handle_metrics(const Json& request) {
  // Prometheus text exposition of the whole process registry: this
  // Service's aliased counters/histograms plus the sim/synth/sat/suite
  // subsystem families. Like `stats`, intentionally non-deterministic and
  // excluded from the replay contract.
  Json r = response_base(request, "metrics", true);
  r.set("content_type", "text/plain; version=0.0.4");
  r.set("text", obs::Registry::instance().expose_prometheus());
  return r;
}

// ------------------------------------------------------------ model store

namespace {

/// Approximate resident size of a stored model (byte-budget accounting;
/// exactness does not matter, monotonicity in circuit size does).
std::size_t model_bytes(const StoredModel& m) {
  return sizeof(StoredModel) + m.learner.size() + m.method.size() +
         static_cast<std::size_t>(m.circuit.num_nodes()) * 16 + 64;
}

}  // namespace

Service::StoreShard& Service::shard_for(const std::string& id) {
  return *shards_[core::fnv1a(id.data(), id.size()) & shard_mask_];
}

std::shared_ptr<const StoredModel> Service::store_get(const std::string& id) {
  StoreShard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(id);
  if (it == shard.map.end()) {
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  it->second.stamp =
      store_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  stats_.model_memory_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.model;
}

void Service::store_put(const std::string& id,
                        std::shared_ptr<const StoredModel> m) {
  if (options_.model_capacity == 0) {
    return;
  }
  const std::size_t bytes = model_bytes(*m);
  StoreShard& shard = shard_for(id);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(id);
    const std::uint64_t stamp =
        store_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      store_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
      store_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      it->second.model = std::move(m);
      it->second.bytes = bytes;
      it->second.stamp = stamp;
    } else {
      shard.lru.push_front(id);
      StoreShard::Entry entry;
      entry.lru_it = shard.lru.begin();
      entry.model = std::move(m);
      entry.bytes = bytes;
      entry.stamp = stamp;
      shard.map.emplace(id, std::move(entry));
      store_entries_.fetch_add(1, std::memory_order_relaxed);
      store_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }
  store_evict_to_budget();
}

void Service::store_evict_to_budget() {
  while (true) {
    const bool over_entries =
        store_entries_.load(std::memory_order_relaxed) >
        options_.model_capacity;
    const bool over_bytes =
        options_.model_store_bytes > 0 &&
        store_bytes_.load(std::memory_order_relaxed) >
            options_.model_store_bytes;
    if (!over_entries && !over_bytes) {
      return;
    }
    // Global LRU across shards: every shard's tail is its least-recent
    // entry, so the globally oldest stamp among tails is the LRU victim.
    // Shards are inspected one lock at a time; concurrent bumps make this
    // approximate, never unsafe.
    StoreShard* victim = nullptr;
    std::uint64_t oldest = UINT64_MAX;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (shard->lru.empty()) {
        continue;
      }
      const std::uint64_t stamp = shard->map.at(shard->lru.back()).stamp;
      if (stamp < oldest) {
        oldest = stamp;
        victim = shard.get();
      }
    }
    if (victim == nullptr) {
      return;  // nothing left to evict
    }
    std::lock_guard<std::mutex> lock(victim->mutex);
    if (victim->lru.empty()) {
      continue;
    }
    const auto it = victim->map.find(victim->lru.back());
    store_entries_.fetch_sub(1, std::memory_order_relaxed);
    store_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    victim->map.erase(it);
    victim->lru.pop_back();
    stats_.model_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t Service::models_cached() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

std::shared_ptr<const StoredModel> Service::disk_get(
    const std::string& id, std::uint64_t content_hash) {
  if (!disk_cache_.enabled()) {
    return nullptr;
  }
  const std::optional<suite::CachedTask> task =
      disk_cache_.load("models", id, content_hash);
  if (!task.has_value()) {
    return nullptr;
  }
  auto stored = std::make_shared<StoredModel>();
  try {
    std::istringstream is(task->aag);
    stored->circuit = aig::read_aag(is);
  } catch (const std::exception&) {
    return nullptr;  // corrupt entry: treat as a plain miss
  }
  stored->method = task->result.method;
  // The learner name is recoverable from the method only heuristically, so
  // the cache stores it in the benchmark row's `benchmark` companion
  // field; see disk_put. BenchmarkResult::benchmark holds the learner.
  stored->learner = task->result.benchmark;
  stored->train_acc = task->result.train_acc;
  stored->valid_acc = task->result.valid_acc;
  stored->verified = task->result.verified;
  stats_.model_disk_hits.fetch_add(1, std::memory_order_relaxed);
  store_put(id, stored);
  return stored;
}

void Service::disk_put(const std::string& id, std::uint64_t content_hash,
                       const StoredModel& model,
                       const std::vector<synth::PassStats>& trace) {
  if (!disk_cache_.enabled()) {
    return;
  }
  suite::CachedTask task;
  task.result.benchmark_id = 0;
  task.result.benchmark = model.learner;  // see disk_get
  task.result.method = model.method;
  task.result.train_acc = model.train_acc;
  task.result.valid_acc = model.valid_acc;
  task.result.test_acc = model.valid_acc;
  task.result.num_ands = model.circuit.num_ands();
  task.result.num_levels = model.circuit.num_levels();
  task.result.synth_trace = trace;
  task.result.verified = model.verified;
  task.aag = aag_to_string(model.circuit);
  disk_cache_.store("models", id, content_hash, task);
}

// ----------------------------------------------------------------- stdio

std::uint64_t Service::serve_stream(std::istream& in, std::ostream& out,
                                    std::size_t max_request_bytes) {
  std::uint64_t answered = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    std::string response;
    if (max_request_bytes > 0 && line.size() > max_request_bytes) {
      stats_.requests.fetch_add(1, std::memory_order_relaxed);
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      Json r = Json::object();
      r.set("ok", false);
      r.set("error", "request exceeds --max-request-bytes (" +
                         std::to_string(max_request_bytes) + ")");
      response = r.dump();
    } else {
      response = handle_line(line);
    }
    out << response << '\n' << std::flush;
    ++answered;
  }
  return answered;
}

}  // namespace lsml::server
