#include "server/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lsml::server {

namespace {

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

void type_check(bool ok, const char* want) {
  if (!ok) {
    fail(std::string("JSON value is not ") + want);
  }
}

}  // namespace

bool Json::as_bool() const {
  type_check(type_ == Type::kBool, "a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  type_check(is_number(), "a number");
  return type_ == Type::kInt ? int_ : static_cast<std::int64_t>(double_);
}

double Json::as_double() const {
  type_check(is_number(), "a number");
  return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

const std::string& Json::as_string() const {
  type_check(type_ == Type::kString, "a string");
  return string_;
}

void Json::push_back(Json v) {
  type_check(type_ == Type::kArray, "an array");
  array_.push_back(std::move(v));
}

void Json::reserve(std::size_t n) {
  if (type_ == Type::kArray) {
    array_.reserve(n);
  }
}

Json& Json::emplace_back() {
  type_check(type_ == Type::kArray, "an array");
  return array_.emplace_back();
}

void Json::assign_string(const char* data, std::size_t n) {
  array_.clear();
  object_.clear();
  type_ = Type::kString;
  string_.assign(data, n);
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  if (type_ == Type::kObject) {
    return object_.size();
  }
  fail("JSON value is not a container");
}

const Json& Json::at(std::size_t i) const {
  type_check(type_ == Type::kArray, "an array");
  if (i >= array_.size()) {
    fail("JSON array index out of range");
  }
  return array_[i];
}

void Json::set(std::string key, Json value) {
  type_check(type_ == Type::kObject, "an object");
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

bool Json::has(const std::string& key) const { return find(key) != nullptr; }

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    fail("missing JSON member '" + key + "'");
  }
  return *v;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& member : object_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  type_check(type_ == Type::kObject, "an object");
  return object_;
}

// --------------------------------------------------------------- dumping

namespace {

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  // Bulk-append runs that need no escaping; payload strings (minterm rows,
  // output bit strings, PLA text between newlines) are almost entirely
  // clean runs.
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t run = i;
    while (run < s.size()) {
      const auto u = static_cast<unsigned char>(s[run]);
      if (u < 0x20 || u == '"' || u == '\\') {
        break;
      }
      ++run;
    }
    out->append(s, i, run - i);
    if (run >= s.size()) {
      break;
    }
    i = run;
    const char c = s[i++];
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::dump_to(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, int_);
      out->append(buf, res.ptr);
      return;
    }
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        // JSON has no Inf/NaN; the protocol never produces them, but a
        // defensive spelling beats emitting an unparseable token.
        *out += "null";
        return;
      }
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof buf, double_);
      out->append(buf, res.ptr);
      return;
    }
    case Type::kString:
      dump_string(string_, out);
      return;
    case Type::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        array_[i].dump_to(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        dump_string(object_[i].first, out);
        out->push_back(':');
        object_[i].second.dump_to(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

// --------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail_at("trailing characters after JSON value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail_at(const std::string& what) const {
    fail(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail_at("unexpected end of JSON text");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    // Recursion is bounded so a hostile "[[[[..." request line becomes a
    // JsonError (one failed request), never a stack overflow (one dead
    // daemon). 64 levels is far beyond anything the protocol nests.
    if (depth_ >= 64) {
      fail_at("JSON nesting deeper than 64 levels");
    }
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': {
        ++depth_;
        Json v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        ++depth_;
        Json v = parse_array();
        --depth_;
        return v;
      }
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json(true);
        }
        fail_at("bad literal");
      case 'f':
        if (consume_literal("false")) {
          return Json(false);
        }
        fail_at("bad literal");
      case 'n':
        if (consume_literal("null")) {
          return Json();
        }
        fail_at("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return obj;
      }
      if (c != ',') {
        fail_at("expected ',' or '}' in object");
      }
    }
  }

  /// Counts the elements of the array starting at pos_ (first element, '['
  /// already consumed) by scanning ahead to the matching ']'. One linear
  /// rescan buys an exact vector reserve — for the hot eval payloads
  /// (hundreds of row strings) that removes every reallocation move of the
  /// ~100-byte Json elements, which costs more than the scan.
  std::size_t count_array_elements() const {
    std::size_t count = 1;
    std::size_t depth = 0;
    bool in_string = false;
    for (std::size_t i = pos_; i < text_.size(); ++i) {
      const char c = text_[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '[' || c == '{') {
        ++depth;
      } else if (c == ']' || c == '}') {
        if (depth == 0) {
          break;
        }
        --depth;
      } else if (c == ',' && depth == 0) {
        ++count;
      }
    }
    return count;
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    arr.reserve(count_array_elements());
    while (true) {
      skip_ws();
      if (peek() == '"') {
        // Dominant payload shape (arrays of minterm-row strings): build
        // the string directly inside the array slot instead of moving a
        // ~100-byte Json through return values and push_back.
        parse_string_into(arr.emplace_back());
      } else {
        arr.push_back(parse_value());
      }
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return arr;
      }
      if (c != ',') {
        fail_at("expected ',' or ']' in array");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail_at("truncated \\u escape");
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail_at("bad \\u escape digit");
      }
    }
    return value;
  }

  void append_utf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  /// Index of the next byte that ends a plain run: a quote, a backslash,
  /// or a control byte. Scanning a whole span and bulk-appending it beats
  /// byte-at-a-time push_back — request lines are dominated by long clean
  /// strings (minterm rows, PLA payloads).
  std::size_t scan_plain_run() const {
    const char* data = text_.data();
    std::size_t i = pos_;
    const std::size_t n = text_.size();
    while (i < n) {
      const unsigned char c = static_cast<unsigned char>(data[i]);
      if (c == '"' || c == '\\' || c < 0x20) {
        break;
      }
      ++i;
    }
    return i;
  }

  std::string parse_string() {
    expect('"');
    // Fast path: the whole string is one clean run (no escapes).
    const std::size_t run = scan_plain_run();
    if (run < text_.size() && text_[run] == '"') {
      std::string out(text_, pos_, run - pos_);
      pos_ = run + 1;
      return out;
    }
    return parse_string_tail();
  }

  /// Parses a string element straight into `out` — the fast path assigns
  /// the bytes in place, with no intermediate std::string or Json moves.
  void parse_string_into(Json& out) {
    expect('"');
    const std::size_t run = scan_plain_run();
    if (run < text_.size() && text_[run] == '"') {
      out.assign_string(text_.data() + pos_, run - pos_);
      pos_ = run + 1;
      return;
    }
    out = Json(parse_string_tail());
  }

  /// Escape-handling slow path; pos_ sits just past the opening quote.
  std::string parse_string_tail() {
    std::string out;
    while (true) {
      const std::size_t run = scan_plain_run();
      out.append(text_, pos_, run - pos_);
      pos_ = run;
      if (pos_ >= text_.size()) {
        fail_at("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at("raw control character in string");
      }
      if (pos_ >= text_.size()) {
        fail_at("truncated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // UTF-16 surrogate pair.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail_at("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail_at("bad UTF-16 low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail_at("unpaired UTF-16 surrogate");
          }
          append_utf8(cp, &out);
          break;
        }
        default:
          fail_at("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail_at("bad number");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      fail_at("leading zero in number");
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t v = 0;
      const auto res = std::from_chars(first, last, v);
      if (res.ec == std::errc() && res.ptr == last) {
        return Json(v);
      }
      // Out-of-range integer literal: fall through to double.
    }
    // strtod needs a terminated buffer; numbers are rare enough in the
    // protocol that the copy does not matter.
    const std::string token(first, last);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail_at("bad number '" + token + "'");
    }
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace lsml::server
