#include "portfolio/contest.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "core/thread_pool.hpp"
#include "learn/dt.hpp"
#include "synth/script_search.hpp"

namespace lsml::portfolio {

namespace {

double mean(const std::vector<BenchmarkResult>& results,
            double (*get)(const BenchmarkResult&)) {
  if (results.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& r : results) {
    total += get(r);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace

double TeamRun::avg_test_acc() const {
  return mean(results, [](const BenchmarkResult& r) { return r.test_acc; });
}
double TeamRun::avg_valid_acc() const {
  return mean(results, [](const BenchmarkResult& r) { return r.valid_acc; });
}
double TeamRun::avg_ands() const {
  return mean(results, [](const BenchmarkResult& r) {
    return static_cast<double>(r.num_ands);
  });
}
double TeamRun::avg_levels() const {
  return mean(results, [](const BenchmarkResult& r) {
    return static_cast<double>(r.num_levels);
  });
}
double TeamRun::overfit() const {
  return mean(results, [](const BenchmarkResult& r) {
    return r.valid_acc - r.test_acc;
  });
}
double TeamRun::avg_synth_ands_in() const {
  return mean(results, [](const BenchmarkResult& r) {
    return static_cast<double>(r.synth_ands_in());
  });
}
double TeamRun::avg_synth_saved() const {
  return mean(results, [](const BenchmarkResult& r) {
    return static_cast<double>(r.synth_ands_saved());
  });
}
double TeamRun::verified_fraction() const {
  return mean(results, [](const BenchmarkResult& r) {
    return r.verified == synth::VerifyStatus::kExact ? 1.0 : 0.0;
  });
}

double TeamRun::total_synth_ms() const {
  double total = 0.0;
  for (const auto& r : results) {
    total += r.synth_ms();
  }
  return total;
}

std::uint32_t BenchmarkResult::synth_ands_in() const {
  return synth::trace_ands_in(synth_trace, num_ands);
}

std::uint32_t BenchmarkResult::synth_ands_saved() const {
  const std::uint32_t in = synth_ands_in();
  return in > num_ands ? in - num_ands : 0;
}

double BenchmarkResult::synth_ms() const {
  return synth::trace_total_ms(synth_trace);
}

core::Rng contest_rng(std::uint64_t seed, int team_number, int benchmark_id) {
  const core::Rng root(seed);
  return root.split(static_cast<std::uint64_t>(team_number),
                    static_cast<std::uint64_t>(benchmark_id));
}

BenchmarkResult evaluate_on(learn::Learner& learner,
                            const oracle::Benchmark& bench, core::Rng& rng,
                            aig::Aig* circuit_out) {
  learn::TrainedModel model = learner.fit(bench.train, bench.valid, rng);
  // The exported-artifact guarantee: whatever the learner did internally,
  // the deliverable respects the default pipeline's gate cap. Portfolio
  // teams enforce their own budget, so this pass almost always no-ops;
  // bare learners entered via --learners rely on it.
  const synth::SynthOptions synth_options =
      synth::default_opt_request().options;
  bool budget_capped = false;
  if (synth_options.node_budget > 0 &&
      model.circuit.num_ands() > synth_options.node_budget) {
    budget_capped = true;
    const synth::PassManager manager(synth_options);
    synth::SynthResult capped = manager.run(
        model.circuit, synth::Script::approx_to(synth_options.node_budget),
        &rng);
    model.circuit = std::move(capped.circuit);
    model.synth_trace.insert(model.synth_trace.end(), capped.trace.begin(),
                             capped.trace.end());
    // The artifact no longer equals whatever finish_model certified.
    if (model.verified == synth::VerifyStatus::kExact ||
        model.verified == synth::VerifyStatus::kUndecided) {
      model.verified = synth::VerifyStatus::kSkippedApprox;
    }
    model.method += "+budget";
  }
  // One bound engine scores every split the deliverable is measured on —
  // the word arena and levelized schedule are built once, not per split.
  aig::SimEngine engine(model.circuit);
  if (budget_capped) {
    model.train_acc = learn::circuit_accuracy(engine, bench.train);
    model.valid_acc = learn::circuit_accuracy(engine, bench.valid);
  }
  BenchmarkResult result;
  result.benchmark_id = bench.id;
  result.benchmark = bench.name;
  result.method = model.method;
  result.train_acc = model.train_acc;
  result.valid_acc = model.valid_acc;
  result.test_acc = learn::circuit_accuracy(engine, bench.test);
  result.num_ands = model.circuit.num_ands();
  result.num_levels = model.circuit.num_levels();
  result.synth_trace = std::move(model.synth_trace);
  result.verified = model.verified;
  result.opt_script = std::move(model.opt_script);
  if (circuit_out != nullptr) {
    *circuit_out = std::move(model.circuit);
  }
  return result;
}

bool finalize_contest_stats(double elapsed_ms, int tasks_completed,
                            std::int64_t time_budget_ms, int verbosity,
                            ContestStats* stats) {
  const bool over_budget =
      time_budget_ms > 0 && elapsed_ms > static_cast<double>(time_budget_ms);
  if (over_budget && verbosity >= 1) {
    std::fprintf(stderr, "contest exceeded time budget: %.0f ms > %lld ms\n",
                 elapsed_ms, static_cast<long long>(time_budget_ms));
  }
  if (stats != nullptr) {
    stats->elapsed_ms = elapsed_ms;
    stats->tasks_completed = tasks_completed;
    stats->budget_exceeded = over_budget;
  }
  return over_budget;
}

namespace {

/// Serial and parallel paths both derive task randomness from contest_rng.
core::Rng task_rng(std::uint64_t seed, int team_number,
                   const oracle::Benchmark& bench) {
  return contest_rng(seed, team_number, bench.id);
}

/// One flattened (entry, benchmark) work item of a contest run.
struct ContestTask {
  std::size_t entry = 0;
  std::size_t bench = 0;
};

}  // namespace

TeamRun run_suite(learn::Learner& learner, int team_number,
                  const std::vector<oracle::Benchmark>& suite,
                  std::uint64_t seed) {
  TeamRun run;
  run.team = team_number;
  run.results.reserve(suite.size());
  for (const auto& bench : suite) {
    core::Rng rng = task_rng(seed, team_number, bench);
    run.results.push_back(evaluate_on(learner, bench, rng));
  }
  return run;
}

TeamRun run_suite(const learn::LearnerFactory& factory, int team_number,
                  const std::vector<oracle::Benchmark>& suite,
                  std::uint64_t seed, const ContestOptions& options,
                  ContestStats* stats) {
  std::vector<TeamRun> runs =
      run_contest({{team_number, factory}}, suite, seed, options, stats);
  return std::move(runs.front());
}

std::vector<TeamRun> run_contest(const std::vector<ContestEntry>& entries,
                                 const std::vector<oracle::Benchmark>& suite,
                                 std::uint64_t seed,
                                 const ContestOptions& options,
                                 ContestStats* stats) {
  const auto start = std::chrono::steady_clock::now();

  std::vector<TeamRun> runs(entries.size());
  std::vector<ContestTask> tasks;
  tasks.reserve(entries.size() * suite.size());
  for (std::size_t e = 0; e < entries.size(); ++e) {
    runs[e].team = entries[e].team;
    runs[e].results.resize(suite.size());
    for (std::size_t b = 0; b < suite.size(); ++b) {
      tasks.push_back({e, b});
    }
  }

  std::mutex progress_mutex;
  std::vector<std::size_t> team_remaining(entries.size(), suite.size());
  const auto run_task = [&](std::size_t t) {
    const ContestTask& task = tasks[t];
    const ContestEntry& entry = entries[task.entry];
    const oracle::Benchmark& bench = suite[task.bench];
    const std::unique_ptr<learn::Learner> learner = entry.factory.make();
    core::Rng rng = task_rng(seed, entry.team, bench);
    // Writes land in a pre-sized slot, so completion order never matters.
    runs[task.entry].results[task.bench] = evaluate_on(*learner, bench, rng);
    if (options.verbosity >= 1) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      if (options.verbosity >= 2) {
        std::fprintf(stderr, "  team %d  %s  done\n", entry.team,
                     bench.name.c_str());
      }
      if (--team_remaining[task.entry] == 0) {
        std::fprintf(stderr, "team %d finished %zu benchmarks\n", entry.team,
                     suite.size());
      }
    }
  };

  core::ThreadPool::run_indexed(tasks.size(), options.num_threads, run_task);

  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  finalize_contest_stats(elapsed_ms, static_cast<int>(tasks.size()),
                         options.time_budget_ms, options.verbosity, stats);
  return runs;
}

std::vector<ParetoPoint> virtual_best_pareto(
    const std::vector<TeamRun>& runs, const std::vector<double>& budgets) {
  std::vector<ParetoPoint> points;
  if (runs.empty()) {
    return points;
  }
  const std::size_t num_benchmarks = runs[0].results.size();
  points.reserve(budgets.size());
  for (const double budget : budgets) {
    double acc_total = 0.0;
    double size_total = 0.0;
    std::size_t counted = 0;
    for (std::size_t b = 0; b < num_benchmarks; ++b) {
      double best_acc = -1.0;
      double best_size = 0.0;
      for (const auto& run : runs) {
        const auto& r = run.results[b];
        if (static_cast<double>(r.num_ands) > budget) {
          continue;
        }
        if (r.test_acc > best_acc) {
          best_acc = r.test_acc;
          best_size = static_cast<double>(r.num_ands);
        }
      }
      if (best_acc >= 0.0) {
        acc_total += best_acc;
        size_total += best_size;
        ++counted;
      }
    }
    if (counted > 0) {
      points.push_back({size_total / static_cast<double>(counted),
                        acc_total / static_cast<double>(counted)});
    }
  }
  return points;
}

std::vector<double> max_accuracy_per_benchmark(
    const std::vector<TeamRun>& runs) {
  if (runs.empty()) {
    return {};
  }
  std::vector<double> best(runs[0].results.size(), 0.0);
  for (const auto& run : runs) {
    for (std::size_t b = 0; b < run.results.size(); ++b) {
      best[b] = std::max(best[b], run.results[b].test_acc);
    }
  }
  return best;
}

std::vector<WinRate> win_rates(const std::vector<TeamRun>& runs) {
  std::vector<WinRate> rates;
  rates.reserve(runs.size());
  for (const auto& run : runs) {
    rates.push_back(WinRate{run.team, 0, 0});
  }
  if (runs.empty()) {
    return rates;
  }
  const std::size_t num_benchmarks = runs[0].results.size();
  for (std::size_t b = 0; b < num_benchmarks; ++b) {
    double best = -1.0;
    for (const auto& run : runs) {
      best = std::max(best, run.results[b].test_acc);
    }
    for (std::size_t t = 0; t < runs.size(); ++t) {
      const double acc = runs[t].results[b].test_acc;
      if (acc == best) {
        ++rates[t].best;
      }
      if (acc >= best - 0.01) {
        ++rates[t].within_top1pct;
      }
    }
  }
  return rates;
}

std::string format_leaderboard(std::vector<TeamRun> runs) {
  std::sort(runs.begin(), runs.end(), [](const TeamRun& a, const TeamRun& b) {
    return a.avg_test_acc() > b.avg_test_acc();
  });
  std::ostringstream os;
  os << "team | test accuracy | And gates | levels | overfit\n";
  os << "-----+---------------+-----------+--------+--------\n";
  os.setf(std::ios::fixed);
  for (const auto& run : runs) {
    os.precision(2);
    os << "  " << run.team << (run.team < 10 ? " " : "") << " |         "
       << 100.0 * run.avg_test_acc() << " |   " << run.avg_ands() << " |  "
       << run.avg_levels() << " |   " << 100.0 * run.overfit() << "\n";
  }
  return os.str();
}

}  // namespace lsml::portfolio
