#include "portfolio/contest.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "learn/dt.hpp"

namespace lsml::portfolio {

namespace {

double mean(const std::vector<BenchmarkResult>& results,
            double (*get)(const BenchmarkResult&)) {
  if (results.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& r : results) {
    total += get(r);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace

double TeamRun::avg_test_acc() const {
  return mean(results, [](const BenchmarkResult& r) { return r.test_acc; });
}
double TeamRun::avg_valid_acc() const {
  return mean(results, [](const BenchmarkResult& r) { return r.valid_acc; });
}
double TeamRun::avg_ands() const {
  return mean(results, [](const BenchmarkResult& r) {
    return static_cast<double>(r.num_ands);
  });
}
double TeamRun::avg_levels() const {
  return mean(results, [](const BenchmarkResult& r) {
    return static_cast<double>(r.num_levels);
  });
}
double TeamRun::overfit() const {
  return mean(results, [](const BenchmarkResult& r) {
    return r.valid_acc - r.test_acc;
  });
}

BenchmarkResult evaluate_on(learn::Learner& learner,
                            const oracle::Benchmark& bench, core::Rng& rng) {
  const learn::TrainedModel model =
      learner.fit(bench.train, bench.valid, rng);
  BenchmarkResult result;
  result.benchmark_id = bench.id;
  result.benchmark = bench.name;
  result.method = model.method;
  result.train_acc = model.train_acc;
  result.valid_acc = model.valid_acc;
  result.test_acc = learn::circuit_accuracy(model.circuit, bench.test);
  result.num_ands = model.circuit.num_ands();
  result.num_levels = model.circuit.num_levels();
  return result;
}

TeamRun run_suite(learn::Learner& learner, int team_number,
                  const std::vector<oracle::Benchmark>& suite,
                  std::uint64_t seed) {
  TeamRun run;
  run.team = team_number;
  run.results.reserve(suite.size());
  for (const auto& bench : suite) {
    core::Rng rng(seed * 2654435761ULL +
                  static_cast<std::uint64_t>(bench.id) * 97 +
                  static_cast<std::uint64_t>(team_number));
    run.results.push_back(evaluate_on(learner, bench, rng));
  }
  return run;
}

std::vector<ParetoPoint> virtual_best_pareto(
    const std::vector<TeamRun>& runs, const std::vector<double>& budgets) {
  std::vector<ParetoPoint> points;
  if (runs.empty()) {
    return points;
  }
  const std::size_t num_benchmarks = runs[0].results.size();
  points.reserve(budgets.size());
  for (const double budget : budgets) {
    double acc_total = 0.0;
    double size_total = 0.0;
    std::size_t counted = 0;
    for (std::size_t b = 0; b < num_benchmarks; ++b) {
      double best_acc = -1.0;
      double best_size = 0.0;
      for (const auto& run : runs) {
        const auto& r = run.results[b];
        if (static_cast<double>(r.num_ands) > budget) {
          continue;
        }
        if (r.test_acc > best_acc) {
          best_acc = r.test_acc;
          best_size = static_cast<double>(r.num_ands);
        }
      }
      if (best_acc >= 0.0) {
        acc_total += best_acc;
        size_total += best_size;
        ++counted;
      }
    }
    if (counted > 0) {
      points.push_back({size_total / static_cast<double>(counted),
                        acc_total / static_cast<double>(counted)});
    }
  }
  return points;
}

std::vector<double> max_accuracy_per_benchmark(
    const std::vector<TeamRun>& runs) {
  if (runs.empty()) {
    return {};
  }
  std::vector<double> best(runs[0].results.size(), 0.0);
  for (const auto& run : runs) {
    for (std::size_t b = 0; b < run.results.size(); ++b) {
      best[b] = std::max(best[b], run.results[b].test_acc);
    }
  }
  return best;
}

std::vector<WinRate> win_rates(const std::vector<TeamRun>& runs) {
  std::vector<WinRate> rates;
  rates.reserve(runs.size());
  for (const auto& run : runs) {
    rates.push_back(WinRate{run.team, 0, 0});
  }
  if (runs.empty()) {
    return rates;
  }
  const std::size_t num_benchmarks = runs[0].results.size();
  for (std::size_t b = 0; b < num_benchmarks; ++b) {
    double best = -1.0;
    for (const auto& run : runs) {
      best = std::max(best, run.results[b].test_acc);
    }
    for (std::size_t t = 0; t < runs.size(); ++t) {
      const double acc = runs[t].results[b].test_acc;
      if (acc == best) {
        ++rates[t].best;
      }
      if (acc >= best - 0.01) {
        ++rates[t].within_top1pct;
      }
    }
  }
  return rates;
}

std::string format_leaderboard(std::vector<TeamRun> runs) {
  std::sort(runs.begin(), runs.end(), [](const TeamRun& a, const TeamRun& b) {
    return a.avg_test_acc() > b.avg_test_acc();
  });
  std::ostringstream os;
  os << "team | test accuracy | And gates | levels | overfit\n";
  os << "-----+---------------+-----------+--------+--------\n";
  os.setf(std::ios::fixed);
  for (const auto& run : runs) {
    os.precision(2);
    os << "  " << run.team << (run.team < 10 ? " " : "") << " |         "
       << 100.0 * run.avg_test_acc() << " |   " << run.avg_ands() << " |  "
       << run.avg_levels() << " |   " << 100.0 * run.overfit() << "\n";
  }
  return os.str();
}

}  // namespace lsml::portfolio
