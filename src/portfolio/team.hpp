#pragma once
// The ten team strategies of the IWLS 2020 contest, as Learner portfolios.
//
// Each team is reproduced from its description in the paper (Section IV and
// the appendix): the model families it trained, the hyper-parameter grids it
// explored, its selection rule, and its fallback when the 5000-AND budget is
// exceeded. Grid sizes shrink at smoke/fast scale (see core::ScaleConfig);
// the portfolio structure is identical at every scale.

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "learn/factory.hpp"
#include "learn/learner.hpp"

namespace lsml::portfolio {

struct ContestEntry;  // portfolio/contest.hpp

struct TeamOptions {
  core::Scale scale = core::Scale::kFast;
  std::uint32_t node_budget = 5000;
  std::uint64_t seed = 1;
};

/// Builds team `number` (1..10).
std::unique_ptr<learn::Learner> make_team(int number,
                                          const TeamOptions& options);

/// Factory for team `number`: each make() builds an independent instance,
/// which is what the parallel contest engine hands to each worker. Pure —
/// no global state is touched.
learn::LearnerFactory team_factory(int number, const TeamOptions& options);

/// Explicitly publishes all ten teams in the LearnerFactory registry as
/// "team1".."team10" with the given options (last call wins). Kept separate
/// from team_factory so by-name lookup never depends on hidden side
/// effects of unrelated calls.
void register_team_factories(const TeamOptions& options);

/// Contest entries for the given team numbers (convenience for
/// run_contest; pass all_team_numbers() for the full contest).
std::vector<ContestEntry> contest_entries(const std::vector<int>& teams,
                                          const TeamOptions& options);

/// All contest team numbers.
std::vector<int> all_team_numbers();

/// Technique matrix of Fig. 1: which representations each team used.
struct TechniqueRow {
  int team = 0;
  bool sop = false;       ///< SOP / ESPRESSO
  bool dt_rf = false;     ///< decision trees / random forests
  bool nn = false;        ///< neural networks
  bool lut = false;       ///< LUT networks
  bool cgp = false;       ///< evolutionary / CGP
  bool matching = false;  ///< pre-defined function matching
};
std::vector<TechniqueRow> technique_matrix();

/// Picks the best model by validation accuracy subject to the node budget;
/// if every candidate is over budget, the best one is approximated down to
/// the budget (Team 1's fallback).
learn::TrainedModel select_best_within_budget(
    std::vector<learn::TrainedModel> candidates, const data::Dataset& train,
    const data::Dataset& valid, std::uint32_t node_budget, core::Rng& rng);

}  // namespace lsml::portfolio
