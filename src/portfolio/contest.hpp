#pragma once
// Contest runner and evaluation analytics.
//
// Runs learners over the benchmark suite and computes every aggregate the
// paper reports: Table III rows (test accuracy / AND gates / levels /
// overfit), the accuracy-size Pareto frontier of the virtual best (Fig. 2),
// per-benchmark maximum accuracy (Fig. 3), and win rates (Fig. 4).
//
// Execution model: the contest is a bag of independent (team, benchmark)
// tasks. Each task gets its own learner instance (built from a
// LearnerFactory) and its own RNG stream derived by Rng::split(team,
// benchmark), so the parallel engine produces bit-identical results to the
// serial one at any thread count.

#include <cstdint>
#include <string>
#include <vector>

#include "learn/factory.hpp"
#include "learn/learner.hpp"
#include "oracle/suite.hpp"

namespace lsml::portfolio {

/// Knobs of the contest execution engine.
struct ContestOptions {
  /// Concurrent workers for (team x benchmark) tasks. 1 (or negative) =
  /// serial in the calling thread; 0 = one per hardware thread; N > 1 =
  /// exactly N pool workers. Never changes results.
  int num_threads = 1;
  /// Soft wall-clock budget for a whole contest run. 0 = unlimited. All
  /// tasks always run to completion (determinism first); when the budget is
  /// blown the run is flagged in ContestStats and, at verbosity >= 1, on
  /// stderr.
  std::int64_t time_budget_ms = 0;
  /// 0 = silent, 1 = per-team progress, 2 = per-task lines.
  int verbosity = 0;
};

/// What the engine observed while running (all threads included).
struct ContestStats {
  double elapsed_ms = 0.0;
  int tasks_completed = 0;
  bool budget_exceeded = false;
};

struct BenchmarkResult {
  int benchmark_id = 0;
  std::string benchmark;
  std::string method;        ///< what the portfolio picked
  double train_acc = 0.0;
  double valid_acc = 0.0;
  double test_acc = 0.0;
  std::uint32_t num_ands = 0;
  std::uint32_t num_levels = 0;
  /// What the optimization pipeline did to the winning circuit: the
  /// per-pass trace from finish_model plus any portfolio approximation
  /// and the final budget enforcement. Persisted by suite::ResultCache.
  std::vector<synth::PassStats> synth_trace;
  /// SAT certification of the artifact's pipeline run (the `verified`
  /// leaderboard column). kExact means sat::cec proved the optimized
  /// circuit equivalent to the raw learner output; any approximation on
  /// top (the +budget/+approx method suffixes) downgrades to
  /// kSkippedApprox. Persisted by suite::ResultCache.
  synth::VerifyStatus verified = synth::VerifyStatus::kNotRequested;
  /// Canonical text of the optimization script behind this artifact (the
  /// leaderboard's script column) — the installed request's script, or the
  /// per-circuit search winner under --opt-script auto. Persisted by
  /// suite::ResultCache.
  std::string opt_script;

  /// AND gates entering the pipeline (the raw lowered circuit).
  [[nodiscard]] std::uint32_t synth_ands_in() const;
  /// Gates the pipeline removed (never negative; approximation included).
  [[nodiscard]] std::uint32_t synth_ands_saved() const;
  /// Total optimization wall time for this task.
  [[nodiscard]] double synth_ms() const;
};

struct TeamRun {
  int team = 0;
  std::vector<BenchmarkResult> results;

  [[nodiscard]] double avg_test_acc() const;
  [[nodiscard]] double avg_valid_acc() const;
  [[nodiscard]] double avg_ands() const;
  [[nodiscard]] double avg_levels() const;
  /// The paper's overfit metric: mean (validation - test) accuracy.
  [[nodiscard]] double overfit() const;
  /// Aggregate optimization gains: mean raw size entering the pipeline,
  /// mean gates removed by it, and total pipeline wall time.
  [[nodiscard]] double avg_synth_ands_in() const;
  [[nodiscard]] double avg_synth_saved() const;
  [[nodiscard]] double total_synth_ms() const;
  /// Fraction of this team's artifacts whose pipeline run was SAT-proved
  /// exact (verified == kExact); 0 when verification was off.
  [[nodiscard]] double verified_fraction() const;
};

/// The engine's one seeding rule: every (team, benchmark) task draws from
/// root(seed).split(team, benchmark_id), never from a sequentially advanced
/// generator. Exposed so external drivers (the disk-suite runner, benches)
/// can produce tasks bit-identical to run_contest's.
core::Rng contest_rng(std::uint64_t seed, int team_number, int benchmark_id);

/// Evaluates one learner on one benchmark. When `circuit_out` is non-null
/// it receives the synthesized AIG (the contest deliverable), so callers
/// can export AIGER artifacts without re-running the learner.
///
/// The deliverable honors the process-default synth::Pipeline's node
/// budget unconditionally: if the learner hands back a circuit over
/// budget, one approx script runs here (with the task RNG) and the
/// accuracies are re-measured — so every exported artifact fits the
/// contest's gate cap no matter which learner produced it.
BenchmarkResult evaluate_on(learn::Learner& learner,
                            const oracle::Benchmark& bench, core::Rng& rng,
                            aig::Aig* circuit_out = nullptr);

/// Shared epilogue of both drivers (the in-memory contest and the
/// disk-suite runner): fills `stats` from the observed run and applies
/// the soft time-budget contract — all tasks always run to completion;
/// blowing the budget only flags the run (and reports on stderr at
/// verbosity >= 1). Returns the budget_exceeded flag.
bool finalize_contest_stats(double elapsed_ms, int tasks_completed,
                            std::int64_t time_budget_ms, int verbosity,
                            ContestStats* stats);

/// Runs a learner over the whole suite, serially. The learner instance is
/// reused across benchmarks, but each benchmark draws from its own
/// Rng::split(team, benchmark) stream, so results match the factory-based
/// overload below task-for-task.
TeamRun run_suite(learn::Learner& learner, int team_number,
                  const std::vector<oracle::Benchmark>& suite,
                  std::uint64_t seed);

/// Runs one team over the suite with `options.num_threads` workers; every
/// task builds a fresh learner from `factory`.
TeamRun run_suite(const learn::LearnerFactory& factory, int team_number,
                  const std::vector<oracle::Benchmark>& suite,
                  std::uint64_t seed, const ContestOptions& options,
                  ContestStats* stats = nullptr);

/// One contestant: a team number plus the recipe for its learner.
struct ContestEntry {
  int team = 0;
  learn::LearnerFactory factory;
};

/// The full multi-team contest driver: all (team x benchmark) tasks share
/// one pool, so a slow team cannot serialize the tail of the run. Results
/// are ordered as `entries` and, within a team, as `suite` — independent of
/// thread count and completion order.
std::vector<TeamRun> run_contest(const std::vector<ContestEntry>& entries,
                                 const std::vector<oracle::Benchmark>& suite,
                                 std::uint64_t seed,
                                 const ContestOptions& options = {},
                                 ContestStats* stats = nullptr);

/// One (size, accuracy) point per budget: for each budget, each benchmark
/// contributes its best candidate among all runs whose size fits.
struct ParetoPoint {
  double avg_ands = 0.0;
  double avg_test_acc = 0.0;
};
std::vector<ParetoPoint> virtual_best_pareto(
    const std::vector<TeamRun>& runs, const std::vector<double>& budgets);

/// Fig. 3: maximum test accuracy over all runs, per benchmark.
std::vector<double> max_accuracy_per_benchmark(
    const std::vector<TeamRun>& runs);

/// Fig. 4: per team, how many benchmarks it wins outright / is within 1%
/// of the best on.
struct WinRate {
  int team = 0;
  int best = 0;
  int within_top1pct = 0;
};
std::vector<WinRate> win_rates(const std::vector<TeamRun>& runs);

/// Table III-style leaderboard, sorted by average test accuracy.
std::string format_leaderboard(std::vector<TeamRun> runs);

}  // namespace lsml::portfolio
