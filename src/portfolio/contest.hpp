#pragma once
// Contest runner and evaluation analytics.
//
// Runs learners over the benchmark suite and computes every aggregate the
// paper reports: Table III rows (test accuracy / AND gates / levels /
// overfit), the accuracy-size Pareto frontier of the virtual best (Fig. 2),
// per-benchmark maximum accuracy (Fig. 3), and win rates (Fig. 4).

#include <string>
#include <vector>

#include "learn/learner.hpp"
#include "oracle/suite.hpp"

namespace lsml::portfolio {

struct BenchmarkResult {
  int benchmark_id = 0;
  std::string benchmark;
  std::string method;        ///< what the portfolio picked
  double train_acc = 0.0;
  double valid_acc = 0.0;
  double test_acc = 0.0;
  std::uint32_t num_ands = 0;
  std::uint32_t num_levels = 0;
};

struct TeamRun {
  int team = 0;
  std::vector<BenchmarkResult> results;

  [[nodiscard]] double avg_test_acc() const;
  [[nodiscard]] double avg_valid_acc() const;
  [[nodiscard]] double avg_ands() const;
  [[nodiscard]] double avg_levels() const;
  /// The paper's overfit metric: mean (validation - test) accuracy.
  [[nodiscard]] double overfit() const;
};

/// Evaluates one learner on one benchmark.
BenchmarkResult evaluate_on(learn::Learner& learner,
                            const oracle::Benchmark& bench, core::Rng& rng);

/// Runs a learner over the whole suite.
TeamRun run_suite(learn::Learner& learner, int team_number,
                  const std::vector<oracle::Benchmark>& suite,
                  std::uint64_t seed);

/// One (size, accuracy) point per budget: for each budget, each benchmark
/// contributes its best candidate among all runs whose size fits.
struct ParetoPoint {
  double avg_ands = 0.0;
  double avg_test_acc = 0.0;
};
std::vector<ParetoPoint> virtual_best_pareto(
    const std::vector<TeamRun>& runs, const std::vector<double>& budgets);

/// Fig. 3: maximum test accuracy over all runs, per benchmark.
std::vector<double> max_accuracy_per_benchmark(
    const std::vector<TeamRun>& runs);

/// Fig. 4: per team, how many benchmarks it wins outright / is within 1%
/// of the best on.
struct WinRate {
  int team = 0;
  int best = 0;
  int within_top1pct = 0;
};
std::vector<WinRate> win_rates(const std::vector<TeamRun>& runs);

/// Table III-style leaderboard, sorted by average test accuracy.
std::string format_leaderboard(std::vector<TeamRun> runs);

}  // namespace lsml::portfolio
