#include "portfolio/team.hpp"

#include <algorithm>
#include <cmath>

#include "aig/aig_build.hpp"
#include "feature/selection.hpp"
#include "learn/bdd.hpp"
#include "learn/boosting.hpp"
#include "learn/cgp.hpp"
#include "learn/dt.hpp"
#include "learn/espresso_learner.hpp"
#include "learn/forest.hpp"
#include "learn/fringe.hpp"
#include "learn/lutnet.hpp"
#include "learn/matching.hpp"
#include "learn/mlp.hpp"
#include "learn/rules.hpp"
#include "portfolio/contest.hpp"
#include "synth/pass_manager.hpp"
#include "synth/script_search.hpp"
#include "tt/truth_table.hpp"

namespace lsml::portfolio {

using learn::TrainedModel;

learn::TrainedModel select_best_within_budget(
    std::vector<learn::TrainedModel> candidates, const data::Dataset& train,
    const data::Dataset& valid, std::uint32_t node_budget, core::Rng& rng) {
  int best = -1;
  int best_any = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    if (best_any < 0 ||
        c.valid_acc > candidates[static_cast<std::size_t>(best_any)].valid_acc) {
      best_any = static_cast<int>(i);
    }
    if (c.circuit.num_ands() > node_budget) {
      continue;
    }
    if (best < 0 ||
        c.valid_acc > candidates[static_cast<std::size_t>(best)].valid_acc ||
        (c.valid_acc ==
             candidates[static_cast<std::size_t>(best)].valid_acc &&
         c.circuit.num_ands() <
             candidates[static_cast<std::size_t>(best)].circuit.num_ands())) {
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) {
    return std::move(candidates[static_cast<std::size_t>(best)]);
  }
  // Everything over budget: approximate the best one down (Team 1's
  // method), expressed as a one-pass script through the pass manager.
  TrainedModel& m = candidates[static_cast<std::size_t>(best_any)];
  if (node_budget == 0) {
    // A zero budget admits exactly one circuit shape: the majority
    // constant (the approx pass treats 0 as "uncapped", so spell it out).
    aig::Aig constant(static_cast<std::uint32_t>(train.num_inputs()));
    constant.add_output(train.label_fraction() >= 0.5 ? aig::kLitTrue
                                                      : aig::kLitFalse);
    TrainedModel finished = learn::finish_model(
        std::move(constant), m.method + "+approx", train, valid);
    // Keep the discarded candidate's pipeline history, as below.
    finished.synth_trace.insert(finished.synth_trace.begin(),
                                m.synth_trace.begin(), m.synth_trace.end());
    // The artifact's function was replaced outright; the re-finish's
    // certification must not read as "exact" on the leaderboard.
    if (finished.verified == synth::VerifyStatus::kExact ||
        finished.verified == synth::VerifyStatus::kUndecided) {
      finished.verified = synth::VerifyStatus::kSkippedApprox;
    }
    return finished;
  }
  synth::SynthOptions options = synth::default_opt_request().options;
  options.node_budget = node_budget;
  options.max_rounds = 1;
  const synth::PassManager manager(options);
  synth::SynthResult shrunk =
      manager.run(m.circuit, synth::Script::approx_to(node_budget), &rng);
  TrainedModel finished = learn::finish_model(
      std::move(shrunk.circuit), m.method + "+approx", train, valid);
  // The full story of this circuit: the candidate's own pipeline, then
  // the approximation, then the post-approx re-finish.
  shrunk.trace.insert(shrunk.trace.end(), finished.synth_trace.begin(),
                      finished.synth_trace.end());
  shrunk.trace.insert(shrunk.trace.begin(), m.synth_trace.begin(),
                      m.synth_trace.end());
  finished.synth_trace = std::move(shrunk.trace);
  // Same downgrade as evaluate_on's +budget path: the approximation
  // changed the function, so the re-finish's certificate covers only the
  // post-approx pipeline run, never the candidate the team trained.
  if (finished.verified == synth::VerifyStatus::kExact ||
      finished.verified == synth::VerifyStatus::kUndecided) {
    finished.verified = synth::VerifyStatus::kSkippedApprox;
  }
  return finished;
}

namespace {

using learn::Learner;

/// Shared scaffolding: a team is a list of candidate learners plus the
/// "best under budget" selection rule.
class PortfolioTeam : public Learner {
 public:
  PortfolioTeam(std::string label, TeamOptions options)
      : label_(std::move(label)), options_(options) {}
  [[nodiscard]] std::string name() const override { return label_; }

  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override {
    std::vector<TrainedModel> candidates = candidates_for(train, valid, rng);
    return select_best_within_budget(std::move(candidates), train, valid,
                                     options_.node_budget, rng);
  }

 protected:
  virtual std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                                   const data::Dataset& valid,
                                                   core::Rng& rng) = 0;

  [[nodiscard]] bool fast() const {
    return options_.scale != core::Scale::kFull;
  }

  std::string label_;
  TeamOptions options_;
};

// ---------------------------------------------------------------- Team 1
// Best of ESPRESSO / LUT network (beam search) / RF (4..16 estimators),
// preceded by standard-function matching; approximation if over budget.
class Team1 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    if (auto m = learn::match_standard_function(train, {})) {
      out.push_back(learn::finish_model(std::move(m->circuit),
                                        "t1:match:" + m->what, train, valid));
      if (out.back().circuit.num_ands() <= options_.node_budget) {
        return out;  // an exact structural match wins outright
      }
    }
    {
      sop::EspressoOptions eo;
      if (fast()) {
        eo.max_onset = 600;
        eo.max_offset = 1200;
      }
      learn::EspressoLearner espresso(eo, "t1:espresso");
      out.push_back(espresso.fit(train, valid, rng));
    }
    {
      learn::LutNetOptions start;
      start.num_layers = 2;
      start.luts_per_layer = fast() ? 64 : 256;
      start.lut_inputs = 4;
      const learn::LutNetwork net = learn::lutnet_beam_search(
          train, valid, start, rng, fast() ? 3 : 6);
      out.push_back(learn::finish_model(net.to_aig(train.num_inputs()),
                                        "t1:lutnet", train, valid));
    }
    const std::vector<std::size_t> estimators =
        fast() ? std::vector<std::size_t>{5, 9, 15}
               : std::vector<std::size_t>{5, 7, 9, 11, 13, 15};
    for (std::size_t n : estimators) {
      learn::ForestOptions fo;
      fo.num_trees = n;
      fo.tree.max_depth = 10;
      learn::ForestLearner rf(fo, "t1:rf" + std::to_string(n));
      out.push_back(rf.fit(train, valid, rng));
    }
    return out;
  }
};

// ---------------------------------------------------------------- Team 2
// WEKA J48 (C4.5) and PART rule lists; confidence-factor grid emulated by
// the minimum-instances-per-leaf grid the team also searched.
class Team2 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    const std::vector<std::size_t> min_leaf =
        fast() ? std::vector<std::size_t>{1, 4}
               : std::vector<std::size_t>{1, 2, 3, 4, 5, 10};
    for (std::size_t m : min_leaf) {
      learn::DtOptions dt;
      dt.min_samples_leaf = m;
      learn::DtLearner j48(dt, "t2:j48(m=" + std::to_string(m) + ")");
      out.push_back(j48.fit(train, valid, rng));
    }
    const std::vector<std::size_t> rule_caps =
        fast() ? std::vector<std::size_t>{48}
               : std::vector<std::size_t>{32, 64, 96};
    for (std::size_t cap : rule_caps) {
      learn::RuleListOptions ro;
      ro.max_rules = cap;
      learn::RuleListLearner part(ro, "t2:part(r=" + std::to_string(cap) + ")");
      out.push_back(part.fit(train, valid, rng));
    }
    return out;
  }
};

// ---------------------------------------------------------------- Team 3
// Three re-splits of train+valid; per split the best of {DT, Fr-DT, NN};
// final circuit is the 3-model majority vote.
class Team3 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    const data::Dataset merged = train.merged_with(valid);
    std::vector<TrainedModel> members;
    for (int part = 0; part < 3; ++part) {
      auto [part_train, part_valid] = merged.split(2.0 / 3.0, rng, true);
      std::vector<TrainedModel> local;
      {
        learn::DtOptions dt;
        dt.min_samples_leaf = 3;
        learn::DtLearner learner(dt, "t3:dt");
        local.push_back(learner.fit(part_train, part_valid, rng));
      }
      {
        learn::FringeOptions fo;
        fo.dt.min_samples_leaf = 3;
        fo.max_iterations = fast() ? 4 : 8;
        learn::FringeLearner learner(fo, "t3:fr-dt");
        local.push_back(learner.fit(part_train, part_valid, rng));
      }
      if (!fast() || part == 0) {  // NN on one split at reduced scale
        learn::MlpOptions mo;
        mo.hidden = {24, 12};
        mo.epochs = fast() ? 10 : 24;
        learn::MlpLearner learner(mo, "t3:nn");
        local.push_back(learner.fit(part_train, part_valid, rng));
      }
      members.push_back(select_best_within_budget(
          std::move(local), part_train, part_valid, options_.node_budget,
          rng));
    }
    // Majority-vote ensemble of the three selected models.
    aig::Aig ensemble(static_cast<std::uint32_t>(train.num_inputs()));
    std::vector<aig::Lit> outs;
    outs.reserve(members.size());
    for (const auto& m : members) {
      outs.push_back(aig::append_aig(ensemble, m.circuit));
    }
    ensemble.add_output(ensemble.maj3(outs[0], outs[1], outs[2]));
    std::vector<TrainedModel> out;
    // One pipeline invocation on the combined circuit; the members were
    // already finished, so re-optimizing them separately would be waste.
    out.push_back(learn::finish_model(std::move(ensemble), "t3:ensemble",
                                      train, valid));
    for (auto& m : members) {
      out.push_back(std::move(m));  // fall back to singles if too big
    }
    return out;
  }
};

// ---------------------------------------------------------------- Team 4
// Multi-level feature selection + DNN approximator + subspace expansion:
// predict the full 2^d hypercube over the selected features, treat pruned
// inputs as don't-cares, minimize, and search accuracy-vs-nodes.
class Team4 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    const std::vector<std::size_t> dims =
        fast() ? std::vector<std::size_t>{12, 14}
               : std::vector<std::size_t>{10, 11, 12, 13, 14, 15, 16};
    // Level-1 ranking: ensemble (forest) importance; level 2: chi2.
    learn::ForestOptions fo;
    fo.num_trees = fast() ? 9 : 25;
    fo.tree.max_depth = 8;
    const learn::RandomForest ranker =
        learn::RandomForest::fit(train, fo, rng);
    const auto forest_scores = ranker.feature_importance(train.num_inputs());
    const auto chi2 = feature::chi2_scores(train);
    for (const std::size_t d : dims) {
      for (int level = 0; level < 2; ++level) {
        const auto& scores = level == 0 ? forest_scores : chi2;
        const auto feats = feature::select_k_best(
            scores, std::min(d, train.num_inputs()));
        out.push_back(subspace_model(train, valid, feats, rng, level));
      }
    }
    return out;
  }

 private:
  TrainedModel subspace_model(const data::Dataset& train,
                              const data::Dataset& valid,
                              const std::vector<std::size_t>& feats,
                              core::Rng& rng, int level) {
    const data::Dataset reduced = train.select_columns(feats);
    learn::MlpOptions mo;
    mo.hidden = {32, 16};
    mo.epochs = fast() ? 10 : 20;
    mo.max_input_features = feats.size();
    learn::Mlp net = learn::Mlp::fit(reduced, mo, rng);
    // Subspace expansion: query the model on every vertex of the selected
    // hypercube; everything else is don't-care by construction.
    const int d = static_cast<int>(feats.size());
    tt::TruthTable f(d);
    data::Dataset probe(feats.size(), 1);
    for (std::uint64_t p = 0; p < (1ULL << d); ++p) {
      for (int i = 0; i < d; ++i) {
        probe.set_input(0, static_cast<std::size_t>(i), (p >> i) & 1);
      }
      if (net.predict(probe).get(0)) {
        f.set(p, true);
      }
    }
    aig::Aig g(static_cast<std::uint32_t>(train.num_inputs()));
    std::vector<aig::Lit> leaves;
    leaves.reserve(feats.size());
    for (std::size_t v : feats) {
      leaves.push_back(g.pi(static_cast<std::uint32_t>(v)));
    }
    g.add_output(aig::from_truth_table(g, f, leaves));
    return learn::finish_model(
        std::move(g),
        "t4:afn(d=" + std::to_string(d) + ",l=" + std::to_string(level) + ")",
        train, valid);
  }
};

// ---------------------------------------------------------------- Team 5
// DTs (depth 10/20) and 3-tree RFs with SelectKBest/SelectPercentile over
// three scoring functions, plus the NN-guided 4-feature expression search.
class Team5 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    const auto chi2 = feature::chi2_scores(train);
    const auto mi = feature::mutual_information(train);
    const auto corr = feature::correlation_scores(train);
    const std::vector<const std::vector<double>*> scorers =
        fast() ? std::vector<const std::vector<double>*>{&chi2}
               : std::vector<const std::vector<double>*>{&chi2, &mi, &corr};
    const std::vector<double> percentiles =
        fast() ? std::vector<double>{50} : std::vector<double>{25, 50, 75};

    std::vector<std::vector<std::size_t>> feature_sets;
    {
      std::vector<std::size_t> all(train.num_inputs());
      for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
      }
      feature_sets.push_back(std::move(all));
    }
    for (const auto* s : scorers) {
      for (double pct : percentiles) {
        feature_sets.push_back(feature::select_percentile(*s, pct));
      }
    }
    const std::vector<std::size_t> depths =
        fast() ? std::vector<std::size_t>{10} : std::vector<std::size_t>{10, 20};
    for (const auto& feats : feature_sets) {
      const data::Dataset sub_train = train.select_columns(feats);
      const data::Dataset sub_valid = valid.select_columns(feats);
      for (std::size_t depth : depths) {
        learn::DtOptions dt;
        dt.max_depth = depth;
        dt.criterion = learn::DtOptions::Criterion::kGini;  // scikit default
        const learn::DecisionTree tree =
            learn::DecisionTree::fit(sub_train, dt, rng);
        out.push_back(remap(tree.to_aig(feats.size()), feats, train, valid,
                            "t5:dt(d=" + std::to_string(depth) + ")"));
      }
      {
        learn::ForestOptions fo;
        fo.num_trees = 3;
        fo.tree.max_depth = 10;
        fo.tree.criterion = learn::DtOptions::Criterion::kGini;
        const learn::RandomForest rf =
            learn::RandomForest::fit(sub_train, fo, rng);
        out.push_back(remap(rf.to_aig(feats.size()), feats, train, valid,
                            "t5:rf3"));
      }
      if (fast()) {
        break;  // a single feature-selected pass at reduced scale
      }
    }
    out.push_back(expression_search(train, valid, rng));
    return out;
  }

 private:
  /// Rebuilds a circuit over the full input space from a reduced-column one.
  static TrainedModel remap(const aig::Aig& reduced,
                            const std::vector<std::size_t>& feats,
                            const data::Dataset& train,
                            const data::Dataset& valid, std::string label) {
    aig::Aig g(static_cast<std::uint32_t>(train.num_inputs()));
    // append_aig maps PI i -> PI i; build a wrapper with permuted inputs.
    aig::Aig permuted(static_cast<std::uint32_t>(train.num_inputs()));
    std::vector<aig::Lit> map(reduced.num_nodes(), aig::kLitFalse);
    for (std::uint32_t i = 0; i < reduced.num_pis(); ++i) {
      map[i + 1] = permuted.pi(static_cast<std::uint32_t>(feats[i]));
    }
    for (std::uint32_t v = reduced.num_pis() + 1; v < reduced.num_nodes();
         ++v) {
      const aig::Node& n = reduced.node(v);
      map[v] = permuted.and2(
          aig::lit_notc(map[aig::lit_var(n.fanin0)], aig::lit_compl(n.fanin0)),
          aig::lit_notc(map[aig::lit_var(n.fanin1)],
                        aig::lit_compl(n.fanin1)));
    }
    const aig::Lit out = reduced.output(0);
    permuted.add_output(
        aig::lit_notc(map[aig::lit_var(out)], aig::lit_compl(out)));
    return learn::finish_model(std::move(permuted), std::move(label), train,
                               valid);
  }

  /// NN-derived top-4 features + exhaustive small expression search
  /// (the team's 792-expression scan over OR/XOR/AND/NOT combinations).
  TrainedModel expression_search(const data::Dataset& train,
                                 const data::Dataset& valid, core::Rng& rng) {
    learn::MlpOptions mo;
    mo.hidden = {16};
    mo.epochs = fast() ? 6 : 12;
    mo.max_input_features = std::min<std::size_t>(train.num_inputs(), 32);
    const learn::Mlp net = learn::Mlp::fit(train, mo, rng);
    // Importance proxy: the MLP's selected features are already MI-ranked;
    // take its first four inputs as the high-weight subset.
    std::vector<std::size_t> feats = net.selected_features();
    if (feats.size() > 4) {
      feats.resize(4);
    }
    while (feats.size() < 4) {
      feats.push_back(feats.empty() ? 0 : feats.back());
    }
    // Enumerate ((a . b) . c) . d and (a . b) . (c . d) over {AND,OR,XOR}
    // with all leaf negations: 2 shapes x 27 op triples x 16 negations.
    const std::uint16_t var_tt[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};
    const auto apply_op = [](int op, std::uint16_t x, std::uint16_t y) {
      return op == 0 ? static_cast<std::uint16_t>(x & y)
             : op == 1 ? static_cast<std::uint16_t>(x | y)
                       : static_cast<std::uint16_t>(x ^ y);
    };
    // Row patterns for accuracy evaluation.
    std::vector<std::uint8_t> pattern(train.num_rows());
    for (std::size_t r = 0; r < train.num_rows(); ++r) {
      std::uint8_t p = 0;
      for (int i = 0; i < 4; ++i) {
        p |= static_cast<std::uint8_t>(
                 train.input(r, feats[static_cast<std::size_t>(i)]) ? 1 : 0)
             << i;
      }
      pattern[r] = p;
    }
    std::uint16_t best_tt = 0;
    std::size_t best_correct = 0;
    for (int shape = 0; shape < 2; ++shape) {
      for (int ops = 0; ops < 27; ++ops) {
        for (int negs = 0; negs < 16; ++negs) {
          std::uint16_t leaf[4];
          for (int i = 0; i < 4; ++i) {
            leaf[i] = (negs >> i) & 1
                          ? static_cast<std::uint16_t>(~var_tt[i])
                          : var_tt[i];
          }
          const int op1 = ops % 3;
          const int op2 = (ops / 3) % 3;
          const int op3 = ops / 9;
          std::uint16_t tt_val = 0;
          if (shape == 0) {
            tt_val = apply_op(
                op3, apply_op(op2, apply_op(op1, leaf[0], leaf[1]), leaf[2]),
                leaf[3]);
          } else {
            tt_val = apply_op(op3, apply_op(op1, leaf[0], leaf[1]),
                              apply_op(op2, leaf[2], leaf[3]));
          }
          std::size_t correct = 0;
          for (std::size_t r = 0; r < train.num_rows(); ++r) {
            const bool pred = (tt_val >> pattern[r]) & 1;
            correct += pred == train.label(r) ? 1 : 0;
          }
          if (correct > best_correct) {
            best_correct = correct;
            best_tt = tt_val;
          }
        }
      }
    }
    tt::TruthTable f(4);
    for (std::uint64_t p = 0; p < 16; ++p) {
      f.set(p, (best_tt >> p) & 1);
    }
    aig::Aig g(static_cast<std::uint32_t>(train.num_inputs()));
    std::vector<aig::Lit> leaves;
    for (std::size_t v : feats) {
      leaves.push_back(g.pi(static_cast<std::uint32_t>(v)));
    }
    g.add_output(aig::from_truth_table(g, f, leaves));
    return learn::finish_model(std::move(g), "t5:nn-expr", train, valid);
  }
};

// ---------------------------------------------------------------- Team 6
// Pure LUT-network memorization with the two wiring schemes and a small
// hyper-parameter sweep (4-input LUTs won on average, per the paper).
class Team6 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    const std::vector<int> widths = fast() ? std::vector<int>{64}
                                           : std::vector<int>{64, 128, 256};
    const std::vector<int> depths =
        fast() ? std::vector<int>{2} : std::vector<int>{2, 4, 8};
    for (const auto wiring :
         {learn::LutWiring::kRandom, learn::LutWiring::kUniqueRandom}) {
      for (int width : widths) {
        for (int depth : depths) {
          learn::LutNetOptions lo;
          lo.lut_inputs = 4;
          lo.luts_per_layer = width;
          lo.num_layers = depth;
          lo.wiring = wiring;
          learn::LutNetLearner learner(
              lo, std::string("t6:lutnet(") +
                      (wiring == learn::LutWiring::kRandom ? "rand" : "uniq") +
                      "," + std::to_string(width) + "x" +
                      std::to_string(depth) + ")");
          out.push_back(learner.fit(train, valid, rng));
        }
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------- Team 7
// Function matching first; otherwise DT vs XGBoost by validation, with the
// majority-gate aggregation for the boosted model.
class Team7 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    if (auto m = learn::match_standard_function(train, {})) {
      out.push_back(learn::finish_model(std::move(m->circuit),
                                        "t7:match:" + m->what, train, valid));
      if (out.back().circuit.num_ands() <= options_.node_budget) {
        return out;
      }
    }
    {
      learn::DtOptions dt;  // unlimited depth, as in the paper
      learn::DtLearner learner(dt, "t7:dt");
      out.push_back(learner.fit(train, valid, rng));
    }
    {
      learn::BoostOptions bo;
      bo.num_trees = fast() ? 45 : 125;
      bo.max_depth = fast() ? 4 : 5;
      learn::BoostLearner learner(
          bo, "t7:xgb" + std::to_string(bo.num_trees));
      out.push_back(learner.fit(train, valid, rng));
    }
    return out;
  }
};

// ---------------------------------------------------------------- Team 8
// Bucket of models: C4.5 with functional decomposition, 17x8 RF, and an
// MLP with periodic (sine) activation for narrow benchmarks.
class Team8 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    std::vector<TrainedModel> out;
    for (const double tau : fast() ? std::vector<double>{0.05}
                                   : std::vector<double>{0.02, 0.05, 0.1}) {
      learn::DtOptions dt;
      dt.min_samples_leaf = 4;
      dt.decomposition_threshold = tau;
      learn::DtLearner learner(dt, "t8:bdt(tau=" + std::to_string(tau) + ")");
      out.push_back(learner.fit(train, valid, rng));
    }
    {
      learn::ForestOptions fo;
      fo.num_trees = 17;
      fo.tree.max_depth = 8;
      learn::ForestLearner learner(fo, "t8:rf17x8");
      out.push_back(learner.fit(train, valid, rng));
    }
    if (train.num_inputs() <= 20) {
      for (const auto act : {learn::Activation::kSin,
                             learn::Activation::kSigmoid}) {
        learn::MlpOptions mo;
        mo.hidden = {16, 8};
        mo.activation = act;
        mo.epochs = fast() ? 12 : 30;
        learn::MlpLearner learner(
            mo, act == learn::Activation::kSin ? "t8:mlp-sin" : "t8:mlp");
        out.push_back(learner.fit(train, valid, rng));
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------- Team 9
// Bootstrapped CGP: seed with the better of DT / ESPRESSO when it clears
// 55% training accuracy, otherwise evolve from random genomes.
class Team9 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    // Bootstrap half: DT trained on half the training set (the paper's
    // 40-40/20 format), CGP fine-tunes on the rest.
    auto [boot_half, cgp_half] = train.split(0.5, rng, true);
    learn::DtOptions dt;
    dt.max_depth = 8;
    const learn::DecisionTree tree =
        learn::DecisionTree::fit(boot_half, dt, rng);
    aig::Aig seed = tree.to_aig(train.num_inputs());

    learn::CgpOptions co;
    co.genome_nodes = fast() ? 300 : 500;
    co.generations = fast() ? 1200 : 10000;
    co.minibatch = 1024;
    co.change_batch_every = fast() ? 400 : 1000;
    learn::CgpLearner learner(co, std::move(seed), "t9:cgp");
    std::vector<TrainedModel> out;
    out.push_back(learner.fit(cgp_half, valid, rng));
    // Always keep the plain bootstrap as a fallback candidate.
    out.push_back(learn::finish_model(tree.to_aig(train.num_inputs()),
                                      "t9:dt-boot", train, valid));
    return out;
  }
};

// ---------------------------------------------------------------- Team 10
// Depth-8 DT; if validation accuracy < 70%, merge the validation set into
// training and retrain (the paper's augmentation rule).
class Team10 final : public PortfolioTeam {
 public:
  using PortfolioTeam::PortfolioTeam;

 protected:
  std::vector<TrainedModel> candidates_for(const data::Dataset& train,
                                           const data::Dataset& valid,
                                           core::Rng& rng) override {
    learn::DtOptions dt;
    dt.max_depth = 8;
    learn::DtLearner learner(dt, "t10:dt8");
    TrainedModel first = learner.fit(train, valid, rng);
    std::vector<TrainedModel> out;
    if (first.valid_acc < 0.70) {
      const data::Dataset merged = train.merged_with(valid);
      learn::DtLearner retrained(dt, "t10:dt8+aug");
      out.push_back(retrained.fit(merged, valid, rng));
    } else {
      out.push_back(std::move(first));
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<learn::Learner> make_team(int number,
                                          const TeamOptions& options) {
  const std::string label = "team" + std::to_string(number);
  switch (number) {
    case 1:
      return std::make_unique<Team1>(label, options);
    case 2:
      return std::make_unique<Team2>(label, options);
    case 3:
      return std::make_unique<Team3>(label, options);
    case 4:
      return std::make_unique<Team4>(label, options);
    case 5:
      return std::make_unique<Team5>(label, options);
    case 6:
      return std::make_unique<Team6>(label, options);
    case 7:
      return std::make_unique<Team7>(label, options);
    case 8:
      return std::make_unique<Team8>(label, options);
    case 9:
      return std::make_unique<Team9>(label, options);
    case 10:
      return std::make_unique<Team10>(label, options);
    default:
      throw std::invalid_argument("make_team: unknown team number");
  }
}

learn::LearnerFactory team_factory(int number, const TeamOptions& options) {
  if (number < 1 || number > 10) {
    throw std::invalid_argument("team_factory: unknown team number");
  }
  return learn::LearnerFactory(
      "team" + std::to_string(number),
      [number, options] { return make_team(number, options); });
}

void register_team_factories(const TeamOptions& options) {
  for (const int t : all_team_numbers()) {
    learn::LearnerFactory::register_factory(
        "team" + std::to_string(t),
        [t, options] { return make_team(t, options); });
  }
}

std::vector<ContestEntry> contest_entries(const std::vector<int>& teams,
                                          const TeamOptions& options) {
  std::vector<ContestEntry> entries;
  entries.reserve(teams.size());
  for (const int t : teams) {
    entries.push_back({t, team_factory(t, options)});
  }
  return entries;
}

std::vector<int> all_team_numbers() { return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}; }

std::vector<TechniqueRow> technique_matrix() {
  // Fig. 1 of the paper: representations used by each team.
  return {
      {1, true, true, false, true, false, true},
      {2, true, true, false, false, false, false},
      {3, false, true, true, true, false, false},
      {4, true, false, true, false, false, false},
      {5, true, true, true, false, false, false},
      {6, true, false, false, true, false, false},
      {7, true, true, false, false, false, true},
      {8, false, true, true, false, false, false},
      {9, true, true, false, false, true, false},
      {10, false, true, false, false, false, false},
  };
}

}  // namespace lsml::portfolio
