#pragma once
// SAT-based combinational equivalence checking (CEC).
//
// cec(a, b) builds a miter of the two circuits over shared primary inputs
// and asks the CDCL solver whether any input makes an output pair differ.
// UNSAT proves equivalence; SAT yields a concrete counterexample cube; a
// blown budget returns kUndecided — never a wrong verdict. This is the
// exactness the paper trades away, made checkable: any optimized circuit
// can be certified against the raw learner output it came from.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "data/dataset.hpp"
#include "sat/solver.hpp"

namespace lsml::sat {

enum class CecStatus { kEquivalent, kNotEquivalent, kUndecided };

/// Resource limits on the underlying SAT call; 0 = unlimited.
struct CecLimits {
  std::int64_t conflict_budget = 100000;
  std::int64_t propagation_budget = 0;
};

struct CecResult {
  CecStatus status = CecStatus::kUndecided;
  /// kNotEquivalent only: one value per PI on which the circuits differ.
  std::vector<std::uint8_t> counterexample;
  /// kNotEquivalent only: index of an output the cube distinguishes.
  std::size_t failing_output = 0;
  /// Underlying solver effort (cumulative over the one miter call).
  SolverStats solver_stats;
};

/// Checks functional equivalence of `a` and `b`. Both circuits must have
/// the same number of primary inputs and outputs (throws
/// std::invalid_argument otherwise — a shape mismatch is a usage error,
/// not an inequivalence).
CecResult cec(const aig::Aig& a, const aig::Aig& b,
              const CecLimits& limits = {});

/// Converts a CEC counterexample into a one-row, Dataset-compatible
/// minterm labeled by `oracle`'s output on that cube, so a NOT_EQUIVALENT
/// verdict replays directly through the existing simulation paths
/// (Aig::simulate over Dataset::column_ptrs).
data::Dataset cex_to_minterm(const std::vector<std::uint8_t>& counterexample,
                             const aig::Aig& oracle, std::size_t output = 0);

/// Appends the counterexample row (labeled by `oracle`) to `out`, growing
/// a replayable cube dump across repeated CEC calls. `out` must be empty
/// or have matching input count.
void append_cex_minterm(const std::vector<std::uint8_t>& counterexample,
                        const aig::Aig& oracle, data::Dataset* out,
                        std::size_t output = 0);

}  // namespace lsml::sat
