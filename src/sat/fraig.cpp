#include "sat/fraig.hpp"

#include <unordered_map>
#include <vector>

#include "aig/sim_engine.hpp"
#include "core/bits.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace lsml::sat {

namespace {

/// Candidate-class bookkeeping over the *old* circuit's simulation
/// signatures. Signatures are compared up to complement: the phase bit
/// says whether the stored signature must be flipped to match the class
/// key, so x and ~x land in the same class. Signatures live in the
/// SimEngine's word arena and are read in place — refinement re-sweeps
/// into the same storage instead of materializing per-node BitVecs.
/// rows_ is kept a multiple of 64, so word-wise compares see no tail.
class SignatureIndex {
 public:
  SignatureIndex(const aig::Aig& g, std::size_t rows, core::Rng& rng)
      : engine_(g), rows_(rows) {
    patterns_.reserve(g.num_pis());
    for (std::uint32_t i = 0; i < g.num_pis(); ++i) {
      patterns_.emplace_back(rows_);
      patterns_.back().randomize(rng);
    }
    resimulate();
  }

  /// Phase of `v`: whether its signature is complemented relative to the
  /// class-canonical form (first bit zero).
  [[nodiscard]] bool phase(std::uint32_t v) const {
    return rows_ > 0 && (engine_.row(v)[0] & 1ULL) != 0;
  }

  [[nodiscard]] std::uint64_t key(std::uint32_t v) const {
    const std::uint64_t* s = engine_.row(v);
    const std::uint64_t flip = phase(v) ? ~0ULL : 0ULL;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t w = 0; w < engine_.words_per_row(); ++w) {
      h = core::hash_combine(h, s[w] ^ flip);
    }
    return h;
  }

  /// Exact signature equality up to complement (guards hash collisions).
  [[nodiscard]] bool equal(std::uint32_t a, std::uint32_t b) const {
    const std::uint64_t* sa = engine_.row(a);
    const std::uint64_t* sb = engine_.row(b);
    const std::uint64_t flip = phase(a) == phase(b) ? 0ULL : ~0ULL;
    for (std::size_t w = 0; w < engine_.words_per_row(); ++w) {
      if (sa[w] != (sb[w] ^ flip)) {
        return false;
      }
    }
    return true;
  }

  /// Queues one counterexample row (one value per PI) for the next
  /// refinement batch.
  void add_pattern(const std::vector<std::uint8_t>& row) {
    pending_.push_back(row);
  }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  /// Folds all pending counterexamples into the pattern set (padding the
  /// new 64-bit block by repeating the first pending row keeps rows_ a
  /// multiple of 64, so word-wise signature compares never see tail
  /// garbage) and recomputes every signature.
  void refine() {
    if (pending_.empty()) {
      return;
    }
    const std::size_t added = (pending_.size() + 63) / 64 * 64;
    std::vector<core::BitVec> grown;
    grown.reserve(patterns_.size());
    for (std::uint32_t i = 0; i < patterns_.size(); ++i) {
      core::BitVec column(rows_ + added);
      for (std::size_t w = 0; w < patterns_[i].num_words(); ++w) {
        column.words()[w] = patterns_[i].word(w);
      }
      for (std::size_t r = 0; r < added; ++r) {
        const auto& row = pending_[r < pending_.size() ? r : 0];
        column.set(rows_ + r, row[i] != 0);
      }
      grown.push_back(std::move(column));
    }
    patterns_ = std::move(grown);
    rows_ += added;
    pending_.clear();
    resimulate();
  }

 private:
  void resimulate() {
    std::vector<const core::BitVec*> ptrs;
    ptrs.reserve(patterns_.size());
    for (const auto& p : patterns_) {
      ptrs.push_back(&p);
    }
    engine_.run(ptrs);
  }

  aig::SimEngine engine_;
  std::size_t rows_;
  std::vector<core::BitVec> patterns_;
  std::vector<std::vector<std::uint8_t>> pending_;
};

}  // namespace

aig::Aig fraig(const aig::Aig& in, const FraigOptions& options,
               core::Rng& rng, FraigStats* stats) {
  FraigStats local;
  local.ands_in = in.num_ands();
  const auto publish = [&](const aig::Aig& out) {
    local.ands_out = out.num_ands();
    if (stats != nullptr) {
      *stats = local;
    }
  };
  if (in.num_ands() == 0 || in.num_pis() == 0) {
    aig::Aig out = in.cleanup();
    publish(out);
    return out;
  }

  const std::size_t rows =
      (options.sim_patterns < 64 ? 64 : (options.sim_patterns + 63) / 64 * 64);
  SignatureIndex index(in, rows, rng);

  // Two-level strash: redundant AND nodes (contradiction / subsumption /
  // resemblance across grandchildren) fold structurally instead of
  // costing a signature class and a SAT probe.
  aig::Aig out(in.num_pis(), aig::Aig::StrashMode::kTwoLevel);
  Solver solver;
  CnfBuilder cnf(solver, out);
  Budget budget;
  budget.max_conflicts = options.conflict_budget;

  // old var -> literal over `out` computing the same function of the PIs.
  std::vector<aig::Lit> map(in.num_nodes(), aig::kLitFalse);
  for (std::uint32_t i = 0; i < in.num_pis(); ++i) {
    map[i + 1] = out.pi(i);
  }

  // Classes start seeded with the constant and the PIs, so nodes that
  // collapse to an input or a constant merge like any other equivalence.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  std::vector<std::uint32_t> representatives;
  const auto add_representative = [&](std::uint32_t v) {
    buckets[index.key(v)].push_back(v);
    representatives.push_back(v);
  };
  const auto rebuild_buckets = [&] {
    buckets.clear();
    for (const std::uint32_t v : representatives) {
      buckets[index.key(v)].push_back(v);
    }
  };
  for (std::uint32_t v = 0; v <= in.num_pis(); ++v) {
    add_representative(v);
  }

  std::vector<std::uint8_t> cex_row(in.num_pis());
  for (std::uint32_t v = in.num_pis() + 1; v < in.num_nodes(); ++v) {
    const aig::Node& node = in.node(v);
    const aig::Lit nl = out.and2(
        aig::lit_notc(map[aig::lit_var(node.fanin0)],
                      aig::lit_compl(node.fanin0)),
        aig::lit_notc(map[aig::lit_var(node.fanin1)],
                      aig::lit_compl(node.fanin1)));
    bool merged = false;
    bool give_up = false;
    std::uint32_t probes = 0;
    bool rescan = true;
    while (rescan && !merged && !give_up) {
      rescan = false;
      const auto it = buckets.find(index.key(v));
      if (it == buckets.end()) {
        break;
      }
      for (const std::uint32_t c : it->second) {
        if (!index.equal(v, c)) {
          continue;  // hash collision or an already-refined split
        }
        const aig::Lit cand =
            aig::lit_notc(map[c], index.phase(v) != index.phase(c));
        if (cand == nl) {
          // Structural hashing already unified them; fold v into the
          // class without a new representative.
          map[v] = nl;
          merged = true;
          break;
        }
        if (probes++ >= options.max_pair_probes) {
          give_up = true;
          break;
        }
        const Lit probe = add_xor(solver, cnf.lit(nl), cnf.lit(cand));
        ++local.sat_calls;
        const Status verdict = solver.solve({probe}, budget);
        if (verdict == Status::kUnsat) {
          map[v] = cand;
          merged = true;
          ++local.proved;
          break;
        }
        if (verdict == Status::kUnknown) {
          ++local.undecided;
          give_up = true;  // keep the node; the merge stays unproven
          break;
        }
        // SAT: a concrete input separating the pair. Feed it back; once
        // a 64-row block accumulates, refine every signature and rescan
        // this node's (possibly split) class.
        ++local.disproved;
        for (std::uint32_t i = 0; i < in.num_pis(); ++i) {
          cex_row[i] = solver.model_value(cnf.pi_lit(i)) ? 1 : 0;
        }
        index.add_pattern(cex_row);
        ++local.cex_patterns;
        if (index.pending() >= 64) {
          index.refine();
          rebuild_buckets();
          rescan = true;
          break;
        }
      }
    }
    if (merged) {
      continue;  // map[v] set (or nl already equals the representative)
    }
    map[v] = nl;
    add_representative(v);
  }

  for (const aig::Lit o : in.outputs()) {
    out.add_output(
        aig::lit_notc(map[aig::lit_var(o)], aig::lit_compl(o)));
  }
  aig::Aig cleaned = out.cleanup();
  publish(cleaned);
  return cleaned;
}

}  // namespace lsml::sat
