#include "sat/solver.hpp"

#include <algorithm>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace lsml::sat {

namespace {

constexpr double kActivityDecay = 0.95;
constexpr double kActivityRescale = 1e100;
constexpr std::int64_t kRestartBase = 100;  ///< conflicts per Luby unit

/// Luby restart sequence 1,1,2,1,1,2,4,... (0-indexed).
std::int64_t luby(std::int64_t x) {
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::int64_t{1} << seq;
}

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(kUndef);
  phase_.push_back(kFalse);  // MiniSat's default: branch negative first
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  model_.push_back(kFalse);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(0xffffffffu);
  heap_insert(v);
  return v;
}

void Solver::attach_clause(std::uint32_t ci) {
  const Clause& c = clauses_[ci];
  watches_[c.lits[0]].push_back({ci, c.lits[1]});
  watches_[c.lits[1]].push_back({ci, c.lits[0]});
}

bool Solver::add_clause(std::vector<Lit> lits) {
  cancel_until(0);
  if (!ok_) {
    return false;
  }
  // Canonicalize: sort, dedupe, drop root-false literals, detect
  // tautologies and root-satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::size_t out = 0;
  Lit previous = 0xffffffffu;
  for (const Lit l : lits) {
    if (l == previous) {
      continue;
    }
    if (previous != 0xffffffffu && l == lit_not(previous) &&
        lit_var(l) == lit_var(previous)) {
      return true;  // x | ~x: trivially satisfied
    }
    const std::uint8_t v = value(l);
    if (v == kTrue) {
      return true;  // satisfied at the root level
    }
    if (v == kFalse) {
      continue;  // permanently false here
    }
    lits[out++] = l;
    previous = l;
  }
  lits.resize(out);
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    enqueue(lits[0], kNoReason);
    ok_ = propagate() == kNoReason;
    return ok_;
  }
  const auto ci = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(Clause{std::move(lits)});
  attach_clause(ci);
  return true;
}

void Solver::enqueue(Lit l, std::uint32_t reason) {
  const Var v = lit_var(l);
  assigns_[v] = lit_sign(l) ? kFalse : kTrue;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];  // p just became true
    ++stats_.propagations;
    const Lit false_lit = lit_not(p);
    std::vector<Watcher>& ws = watches_[false_lit];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[w.clause];
      if (c.lits[0] == false_lit) {
        std::swap(c.lits[0], c.lits[1]);
      }
      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == kTrue) {
        ws[j++] = {w.clause, first};
        ++i;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[c.lits[1]].push_back({w.clause, first});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;  // watcher migrated to the new literal's list
        continue;
      }
      // Unit or conflicting.
      ws[j++] = {w.clause, first};
      ++i;
      if (value(first) == kFalse) {
        while (i < ws.size()) {
          ws[j++] = ws[i++];
        }
        ws.resize(j);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      enqueue(first, w.clause);
    }
    ws.resize(j);
  }
  return kNoReason;
}

void Solver::analyze(std::uint32_t conflict, std::vector<Lit>* learned,
                     std::uint32_t* backtrack_level) {
  // First-UIP resolution: walk the trail backwards resolving current-level
  // literals until exactly one remains. (No clause minimization: the
  // learned clauses here are short-lived miter probes.)
  learned->clear();
  learned->push_back(0);  // slot for the asserting literal
  std::size_t index = trail_.size();
  Lit p = 0;
  bool have_p = false;
  std::uint32_t reason = conflict;
  int path_count = 0;
  do {
    const Clause& c = clauses_[reason];
    for (std::size_t k = have_p ? 1 : 0; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = lit_var(q);
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        var_bump_activity(v);
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          learned->push_back(q);
        }
      }
    }
    do {
      --index;
    } while (seen_[lit_var(trail_[index])] == 0);
    p = trail_[index];
    have_p = true;
    reason = reason_[lit_var(p)];
    seen_[lit_var(p)] = 0;
    --path_count;
  } while (path_count > 0);
  (*learned)[0] = lit_not(p);

  if (learned->size() == 1) {
    *backtrack_level = 0;
  } else {
    // Second-highest decision level in the clause becomes the backtrack
    // target; that literal must sit in slot 1 to be watched.
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < learned->size(); ++k) {
      if (level_[lit_var((*learned)[k])] > level_[lit_var((*learned)[max_i])]) {
        max_i = k;
      }
    }
    std::swap((*learned)[1], (*learned)[max_i]);
    *backtrack_level = level_[lit_var((*learned)[1])];
  }
  for (const Lit l : *learned) {
    seen_[lit_var(l)] = 0;
  }
}

void Solver::cancel_until(std::uint32_t level) {
  if (decision_level() <= level) {
    return;
  }
  const std::uint32_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = lit_var(trail_[i - 1]);
    phase_[v] = assigns_[v];  // phase saving
    assigns_[v] = kUndef;
    reason_[v] = kNoReason;
    if (heap_pos_[v] == 0xffffffffu) {
      heap_insert(v);
    }
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  propagate_head_ = trail_.size();
}

Var Solver::pick_branch_var() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == kUndef) {
      return v;
    }
  }
  return num_vars();
}

void Solver::var_bump_activity(Var v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > kActivityRescale) {
    for (double& a : activity_) {
      a *= 1.0 / kActivityRescale;
    }
    activity_inc_ *= 1.0 / kActivityRescale;
  }
  if (heap_pos_[v] != 0xffffffffu) {
    heap_sift_up(heap_pos_[v]);
  }
}

void Solver::var_decay_activity() { activity_inc_ /= kActivityDecay; }

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) {
      break;
    }
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) {
      break;
    }
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) {
      break;
    }
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = 0xffffffffu;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

namespace {

// Per-solve deltas into the process registry (stats_ is cumulative per
// Solver instance); recorded at scope exit so every return path counts.
struct SatMetrics {
  obs::Counter& solves;
  obs::Counter& conflicts;
  obs::Counter& propagations;
  obs::Counter& decisions;
  obs::Counter& restarts;

  static SatMetrics& get() {
    static SatMetrics* m = [] {
      obs::Registry& reg = obs::Registry::instance();
      return new SatMetrics{reg.counter("lsml_sat_solves_total"),
                            reg.counter("lsml_sat_conflicts_total"),
                            reg.counter("lsml_sat_propagations_total"),
                            reg.counter("lsml_sat_decisions_total"),
                            reg.counter("lsml_sat_restarts_total")};
    }();
    return *m;
  }
};

class SolveScope {
 public:
  explicit SolveScope(const SolverStats& stats)
      : stats_(stats), at_entry_(stats), span_("solve", "sat") {}
  ~SolveScope() {
    SatMetrics& m = SatMetrics::get();
    m.solves.add(1);
    m.conflicts.add(stats_.conflicts - at_entry_.conflicts);
    m.propagations.add(stats_.propagations - at_entry_.propagations);
    m.decisions.add(stats_.decisions - at_entry_.decisions);
    m.restarts.add(stats_.restarts - at_entry_.restarts);
  }

 private:
  const SolverStats& stats_;
  SolverStats at_entry_;
  obs::ScopedSpan span_;
};

}  // namespace

Status Solver::solve(const std::vector<Lit>& assumptions,
                     const Budget& budget) {
  const SolveScope telemetry(stats_);
  cancel_until(0);
  if (!ok_) {
    return Status::kUnsat;
  }
  const std::uint64_t conflicts_at_entry = stats_.conflicts;
  const std::uint64_t props_at_entry = stats_.propagations;
  const auto out_of_budget = [&] {
    if (budget.max_conflicts > 0 &&
        stats_.conflicts - conflicts_at_entry >=
            static_cast<std::uint64_t>(budget.max_conflicts)) {
      return true;
    }
    return budget.max_propagations > 0 &&
           stats_.propagations - props_at_entry >=
               static_cast<std::uint64_t>(budget.max_propagations);
  };

  std::int64_t restart_index = 0;
  std::int64_t conflicts_until_restart = kRestartBase * luby(restart_index);
  std::vector<Lit> learned;
  for (;;) {
    const std::uint32_t conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      if (decision_level() == 0) {
        ok_ = false;
        return Status::kUnsat;
      }
      std::uint32_t backtrack_level = 0;
      analyze(conflict, &learned, &backtrack_level);
      cancel_until(backtrack_level);
      ++stats_.learned_clauses;
      stats_.learned_literals += learned.size();
      if (learned.size() == 1) {
        enqueue(learned[0], kNoReason);
      } else {
        const auto ci = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back(Clause{learned});
        attach_clause(ci);
        enqueue(learned[0], ci);
      }
      var_decay_activity();
      if (out_of_budget()) {
        cancel_until(0);
        return Status::kUnknown;
      }
      if (--conflicts_until_restart <= 0) {
        ++stats_.restarts;
        ++restart_index;
        conflicts_until_restart = kRestartBase * luby(restart_index);
        cancel_until(0);  // assumptions are re-decided below
      }
      continue;
    }
    if (out_of_budget()) {
      cancel_until(0);
      return Status::kUnknown;
    }
    // Assumptions act as forced decisions on the first levels.
    Lit next = 0;
    bool have_next = false;
    while (decision_level() < assumptions.size()) {
      const Lit a = assumptions[decision_level()];
      const std::uint8_t v = value(a);
      if (v == kTrue) {
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      } else if (v == kFalse) {
        cancel_until(0);
        return Status::kUnsat;  // assumptions are jointly unsatisfiable
      } else {
        next = a;
        have_next = true;
        break;
      }
    }
    if (!have_next) {
      const Var v = pick_branch_var();
      if (v == num_vars()) {
        model_ = assigns_;  // complete assignment: a model
        cancel_until(0);
        return Status::kSat;
      }
      next = make_lit(v, phase_[v] == kFalse);
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(next, kNoReason);
  }
}

}  // namespace lsml::sat
