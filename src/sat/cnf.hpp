#pragma once
// Tseitin encoding of AIGs into CNF.
//
// A CnfBuilder binds one aig::Aig to a sat::Solver: every AND node gets a
// solver variable constrained by the three Tseitin clauses, translated
// lazily and incrementally — the bound AIG may keep growing (the fraig
// pass encodes its under-construction circuit node by node), because node
// ids are topological and append-only. Two builders may share a Solver
// and the same primary-input variables, which is exactly a miter over
// shared PIs (the btor_aig_to_sat_constraints pattern from boolector).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace lsml::sat {

/// Fresh variable t with t <-> (a XOR b); returns the literal of t.
Lit add_xor(Solver& solver, Lit a, Lit b);

/// Fresh variable t with t <-> OR(lits); returns the literal of t.
/// An empty disjunction yields a literal fixed false.
Lit add_or(Solver& solver, const std::vector<Lit>& lits);

class CnfBuilder {
 public:
  /// Binds `g` to `solver`, creating one variable per primary input plus
  /// the constant-false variable. `g` must outlive the builder; its PI
  /// count must not change (appending AND nodes is fine).
  CnfBuilder(Solver& solver, const aig::Aig& g);

  /// Binds `g` but shares primary-input variables (and the constant) with
  /// `pis`, forming a miter over common inputs. PI counts must match.
  CnfBuilder(Solver& solver, const aig::Aig& g, const CnfBuilder& pis);

  /// Solver literal computing AIG literal `l`, encoding any AND nodes in
  /// its cone that have not been translated yet.
  Lit lit(aig::Lit l);

  /// Solver literals of all outputs (encodes their cones).
  std::vector<Lit> output_lits();

  /// Solver literal of primary input `i` (shared across miter halves).
  [[nodiscard]] Lit pi_lit(std::uint32_t i) const {
    return make_lit(pi_vars_[i], false);
  }

  [[nodiscard]] Solver& solver() { return solver_; }
  [[nodiscard]] const aig::Aig& aig() const { return aig_; }

 private:
  Solver& solver_;
  const aig::Aig& aig_;
  std::vector<Var> pi_vars_;
  Var const_var_;                  ///< fixed false
  std::vector<Lit> node_lit_;      ///< aig var -> solver lit (or kUnmapped)
  static constexpr Lit kUnmapped = 0xffffffffu;
};

}  // namespace lsml::sat
