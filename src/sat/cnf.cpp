#include "sat/cnf.hpp"

#include <stdexcept>

namespace lsml::sat {

Lit add_xor(Solver& solver, Lit a, Lit b) {
  const Lit t = make_lit(solver.new_var(), false);
  solver.add_clause({lit_not(t), a, b});
  solver.add_clause({lit_not(t), lit_not(a), lit_not(b)});
  solver.add_clause({t, lit_not(a), b});
  solver.add_clause({t, a, lit_not(b)});
  return t;
}

Lit add_or(Solver& solver, const std::vector<Lit>& lits) {
  const Lit t = make_lit(solver.new_var(), false);
  std::vector<Lit> forward;
  forward.reserve(lits.size() + 1);
  forward.push_back(lit_not(t));
  for (const Lit l : lits) {
    forward.push_back(l);
    solver.add_clause({t, lit_not(l)});
  }
  solver.add_clause(std::move(forward));
  return t;
}

CnfBuilder::CnfBuilder(Solver& solver, const aig::Aig& g)
    : solver_(solver), aig_(g) {
  const_var_ = solver_.new_var();
  solver_.add_clause({make_lit(const_var_, true)});  // constant is false
  pi_vars_.reserve(g.num_pis());
  for (std::uint32_t i = 0; i < g.num_pis(); ++i) {
    pi_vars_.push_back(solver_.new_var());
  }
}

CnfBuilder::CnfBuilder(Solver& solver, const aig::Aig& g,
                       const CnfBuilder& pis)
    : solver_(solver), aig_(g), pi_vars_(pis.pi_vars_),
      const_var_(pis.const_var_) {
  if (&solver != &pis.solver_) {
    throw std::invalid_argument(
        "CnfBuilder: miter halves must share one Solver");
  }
  if (g.num_pis() != pis.aig_.num_pis()) {
    throw std::invalid_argument(
        "CnfBuilder: miter halves must have equal PI counts");
  }
}

Lit CnfBuilder::lit(aig::Lit l) {
  if (node_lit_.size() < aig_.num_nodes()) {
    const std::size_t old = node_lit_.size();
    node_lit_.resize(aig_.num_nodes(), kUnmapped);
    if (old == 0) {
      node_lit_[0] = make_lit(const_var_, false);
      for (std::uint32_t i = 0; i < aig_.num_pis(); ++i) {
        node_lit_[i + 1] = make_lit(pi_vars_[i], false);
      }
    }
  }
  const std::uint32_t root = aig::lit_var(l);
  if (node_lit_[root] == kUnmapped) {
    // Iterative cone walk (fanins precede their gates, but only nodes in
    // this literal's cone are translated).
    std::vector<std::uint32_t> todo{root};
    while (!todo.empty()) {
      const std::uint32_t v = todo.back();
      if (node_lit_[v] != kUnmapped) {
        todo.pop_back();
        continue;
      }
      const aig::Node& node = aig_.node(v);
      const std::uint32_t v0 = aig::lit_var(node.fanin0);
      const std::uint32_t v1 = aig::lit_var(node.fanin1);
      if (node_lit_[v0] == kUnmapped || node_lit_[v1] == kUnmapped) {
        if (node_lit_[v0] == kUnmapped) {
          todo.push_back(v0);
        }
        if (node_lit_[v1] == kUnmapped) {
          todo.push_back(v1);
        }
        continue;
      }
      todo.pop_back();
      const Lit a =
          node_lit_[v0] ^ static_cast<Lit>(aig::lit_compl(node.fanin0));
      const Lit b =
          node_lit_[v1] ^ static_cast<Lit>(aig::lit_compl(node.fanin1));
      const Lit n = make_lit(solver_.new_var(), false);
      // n <-> a & b.
      solver_.add_clause({lit_not(n), a});
      solver_.add_clause({lit_not(n), b});
      solver_.add_clause({n, lit_not(a), lit_not(b)});
      node_lit_[v] = n;
    }
  }
  return node_lit_[root] ^ static_cast<Lit>(aig::lit_compl(l));
}

std::vector<Lit> CnfBuilder::output_lits() {
  std::vector<Lit> outs;
  outs.reserve(aig_.num_outputs());
  for (const aig::Lit o : aig_.outputs()) {
    outs.push_back(lit(o));
  }
  return outs;
}

}  // namespace lsml::sat
