#pragma once
// A small but real CDCL SAT solver.
//
// MiniSat-lineage architecture (the same skeleton boolector drives through
// btor_add_sat/btor_sat): two-watched-literal propagation, first-UIP
// conflict clause learning, VSIDS-style activity decay with a binary-heap
// decision order, phase saving, Luby restarts, an assumption interface for
// incremental queries, and conflict/propagation budgets so callers can
// trade exactness for latency — the library's whole theme, applied to
// verification. The solver owns no encoding knowledge; sat::CnfBuilder
// turns AIGs into clauses.
//
// Everything is deterministic: same clauses + same assumptions + same
// budgets => same verdict, same model, bit for bit.

#include <cstdint>
#include <vector>

namespace lsml::sat {

/// Solver variable (0-based) and literal (2*var + sign), mirroring
/// aig::Lit so encoders translate with arithmetic, not tables.
using Var = std::uint32_t;
using Lit = std::uint32_t;

[[nodiscard]] inline constexpr Lit make_lit(Var v, bool negative) {
  return (v << 1) | static_cast<Lit>(negative);
}
[[nodiscard]] inline constexpr Var lit_var(Lit l) { return l >> 1; }
[[nodiscard]] inline constexpr bool lit_sign(Lit l) { return l & 1u; }
[[nodiscard]] inline constexpr Lit lit_not(Lit l) { return l ^ 1u; }

enum class Status { kSat, kUnsat, kUnknown };

/// Per-solve resource limits; 0 means unlimited. A solve that exhausts
/// either returns Status::kUnknown (never a wrong verdict).
struct Budget {
  std::int64_t max_conflicts = 0;
  std::int64_t max_propagations = 0;
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t restarts = 0;
};

class Solver {
 public:
  Solver();

  /// Creates a fresh unassigned variable and returns it.
  Var new_var();
  [[nodiscard]] std::uint32_t num_vars() const {
    return static_cast<std::uint32_t>(assigns_.size());
  }

  /// Adds a clause over existing variables. Duplicate literals are
  /// dropped and tautologies ignored; root-level-false literals are
  /// removed. Returns false when the clause makes the formula root-level
  /// UNSAT (the solver stays usable; solve() will report kUnsat).
  bool add_clause(std::vector<Lit> lits);

  /// False once the clause database is contradictory at the root level.
  [[nodiscard]] bool okay() const { return ok_; }

  /// Solves under the given assumptions (each forced true for this call
  /// only), within the budget. Incremental: clauses may be added between
  /// calls and everything learned is kept.
  Status solve(const std::vector<Lit>& assumptions = {},
               const Budget& budget = {});

  /// Value of `l` in the model of the last kSat answer.
  [[nodiscard]] bool model_value(Lit l) const {
    return (model_[lit_var(l)] ^ static_cast<std::uint8_t>(lit_sign(l))) == 0;
  }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  // Assignment values: 0 = true, 1 = false, 2 = unassigned (so the value
  // of literal l under assignment v of its var is v ^ sign(l)).
  static constexpr std::uint8_t kTrue = 0;
  static constexpr std::uint8_t kFalse = 1;
  static constexpr std::uint8_t kUndef = 2;

  static constexpr std::uint32_t kNoReason = 0xffffffffu;

  struct Clause {
    std::vector<Lit> lits;
  };

  struct Watcher {
    std::uint32_t clause = 0;
    Lit blocker = 0;  ///< quick satisfied-check before touching the clause
  };

  [[nodiscard]] std::uint8_t value(Lit l) const {
    const std::uint8_t v = assigns_[lit_var(l)];
    return v == kUndef ? kUndef : v ^ static_cast<std::uint8_t>(lit_sign(l));
  }
  [[nodiscard]] std::uint32_t decision_level() const {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }

  void attach_clause(std::uint32_t ci);
  void enqueue(Lit l, std::uint32_t reason);
  /// Runs unit propagation; returns the conflicting clause or kNoReason.
  std::uint32_t propagate();
  /// First-UIP analysis of `conflict`; fills the learned clause (asserting
  /// literal first) and the backtrack level.
  void analyze(std::uint32_t conflict, std::vector<Lit>* learned,
               std::uint32_t* backtrack_level);
  void cancel_until(std::uint32_t level);
  /// Highest-activity unassigned variable, or num_vars() when none.
  Var pick_branch_var();

  void var_bump_activity(Var v);
  void var_decay_activity();

  // Decision-order binary max-heap on activity.
  void heap_insert(Var v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  Var heap_pop();

  bool ok_ = true;
  std::vector<Clause> clauses_;            // problem + learned clauses
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<std::uint8_t> assigns_;      // indexed by var
  std::vector<std::uint8_t> phase_;        // saved polarity, indexed by var
  std::vector<std::uint32_t> level_;       // indexed by var
  std::vector<std::uint32_t> reason_;      // clause index or kNoReason
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;           // VSIDS, indexed by var
  double activity_inc_ = 1.0;
  std::vector<Var> heap_;                  // decision order
  std::vector<std::uint32_t> heap_pos_;    // var -> heap index, or npos
  std::vector<std::uint8_t> seen_;         // analyze() scratch

  std::vector<std::uint8_t> model_;        // last SAT assignment
  SolverStats stats_;
};

}  // namespace lsml::sat
