#include "sat/cec.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "sat/cnf.hpp"

namespace lsml::sat {

CecResult cec(const aig::Aig& a, const aig::Aig& b, const CecLimits& limits) {
  if (a.num_pis() != b.num_pis()) {
    throw std::invalid_argument("sat::cec: PI counts differ (" +
                                std::to_string(a.num_pis()) + " vs " +
                                std::to_string(b.num_pis()) + ")");
  }
  if (a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument("sat::cec: output counts differ (" +
                                std::to_string(a.num_outputs()) + " vs " +
                                std::to_string(b.num_outputs()) + ")");
  }
  Solver solver;
  CnfBuilder ca(solver, a);
  CnfBuilder cb(solver, b, ca);
  // The miter: some output pair differs.
  std::vector<Lit> diffs;
  diffs.reserve(a.num_outputs());
  for (std::size_t i = 0; i < a.num_outputs(); ++i) {
    diffs.push_back(add_xor(solver, ca.lit(a.output(i)), cb.lit(b.output(i))));
  }
  const Lit mismatch = add_or(solver, diffs);

  Budget budget;
  budget.max_conflicts = limits.conflict_budget;
  budget.max_propagations = limits.propagation_budget;
  const Status status = solver.solve({mismatch}, budget);

  CecResult result;
  result.solver_stats = solver.stats();
  if (status == Status::kUnsat) {
    result.status = CecStatus::kEquivalent;
    return result;
  }
  if (status == Status::kUnknown) {
    result.status = CecStatus::kUndecided;
    return result;
  }
  result.status = CecStatus::kNotEquivalent;
  result.counterexample.resize(a.num_pis());
  for (std::uint32_t i = 0; i < a.num_pis(); ++i) {
    result.counterexample[i] =
        solver.model_value(ca.pi_lit(i)) ? std::uint8_t{1} : std::uint8_t{0};
  }
  // Identify a distinguishing output by replaying the cube; a model that
  // fails to distinguish any output would mean the solver or encoding is
  // unsound, which must never pass silently.
  const std::vector<bool> va = a.eval_row(result.counterexample);
  const std::vector<bool> vb = b.eval_row(result.counterexample);
  bool found = false;
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i] != vb[i]) {
      result.failing_output = i;
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::logic_error(
        "sat::cec: SAT model does not distinguish the circuits "
        "(solver or encoding bug)");
  }
  return result;
}

data::Dataset cex_to_minterm(const std::vector<std::uint8_t>& counterexample,
                             const aig::Aig& oracle, std::size_t output) {
  data::Dataset row(counterexample.size(), 1);
  for (std::size_t i = 0; i < counterexample.size(); ++i) {
    row.set_input(0, i, counterexample[i] != 0);
  }
  row.set_label(0, oracle.eval_row(counterexample)[output]);
  return row;
}

void append_cex_minterm(const std::vector<std::uint8_t>& counterexample,
                        const aig::Aig& oracle, data::Dataset* out,
                        std::size_t output) {
  data::Dataset row = cex_to_minterm(counterexample, oracle, output);
  if (out->num_rows() == 0) {
    *out = std::move(row);
    return;
  }
  *out = out->merged_with(row);
}

}  // namespace lsml::sat
