#pragma once
// Simulation-guided SAT sweeping (fraiging).
//
// The strongest classical size reduction the synth:: layer offers: random
// 64-way simulation partitions nodes into candidate equivalence classes
// (signatures equal up to complement), and a budgeted CDCL solver refines
// them — UNSAT merges the node onto its class representative, SAT yields
// a counterexample pattern that splits classes, and a blown budget keeps
// the node (never an unsound merge). The output circuit is therefore
// always function-equivalent to the input; sat::cec can certify it.
//
// Deterministic: (input, options, rng state) fully determine the result.

#include <cstdint>

#include "aig/aig.hpp"
#include "core/rng.hpp"

namespace lsml::sat {

struct FraigOptions {
  /// Initial random simulation patterns (rounded up to a multiple of 64).
  std::size_t sim_patterns = 2048;
  /// Conflict budget per SAT probe; 0 = unlimited (exact sweeping).
  std::int64_t conflict_budget = 1000;
  /// Candidate representatives probed per node before giving up, bounding
  /// worst-case SAT effort on large near-equivalence classes.
  std::uint32_t max_pair_probes = 16;
};

struct FraigStats {
  std::uint64_t sat_calls = 0;
  std::uint64_t proved = 0;     ///< UNSAT probes: nodes merged
  std::uint64_t disproved = 0;  ///< SAT probes: counterexamples found
  std::uint64_t undecided = 0;  ///< budget-limited probes: nodes kept
  std::uint32_t cex_patterns = 0;  ///< counterexample rows fed back
  std::uint32_t ands_in = 0;
  std::uint32_t ands_out = 0;
};

/// Sweeps `in` and returns the (cleaned-up) reduced circuit. `rng` seeds
/// the simulation patterns only.
aig::Aig fraig(const aig::Aig& in, const FraigOptions& options,
               core::Rng& rng, FraigStats* stats = nullptr);

}  // namespace lsml::sat
