#pragma once
// Irredundant sum-of-products computation (Minato-Morreale ISOP).
//
// Given an incompletely specified function as (onset, careset don't-care
// upper bound), produces a cube cover F with on <= F <= on|dc that is
// irredundant by construction. This is the standard way to resynthesize a
// small cut or LUT into two-level logic before mapping it to AIG gates.

#include <vector>

#include "tt/truth_table.hpp"

namespace lsml::tt {

/// Computes an irredundant SOP for any f with on <= f <= on | dc.
/// `on` and `dc` must be disjoint is NOT required (dc is treated as
/// "additional allowed minterms"); both must have the same variable count.
std::vector<SmallCube> isop(const TruthTable& on, const TruthTable& dc);

/// Convenience: ISOP of a completely specified function.
std::vector<SmallCube> isop(const TruthTable& f);

/// Number of AND2 gates of the naive AND/OR tree realization of a cover
/// (literals-1 per cube plus cubes-1 for the OR). Useful as a cost proxy.
int sop_gate_cost(const std::vector<SmallCube>& cubes);

}  // namespace lsml::tt
