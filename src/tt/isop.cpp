#include "tt/isop.hpp"

#include <cassert>

namespace lsml::tt {

namespace {

// Recursive Minato-Morreale. Computes a cover of some g with
// on <= g <= upper, where upper = on | dc. Returns the cover and sets
// `result` to the truth table of the cover.
std::vector<SmallCube> isop_rec(const TruthTable& on, const TruthTable& upper,
                                int num_vars, int var, TruthTable* result) {
  assert(var <= num_vars);
  if (on.is_const0()) {
    *result = TruthTable::constant(num_vars, false);
    return {};
  }
  if (upper.is_const1()) {
    *result = TruthTable::constant(num_vars, true);
    return {SmallCube{}};
  }
  // Find the topmost variable that matters.
  int v = var - 1;
  while (v >= 0 && !on.depends_on(v) && !upper.depends_on(v)) {
    --v;
  }
  assert(v >= 0 && "non-trivial function must depend on something");

  const TruthTable on0 = on.cofactor(v, false);
  const TruthTable on1 = on.cofactor(v, true);
  const TruthTable up0 = upper.cofactor(v, false);
  const TruthTable up1 = upper.cofactor(v, true);

  // Cubes that must contain literal !v: on0 minterms not allowed under v=1.
  TruthTable res0;
  auto cover0 = isop_rec(on0 & ~up1, up0, num_vars, v, &res0);
  // Cubes that must contain literal v.
  TruthTable res1;
  auto cover1 = isop_rec(on1 & ~up0, up1, num_vars, v, &res1);
  // Remaining onset handled by cubes independent of v.
  const TruthTable on_rest = (on0 & ~res0) | (on1 & ~res1);
  TruthTable res2;
  auto cover2 = isop_rec(on_rest, up0 & up1, num_vars, v, &res2);

  const TruthTable tv = TruthTable::var(num_vars, v);
  *result = (res0 & ~tv) | (res1 & tv) | res2;

  std::vector<SmallCube> out;
  out.reserve(cover0.size() + cover1.size() + cover2.size());
  for (auto cube : cover0) {
    cube.neg |= 1u << v;
    out.push_back(cube);
  }
  for (auto cube : cover1) {
    cube.pos |= 1u << v;
    out.push_back(cube);
  }
  for (auto cube : cover2) {
    out.push_back(cube);
  }
  return out;
}

}  // namespace

std::vector<SmallCube> isop(const TruthTable& on, const TruthTable& dc) {
  assert(on.num_vars() == dc.num_vars());
  TruthTable result;
  auto cover =
      isop_rec(on, on | dc, on.num_vars(), on.num_vars(), &result);
  // Correctness: on <= result <= on | dc.
  assert((on & ~result).is_const0());
  assert((result & ~(on | dc)).is_const0());
  return cover;
}

std::vector<SmallCube> isop(const TruthTable& f) {
  return isop(f, TruthTable::constant(f.num_vars(), false));
}

int sop_gate_cost(const std::vector<SmallCube>& cubes) {
  if (cubes.empty()) {
    return 0;
  }
  int cost = static_cast<int>(cubes.size()) - 1;
  for (const auto& cube : cubes) {
    const int lits = cube.num_literals();
    if (lits > 0) {
      cost += lits - 1;
    }
  }
  return cost;
}

}  // namespace lsml::tt
