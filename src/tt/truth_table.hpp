#pragma once
// Dynamic truth tables over up to 16 variables.
//
// Used wherever a complete function over a small support is manipulated:
// LUT contents, cut functions during AIG rewriting, neuron-to-LUT
// conversion, and ISOP-based resynthesis.

#include <cstdint>
#include <vector>

namespace lsml::tt {

inline constexpr int kMaxVars = 16;

/// Truth table of a Boolean function over `num_vars` variables.
/// Bit m of the table is f(m) where variable i is bit i of the minterm m.
class TruthTable {
 public:
  TruthTable() : TruthTable(0) {}
  explicit TruthTable(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] std::uint64_t num_minterms() const {
    return 1ULL << num_vars_;
  }

  [[nodiscard]] bool get(std::uint64_t minterm) const {
    return (words_[minterm >> 6] >> (minterm & 63)) & 1ULL;
  }
  void set(std::uint64_t minterm, bool v);

  /// The projection function of variable `var`.
  static TruthTable var(int num_vars, int var);
  static TruthTable constant(int num_vars, bool value);

  [[nodiscard]] std::uint64_t count_ones() const;
  [[nodiscard]] bool is_const0() const;
  [[nodiscard]] bool is_const1() const;

  TruthTable& operator&=(const TruthTable& o);
  TruthTable& operator|=(const TruthTable& o);
  TruthTable& operator^=(const TruthTable& o);
  [[nodiscard]] TruthTable operator&(const TruthTable& o) const;
  [[nodiscard]] TruthTable operator|(const TruthTable& o) const;
  [[nodiscard]] TruthTable operator^(const TruthTable& o) const;
  [[nodiscard]] TruthTable operator~() const;
  bool operator==(const TruthTable& o) const = default;

  /// Positive / negative cofactor with respect to `var` (same num_vars).
  [[nodiscard]] TruthTable cofactor(int var, bool value) const;

  /// True if the function depends on `var`.
  [[nodiscard]] bool depends_on(int var) const;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

 private:
  int num_vars_ = 0;
  std::vector<std::uint64_t> words_;
  void mask_tail();
};

/// A product term over a small support: variable i appears positively if
/// bit i of `pos` is set, negatively if bit i of `neg` is set.
struct SmallCube {
  std::uint32_t pos = 0;
  std::uint32_t neg = 0;

  [[nodiscard]] int num_literals() const;
  bool operator==(const SmallCube&) const = default;
};

/// Truth table of a single cube.
TruthTable cube_to_tt(const SmallCube& cube, int num_vars);

/// Truth table of a sum of cubes.
TruthTable sop_to_tt(const std::vector<SmallCube>& cubes, int num_vars);

}  // namespace lsml::tt
