#include "tt/truth_table.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace lsml::tt {

namespace {

// Magic masks for variables living inside one 64-bit word.
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > kMaxVars) {
    throw std::invalid_argument("TruthTable: unsupported variable count");
  }
  const std::uint64_t bits = 1ULL << num_vars;
  words_.assign(bits <= 64 ? 1 : bits / 64, 0);
}

void TruthTable::set(std::uint64_t minterm, bool v) {
  const std::uint64_t mask = 1ULL << (minterm & 63);
  if (v) {
    words_[minterm >> 6] |= mask;
  } else {
    words_[minterm >> 6] &= ~mask;
  }
}

TruthTable TruthTable::var(int num_vars, int v) {
  assert(v >= 0 && v < num_vars);
  TruthTable t(num_vars);
  if (v < 6) {
    for (auto& w : t.words_) {
      w = kVarMask[v];
    }
  } else {
    // Variable index >= 6: whole words alternate in blocks of 2^(v-6).
    const std::size_t block = 1ULL << (v - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      if ((i / block) & 1) {
        t.words_[i] = ~0ULL;
      }
    }
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    for (auto& w : t.words_) {
      w = ~0ULL;
    }
    t.mask_tail();
  }
  return t;
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

bool TruthTable::is_const0() const {
  for (std::uint64_t w : words_) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

bool TruthTable::is_const1() const { return count_ones() == num_minterms(); }

TruthTable& TruthTable::operator&=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= o.words_[i];
  }
  return *this;
}

TruthTable& TruthTable::operator|=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= o.words_[i];
  }
  return *this;
}

TruthTable& TruthTable::operator^=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= o.words_[i];
  }
  return *this;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  TruthTable r = *this;
  r &= o;
  return r;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  TruthTable r = *this;
  r |= o;
  return r;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  TruthTable r = *this;
  r ^= o;
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r = *this;
  for (auto& w : r.words_) {
    w = ~w;
  }
  r.mask_tail();
  return r;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  TruthTable r = *this;
  if (var < 6) {
    const std::uint64_t mask = kVarMask[var];
    const int shift = 1 << var;
    for (auto& w : r.words_) {
      if (value) {
        w = (w & mask) | ((w & mask) >> shift);
      } else {
        w = (w & ~mask) | ((w & ~mask) << shift);
      }
    }
  } else {
    const std::size_t block = 1ULL << (var - 6);
    for (std::size_t i = 0; i < r.words_.size(); ++i) {
      const bool in_high = (i / block) & 1;
      if (value != in_high) {
        // Copy from the sibling block.
        r.words_[i] = words_[value ? i + block : i - block];
      }
    }
  }
  return r;
}

bool TruthTable::depends_on(int var) const {
  return cofactor(var, false) != cofactor(var, true);
}

void TruthTable::mask_tail() {
  if (num_vars_ < 6) {
    words_[0] &= (1ULL << (1ULL << num_vars_)) - 1;
  }
}

int SmallCube::num_literals() const {
  return std::popcount(pos) + std::popcount(neg);
}

TruthTable cube_to_tt(const SmallCube& cube, int num_vars) {
  TruthTable t = TruthTable::constant(num_vars, true);
  for (int v = 0; v < num_vars; ++v) {
    if (cube.pos & (1u << v)) {
      t &= TruthTable::var(num_vars, v);
    }
    if (cube.neg & (1u << v)) {
      t &= ~TruthTable::var(num_vars, v);
    }
  }
  return t;
}

TruthTable sop_to_tt(const std::vector<SmallCube>& cubes, int num_vars) {
  TruthTable t = TruthTable::constant(num_vars, false);
  for (const auto& cube : cubes) {
    t |= cube_to_tt(cube, num_vars);
  }
  return t;
}

}  // namespace lsml::tt
