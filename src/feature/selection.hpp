#pragma once
// Univariate feature scoring and selection.
//
// C++ equivalents of the scikit-learn utilities several teams used
// (SelectKBest / SelectPercentile with chi2, f_classif-style separation,
// mutual_info_classif) plus plain label correlation, all specialized for
// binary features and binary labels.

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace lsml::feature {

/// Mutual information I(X_i; Y) in nats for every input column.
std::vector<double> mutual_information(const data::Dataset& ds);

/// Chi-squared statistic of the 2x2 contingency table per column.
std::vector<double> chi2_scores(const data::Dataset& ds);

/// |Pearson correlation| between column and label.
std::vector<double> correlation_scores(const data::Dataset& ds);

/// Indices of the k highest-scoring features (ties broken by index).
std::vector<std::size_t> select_k_best(const std::vector<double>& scores,
                                       std::size_t k);

/// Indices of the top `percent` (0-100] of features by score.
std::vector<std::size_t> select_percentile(const std::vector<double>& scores,
                                           double percent);

}  // namespace lsml::feature
