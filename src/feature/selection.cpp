#include "feature/selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lsml::feature {

namespace {

struct Table2x2 {
  double n11 = 0;  // x=1, y=1
  double n10 = 0;  // x=1, y=0
  double n01 = 0;  // x=0, y=1
  double n00 = 0;  // x=0, y=0
};

Table2x2 contingency(const data::Dataset& ds, std::size_t col) {
  const auto& x = ds.column(col);
  const auto& y = ds.labels();
  Table2x2 t;
  const auto n = static_cast<double>(ds.num_rows());
  t.n11 = static_cast<double>(x.count_and(y));
  t.n10 = static_cast<double>(x.count_andnot(y));
  t.n01 = static_cast<double>(y.count_andnot(x));
  t.n00 = n - t.n11 - t.n10 - t.n01;
  return t;
}

}  // namespace

std::vector<double> mutual_information(const data::Dataset& ds) {
  std::vector<double> scores(ds.num_inputs(), 0.0);
  const auto n = static_cast<double>(ds.num_rows());
  if (n == 0) {
    return scores;
  }
  for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
    const Table2x2 t = contingency(ds, c);
    const double px1 = (t.n11 + t.n10) / n;
    const double py1 = (t.n11 + t.n01) / n;
    // I(X;Y) = sum p(x,y) log [p(x,y) / p(x)p(y)]
    double mi = 0.0;
    const double cells[4][3] = {
        {t.n11 / n, px1, py1},
        {t.n10 / n, px1, 1 - py1},
        {t.n01 / n, 1 - px1, py1},
        {t.n00 / n, 1 - px1, 1 - py1},
    };
    for (const auto& cell : cells) {
      if (cell[0] > 0.0 && cell[1] > 0.0 && cell[2] > 0.0) {
        mi += cell[0] * std::log(cell[0] / (cell[1] * cell[2]));
      }
    }
    scores[c] = std::max(0.0, mi);
  }
  return scores;
}

std::vector<double> chi2_scores(const data::Dataset& ds) {
  std::vector<double> scores(ds.num_inputs(), 0.0);
  const auto n = static_cast<double>(ds.num_rows());
  if (n == 0) {
    return scores;
  }
  for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
    const Table2x2 t = contingency(ds, c);
    const double rx1 = t.n11 + t.n10;
    const double rx0 = t.n01 + t.n00;
    const double cy1 = t.n11 + t.n01;
    const double cy0 = t.n10 + t.n00;
    double chi2 = 0.0;
    const double obs[4] = {t.n11, t.n10, t.n01, t.n00};
    const double exp[4] = {rx1 * cy1 / n, rx1 * cy0 / n, rx0 * cy1 / n,
                           rx0 * cy0 / n};
    for (int i = 0; i < 4; ++i) {
      if (exp[i] > 0.0) {
        const double d = obs[i] - exp[i];
        chi2 += d * d / exp[i];
      }
    }
    scores[c] = chi2;
  }
  return scores;
}

std::vector<double> correlation_scores(const data::Dataset& ds) {
  std::vector<double> scores(ds.num_inputs(), 0.0);
  const auto n = static_cast<double>(ds.num_rows());
  if (n == 0) {
    return scores;
  }
  const double py = ds.label_fraction();
  const double sy = std::sqrt(py * (1 - py));
  for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
    const Table2x2 t = contingency(ds, c);
    const double px = (t.n11 + t.n10) / n;
    const double sx = std::sqrt(px * (1 - px));
    if (sx == 0.0 || sy == 0.0) {
      continue;
    }
    const double cov = t.n11 / n - px * py;
    scores[c] = std::abs(cov / (sx * sy));
  }
  return scores;
}

std::vector<std::size_t> select_k_best(const std::vector<double>& scores,
                                       std::size_t k) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, scores.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

std::vector<std::size_t> select_percentile(const std::vector<double>& scores,
                                           double percent) {
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(scores.size() * percent / 100.0)));
  return select_k_best(scores, k);
}

}  // namespace lsml::feature
