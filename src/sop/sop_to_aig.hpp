#pragma once
// Cover-to-AIG synthesis.
//
// Converts a wide-cube cover (e.g. an ESPRESSO result or a decision-tree
// path cover) into an AIG: balanced AND tree per cube, balanced OR tree
// over cubes. This is the PLA -> AIG step every team performed with ABC.

#include "aig/aig.hpp"
#include "sop/cube.hpp"

namespace lsml::sop {

/// Builds the cover as the single output of a fresh AIG over `num_inputs`
/// primary inputs (cube variables map 1:1 to PIs).
aig::Aig cover_to_aig(const Cover& cover, std::size_t num_inputs);

/// Builds the cover inside an existing AIG over the given leaf literals.
aig::Lit cover_to_lit(aig::Aig& g, const Cover& cover,
                      const std::vector<aig::Lit>& leaves);

}  // namespace lsml::sop
