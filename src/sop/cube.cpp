#include "sop/cube.hpp"

#include <algorithm>

namespace lsml::sop {

Cube Cube::minterm(const core::BitVec& row) {
  Cube c(row.size());
  c.mask.fill(true);
  c.value = row;
  return c;
}

bool Cube::covers_row(const core::BitVec& row) const {
  // Covered iff row agrees with value on every bound variable.
  const std::size_t nw = mask.num_words();
  for (std::size_t w = 0; w < nw; ++w) {
    if ((row.word(w) ^ value.word(w)) & mask.word(w)) {
      return false;
    }
  }
  return true;
}

bool Cube::contains(const Cube& other) const {
  // this ⊇ other iff this binds a subset of other's literals, with equal
  // polarity on the shared ones.
  const std::size_t nw = mask.num_words();
  for (std::size_t w = 0; w < nw; ++w) {
    if (mask.word(w) & ~other.mask.word(w)) {
      return false;
    }
    if ((value.word(w) ^ other.value.word(w)) & mask.word(w)) {
      return false;
    }
  }
  return true;
}

bool cover_covers_row(const Cover& cover, const core::BitVec& row) {
  return std::any_of(cover.begin(), cover.end(),
                     [&](const Cube& c) { return c.covers_row(row); });
}

core::BitVec cover_predict(const Cover& cover, const data::Dataset& ds) {
  core::BitVec out(ds.num_rows());
  const auto rows = dataset_rows(ds);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (cover_covers_row(cover, rows[r])) {
      out.set(r, true);
    }
  }
  return out;
}

void remove_absorbed(Cover& cover) {
  // Wider cubes (fewer literals) absorb narrower ones; sort by literal count
  // so each cube only needs to be checked against earlier (wider) cubes.
  std::sort(cover.begin(), cover.end(), [](const Cube& a, const Cube& b) {
    return a.num_literals() < b.num_literals();
  });
  Cover kept;
  kept.reserve(cover.size());
  for (const Cube& c : cover) {
    const bool absorbed = std::any_of(
        kept.begin(), kept.end(), [&](const Cube& k) { return k.contains(c); });
    if (!absorbed) {
      kept.push_back(c);
    }
  }
  cover = std::move(kept);
}

std::vector<core::BitVec> dataset_rows(const data::Dataset& ds) {
  std::vector<core::BitVec> rows(ds.num_rows(),
                                 core::BitVec(ds.num_inputs()));
  for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
    const auto& col = ds.column(c);
    for (std::size_t r = 0; r < ds.num_rows(); ++r) {
      if (col.get(r)) {
        rows[r].set(c, true);
      }
    }
  }
  return rows;
}

std::size_t cover_literals(const Cover& cover) {
  std::size_t total = 0;
  for (const Cube& c : cover) {
    total += c.num_literals();
  }
  return total;
}

}  // namespace lsml::sop
