#pragma once
// ESPRESSO-style heuristic two-level minimization on sampled data.
//
// The contest's functions are incompletely specified: the onset/offset are
// the sampled training minterms and everything else is a don't-care. The
// minimizer starts from the onset minterms and runs the classic
// EXPAND -> (absorb) -> IRREDUNDANT loop against the sampled offset, which
// is exactly how the teams used ESPRESSO ("finish optimization after the
// first irredundant operation", Team 1).

#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "sop/cube.hpp"

namespace lsml::sop {

struct EspressoOptions {
  int max_passes = 1;          ///< expand+irredundant rounds (1 = Team 1's)
  bool shuffle_vars = true;    ///< randomized literal-raising order
  /// Optional caps on the onset/offset sample sizes used by EXPAND
  /// (0 = no cap). Used at reduced bench scales to bound runtime on the
  /// widest benchmarks; the algorithm is unchanged.
  std::size_t max_onset = 0;
  std::size_t max_offset = 0;
};

/// Minimizes the incompletely specified function given by `train`
/// (label 1 = onset sample, label 0 = offset sample). Returns a cover whose
/// predictions match every training row.
Cover espresso(const data::Dataset& train, const EspressoOptions& options,
               core::Rng& rng);

/// Single EXPAND pass: raises literals of each cube as long as no offset
/// row becomes covered. Exposed for testing.
void expand_against_offset(Cover& cover,
                           const std::vector<core::BitVec>& offset_rows,
                           bool shuffle, core::Rng& rng);

/// Greedy IRREDUNDANT: keeps a minimal subset of cubes that still covers
/// all onset rows. Exposed for testing.
void irredundant(Cover& cover, const std::vector<core::BitVec>& onset_rows);

}  // namespace lsml::sop
