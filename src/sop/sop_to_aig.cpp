#include "sop/sop_to_aig.hpp"

#include <stdexcept>

#include "aig/aig_build.hpp"

namespace lsml::sop {

aig::Lit cover_to_lit(aig::Aig& g, const Cover& cover,
                      const std::vector<aig::Lit>& leaves) {
  std::vector<aig::Lit> terms;
  terms.reserve(cover.size());
  for (const Cube& cube : cover) {
    if (cube.num_vars() > leaves.size()) {
      throw std::invalid_argument("cover_to_lit: cube wider than leaves");
    }
    std::vector<aig::Lit> lits;
    lits.reserve(cube.num_literals());
    for (std::size_t v = 0; v < cube.num_vars(); ++v) {
      if (cube.mask.get(v)) {
        lits.push_back(aig::lit_notc(leaves[v], !cube.value.get(v)));
      }
    }
    terms.push_back(aig::and_tree(g, std::move(lits)));
  }
  return aig::or_tree(g, std::move(terms));
}

aig::Aig cover_to_aig(const Cover& cover, std::size_t num_inputs) {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> leaves;
  leaves.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  g.add_output(cover_to_lit(g, cover, leaves));
  return g;
}

}  // namespace lsml::sop
