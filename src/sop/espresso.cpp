#include "sop/espresso.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

namespace lsml::sop {

namespace {

// Number of bound variables of `cube` on which `row` disagrees.
std::size_t diff_count(const Cube& cube, const core::BitVec& row) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < cube.mask.num_words(); ++w) {
    count += static_cast<std::size_t>(std::popcount(
        (row.word(w) ^ cube.value.word(w)) & cube.mask.word(w)));
  }
  return count;
}

}  // namespace

void expand_against_offset(Cover& cover,
                           const std::vector<core::BitVec>& offset_rows,
                           bool shuffle, core::Rng& rng) {
  if (cover.empty()) {
    return;
  }
  const std::size_t num_vars = cover[0].num_vars();
  std::vector<std::size_t> var_order(num_vars);
  std::iota(var_order.begin(), var_order.end(), 0);

  std::vector<std::size_t> diff(offset_rows.size());
  std::vector<std::size_t> critical;  // offset rows with exactly one diff
  for (Cube& cube : cover) {
    for (std::size_t r = 0; r < offset_rows.size(); ++r) {
      diff[r] = diff_count(cube, offset_rows[r]);
    }
    critical.clear();
    for (std::size_t r = 0; r < offset_rows.size(); ++r) {
      if (diff[r] == 1) {
        critical.push_back(r);
      }
    }
    if (shuffle) {
      for (std::size_t i = var_order.size(); i > 1; --i) {
        std::swap(var_order[i - 1], var_order[rng.below(i)]);
      }
    }
    for (std::size_t v : var_order) {
      if (!cube.mask.get(v)) {
        continue;
      }
      // Raising v is illegal iff some offset row's only disagreement is v.
      const bool blocked = std::any_of(
          critical.begin(), critical.end(), [&](std::size_t r) {
            return offset_rows[r].get(v) != cube.value.get(v);
          });
      if (blocked) {
        continue;
      }
      cube.mask.set(v, false);
      // Update diff counts of rows that disagreed at v.
      for (std::size_t r = 0; r < offset_rows.size(); ++r) {
        if (offset_rows[r].get(v) != cube.value.get(v) && diff[r] > 0) {
          if (--diff[r] == 1) {
            critical.push_back(r);
          }
        }
      }
      // Drop stale entries lazily: rows whose diff left 1 are re-filtered
      // inside the `blocked` predicate by rechecking membership cheaply.
      critical.erase(std::remove_if(critical.begin(), critical.end(),
                                    [&](std::size_t r) { return diff[r] != 1; }),
                     critical.end());
    }
  }
}

void irredundant(Cover& cover, const std::vector<core::BitVec>& onset_rows) {
  if (cover.empty()) {
    return;
  }
  // covered[c] = bitset over onset rows covered by cube c.
  std::vector<core::BitVec> covered(cover.size(),
                                    core::BitVec(onset_rows.size()));
  for (std::size_t c = 0; c < cover.size(); ++c) {
    for (std::size_t r = 0; r < onset_rows.size(); ++r) {
      if (cover[c].covers_row(onset_rows[r])) {
        covered[c].set(r, true);
      }
    }
  }
  // Greedy set cover, biggest contribution first.
  core::BitVec uncovered(onset_rows.size(), true);
  std::vector<std::size_t> order(cover.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return covered[a].count() > covered[b].count();
  });
  Cover kept;
  kept.reserve(cover.size());
  for (std::size_t c : order) {
    if (uncovered.count_and(covered[c]) == 0) {
      continue;
    }
    uncovered &= ~covered[c];
    kept.push_back(cover[c]);
    if (uncovered.count() == 0) {
      break;
    }
  }
  cover = std::move(kept);
}

Cover espresso(const data::Dataset& train, const EspressoOptions& options,
               core::Rng& rng) {
  const auto rows = dataset_rows(train);
  std::vector<core::BitVec> onset_rows;
  std::vector<core::BitVec> offset_rows;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    (train.label(r) ? onset_rows : offset_rows).push_back(rows[r]);
  }
  if (options.max_onset != 0 && onset_rows.size() > options.max_onset) {
    onset_rows.resize(options.max_onset);
  }
  if (options.max_offset != 0 && offset_rows.size() > options.max_offset) {
    offset_rows.resize(options.max_offset);
  }
  Cover cover;
  cover.reserve(onset_rows.size());
  for (const auto& row : onset_rows) {
    cover.push_back(Cube::minterm(row));
  }
  remove_absorbed(cover);
  for (int pass = 0; pass < options.max_passes; ++pass) {
    const std::size_t before = cover.size();
    expand_against_offset(cover, offset_rows, options.shuffle_vars, rng);
    remove_absorbed(cover);
    irredundant(cover, onset_rows);
    if (cover.size() >= before && pass > 0) {
      break;
    }
  }
  return cover;
}

}  // namespace lsml::sop
