#pragma once
// Wide product terms (cubes) and covers over many variables.
//
// Unlike tt::SmallCube (<= 16 vars, used for cut resynthesis), these cubes
// span the full input width of a benchmark (up to hundreds of variables)
// and are the currency of the ESPRESSO-style two-level minimizer.

#include <cstddef>
#include <vector>

#include "core/bits.hpp"
#include "data/dataset.hpp"

namespace lsml::sop {

/// A product term: variable v is a literal iff mask[v] is set; its polarity
/// is value[v] (1 = positive). Unbound variables are don't-cares.
struct Cube {
  core::BitVec mask;
  core::BitVec value;

  Cube() = default;
  Cube(std::size_t num_vars) : mask(num_vars), value(num_vars) {}

  [[nodiscard]] std::size_t num_vars() const { return mask.size(); }
  [[nodiscard]] std::size_t num_literals() const { return mask.count(); }

  /// Minterm cube from a full assignment.
  static Cube minterm(const core::BitVec& row);

  /// True if the cube covers the given full assignment.
  [[nodiscard]] bool covers_row(const core::BitVec& row) const;

  /// True if this cube covers every minterm of `other` (single-direction
  /// containment: this ⊇ other).
  [[nodiscard]] bool contains(const Cube& other) const;

  bool operator==(const Cube& other) const = default;
};

/// A sum of cubes.
using Cover = std::vector<Cube>;

/// True if any cube in the cover covers `row`.
bool cover_covers_row(const Cover& cover, const core::BitVec& row);

/// Evaluates the cover on every row of a dataset (1 = covered).
core::BitVec cover_predict(const Cover& cover, const data::Dataset& ds);

/// Removes duplicate and absorbed cubes (cube contained in another).
void remove_absorbed(Cover& cover);

/// Extracts dataset rows as row-major bit vectors.
std::vector<core::BitVec> dataset_rows(const data::Dataset& ds);

/// Total number of literals in the cover.
std::size_t cover_literals(const Cover& cover);

}  // namespace lsml::sop
