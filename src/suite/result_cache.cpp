#include "suite/result_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/bits.hpp"

namespace fs = std::filesystem;

namespace lsml::suite {
namespace {

constexpr const char* kMagic = "# lsml-result v";

std::string header_line() {
  return kMagic + std::to_string(kResultCacheSchemaVersion);
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Hexfloat spelling: the only decimal-free, bit-exact double round-trip.
std::string double_repr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_double(const std::string& text, double* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

/// Reads "key value" where value is the rest of the line; empty on miss.
bool next_field(std::istream& is, const std::string& key, std::string* value) {
  std::string line;
  if (!std::getline(is, line) || line.size() < key.size() + 1 ||
      line.compare(0, key.size(), key) != 0 || line[key.size()] != ' ') {
    return false;
  }
  *value = line.substr(key.size() + 1);
  return true;
}

}  // namespace

std::uint64_t task_content_hash(const oracle::Benchmark& bench,
                                std::uint64_t seed) {
  return task_content_hash(bench.id, seed, bench.train.content_hash(),
                           bench.valid.content_hash(),
                           bench.test.content_hash());
}

std::uint64_t task_content_hash(int benchmark_id, std::uint64_t seed,
                                std::uint64_t train_hash,
                                std::uint64_t valid_hash,
                                std::uint64_t test_hash) {
  // Combine the independent digests; any single-bit change in any
  // dataset, the id, the seed, or the schema version flips the key and
  // forces a recompute.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * (kResultCacheSchemaVersion + 1);
  h = core::hash_combine(h, static_cast<std::uint64_t>(benchmark_id));
  h = core::hash_combine(h, seed);
  h = core::hash_combine(h, train_hash);
  h = core::hash_combine(h, valid_hash);
  return core::hash_combine(h, test_hash);
}

std::string ResultCache::entry_path(const std::string& team_key,
                                    const std::string& benchmark,
                                    std::uint64_t content_hash) const {
  return (fs::path(dir_) / team_key /
          (benchmark + "-" + hex16(content_hash) + ".result"))
      .string();
}

std::optional<CachedTask> ResultCache::load(const std::string& team_key,
                                            const std::string& benchmark,
                                            std::uint64_t content_hash,
                                            bool want_aag) const {
  if (!enabled()) {
    return std::nullopt;
  }
  std::ifstream is(entry_path(team_key, benchmark, content_hash),
                   std::ios::binary);
  if (!is) {
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(is, line) || line != header_line()) {
    return std::nullopt;  // written by an incompatible build
  }
  CachedTask task;
  portfolio::BenchmarkResult& r = task.result;
  std::string value;
  const auto read_u32 = [&](const char* key, std::uint32_t* out) {
    if (!next_field(is, key, &value)) {
      return false;
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return false;
    }
    *out = static_cast<std::uint32_t>(v);
    return true;
  };
  const auto read_double = [&](const char* key, double* out) {
    return next_field(is, key, &value) && parse_double(value, out);
  };
  if (!next_field(is, "team", &value)) {
    return std::nullopt;
  }
  r.benchmark_id = 0;
  std::uint32_t id = 0;
  if (!read_u32("benchmark_id", &id)) {
    return std::nullopt;
  }
  r.benchmark_id = static_cast<int>(id);
  if (!next_field(is, "benchmark", &r.benchmark) ||
      !next_field(is, "method", &r.method) ||
      !read_double("train_acc", &r.train_acc) ||
      !read_double("valid_acc", &r.valid_acc) ||
      !read_double("test_acc", &r.test_acc) ||
      !read_u32("num_ands", &r.num_ands) ||
      !read_u32("num_levels", &r.num_levels)) {
    return std::nullopt;
  }
  if (!next_field(is, "verified", &value) ||
      !synth::verify_status_from_string(value, &r.verified)) {
    return std::nullopt;
  }
  if (!next_field(is, "script", &r.opt_script)) {
    return std::nullopt;
  }
  std::uint32_t num_passes = 0;
  if (!read_u32("synth_passes", &num_passes) || num_passes > (1u << 20)) {
    return std::nullopt;
  }
  r.synth_trace.reserve(num_passes);
  for (std::uint32_t p = 0; p < num_passes; ++p) {
    if (!next_field(is, "pass", &value)) {
      return std::nullopt;
    }
    // "<ands_before> <ands_after> <levels_before> <levels_after> <ms-hex>
    //  <spelling...>" — the spelling goes last because it contains spaces.
    synth::PassStats stats;
    std::istringstream fields(value);
    std::string ms_text;
    if (!(fields >> stats.ands_before >> stats.ands_after >>
          stats.levels_before >> stats.levels_after >> ms_text) ||
        !parse_double(ms_text, &stats.ms)) {
      return std::nullopt;
    }
    std::getline(fields >> std::ws, stats.pass);
    if (stats.pass.empty()) {
      return std::nullopt;
    }
    r.synth_trace.push_back(std::move(stats));
  }
  if (!next_field(is, "aag", &value)) {
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long long aag_bytes = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return std::nullopt;
  }
  if (!want_aag) {
    return task;  // metrics are complete; skip the circuit body
  }
  // Bound the count by what the file can still hold: a corrupt entry must
  // be a miss, not a std::length_error out of resize().
  const std::streampos body_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::streampos file_end = is.tellg();
  if (body_start < 0 || file_end < body_start ||
      static_cast<unsigned long long>(file_end - body_start) < aag_bytes) {
    return std::nullopt;
  }
  is.seekg(body_start);
  task.aag.resize(aag_bytes);
  is.read(task.aag.data(), static_cast<std::streamsize>(aag_bytes));
  if (static_cast<unsigned long long>(is.gcount()) != aag_bytes) {
    return std::nullopt;  // truncated entry
  }
  return task;
}

void ResultCache::store(const std::string& team_key,
                        const std::string& benchmark,
                        std::uint64_t content_hash,
                        const CachedTask& task) const {
  if (!enabled()) {
    return;
  }
  std::error_code ec;
  const fs::path path = entry_path(team_key, benchmark, content_hash);
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    return;
  }
  // Write-then-rename so readers never observe a torn entry.
  const fs::path tmp = path.string() + ".tmp";
  bool written = false;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (os) {
      const portfolio::BenchmarkResult& r = task.result;
      os << header_line() << '\n'
         << "team " << team_key << '\n'
         << "benchmark_id " << r.benchmark_id << '\n'
         << "benchmark " << r.benchmark << '\n'
         << "method " << r.method << '\n'
         << "train_acc " << double_repr(r.train_acc) << '\n'
         << "valid_acc " << double_repr(r.valid_acc) << '\n'
         << "test_acc " << double_repr(r.test_acc) << '\n'
         << "num_ands " << r.num_ands << '\n'
         << "num_levels " << r.num_levels << '\n'
         << "verified " << synth::to_string(r.verified) << '\n'
         << "script " << r.opt_script << '\n'
         << "synth_passes " << r.synth_trace.size() << '\n';
      for (const synth::PassStats& s : r.synth_trace) {
        os << "pass " << s.ands_before << ' ' << s.ands_after << ' '
           << s.levels_before << ' ' << s.levels_after << ' '
           << double_repr(s.ms) << ' ' << s.pass << '\n';
      }
      os << "aag " << task.aag.size() << '\n'
         << task.aag;
      written = static_cast<bool>(os);
    }
  }
  if (written) {
    fs::rename(tmp, path, ec);
  }
  if (!written || ec) {
    // Never leave a torn .tmp behind (e.g. disk-full mid-write).
    fs::remove(tmp, ec);
  }
}

}  // namespace lsml::suite
