#include "suite/generate.hpp"

#include <filesystem>
#include <stdexcept>
#include <string>

#include "pla/pla.hpp"

namespace fs = std::filesystem;

namespace lsml::suite {

void write_benchmark_files(const oracle::Benchmark& bench,
                           const std::string& dir) {
  fs::create_directories(dir);
  const std::string base = (fs::path(dir) / bench.name).string();
  pla::write_pla_file(pla::Pla::from_dataset(bench.train),
                      base + ".train.pla");
  pla::write_pla_file(pla::Pla::from_dataset(bench.valid),
                      base + ".valid.pla");
  pla::write_pla_file(pla::Pla::from_dataset(bench.test), base + ".test.pla");
}

std::vector<std::string> generate_suite(const std::string& dir,
                                        const GenerateOptions& options) {
  if (options.first < 0 || options.last >= 100 ||
      options.first > options.last) {
    throw std::invalid_argument(
        "generate_suite: benchmark id range [" +
        std::to_string(options.first) + ", " + std::to_string(options.last) +
        "] must lie within the contest's ex00..ex99");
  }
  if (options.rows_per_split == 0) {
    throw std::invalid_argument(
        "generate_suite: rows_per_split must be >= 1 (a 0-row PLA is "
        "unreadable)");
  }
  oracle::SuiteOptions suite_options;
  suite_options.rows_per_split = options.rows_per_split;
  suite_options.seed = options.seed;
  std::vector<std::string> names;
  for (int id = options.first; id <= options.last; ++id) {
    const oracle::Benchmark bench = oracle::make_benchmark(id, suite_options);
    write_benchmark_files(bench, dir);
    names.push_back(bench.name);
  }
  return names;
}

}  // namespace lsml::suite
