#include "suite/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "aig/aig_io.hpp"
#include "core/bits.hpp"
#include "core/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "suite/manifest.hpp"

namespace fs = std::filesystem;

namespace lsml::suite {
namespace {

/// One (entry, benchmark) pair the cache could not serve.
struct PendingTask {
  std::size_t entry = 0;
  std::size_t bench = 0;
  std::uint64_t hash = 0;
};

std::string to_aag_text(const aig::Aig& circuit) {
  std::ostringstream os;
  aig::write_aag(circuit, os);
  return os.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  os << text;
}

/// Fixed-precision decimal for leaderboards: deterministic across runs.
std::string fixed6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Benchmark names and team keys are user-controlled (file stems, registry
/// names); escape them so the leaderboard stays parseable JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string leaderboard_csv(const std::vector<portfolio::TeamRun>& runs,
                            const std::vector<std::string>& keys) {
  // Pass wall times stay out of the leaderboards deliberately: artifacts
  // are byte-deterministic in (inputs, entries, seed, pipeline), and
  // timings are not. They live in the cache entries and `lsml synth`.
  std::ostringstream os;
  os << "team,team_key,benchmark,method,train_acc,valid_acc,test_acc,"
        "num_ands,num_levels,raw_ands,ands_saved,synth_passes,verified,"
        "script\n";
  for (std::size_t e = 0; e < runs.size(); ++e) {
    for (const auto& r : runs[e].results) {
      // Team keys and benchmark names come from registry names and on-disk
      // file stems, so they get the same quoting as the method string.
      os << runs[e].team << ',' << csv_quote(keys[e]) << ','
         << csv_quote(r.benchmark) << ','
         << csv_quote(r.method) << ',' << fixed6(r.train_acc) << ','
         << fixed6(r.valid_acc) << ',' << fixed6(r.test_acc) << ','
         << r.num_ands << ',' << r.num_levels << ','
         << r.synth_ands_in() << ',' << r.synth_ands_saved() << ','
         << r.synth_trace.size() << ','
         << synth::to_string(r.verified) << ','
         << csv_quote(r.opt_script) << '\n';
    }
  }
  return os.str();
}

std::string leaderboard_json(const std::vector<portfolio::TeamRun>& runs,
                             const std::vector<std::string>& keys,
                             const std::vector<std::string>& benchmarks,
                             const RunnerOptions& options) {
  // Rank by average test accuracy (Table III order); stable so ties keep
  // entry order and reruns are byte-identical.
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&runs](std::size_t a, std::size_t b) {
                     return runs[a].avg_test_acc() > runs[b].avg_test_acc();
                   });
  std::ostringstream os;
  os << "{\n  \"schema\": \"lsml-leaderboard-v4\",\n  \"seed\": "
     << options.seed << ",\n  \"opt\": {\"script\": \""
     << json_escape(options.opt.script_display()) << "\", \"node_budget\": "
     << options.opt.options.node_budget << ", \"max_rounds\": "
     << options.opt.options.max_rounds << ", \"verify\": "
     << (options.opt.options.verify_equivalence ? "true" : "false")
     << "},\n  \"benchmarks\": [";
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    os << (b == 0 ? "" : ", ") << '"' << json_escape(benchmarks[b]) << '"';
  }
  os << "],\n  \"teams\": [\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const portfolio::TeamRun& run = runs[order[i]];
    os << "    {\"rank\": " << (i + 1) << ", \"team\": " << run.team
       << ", \"key\": \"" << json_escape(keys[order[i]])
       << "\", \"avg_test_acc\": "
       << fixed6(run.avg_test_acc()) << ", \"avg_ands\": "
       << fixed6(run.avg_ands()) << ", \"avg_levels\": "
       << fixed6(run.avg_levels()) << ", \"overfit\": "
       << fixed6(run.overfit()) << ", \"avg_raw_ands\": "
       << fixed6(run.avg_synth_ands_in()) << ", \"avg_ands_saved\": "
       << fixed6(run.avg_synth_saved()) << ", \"verified\": "
       << fixed6(run.verified_fraction()) << "}"
       << (i + 1 < order.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

std::string entry_key(const portfolio::ContestEntry& entry) {
  if (!entry.factory.name().empty()) {
    return entry.factory.name();
  }
  return "team" + std::to_string(entry.team);
}

RunnerReport run_contest_on(const std::vector<portfolio::ContestEntry>& entries,
                            const std::vector<oracle::Benchmark>& suite,
                            const RunnerOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const ResultCache cache(options.cache_dir);
  // Every task below (and every learner inside it) optimizes through this
  // request; installed before workers spawn, restored when the run ends.
  // The experience table shares the result cache's directory, so scripts
  // an auto run learns survive to the next run; the snapshot is taken here
  // — once, before any task — so same-run stores never change results.
  synth::OptRequest opt = options.opt;
  opt.experience_dir = options.cache_dir;
  const synth::ScopedOptRequest scoped_opt(opt);

  std::vector<std::string> keys;
  keys.reserve(entries.size());
  std::unordered_set<std::string> unique_keys;
  for (const auto& entry : entries) {
    keys.push_back(entry_key(entry));
    if (!unique_keys.insert(keys.back()).second) {
      throw std::invalid_argument(
          "run_contest_on: duplicate contest entry key '" + keys.back() +
          "' (artifacts and cache rows would collide)");
    }
  }

  RunnerReport report;
  report.runs.resize(entries.size());
  report.benchmarks.reserve(suite.size());
  for (const auto& bench : suite) {
    report.benchmarks.push_back(bench.name);
  }

  // The request changes every task's circuit, so its fingerprint is part
  // of every key: results computed under one script/budget/search
  // configuration are never served under another.
  const std::uint64_t pipeline_salt =
      core::hash_combine(options.config_salt, options.opt.fingerprint());
  std::vector<std::uint64_t> bench_hash(suite.size());
  for (std::size_t b = 0; b < suite.size(); ++b) {
    bench_hash[b] = core::hash_combine(
        task_content_hash(suite[b], options.seed), pipeline_salt);
  }
  // The team number seeds the per-task RNG stream (contest_rng), so it is
  // part of the key: the same factory re-run under a different number is a
  // different task and must never hit the other's entries.
  const auto task_key = [&](std::size_t e, std::size_t b) {
    return core::hash_combine(bench_hash[b],
                              static_cast<std::uint64_t>(entries[e].team));
  };

  // Circuits stream straight to per-task files (paths are unique, so the
  // parallel writes never conflict) instead of buffering every AIGER body
  // for the whole run. The aig/ tree mirrors exactly this run: leftovers
  // from previous configurations are dropped up front.
  if (options.write_artifacts) {
    std::error_code ec;
    fs::remove_all(fs::path(options.out_dir) / "aig", ec);
    // Stale leaderboards go too: if this run fails midway, the out-dir
    // must not pair a previous run's metrics with this run's circuits.
    fs::remove(fs::path(options.out_dir) / "leaderboard.csv", ec);
    fs::remove(fs::path(options.out_dir) / "leaderboard.json", ec);
    for (const auto& key : keys) {
      fs::create_directories(fs::path(options.out_dir) / "aig" / key);
    }
  }
  const auto artifact_path = [&](std::size_t e, std::size_t b) {
    return (fs::path(options.out_dir) / "aig" / keys[e] /
            (suite[b].name + ".aag"))
        .string();
  };

  std::vector<PendingTask> pending;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    report.runs[e].team = entries[e].team;
    report.runs[e].results.resize(suite.size());
    for (std::size_t b = 0; b < suite.size(); ++b) {
      const std::uint64_t key = task_key(e, b);
      if (auto hit = cache.load(keys[e], suite[b].name, key,
                                /*want_aag=*/options.write_artifacts)) {
        report.runs[e].results[b] = std::move(hit->result);
        if (options.write_artifacts) {
          write_text_file(artifact_path(e, b), hit->aag);
        }
        ++report.cache_hits;
      } else {
        pending.push_back({e, b, key});
      }
    }
  }
  report.cache_misses = static_cast<int>(pending.size());

  // Per-task telemetry: a span per contest task plus a wall-time
  // histogram. Side-channel only — leaderboard artifacts deliberately
  // exclude wall times, so these never touch an artifact byte.
  obs::Registry& obs_reg = obs::Registry::instance();
  obs::Counter& task_counter = obs_reg.counter("lsml_suite_tasks_total");
  obs::Histogram& task_us = obs_reg.histogram("lsml_suite_task_us");
  const auto run_task = [&](std::size_t t) {
    const PendingTask& task = pending[t];
    const portfolio::ContestEntry& entry = entries[task.entry];
    const oracle::Benchmark& bench = suite[task.bench];
    obs::ScopedSpan task_span("task", "suite");
    const auto task_start = std::chrono::steady_clock::now();
    const std::unique_ptr<learn::Learner> learner = entry.factory.make();
    core::Rng rng = portfolio::contest_rng(options.seed, entry.team, bench.id);
    aig::Aig circuit{0};
    portfolio::BenchmarkResult result =
        portfolio::evaluate_on(*learner, bench, rng, &circuit);
    // Only serialize the circuit when something consumes the text.
    std::string text;
    if (cache.enabled() || options.write_artifacts) {
      text = to_aag_text(circuit);
    }
    cache.store(keys[task.entry], bench.name, task.hash, {result, text});
    if (options.write_artifacts) {
      write_text_file(artifact_path(task.entry, task.bench), text);
    }
    if (options.verbosity >= 2) {
      std::fprintf(stderr, "  %s  %s  done\n", keys[task.entry].c_str(),
                   bench.name.c_str());
    }
    report.runs[task.entry].results[task.bench] = std::move(result);
    task_counter.add(1);
    const auto task_end = std::chrono::steady_clock::now();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        task_end - task_start)
                        .count();
    task_us.record(us > 0 ? static_cast<std::uint64_t>(us) : 0);
  };
  core::ThreadPool::run_indexed(pending.size(), options.num_threads,
                                run_task);

  if (options.write_artifacts) {
    report.leaderboard_csv_path =
        (fs::path(options.out_dir) / "leaderboard.csv").string();
    report.leaderboard_json_path =
        (fs::path(options.out_dir) / "leaderboard.json").string();
    write_text_file(report.leaderboard_csv_path,
                    leaderboard_csv(report.runs, keys));
    write_text_file(
        report.leaderboard_json_path,
        leaderboard_json(report.runs, keys, report.benchmarks, options));
  }

  report.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  portfolio::finalize_contest_stats(
      report.elapsed_ms, report.cache_hits + report.cache_misses,
      options.time_budget_ms, options.verbosity, &report.stats);
  if (options.verbosity >= 1) {
    std::fprintf(stderr,
                 "suite run: %zu tasks, %d from cache, %d computed "
                 "(%.0f ms)\n",
                 entries.size() * suite.size(), report.cache_hits,
                 report.cache_misses, report.elapsed_ms);
  }
  return report;
}

RunnerReport run_suite_dir(const std::string& suite_dir,
                           const std::vector<portfolio::ContestEntry>& entries,
                           const RunnerOptions& options) {
  const std::vector<oracle::Benchmark> suite = load_suite(suite_dir);
  if (suite.empty()) {
    throw std::runtime_error("run_suite_dir: no benchmark triples in " +
                             suite_dir);
  }
  if (options.verbosity >= 1) {
    std::fprintf(stderr, "loaded %zu benchmarks from %s\n", suite.size(),
                 suite_dir.c_str());
  }
  return run_contest_on(entries, suite, options);
}

}  // namespace lsml::suite
