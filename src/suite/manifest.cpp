#include "suite/manifest.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <unordered_set>

#include "core/bits.hpp"
#include "pla/pla.hpp"

namespace fs = std::filesystem;

namespace lsml::suite {
namespace {

/// Fills name/separator if `filename` is `<name><sep>train.pla`.
bool match_train_file(const std::string& filename, std::string* name,
                      char* sep) {
  for (const char s : {'.', '_'}) {
    const std::string suffix = std::string(1, s) + "train.pla";
    if (filename.size() > suffix.size() &&
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
      *name = filename.substr(0, filename.size() - suffix.size());
      *sep = s;
      return true;
    }
  }
  return false;
}

/// Numeric suffix of a benchmark name ("ex07" -> 7), or -1 if absent.
int trailing_number(const std::string& name) {
  std::size_t pos = name.size();
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1]))) {
    --pos;
  }
  if (pos == name.size() || name.size() - pos > 8) {
    return -1;
  }
  return std::stoi(name.substr(pos));
}

/// Directory-independent fallback id: FNV-1a of the name, truncated to a
/// non-negative int. Adding or removing unrelated triples never shifts it,
/// so RNG streams and cache keys stay put.
int name_hash_id(const std::string& name) {
  return static_cast<int>(core::fnv1a(name.data(), name.size()) &
                          0x3fffffff);
}

data::Dataset load_split(const std::string& path) {
  try {
    return pla::read_pla_file(path).to_dataset();
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace

std::vector<SuiteEntry> discover_suite(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("discover_suite: not a directory: " + dir);
  }
  std::vector<SuiteEntry> entries;
  std::unordered_set<std::string> seen;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (!de.is_regular_file()) {
      continue;
    }
    std::string name;
    char sep = '.';
    if (!match_train_file(de.path().filename().string(), &name, &sep)) {
      continue;
    }
    if (!seen.insert(name).second) {
      throw std::runtime_error("discover_suite: benchmark '" + name +
                               "' appears twice in " + dir);
    }
    SuiteEntry entry;
    entry.name = name;
    entry.train_path = de.path().string();
    const std::string base =
        (de.path().parent_path() / (name + sep)).string();
    entry.valid_path = base + "valid.pla";
    entry.test_path = base + "test.pla";
    for (const std::string* path : {&entry.valid_path, &entry.test_path}) {
      if (!fs::is_regular_file(*path)) {
        throw std::runtime_error("discover_suite: benchmark '" + name +
                                 "' is missing " + *path);
      }
    }
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SuiteEntry& a, const SuiteEntry& b) {
              return a.name < b.name;
            });
  // Ids are a pure function of each name alone, so a benchmark's RNG
  // stream and cache rows never shift when unrelated triples come or go:
  // numeric suffix when present ("ex07" -> 7), else a name hash. A suffix
  // collision ("a1"/"b1") merely shares an RNG stream; results stay
  // deterministic and per-benchmark.
  for (auto& entry : entries) {
    const int n = trailing_number(entry.name);
    entry.id = n >= 0 ? n : name_hash_id(entry.name);
  }
  return entries;
}

oracle::Benchmark load_benchmark(const SuiteEntry& entry) {
  oracle::Benchmark bench;
  bench.id = entry.id;
  bench.name = entry.name;
  bench.category = "disk";
  bench.train = load_split(entry.train_path);
  bench.valid = load_split(entry.valid_path);
  bench.test = load_split(entry.test_path);
  if (bench.valid.num_inputs() != bench.train.num_inputs() ||
      bench.test.num_inputs() != bench.train.num_inputs()) {
    throw std::runtime_error("load_benchmark: '" + entry.name +
                             "': train/valid/test disagree on input count");
  }
  bench.num_inputs = bench.train.num_inputs();
  return bench;
}

std::vector<oracle::Benchmark> load_suite(const std::string& dir) {
  const std::vector<SuiteEntry> entries = discover_suite(dir);
  std::vector<oracle::Benchmark> suite;
  suite.reserve(entries.size());
  for (const auto& entry : entries) {
    suite.push_back(load_benchmark(entry));
  }
  return suite;
}

}  // namespace lsml::suite
