#pragma once
// On-disk benchmark suite discovery (manifests).
//
// A suite directory holds one PLA triple per benchmark, exactly like the
// released IWLS 2020 contest distribution:
//   <name>.train.pla  <name>.valid.pla  <name>.test.pla
// (the underscore spelling `<name>_train.pla` of older exporters is
// accepted too). discover_suite() finds the triples; load_suite() reads
// them through the hardened PLA reader into contest benchmarks.

#include <string>
#include <vector>

#include "oracle/suite.hpp"

namespace lsml::suite {

/// One discovered train/valid/test triple.
struct SuiteEntry {
  std::string name;  ///< file stem, e.g. "ex07"
  /// Drives Rng::split(team, id). A pure function of `name` alone — the
  /// numeric suffix when present ("ex07" -> 7, so ex00..ex99 reproduces
  /// the in-memory contest seeding), else a stable name hash — so a
  /// benchmark's RNG stream never depends on what else is in the
  /// directory.
  int id = 0;
  std::string train_path;
  std::string valid_path;
  std::string test_path;
};

/// Scans `dir` (non-recursive) for PLA triples and returns them sorted by
/// name. Throws if `dir` is not a directory, a triple is incomplete, or
/// two triples share a name.
std::vector<SuiteEntry> discover_suite(const std::string& dir);

/// Loads one triple; validates that the three splits agree on input count.
/// Parse errors are rethrown with the offending path prepended.
oracle::Benchmark load_benchmark(const SuiteEntry& entry);

/// Discovers and loads every benchmark of `dir`.
std::vector<oracle::Benchmark> load_suite(const std::string& dir);

}  // namespace lsml::suite
