#pragma once
// Content-hash-keyed incremental result store.
//
// Maps (team key, benchmark name, content hash) to a completed contest
// task: the Table III metrics plus the synthesized circuit as AIGER text.
// The content hash covers the benchmark's three datasets, the contest
// seed, and kResultCacheSchemaVersion, so an entry is served only when
// re-running would provably reproduce it bit-for-bit; any change to the
// inputs or to result-affecting code misses and recomputes. Entries are
// one self-describing text file each:
//   <dir>/<team_key>/<benchmark>-<hash16>.result
// Doubles are stored as hexfloats, so a cached metric round-trips exactly.

#include <cstdint>
#include <optional>
#include <string>

#include "oracle/suite.hpp"
#include "portfolio/contest.hpp"

namespace lsml::suite {

/// Bump whenever anything that changes contest numbers changes (per-task
/// RNG derivation, learner defaults, metric definitions, entry format), so
/// caches written by older builds are recomputed, never silently served.
/// v2: circuits are optimized by the synth::PassManager (learners return
/// raw AIGs) and entries carry the per-pass synth trace.
/// v3: entries carry the SAT-certification verdict (`verified` field,
/// synth::VerifyStatus spelling) behind the leaderboard's verified
/// column.
/// v4: entries carry the optimization script (`script` field, canonical
/// synth::Script text — the search winner under --opt-script auto) behind
/// the leaderboard's script column; cache keys are salted by
/// synth::OptRequest::fingerprint() instead of Pipeline::fingerprint().
inline constexpr std::uint32_t kResultCacheSchemaVersion = 4;

/// A completed (team, benchmark) task, as cached. The result's
/// synth_trace (per-pass sizes and wall time) round-trips with it, so a
/// cache-served leaderboard reports the same optimization stats as the
/// run that populated it.
struct CachedTask {
  portfolio::BenchmarkResult result;
  std::string aag;  ///< ASCII AIGER text of the synthesized circuit
};

/// Digest of everything a task's outcome depends on besides the learner:
/// dataset contents, benchmark identity, contest seed, schema version.
std::uint64_t task_content_hash(const oracle::Benchmark& bench,
                                std::uint64_t seed);

/// The same digest from precomputed dataset content hashes — for callers
/// (the serve daemon's model ids) that hold datasets outside a Benchmark
/// and must not copy them just to hash. Kept in one implementation with
/// the overload above; any change to the recipe is a schema bump.
std::uint64_t task_content_hash(int benchmark_id, std::uint64_t seed,
                                std::uint64_t train_hash,
                                std::uint64_t valid_hash,
                                std::uint64_t test_hash);

class ResultCache {
 public:
  /// An empty `dir` disables the store: loads miss, stores are dropped.
  explicit ResultCache(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] bool enabled() const { return !dir_.empty(); }

  [[nodiscard]] std::string entry_path(const std::string& team_key,
                                       const std::string& benchmark,
                                       std::uint64_t content_hash) const;

  /// Loads a cached task; nullopt on miss, disabled store, or a corrupt /
  /// schema-stale entry (which is treated as a plain miss). Metrics-only
  /// callers pass want_aag=false to skip reading the circuit body.
  [[nodiscard]] std::optional<CachedTask> load(const std::string& team_key,
                                               const std::string& benchmark,
                                               std::uint64_t content_hash,
                                               bool want_aag = true) const;

  /// Persists a completed task. Best-effort: I/O failures are swallowed so
  /// a read-only cache directory degrades to recompute-always.
  void store(const std::string& team_key, const std::string& benchmark,
             std::uint64_t content_hash, const CachedTask& task) const;

 private:
  std::string dir_;
};

}  // namespace lsml::suite
