#pragma once
// Exports oracle benchmarks as contest-format PLA suites on disk
// (<name>.train.pla / <name>.valid.pla / <name>.test.pla), the layout
// discover_suite() consumes — so the CLI is exercisable end-to-end
// without external data.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "oracle/suite.hpp"

namespace lsml::suite {

struct GenerateOptions {
  int first = 0;                      ///< first benchmark id (ex<first>)
  int last = 9;                       ///< last benchmark id, inclusive
  std::size_t rows_per_split = 1000;  ///< minterms per train/valid/test
  std::uint64_t seed = 2020;          ///< oracle sampling seed
};

/// Writes one PLA triple for `bench` into `dir` (created if needed).
void write_benchmark_files(const oracle::Benchmark& bench,
                           const std::string& dir);

/// Generates benchmarks [first, last] from the Table I oracles and writes
/// one triple each; returns the benchmark names written, in id order.
std::vector<std::string> generate_suite(const std::string& dir,
                                        const GenerateOptions& options);

}  // namespace lsml::suite
