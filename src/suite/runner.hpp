#pragma once
// Disk-backed contest runner: the engine behind `lsml run`.
//
// Loads a suite directory (one PLA triple per benchmark) and runs the
// requested contest entries over it, sharded across core::ThreadPool with
// the exact seeding rule of portfolio::run_contest — so a disk run of the
// generated suite is bit-identical to the in-memory contest at any thread
// count. Completed tasks are memoized in a ResultCache keyed by content
// hash: a second run over unchanged inputs recomputes nothing and rewrites
// byte-identical artifacts. Outputs:
//   <out>/aig/<team_key>/<benchmark>.aag   synthesized circuits (AIGER)
//   <out>/leaderboard.csv                  per-(team, benchmark) rows
//   <out>/leaderboard.json                 Table III columns per team

#include <cstdint>
#include <string>
#include <vector>

#include "portfolio/contest.hpp"
#include "suite/result_cache.hpp"
#include "synth/script_search.hpp"

namespace lsml::suite {

struct RunnerOptions {
  std::string out_dir = "lsml-out";
  /// Incremental store location; empty disables caching entirely.
  std::string cache_dir = ".lsml-cache";
  std::uint64_t seed = 2020;  ///< contest seed (IWLS vintage default)
  /// Mixed into every cache key. Must digest any entry configuration the
  /// factory name does not capture (e.g. the team grid scale), so results
  /// computed under one configuration are never served under another.
  std::uint64_t config_salt = 0;
  /// ContestOptions convention: 1/negative serial, 0 hardware threads.
  int num_threads = 0;
  int verbosity = 0;
  /// Skip AIGER/leaderboard files (tests and benches that only want runs).
  bool write_artifacts = true;
  /// Optimization request applied to every task's circuit (script-or-auto,
  /// budgets, verify, search seed). Installed as the process default for
  /// the duration of the run and digested into every cache key (a
  /// different script, budget, or search configuration is a different
  /// task). Its experience_dir is overridden with `cache_dir` at run time
  /// so an auto run's learned scripts persist next to its results.
  synth::OptRequest opt;
  /// Soft wall-clock budget for the whole run; 0 = unlimited. Same
  /// contract as portfolio::ContestOptions::time_budget_ms: all tasks run
  /// to completion, the run is only flagged in `stats`.
  std::int64_t time_budget_ms = 0;
};

struct RunnerReport {
  std::vector<portfolio::TeamRun> runs;  ///< ordered as `entries`
  std::vector<std::string> benchmarks;   ///< suite order (sorted by name)
  int cache_hits = 0;
  int cache_misses = 0;
  double elapsed_ms = 0.0;
  /// Same shape both contest drivers fill (tasks, elapsed, soft-budget
  /// flag); cache hits count as completed tasks.
  portfolio::ContestStats stats;
  std::string leaderboard_csv_path;  ///< empty unless artifacts written
  std::string leaderboard_json_path;
};

/// Directory key an entry's artifacts and cache rows are filed under: the
/// factory's registered name when set, else "team<N>".
std::string entry_key(const portfolio::ContestEntry& entry);

/// Runs `entries` over an already-loaded suite (tests and bench_common
/// call this directly; `lsml run` goes through run_suite_dir).
RunnerReport run_contest_on(const std::vector<portfolio::ContestEntry>& entries,
                            const std::vector<oracle::Benchmark>& suite,
                            const RunnerOptions& options);

/// Discovers + loads `suite_dir`, then runs `entries` over it.
RunnerReport run_suite_dir(const std::string& suite_dir,
                           const std::vector<portfolio::ContestEntry>& entries,
                           const RunnerOptions& options);

}  // namespace lsml::suite
