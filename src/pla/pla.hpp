#pragma once
// PLA (Programmable Logic Array) file format, as used by the contest to
// distribute the train/validation/test minterm sets (ESPRESSO's format).

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "sop/cube.hpp"

namespace lsml::pla {

/// In-memory PLA: a list of (input cube, output character) lines.
struct Pla {
  std::size_t num_inputs = 0;
  sop::Cover cubes;            ///< input parts; `-` becomes an unbound var
  std::vector<char> outputs;   ///< '0', '1', or don't-care ('-'/'~') per cube

  /// Converts to a dataset; requires every cube to be a full minterm and
  /// every output to be a definite '0'/'1' (throws on don't-care outputs).
  [[nodiscard]] data::Dataset to_dataset() const;

  /// PLA with one fully-specified line per dataset row (contest encoding).
  static Pla from_dataset(const data::Dataset& ds);

  /// PLA whose lines are the onset cubes of a cover.
  static Pla from_cover(const sop::Cover& cover, std::size_t num_inputs);
};

Pla read_pla(std::istream& is);
Pla read_pla_file(const std::string& path);
void write_pla(const Pla& pla, std::ostream& os);
void write_pla_file(const Pla& pla, const std::string& path);

}  // namespace lsml::pla
