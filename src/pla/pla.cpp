#include "pla/pla.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lsml::pla {

data::Dataset Pla::to_dataset() const {
  data::Dataset ds(num_inputs, cubes.size());
  for (std::size_t r = 0; r < cubes.size(); ++r) {
    if (cubes[r].num_literals() != num_inputs) {
      throw std::runtime_error("Pla::to_dataset: line is not a full minterm");
    }
    for (std::size_t v = 0; v < num_inputs; ++v) {
      ds.set_input(r, v, cubes[r].value.get(v));
    }
    if (outputs[r] != '0' && outputs[r] != '1') {
      throw std::runtime_error(
          std::string("Pla::to_dataset: output '") + outputs[r] +
          "' is not a binary label (don't-care outputs cannot become "
          "dataset labels)");
    }
    ds.set_label(r, outputs[r] == '1');
  }
  return ds;
}

Pla Pla::from_dataset(const data::Dataset& ds) {
  Pla p;
  p.num_inputs = ds.num_inputs();
  p.cubes.reserve(ds.num_rows());
  p.outputs.reserve(ds.num_rows());
  const auto rows = sop::dataset_rows(ds);
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    p.cubes.push_back(sop::Cube::minterm(rows[r]));
    p.outputs.push_back(ds.label(r) ? '1' : '0');
  }
  return p;
}

Pla Pla::from_cover(const sop::Cover& cover, std::size_t num_inputs) {
  Pla p;
  p.num_inputs = num_inputs;
  p.cubes = cover;
  p.outputs.assign(cover.size(), '1');
  return p;
}

Pla read_pla(std::istream& is) {
  Pla p;
  std::string line;
  bool saw_inputs = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') {
      continue;
    }
    if (tok == ".i") {
      if (!(ls >> p.num_inputs) || p.num_inputs == 0) {
        throw std::runtime_error("read_pla: bad .i value");
      }
      saw_inputs = true;
    } else if (tok == ".o") {
      std::size_t num_outputs = 0;
      if (!(ls >> num_outputs)) {
        throw std::runtime_error("read_pla: bad .o value");
      }
      if (num_outputs != 1) {
        throw std::runtime_error(
            "read_pla: only single-output PLAs are supported, got .o " +
            std::to_string(num_outputs));
      }
    } else if (tok == ".p" || tok == ".ilb" || tok == ".ob" ||
               tok == ".type") {
      continue;  // header lines we accept but do not need
    } else if (tok == ".e") {
      break;
    } else if (tok[0] == '.') {
      throw std::runtime_error("read_pla: unsupported directive " + tok);
    } else {
      if (!saw_inputs) {
        throw std::runtime_error("read_pla: cube before .i");
      }
      if (tok.size() != p.num_inputs) {
        throw std::runtime_error("read_pla: cube width mismatch");
      }
      std::string out;
      if (!(ls >> out) || out.empty()) {
        throw std::runtime_error("read_pla: missing output part");
      }
      if (out.size() != 1) {
        throw std::runtime_error(
            "read_pla: expected exactly one output column, got '" + out +
            "' (multi-output PLAs are not supported)");
      }
      if (out[0] != '0' && out[0] != '1' && out[0] != '-' && out[0] != '~') {
        throw std::runtime_error("read_pla: bad output character '" + out +
                                 "'");
      }
      std::string extra;
      if (ls >> extra && extra[0] != '#') {
        throw std::runtime_error(
            "read_pla: trailing columns after the output part: '" + extra +
            "'");
      }
      sop::Cube cube(p.num_inputs);
      for (std::size_t v = 0; v < p.num_inputs; ++v) {
        switch (tok[v]) {
          case '0':
            cube.mask.set(v, true);
            break;
          case '1':
            cube.mask.set(v, true);
            cube.value.set(v, true);
            break;
          case '-':
          case '~':
            break;
          default:
            throw std::runtime_error("read_pla: bad cube character");
        }
      }
      p.cubes.push_back(std::move(cube));
      p.outputs.push_back(out[0]);
    }
  }
  return p;
}

Pla read_pla_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open: " + path);
  }
  return read_pla(is);
}

void write_pla(const Pla& pla, std::ostream& os) {
  os << ".i " << pla.num_inputs << "\n.o 1\n.type fr\n.p " << pla.cubes.size()
     << '\n';
  std::string buf(pla.num_inputs, '-');
  for (std::size_t r = 0; r < pla.cubes.size(); ++r) {
    const sop::Cube& c = pla.cubes[r];
    for (std::size_t v = 0; v < pla.num_inputs; ++v) {
      buf[v] = c.mask.get(v) ? (c.value.get(v) ? '1' : '0') : '-';
    }
    os << buf << ' ' << pla.outputs[r] << '\n';
  }
  os << ".e\n";
}

void write_pla_file(const Pla& pla, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  write_pla(pla, os);
}

}  // namespace lsml::pla
