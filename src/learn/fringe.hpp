#pragma once
// Fringe feature extraction (Team 3; Pagallo & Haussler 1990).
//
// A decision tree is trained repeatedly; after each round, the pairs of
// decision variables adjacent to the leaves ("fringes") are combined into
// composite Boolean features (AND of the polarized path literals, and
// XOR when the fringe exhibits the xor pattern). The new features join the
// variable list for the next round, letting a shallow tree express functions
// (like parity fragments or carries) that plain axis-aligned splits cannot.

#include <string>
#include <vector>

#include "learn/dt.hpp"
#include "learn/learner.hpp"

namespace lsml::learn {

/// A derived feature: op(polarized a, polarized b) over feature indices
/// (original dataset columns or previously derived features).
struct DerivedFeature {
  enum class Op { kAnd, kXor };
  Op op = Op::kAnd;
  std::size_t a = 0;
  bool not_a = false;
  std::size_t b = 0;
  bool not_b = false;

  bool operator==(const DerivedFeature&) const = default;
};

/// Tracks derived features and materializes them on datasets / AIGs.
class FeatureBank {
 public:
  explicit FeatureBank(std::size_t num_original) : num_original_(num_original) {}

  [[nodiscard]] std::size_t num_original() const { return num_original_; }
  [[nodiscard]] std::size_t num_total() const {
    return num_original_ + derived_.size();
  }
  [[nodiscard]] const std::vector<DerivedFeature>& derived() const {
    return derived_;
  }

  /// Adds a feature if not already present (canonicalized); returns whether
  /// it was new.
  bool add(DerivedFeature f);

  /// Returns `ds` extended with all derived columns (in order).
  [[nodiscard]] data::Dataset extend(const data::Dataset& ds) const;

  /// Literals for all features over the PIs of `g` (originals first).
  [[nodiscard]] std::vector<aig::Lit> build_lits(aig::Aig& g) const;

 private:
  std::size_t num_original_;
  std::vector<DerivedFeature> derived_;
};

struct FringeOptions {
  DtOptions dt;
  int max_iterations = 8;
  std::size_t max_derived_features = 48;
};

/// DT learner with fringe feature extraction ("Fr-DT" in Table IV).
class FringeLearner final : public Learner {
 public:
  explicit FringeLearner(FringeOptions options, std::string label = "fr-dt")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  FringeOptions options_;
  std::string label_;
};

/// Scans a trained tree for fringe patterns; returns candidate features.
std::vector<DerivedFeature> extract_fringe_features(const DecisionTree& tree);

}  // namespace lsml::learn
