#include "learn/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "aig/aig_build.hpp"
#include "learn/dt.hpp"

namespace lsml::learn {

double RegressionTree::predict_row(const data::Dataset& ds,
                                   std::size_t row) const {
  std::uint32_t at = 0;
  while (nodes[at].var >= 0) {
    at = ds.input(row, static_cast<std::size_t>(nodes[at].var)) ? nodes[at].hi
                                                                : nodes[at].lo;
  }
  return nodes[at].weight;
}

namespace {

struct GradStats {
  double g = 0.0;
  double h = 0.0;
};

class TreeBuilder {
 public:
  TreeBuilder(const data::Dataset& ds, const BoostOptions& options,
              const std::vector<double>& grad, const std::vector<double>& hess)
      : ds_(ds), options_(options), grad_(grad), hess_(hess) {}

  RegressionTree build() {
    RegressionTree tree;
    std::vector<std::size_t> rows(ds_.num_rows());
    std::iota(rows.begin(), rows.end(), 0);
    grow(&tree, rows, 0);
    return tree;
  }

 private:
  std::uint32_t grow(RegressionTree* tree, const std::vector<std::size_t>& rows,
                     std::size_t depth) {
    GradStats total;
    for (std::size_t r : rows) {
      total.g += grad_[r];
      total.h += hess_[r];
    }
    const double node_weight = -total.g / (total.h + options_.lambda);
    const auto id = static_cast<std::uint32_t>(tree->nodes.size());
    tree->nodes.push_back(RtNode{-1, 0, 0, node_weight});
    if (depth >= options_.max_depth || rows.size() < 2) {
      return id;
    }
    const double parent_score = total.g * total.g / (total.h + options_.lambda);
    int best_var = -1;
    double best_gain = options_.gamma;
    GradStats best_hi;
    for (std::size_t v = 0; v < ds_.num_inputs(); ++v) {
      GradStats hi;
      for (std::size_t r : rows) {
        if (ds_.input(r, v)) {
          hi.g += grad_[r];
          hi.h += hess_[r];
        }
      }
      const GradStats lo{total.g - hi.g, total.h - hi.h};
      if (hi.h < options_.min_child_hessian ||
          lo.h < options_.min_child_hessian) {
        continue;
      }
      const double gain =
          0.5 * (hi.g * hi.g / (hi.h + options_.lambda) +
                 lo.g * lo.g / (lo.h + options_.lambda) - parent_score);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_var = static_cast<int>(v);
        best_hi = hi;
      }
    }
    if (best_var < 0) {
      return id;
    }
    std::vector<std::size_t> hi_rows;
    std::vector<std::size_t> lo_rows;
    hi_rows.reserve(rows.size());
    lo_rows.reserve(rows.size());
    for (std::size_t r : rows) {
      (ds_.input(r, static_cast<std::size_t>(best_var)) ? hi_rows : lo_rows)
          .push_back(r);
    }
    tree->nodes[id].var = best_var;
    const std::uint32_t lo = grow(tree, lo_rows, depth + 1);
    const std::uint32_t hi = grow(tree, hi_rows, depth + 1);
    tree->nodes[id].lo = lo;
    tree->nodes[id].hi = hi;
    return id;
  }

  const data::Dataset& ds_;
  const BoostOptions& options_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
};

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

GradientBoosted GradientBoosted::fit(const data::Dataset& ds,
                                     const BoostOptions& options,
                                     core::Rng& /*rng*/) {
  GradientBoosted model;
  model.base_ = 0.0;
  std::vector<double> score(ds.num_rows(), model.base_);
  std::vector<double> grad(ds.num_rows());
  std::vector<double> hess(ds.num_rows());
  model.trees_.reserve(options.num_trees);
  for (std::size_t t = 0; t < options.num_trees; ++t) {
    for (std::size_t r = 0; r < ds.num_rows(); ++r) {
      const double p = sigmoid(score[r]);
      grad[r] = p - (ds.label(r) ? 1.0 : 0.0);
      hess[r] = std::max(1e-9, p * (1.0 - p));
    }
    TreeBuilder builder(ds, options, grad, hess);
    RegressionTree tree = builder.build();
    // Shrink leaf weights by the learning rate.
    double max_weight = 0.0;
    for (auto& node : tree.nodes) {
      node.weight *= options.learning_rate;
      if (node.var < 0) {
        max_weight = std::max(max_weight, std::abs(node.weight));
      }
    }
    // Saturation guard: once the loss is fit, further trees carry nearly
    // zero leaf values whose quantized sign is noise; they would poison the
    // majority vote (and the synthesized circuit), so stop adding them.
    if (tree.nodes.size() == 1 || max_weight < 1e-3) {
      break;
    }
    for (std::size_t r = 0; r < ds.num_rows(); ++r) {
      score[r] += tree.predict_row(ds, r);
    }
    model.trees_.push_back(std::move(tree));
  }
  if (model.trees_.empty()) {
    // Degenerate (constant-label) data: one root stump with the prior.
    RegressionTree stump;
    stump.nodes.push_back(
        RtNode{-1, 0, 0, ds.label_fraction() >= 0.5 ? 1.0 : -1.0});
    model.trees_.push_back(std::move(stump));
  }
  return model;
}

double GradientBoosted::score_row(const data::Dataset& ds,
                                  std::size_t row) const {
  double s = base_;
  for (const auto& tree : trees_) {
    s += tree.predict_row(ds, row);
  }
  return s;
}

core::BitVec GradientBoosted::predict(const data::Dataset& ds) const {
  core::BitVec out(ds.num_rows());
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    if (score_row(ds, r) > 0.0) {
      out.set(r, true);
    }
  }
  return out;
}

core::BitVec GradientBoosted::predict_quantized(
    const data::Dataset& ds) const {
  core::BitVec out(ds.num_rows());
  const std::size_t need = trees_.size() / 2 + 1;
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    std::size_t votes = 0;
    for (const auto& tree : trees_) {
      votes += tree.predict_row(ds, r) > 0.0 ? 1 : 0;
    }
    if (votes >= need) {
      out.set(r, true);
    }
  }
  return out;
}

aig::Aig GradientBoosted::to_aig(std::size_t num_inputs) const {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> leaves;
  leaves.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  std::vector<aig::Lit> bits;
  bits.reserve(trees_.size());
  for (const auto& tree : trees_) {
    // Quantized tree: MUX cascade ending in sign bits (built like a DT).
    std::vector<aig::Lit> built(tree.nodes.size(), aig::kLitFalse);
    for (std::size_t i = tree.nodes.size(); i-- > 0;) {
      const RtNode& n = tree.nodes[i];
      if (n.var < 0) {
        built[i] = n.weight > 0.0 ? aig::kLitTrue : aig::kLitFalse;
      } else {
        built[i] = g.mux(leaves[static_cast<std::size_t>(n.var)], built[n.hi],
                         built[n.lo]);
      }
    }
    bits.push_back(built[0]);
  }
  if (bits.size() == 125) {
    g.add_output(aig::majority125_network(g, bits));
  } else {
    g.add_output(aig::majority(g, bits));
  }
  return g;
}

void GradientBoosted::accumulate_contributions(const data::Dataset& ds,
                                               bool signed_mean,
                                               std::vector<double>* out) const {
  // Saabas attribution: walking a tree, the value change at each split is
  // credited to the split feature. The signed variant averages over rows
  // where the feature is 1 (so, e.g., a comparator's two operand words show
  // opposite polarities, as in Fig. 27); the absolute variant averages the
  // magnitude over all rows (Fig. 26b).
  out->assign(ds.num_inputs(), 0.0);
  std::vector<double> denom(ds.num_inputs(), 0.0);
  std::vector<double> row_contrib(ds.num_inputs());
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    std::fill(row_contrib.begin(), row_contrib.end(), 0.0);
    for (const auto& tree : trees_) {
      std::uint32_t at = 0;
      while (tree.nodes[at].var >= 0) {
        const RtNode& n = tree.nodes[at];
        const std::uint32_t next =
            ds.input(r, static_cast<std::size_t>(n.var)) ? n.hi : n.lo;
        row_contrib[static_cast<std::size_t>(n.var)] +=
            tree.nodes[next].weight - n.weight;
        at = next;
      }
    }
    for (std::size_t f = 0; f < ds.num_inputs(); ++f) {
      if (signed_mean) {
        if (ds.input(r, f)) {
          (*out)[f] += row_contrib[f];
          denom[f] += 1.0;
        }
      } else {
        (*out)[f] += std::abs(row_contrib[f]);
        denom[f] += 1.0;
      }
    }
  }
  for (std::size_t f = 0; f < ds.num_inputs(); ++f) {
    if (denom[f] > 0.0) {
      (*out)[f] /= denom[f];
    }
  }
}

std::vector<double> GradientBoosted::mean_contributions(
    const data::Dataset& ds) const {
  std::vector<double> out;
  accumulate_contributions(ds, true, &out);
  return out;
}

std::vector<double> GradientBoosted::mean_abs_contributions(
    const data::Dataset& ds) const {
  std::vector<double> out;
  accumulate_contributions(ds, false, &out);
  return out;
}

TrainedModel BoostLearner::fit(const data::Dataset& train,
                               const data::Dataset& valid, core::Rng& rng) {
  const GradientBoosted model = GradientBoosted::fit(train, options_, rng);
  return finish_model(model.to_aig(train.num_inputs()), label_, train, valid);
}

}  // namespace lsml::learn
