#pragma once
// Second-order gradient boosting of shallow regression trees (Team 7's
// XGBoost substitute) with majority-gate synthesis.
//
// Training follows the XGBoost formulation (logistic loss, leaf weight
// -G/(H+lambda), gain from the split score). For synthesis, each tree's
// leaf values are quantized to one bit and the trees are aggregated with a
// majority network — a 3-layer network of 5-input majority gates when the
// ensemble has exactly 125 trees, a popcount-threshold majority otherwise
// (both from the paper). Saabas-style path attributions provide the
// SHAP-like importance patterns of Figs. 26/27.

#include <string>
#include <vector>

#include "learn/learner.hpp"

namespace lsml::learn {

struct BoostOptions {
  std::size_t num_trees = 125;
  std::size_t max_depth = 5;
  double learning_rate = 0.3;
  double lambda = 1.0;          ///< L2 regularization on leaf weights
  double min_child_hessian = 1.0;
  double gamma = 0.0;           ///< minimum split gain
};

/// One node of a regression tree; leaves have var < 0.
struct RtNode {
  int var = -1;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  double weight = 0.0;  ///< leaf value; for internal nodes, the node mean
};

struct RegressionTree {
  std::vector<RtNode> nodes;
  [[nodiscard]] double predict_row(const data::Dataset& ds,
                                   std::size_t row) const;
};

class GradientBoosted {
 public:
  static GradientBoosted fit(const data::Dataset& ds,
                             const BoostOptions& options, core::Rng& rng);

  /// Real-valued ensemble score (log-odds).
  [[nodiscard]] double score_row(const data::Dataset& ds,
                                 std::size_t row) const;
  /// Exact (unquantized) classification.
  [[nodiscard]] core::BitVec predict(const data::Dataset& ds) const;
  /// Classification after per-tree 1-bit leaf quantization + majority vote
  /// (what the synthesized AIG computes).
  [[nodiscard]] core::BitVec predict_quantized(const data::Dataset& ds) const;

  [[nodiscard]] aig::Aig to_aig(std::size_t num_inputs) const;

  /// Mean signed Saabas contribution of each feature (SHAP-like, Fig. 27).
  [[nodiscard]] std::vector<double> mean_contributions(
      const data::Dataset& ds) const;
  /// Mean absolute contribution (Fig. 26b).
  [[nodiscard]] std::vector<double> mean_abs_contributions(
      const data::Dataset& ds) const;

  [[nodiscard]] const std::vector<RegressionTree>& trees() const {
    return trees_;
  }
  [[nodiscard]] double base_score() const { return base_; }

 private:
  void accumulate_contributions(const data::Dataset& ds, bool signed_mean,
                                std::vector<double>* out) const;
  std::vector<RegressionTree> trees_;
  double base_ = 0.0;
};

class BoostLearner final : public Learner {
 public:
  explicit BoostLearner(BoostOptions options, std::string label = "xgb")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  BoostOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
