#include "learn/matching.hpp"

#include <vector>

#include "aig/aig_build.hpp"
#include "oracle/arith_oracles.hpp"
#include "sop/cube.hpp"

namespace lsml::learn {

namespace {

using aig::Lit;

double fraction_equal(const core::BitVec& a, const core::BitVec& b) {
  return static_cast<double>(a.count_equal(b)) / static_cast<double>(a.size());
}

/// Agreement of an oracle with the training labels.
double oracle_agreement(const oracle::Oracle& f, const data::Dataset& ds,
                        const std::vector<core::BitVec>& rows) {
  std::size_t agree = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    agree += f.eval(rows[r]) == ds.label(r) ? 1 : 0;
  }
  return static_cast<double>(agree) / static_cast<double>(rows.size());
}

std::vector<Lit> word_lits(const aig::Aig& g, std::size_t start,
                           std::size_t width) {
  std::vector<Lit> lits;
  lits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    lits.push_back(g.pi(static_cast<std::uint32_t>(start + i)));
  }
  return lits;
}

}  // namespace

std::optional<MatchResult> match_standard_function(
    const data::Dataset& train, const MatchOptions& options) {
  const std::size_t n = train.num_inputs();
  const std::size_t rows = train.num_rows();
  if (rows == 0) {
    return std::nullopt;
  }
  const auto& labels = train.labels();

  // --- constants ---------------------------------------------------------
  const std::size_t ones = labels.count();
  if (ones == 0 || ones == rows) {
    MatchResult m;
    m.what = ones == 0 ? "const0" : "const1";
    m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
    m.circuit.add_output(ones == 0 ? aig::kLitFalse : aig::kLitTrue);
    return m;
  }

  // --- single literal ----------------------------------------------------
  for (std::size_t v = 0; v < n; ++v) {
    const double eq = fraction_equal(train.column(v), labels);
    if (eq >= options.min_agreement || 1.0 - eq >= options.min_agreement) {
      MatchResult m;
      const bool inverted = eq < 0.5;
      m.what = (inverted ? "!x" : "x") + std::to_string(v);
      m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
      m.circuit.add_output(
          aig::lit_notc(m.circuit.pi(static_cast<std::uint32_t>(v)), inverted));
      return m;
    }
  }

  // --- pairwise XOR ------------------------------------------------------
  if (n <= options.max_inputs_for_xor_scan) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double eq =
            fraction_equal(train.column(i) ^ train.column(j), labels);
        if (eq >= options.min_agreement || 1.0 - eq >= options.min_agreement) {
          MatchResult m;
          const bool inverted = eq < 0.5;
          m.what = std::string(inverted ? "xnor" : "xor") + "(x" +
                   std::to_string(i) + ",x" + std::to_string(j) + ")";
          m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
          const Lit x = m.circuit.xor2(
              m.circuit.pi(static_cast<std::uint32_t>(i)),
              m.circuit.pi(static_cast<std::uint32_t>(j)));
          m.circuit.add_output(aig::lit_notc(x, inverted));
          return m;
        }
      }
    }
  }

  // --- totally symmetric (covers parity) ---------------------------------
  {
    // Signature consistency: group rows by popcount.
    std::vector<std::size_t> count_ones(n + 1, 0);
    std::vector<std::size_t> count_total(n + 1, 0);
    const auto bit_rows = sop::dataset_rows(train);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t c = bit_rows[r].count();
      ++count_total[c];
      count_ones[c] += train.label(r) ? 1 : 0;
    }
    std::size_t agree = 0;
    std::vector<bool> signature(n + 1, false);
    for (std::size_t c = 0; c <= n; ++c) {
      const bool bit = 2 * count_ones[c] >= count_total[c];
      signature[c] = bit;
      agree += bit ? count_ones[c] : count_total[c] - count_ones[c];
    }
    if (static_cast<double>(agree) / rows >= options.min_agreement) {
      MatchResult m;
      m.what = "symmetric";
      m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
      m.circuit.add_output(
          aig::symmetric_function(m.circuit, word_lits(m.circuit, 0, n),
                                  signature));
      return m;
    }

    // --- arithmetic library (2-word layout) -------------------------------
    if (n % 2 == 0) {
      const std::size_t k = n / 2;
      // Adder MSB / 2nd MSB.
      for (const std::size_t bit : {k, k - 1}) {
        const oracle::AdderBitOracle f(k, bit);
        if (oracle_agreement(f, train, bit_rows) >= options.min_agreement) {
          MatchResult m;
          m.what = "adder[k=" + std::to_string(k) +
                   ",bit=" + std::to_string(bit) + "]";
          m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
          const auto sum =
              aig::ripple_adder(m.circuit, word_lits(m.circuit, 0, k),
                                word_lits(m.circuit, k, k));
          m.circuit.add_output(sum[bit]);
          return m;
        }
      }
      // Comparators (a>b, a>=b and complements).
      {
        const oracle::ComparatorOracle f(k);
        const double eq = oracle_agreement(f, train, bit_rows);
        if (eq >= options.min_agreement || 1.0 - eq >= options.min_agreement) {
          MatchResult m;
          const bool inverted = eq < 0.5;
          m.what = inverted ? "comparator[a<=b]" : "comparator[a>b]";
          m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
          const Lit gt =
              aig::greater_than(m.circuit, word_lits(m.circuit, 0, k),
                                word_lits(m.circuit, k, k));
          m.circuit.add_output(aig::lit_notc(gt, inverted));
          return m;
        }
      }
      // Small multipliers (MSB / middle bit).
      if (k <= options.max_multiplier_width) {
        for (const std::size_t bit : {2 * k - 1, k - 1}) {
          const oracle::MultiplierBitOracle f(k, bit);
          if (oracle_agreement(f, train, bit_rows) >= options.min_agreement) {
            MatchResult m;
            m.what = "multiplier[k=" + std::to_string(k) +
                     ",bit=" + std::to_string(bit) + "]";
            m.circuit = aig::Aig(static_cast<std::uint32_t>(n));
            const auto product =
                aig::multiplier(m.circuit, word_lits(m.circuit, 0, k),
                                word_lits(m.circuit, k, k));
            m.circuit.add_output(product[bit]);
            return m;
          }
        }
      }
    }
  }
  return std::nullopt;
}

TrainedModel MatchLearner::fit(const data::Dataset& train,
                               const data::Dataset& valid, core::Rng& rng) {
  (void)rng;
  if (auto m = match_standard_function(train, options_)) {
    return finish_model(std::move(m->circuit), label_ + ":" + m->what, train,
                        valid);
  }
  aig::Aig g(static_cast<std::uint32_t>(train.num_inputs()));
  g.add_output(train.label_fraction() >= 0.5 ? aig::kLitTrue : aig::kLitFalse);
  return finish_model(std::move(g), label_ + ":none", train, valid);
}

}  // namespace lsml::learn
