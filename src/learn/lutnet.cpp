#include "learn/lutnet.hpp"

#include <algorithm>
#include <numeric>

#include "aig/aig_build.hpp"

namespace lsml::learn {

namespace {

// Connection chooser implementing both wiring schemes.
class Wirer {
 public:
  Wirer(LutWiring wiring, std::size_t pool_size, core::Rng& rng)
      : wiring_(wiring), pool_size_(pool_size), rng_(rng) {
    if (wiring_ == LutWiring::kUniqueRandom) {
      unused_.resize(pool_size);
      std::iota(unused_.begin(), unused_.end(), 0);
      for (std::size_t i = unused_.size(); i > 1; --i) {
        std::swap(unused_[i - 1], unused_[rng_.below(i)]);
      }
    }
  }

  std::uint32_t next() {
    if (wiring_ == LutWiring::kUniqueRandom && !unused_.empty()) {
      const std::uint32_t v = unused_.back();
      unused_.pop_back();
      return v;
    }
    return static_cast<std::uint32_t>(rng_.below(pool_size_));
  }

 private:
  LutWiring wiring_;
  std::size_t pool_size_;
  core::Rng& rng_;
  std::vector<std::uint32_t> unused_;
};

}  // namespace

class LutNetTrainer {
 public:
  static LutNetwork fit(const data::Dataset& ds, const LutNetOptions& options,
                        core::Rng& rng) {
    LutNetwork net;
    net.options_ = options;
    const int k = std::min(options.lut_inputs, 6);

    // Current layer's output values on the training set; starts at the PIs.
    std::vector<core::BitVec> values;
    values.reserve(ds.num_inputs());
    for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
      values.push_back(ds.column(c));
    }
    const std::size_t rows = ds.num_rows();
    const std::size_t global_ones = ds.labels().count();
    const bool global_major = 2 * global_ones >= rows;

    for (int layer = 0; layer < options.num_layers + 1; ++layer) {
      const bool last = layer == options.num_layers;
      const int width = last ? 1 : options.luts_per_layer;
      Wirer wirer(options.wiring, values.size(), rng);
      std::vector<LutNetwork::Lut> luts;
      luts.reserve(static_cast<std::size_t>(width));
      std::vector<core::BitVec> next_values;
      next_values.reserve(static_cast<std::size_t>(width));
      for (int u = 0; u < width; ++u) {
        LutNetwork::Lut lut;
        lut.inputs.reserve(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          lut.inputs.push_back(wirer.next());
        }
        lut.table = tt::TruthTable(k);
        // Memorization: per input pattern, count labels of rows landing on
        // that entry, then take the majority (global majority on ties and
        // unseen patterns).
        std::vector<std::uint32_t> ones(1u << k, 0);
        std::vector<std::uint32_t> total(1u << k, 0);
        for (std::size_t r = 0; r < rows; ++r) {
          std::uint32_t pattern = 0;
          for (int i = 0; i < k; ++i) {
            pattern |= static_cast<std::uint32_t>(
                           values[lut.inputs[static_cast<std::size_t>(i)]].get(
                               r))
                       << i;
          }
          ++total[pattern];
          ones[pattern] += ds.label(r) ? 1 : 0;
        }
        for (std::uint32_t p = 0; p < (1u << k); ++p) {
          bool bit = global_major;
          if (total[p] != 0 && 2 * ones[p] != total[p]) {
            bit = 2 * ones[p] > total[p];
          }
          lut.table.set(p, bit);
        }
        // Compute this LUT's output on all rows for the next layer.
        core::BitVec out(rows);
        for (std::size_t r = 0; r < rows; ++r) {
          std::uint32_t pattern = 0;
          for (int i = 0; i < k; ++i) {
            pattern |= static_cast<std::uint32_t>(
                           values[lut.inputs[static_cast<std::size_t>(i)]].get(
                               r))
                       << i;
          }
          if (lut.table.get(pattern)) {
            out.set(r, true);
          }
        }
        next_values.push_back(std::move(out));
        luts.push_back(std::move(lut));
      }
      net.layers_.push_back(std::move(luts));
      values = std::move(next_values);
    }
    return net;
  }
};

LutNetwork LutNetwork::fit(const data::Dataset& ds,
                           const LutNetOptions& options, core::Rng& rng) {
  return LutNetTrainer::fit(ds, options, rng);
}

std::vector<core::BitVec> LutNetwork::forward(const data::Dataset& ds) const {
  std::vector<core::BitVec> values;
  values.reserve(ds.num_inputs());
  for (std::size_t c = 0; c < ds.num_inputs(); ++c) {
    values.push_back(ds.column(c));
  }
  const std::size_t rows = ds.num_rows();
  for (const auto& layer : layers_) {
    std::vector<core::BitVec> next;
    next.reserve(layer.size());
    for (const auto& lut : layer) {
      core::BitVec out(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        std::uint32_t pattern = 0;
        for (std::size_t i = 0; i < lut.inputs.size(); ++i) {
          pattern |= static_cast<std::uint32_t>(values[lut.inputs[i]].get(r))
                     << i;
        }
        if (lut.table.get(pattern)) {
          out.set(r, true);
        }
      }
      next.push_back(std::move(out));
    }
    values = std::move(next);
  }
  return values;
}

core::BitVec LutNetwork::predict(const data::Dataset& ds) const {
  return forward(ds)[0];
}

aig::Aig LutNetwork::to_aig(std::size_t num_inputs) const {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> values;
  values.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    values.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  for (const auto& layer : layers_) {
    std::vector<aig::Lit> next;
    next.reserve(layer.size());
    for (const auto& lut : layer) {
      std::vector<aig::Lit> leaves;
      leaves.reserve(lut.inputs.size());
      for (std::uint32_t in : lut.inputs) {
        leaves.push_back(values[in]);
      }
      next.push_back(aig::from_truth_table(g, lut.table, leaves));
    }
    values = std::move(next);
  }
  g.add_output(values[0]);
  return g;
}

std::size_t LutNetwork::num_luts() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.size();
  }
  return total;
}

TrainedModel LutNetLearner::fit(const data::Dataset& train,
                                const data::Dataset& valid, core::Rng& rng) {
  const LutNetwork net = LutNetwork::fit(train, options_, rng);
  return finish_model(net.to_aig(train.num_inputs()), label_, train, valid);
}

LutNetwork lutnet_beam_search(const data::Dataset& train,
                              const data::Dataset& valid,
                              const LutNetOptions& start, core::Rng& rng,
                              int max_steps) {
  LutNetOptions best_options = start;
  LutNetwork best = LutNetwork::fit(train, best_options, rng);
  double best_acc = data::accuracy(best.predict(valid), valid.labels());
  for (int step = 0; step < max_steps; ++step) {
    bool improved = false;
    // Neighbourhood: one more layer / wider layers / bigger LUTs.
    for (int move = 0; move < 3; ++move) {
      LutNetOptions candidate = best_options;
      if (move == 0) {
        candidate.num_layers += 1;
      } else if (move == 1) {
        candidate.luts_per_layer += candidate.luts_per_layer / 2 + 1;
      } else {
        candidate.lut_inputs = std::min(6, candidate.lut_inputs + 1);
      }
      LutNetwork net = LutNetwork::fit(train, candidate, rng);
      const double acc = data::accuracy(net.predict(valid), valid.labels());
      if (acc > best_acc + 1e-9) {
        best_acc = acc;
        best = std::move(net);
        best_options = candidate;
        improved = true;
      }
    }
    if (!improved) {
      break;
    }
  }
  return best;
}

}  // namespace lsml::learn
