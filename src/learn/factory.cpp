#include "learn/factory.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "learn/dt.hpp"
#include "learn/espresso_learner.hpp"
#include "learn/forest.hpp"
#include "learn/search_learner.hpp"

namespace lsml::learn {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, LearnerFactory::Fn> factories;
};

Registry& registry() {
  static Registry instance;
  static std::once_flag builtins_once;
  std::call_once(builtins_once, [] {
    auto& f = instance.factories;
    f["dt"] = [] { return std::make_unique<DtLearner>(DtOptions{}, "dt"); };
    f["dt8"] = [] {
      DtOptions options;
      options.max_depth = 8;
      return std::make_unique<DtLearner>(options, "dt8");
    };
    f["rf"] = [] {
      ForestOptions options;
      options.num_trees = 9;
      options.tree.max_depth = 10;
      return std::make_unique<ForestLearner>(options, "rf");
    };
    f["espresso"] = [] {
      return std::make_unique<EspressoLearner>(sop::EspressoOptions{},
                                               "espresso");
    };
    // "search" wraps dt with a per-circuit learned script (ScriptSearch).
    // Capture dt's Fn directly: from_registry here would re-enter the
    // call_once that is constructing this registry and deadlock.
    const LearnerFactory::Fn dt_fn = f["dt"];
    f["search"] = [dt_fn] {
      return std::make_unique<SearchLearner>(LearnerFactory("dt", dt_fn),
                                             "search");
    };
  });
  return instance;
}

}  // namespace

std::unique_ptr<Learner> LearnerFactory::make() const {
  if (!fn_) {
    throw std::logic_error("LearnerFactory::make: empty factory");
  }
  return fn_();
}

void LearnerFactory::register_factory(const std::string& key, Fn fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[key] = std::move(fn);
}

LearnerFactory LearnerFactory::from_registry(const std::string& key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.factories.find(key);
  if (it == r.factories.end()) {
    throw std::out_of_range("LearnerFactory: no factory named '" + key + "'");
  }
  return LearnerFactory(key, it->second);
}

LearnerFactory LearnerFactory::try_from_registry(const std::string& key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.factories.find(key);
  if (it == r.factories.end()) {
    return {};
  }
  return LearnerFactory(key, it->second);
}

std::vector<std::string> LearnerFactory::registered() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, fn] : r.factories) {
    names.push_back(name);
  }
  return names;
}

}  // namespace lsml::learn
