#include "learn/search_learner.hpp"

#include <memory>
#include <utility>

#include "synth/script_search.hpp"

namespace lsml::learn {

SearchLearner::SearchLearner(LearnerFactory inner, std::string name)
    : inner_(std::move(inner)), name_(std::move(name)) {}

TrainedModel SearchLearner::fit(const data::Dataset& train,
                                const data::Dataset& valid, core::Rng& rng) {
  const std::unique_ptr<Learner> base = inner_.make();
  TrainedModel model = base->fit(train, valid, rng);
  // Force an "auto" request on top of whatever the process default is:
  // same budgets/verify/seeds, but the script is chosen per circuit. The
  // shared optimizer snapshot keeps the outcome independent of what other
  // teams stored mid-run.
  const std::shared_ptr<const synth::ScriptSearch> optimizer =
      synth::default_optimizer();
  synth::OptRequest request = optimizer->request();
  request.script = synth::kAutoScript;
  synth::OptOutcome out = optimizer->optimize(model.circuit, request);
  model.circuit = std::move(out.result.circuit);
  for (synth::PassStats& stats : out.result.trace) {
    model.synth_trace.push_back(std::move(stats));
  }
  model.verified = out.result.verify;
  model.opt_script = out.script.str();
  model.method += "+search";
  return model;
}

}  // namespace lsml::learn
