#pragma once
// Binary decision trees (C4.5-style) for Boolean function learning.
//
// The workhorse of the contest: used directly by Teams 2, 5, 8 and 10,
// inside random forests, as the base of fringe feature extraction (Team 3),
// and as the bootstrap for CGP (Team 9). Splits maximize information gain
// (or Gini decrease); Team 8's functional-decomposition fallback for
// low-gain nodes is available as an option.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/bits.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "learn/learner.hpp"
#include "sop/cube.hpp"

namespace lsml::learn {

struct DtOptions {
  std::size_t max_depth = 0;          ///< 0 = unlimited
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  enum class Criterion { kEntropy, kGini };
  Criterion criterion = Criterion::kEntropy;
  /// Team 8: when the best gain falls below this threshold, try a
  /// functional-decomposition split instead. Negative disables.
  double decomposition_threshold = -1.0;
  /// If nonzero, each split considers only this many randomly drawn
  /// features (used by random forests).
  std::size_t feature_subsample = 0;
};

/// One node; `var < 0` marks a leaf whose prediction is `value`.
struct DtNode {
  int var = -1;
  bool value = false;
  std::uint32_t lo = 0;  ///< child when feature = 0
  std::uint32_t hi = 0;  ///< child when feature = 1
};

class DecisionTree {
 public:
  static DecisionTree fit(const data::Dataset& ds, const DtOptions& options,
                          core::Rng& rng);

  [[nodiscard]] bool predict_row(const std::vector<std::uint8_t>& row) const;
  [[nodiscard]] core::BitVec predict(const data::Dataset& ds) const;

  /// Synthesizes the tree as a MUX cascade over the given leaf literals.
  [[nodiscard]] aig::Lit to_lit(aig::Aig& g,
                                const std::vector<aig::Lit>& leaves) const;
  /// Fresh single-output AIG over `num_inputs` PIs.
  [[nodiscard]] aig::Aig to_aig(std::size_t num_inputs) const;

  /// Cover of all root-to-leaf paths that predict 1 (PLA-style export,
  /// as Teams 2/5/7 did before handing the SOP to synthesis).
  [[nodiscard]] sop::Cover to_cover(std::size_t num_inputs) const;

  [[nodiscard]] const std::vector<DtNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::uint32_t root() const { return root_; }
  [[nodiscard]] std::size_t num_leaves() const;
  [[nodiscard]] std::size_t depth() const;

  /// Total impurity decrease contributed by each feature (for importance).
  [[nodiscard]] std::vector<double> feature_gains(
      std::size_t num_features) const;

 private:
  std::vector<DtNode> nodes_;
  std::uint32_t root_ = 0;
  std::vector<double> gains_;  // parallel to nodes_: gain of that split
};

/// Learner wrapper around a single decision tree.
class DtLearner final : public Learner {
 public:
  explicit DtLearner(DtOptions options, std::string label = "dt")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  DtOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
