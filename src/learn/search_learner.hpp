#pragma once
// "search" contest entry: an inner learner whose finished circuit is
// re-optimized by a per-circuit learned script.
//
// The inner learner runs unmodified — its fit() already optimizes through
// the process-default synth::OptRequest like every other entry. The
// wrapper then forces one extra "auto" optimization of the finished
// circuit, so the team's deliverable is the synth::ScriptSearch winner for
// that circuit's features (recalled from experience when a matching bucket
// is stored, searched otherwise). Every pass in the search vocabulary is
// function-preserving and the input circuit already honors the node
// budget, so train/valid accuracies carry over from the inner model
// unchanged; only the structural metrics move.

#include <string>

#include "learn/factory.hpp"
#include "learn/learner.hpp"

namespace lsml::learn {

class SearchLearner : public Learner {
 public:
  /// `inner` supplies the base model (the registered "search" entry wraps
  /// "dt"); `name` is the contest team key.
  SearchLearner(LearnerFactory inner, std::string name);

  [[nodiscard]] std::string name() const override { return name_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  LearnerFactory inner_;
  std::string name_;
};

}  // namespace lsml::learn
