#pragma once
// Reduced ordered BDDs with don't-care minimization (Team 1's appendix).
//
// Builds the BDD of the sampled onset and careset under a chosen variable
// order and minimizes it with the paper's matching rules:
//   * one-sided matching: drop a node whose other branch is all don't-care,
//   * two-sided matching: merge children that agree on the common care set,
//   * complemented two-sided matching: merge when one child agrees with the
//     complement of the other (yields an XOR with the branch variable).
// The paper's adder study (98% on 2-word adders with an MSB-first
// interleaved order) is reproduced in bench_ablation_bdd.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "learn/learner.hpp"

namespace lsml::learn {

/// Small ROBDD manager (no complement edges; terminals are ids 0 and 1).
class BddMgr {
 public:
  explicit BddMgr(std::size_t num_vars) : num_vars_(num_vars) {}

  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  [[nodiscard]] std::size_t num_vars() const { return num_vars_; }

  /// Variable order: position of var v in the order is order[v]; smaller
  /// positions are tested first. Defaults to the identity.
  void set_order(std::vector<std::size_t> order);

  Ref var(std::size_t v);
  Ref bdd_and(Ref a, Ref b);
  Ref bdd_or(Ref a, Ref b);
  Ref bdd_xor(Ref a, Ref b);
  Ref bdd_not(Ref a) { return bdd_xor(a, kTrue); }

  /// BDD of a conjunction of literals describing a full row (minterm).
  Ref minterm(const core::BitVec& row);

  /// Don't-care minimization: returns g with f&care <= g <= f|~care,
  /// applying one-sided, two-sided, and complemented two-sided matching.
  Ref minimize(Ref f, Ref care, bool use_two_sided = true,
               bool use_complement = true);

  [[nodiscard]] bool eval(Ref f, const core::BitVec& row) const;
  [[nodiscard]] std::size_t size(Ref f) const;  ///< reachable node count

  /// MUX-cascade synthesis of the function into an AIG.
  [[nodiscard]] aig::Lit to_lit(Ref f, aig::Aig& g,
                                const std::vector<aig::Lit>& leaves);

 private:
  struct Node {
    std::uint32_t level;  ///< position in the order (kTermLevel = terminal)
    Ref lo;
    Ref hi;
  };
  static constexpr std::uint32_t kTermLevel = ~0u;

  Ref mk(std::uint32_t level, Ref lo, Ref hi);
  Ref apply(Ref a, Ref b, int op);  // 0 = and, 1 = or, 2 = xor
  [[nodiscard]] std::uint32_t level_of(Ref r) const {
    return nodes_[r].level;
  }
  struct Cofactors {
    Ref lo;
    Ref hi;
  };
  [[nodiscard]] Cofactors cofactor(Ref r, std::uint32_t level) const;

  std::size_t num_vars_;
  std::vector<std::size_t> order_;      // var -> level
  std::vector<std::size_t> level_var_;  // level -> var
  std::vector<Node> nodes_{{kTermLevel, 0, 0}, {kTermLevel, 1, 1}};
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, Ref> apply_cache_;
  std::unordered_map<std::uint64_t, Ref> min_cache_;
};

struct BddLearnerOptions {
  bool msb_first_interleaved = true;  ///< the order that works for adders
  /// The paper found naive two-sided matching drops to ~50% on sampled
  /// adders (merges are taken on an empty common care set); one-sided
  /// matching alone reaches ~98%. Both default off accordingly.
  bool use_two_sided = false;
  bool use_complement = false;
  std::size_t max_inputs = 64;  ///< refuse wider benchmarks (size safety)
};

/// Learner wrapper: onset/careset BDDs from samples + DC minimization.
class BddLearner final : public Learner {
 public:
  explicit BddLearner(BddLearnerOptions options, std::string label = "bdd")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  BddLearnerOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
