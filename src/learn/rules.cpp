#include "learn/rules.hpp"

#include <algorithm>

#include "aig/aig_build.hpp"

namespace lsml::learn {

namespace {

// Best leaf of a partial tree by Laplace-corrected precision * coverage.
struct LeafPick {
  sop::Cube path;
  bool value = false;
  double score = -1.0;
};

void find_best_leaf(const DecisionTree& tree, const data::Dataset& ds,
                    const std::vector<std::size_t>& rows, LeafPick* best,
                    std::size_t num_inputs) {
  // Reconstruct per-leaf statistics by pushing the remaining rows down.
  const auto& nodes = tree.nodes();
  std::vector<std::size_t> total(nodes.size(), 0);
  std::vector<std::size_t> pos(nodes.size(), 0);
  for (std::size_t r : rows) {
    std::uint32_t at = tree.root();
    while (true) {
      ++total[at];
      pos[at] += ds.label(r) ? 1 : 0;
      if (nodes[at].var < 0) {
        break;
      }
      at = ds.input(r, static_cast<std::size_t>(nodes[at].var)) ? nodes[at].hi
                                                                : nodes[at].lo;
    }
  }
  // DFS with the path cube to score leaves.
  sop::Cube path(num_inputs);
  const auto dfs = [&](auto&& self, std::uint32_t at) -> void {
    const DtNode& n = nodes[at];
    if (n.var < 0) {
      if (total[at] == 0) {
        return;
      }
      const auto t = static_cast<double>(total[at]);
      const auto p = static_cast<double>(pos[at]);
      const bool value = 2 * pos[at] >= total[at];
      const double correct = value ? p : t - p;
      const double precision = (correct + 1.0) / (t + 2.0);
      const double score = precision * correct;
      if (score > best->score) {
        best->score = score;
        best->value = value;
        best->path = path;
      }
      return;
    }
    const auto v = static_cast<std::size_t>(n.var);
    path.mask.set(v, true);
    path.value.set(v, false);
    self(self, n.lo);
    path.value.set(v, true);
    self(self, n.hi);
    path.mask.set(v, false);
    path.value.set(v, false);
  };
  dfs(dfs, tree.root());
}

}  // namespace

RuleList RuleList::fit(const data::Dataset& ds,
                       const RuleListOptions& options, core::Rng& rng) {
  RuleList list;
  const auto rows = sop::dataset_rows(ds);
  std::vector<std::size_t> remaining(ds.num_rows());
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    remaining[r] = r;
  }
  while (!remaining.empty() && list.rules_.size() < options.max_rules) {
    const data::Dataset subset = ds.select_rows(remaining);
    const double frac = subset.label_fraction();
    if (frac == 0.0 || frac == 1.0) {
      break;  // remainder is pure; the default rule handles it
    }
    DtOptions dt;
    dt.max_depth = options.partial_tree_depth;
    dt.min_samples_leaf = options.min_samples_leaf;
    const DecisionTree tree = DecisionTree::fit(subset, dt, rng);
    LeafPick best;
    std::vector<std::size_t> subset_rows(subset.num_rows());
    for (std::size_t r = 0; r < subset.num_rows(); ++r) {
      subset_rows[r] = r;
    }
    find_best_leaf(tree, subset, subset_rows, &best, ds.num_inputs());
    if (best.score < 0.0 || best.path.num_literals() == 0) {
      break;
    }
    list.rules_.push_back(Rule{best.path, best.value});
    // Drop covered rows (indices are into the original dataset).
    std::vector<std::size_t> kept;
    kept.reserve(remaining.size());
    for (std::size_t r : remaining) {
      if (!best.path.covers_row(rows[r])) {
        kept.push_back(r);
      }
    }
    if (kept.size() == remaining.size()) {
      break;  // no progress
    }
    remaining = std::move(kept);
  }
  if (!remaining.empty()) {
    const data::Dataset rest = ds.select_rows(remaining);
    list.default_value_ = rest.label_fraction() >= 0.5;
  } else {
    list.default_value_ = ds.label_fraction() >= 0.5;
  }
  return list;
}

core::BitVec RuleList::predict(const data::Dataset& ds) const {
  core::BitVec out(ds.num_rows());
  const auto rows = sop::dataset_rows(ds);
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    bool value = default_value_;
    for (const Rule& rule : rules_) {
      if (rule.condition.covers_row(rows[r])) {
        value = rule.consequence;
        break;
      }
    }
    if (value) {
      out.set(r, true);
    }
  }
  return out;
}

aig::Aig RuleList::to_aig(std::size_t num_inputs) const {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> leaves;
  leaves.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  // Priority chain, last rule first: out = r1 ? c1 : (r2 ? c2 : ... default).
  aig::Lit out = default_value_ ? aig::kLitTrue : aig::kLitFalse;
  for (std::size_t i = rules_.size(); i-- > 0;) {
    const Rule& rule = rules_[i];
    std::vector<aig::Lit> lits;
    for (std::size_t v = 0; v < num_inputs; ++v) {
      if (rule.condition.mask.get(v)) {
        lits.push_back(aig::lit_notc(leaves[v], !rule.condition.value.get(v)));
      }
    }
    const aig::Lit fires = aig::and_tree(g, std::move(lits));
    out = g.mux(fires, rule.consequence ? aig::kLitTrue : aig::kLitFalse, out);
  }
  g.add_output(out);
  return g;
}

TrainedModel RuleListLearner::fit(const data::Dataset& train,
                                  const data::Dataset& valid,
                                  core::Rng& rng) {
  const RuleList list = RuleList::fit(train, options_, rng);
  return finish_model(list.to_aig(train.num_inputs()), label_, train, valid);
}

}  // namespace lsml::learn
