#include "learn/fringe.hpp"

#include <algorithm>


namespace lsml::learn {

namespace {

DerivedFeature canonical(DerivedFeature f) {
  // XOR absorbs polarities into a single overall complement; we normalize
  // to plain XOR (a complemented composite is expressed by the tree taking
  // the other branch). For AND, order the operands.
  if (f.op == DerivedFeature::Op::kXor) {
    const bool flip = f.not_a != f.not_b;
    f.not_a = false;
    f.not_b = flip;  // keep parity on operand b
  }
  if (f.a > f.b) {
    std::swap(f.a, f.b);
    std::swap(f.not_a, f.not_b);
  }
  return f;
}

}  // namespace

bool FeatureBank::add(DerivedFeature f) {
  f = canonical(f);
  if (std::find(derived_.begin(), derived_.end(), f) != derived_.end()) {
    return false;
  }
  derived_.push_back(f);
  return true;
}

data::Dataset FeatureBank::extend(const data::Dataset& ds) const {
  data::Dataset out = ds;
  for (const DerivedFeature& f : derived_) {
    core::BitVec a = out.column(f.a);
    core::BitVec b = out.column(f.b);
    if (f.not_a) {
      a.flip();
    }
    if (f.not_b) {
      b.flip();
    }
    out.add_column(f.op == DerivedFeature::Op::kAnd ? (a & b) : (a ^ b));
  }
  return out;
}

std::vector<aig::Lit> FeatureBank::build_lits(aig::Aig& g) const {
  std::vector<aig::Lit> lits;
  lits.reserve(num_total());
  for (std::size_t i = 0; i < num_original_; ++i) {
    lits.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  for (const DerivedFeature& f : derived_) {
    const aig::Lit a = aig::lit_notc(lits[f.a], f.not_a);
    const aig::Lit b = aig::lit_notc(lits[f.b], f.not_b);
    lits.push_back(f.op == DerivedFeature::Op::kAnd ? g.and2(a, b)
                                                    : g.xor2(a, b));
  }
  return lits;
}

std::vector<DerivedFeature> extract_fringe_features(const DecisionTree& tree) {
  const auto& nodes = tree.nodes();
  std::vector<DerivedFeature> found;

  // Parent links (nodes are stored parent-before-children).
  std::vector<int> parent(nodes.size(), -1);
  std::vector<bool> hi_branch(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].var >= 0) {
      parent[nodes[i].lo] = static_cast<int>(i);
      hi_branch[nodes[i].lo] = false;
      parent[nodes[i].hi] = static_cast<int>(i);
      hi_branch[nodes[i].hi] = true;
    }
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].var >= 0) {
      continue;  // want leaves
    }
    const int p = parent[i];
    if (p < 0) {
      continue;
    }
    const int gp = parent[static_cast<std::size_t>(p)];
    if (gp < 0) {
      continue;
    }
    const auto& pn = nodes[static_cast<std::size_t>(p)];
    const auto& gn = nodes[static_cast<std::size_t>(gp)];
    if (pn.var == gn.var) {
      continue;
    }
    // AND composite of the two polarized path literals nearest the leaf.
    DerivedFeature conj;
    conj.op = DerivedFeature::Op::kAnd;
    conj.a = static_cast<std::size_t>(gn.var);
    conj.not_a = !hi_branch[static_cast<std::size_t>(p)];
    conj.b = static_cast<std::size_t>(pn.var);
    conj.not_b = !hi_branch[i];
    found.push_back(conj);

    // XOR pattern: grandparent's two children test the same variable and
    // the four grandchild leaves alternate.
    const auto& lo = nodes[gn.lo];
    const auto& hi = nodes[gn.hi];
    if (lo.var >= 0 && lo.var == hi.var && lo.var != gn.var) {
      const auto leaf_val = [&](std::uint32_t id, bool* ok) {
        *ok = *ok && nodes[id].var < 0;
        return nodes[id].value;
      };
      bool ok = true;
      const bool v00 = leaf_val(lo.lo, &ok);
      const bool v01 = leaf_val(lo.hi, &ok);
      const bool v10 = leaf_val(hi.lo, &ok);
      const bool v11 = leaf_val(hi.hi, &ok);
      if (ok && v00 == v11 && v01 == v10 && v00 != v01) {
        DerivedFeature x;
        x.op = DerivedFeature::Op::kXor;
        x.a = static_cast<std::size_t>(gn.var);
        x.b = static_cast<std::size_t>(lo.var);
        found.push_back(x);
      }
    }
  }
  return found;
}

TrainedModel FringeLearner::fit(const data::Dataset& train,
                                const data::Dataset& valid, core::Rng& rng) {
  FeatureBank bank(train.num_inputs());
  data::Dataset extended = train;
  DecisionTree tree = DecisionTree::fit(extended, options_.dt, rng);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    bool any_new = false;
    for (const DerivedFeature& f : extract_fringe_features(tree)) {
      if (bank.derived().size() >= options_.max_derived_features) {
        break;
      }
      any_new |= bank.add(f);
    }
    if (!any_new) {
      break;
    }
    extended = bank.extend(train);
    tree = DecisionTree::fit(extended, options_.dt, rng);
  }

  aig::Aig g(static_cast<std::uint32_t>(train.num_inputs()));
  const auto lits = bank.build_lits(g);
  g.add_output(tree.to_lit(g, lits));
  return finish_model(std::move(g), label_, train, valid);
}

}  // namespace lsml::learn
