#pragma once
// Cartesian Genetic Programming over AIG/XAIG node functions (Team 9).
//
// Single-row CGP: a genome is a feed-forward array of gates (AND or XOR,
// with independently complementable fanins) over the primary inputs. Search
// is a (1+lambda) evolution strategy with the 1/5th-rule adaptive mutation
// rate, optional training mini-batches, and optional bootstrapping from an
// existing AIG (e.g. a decision-tree or ESPRESSO result), exactly following
// the paper's "Bootstrapped CGP flow".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "learn/learner.hpp"

namespace lsml::learn {

struct CgpOptions {
  std::size_t genome_nodes = 500;
  std::size_t generations = 2000;
  int lambda = 4;                 ///< offspring per generation ((1+4)-ES)
  bool use_xor = true;            ///< XAIG vs plain AIG node functions
  double initial_mutation = 0.02; ///< per-gene mutation probability
  std::size_t minibatch = 1024;   ///< 0 = whole training set
  std::size_t change_batch_every = 500;  ///< generations per mini-batch
};

struct CgpGene {
  bool is_xor = false;
  std::uint32_t in0 = 0;  ///< literal: 2*index+compl, index over PIs+genes
  std::uint32_t in1 = 0;
};

class CgpIndividual {
 public:
  std::vector<CgpGene> genes;
  std::uint32_t output_lit = 0;  ///< literal into PIs+genes space
  std::size_t num_pis = 0;

  /// Packed evaluation over dataset columns.
  [[nodiscard]] core::BitVec evaluate(const data::Dataset& ds) const;
  [[nodiscard]] aig::Aig to_aig() const;
  /// Number of genes reachable from the output (the phenotype size).
  [[nodiscard]] std::size_t active_genes() const;
};

class Cgp {
 public:
  /// Random initialization.
  static CgpIndividual random_individual(std::size_t num_pis,
                                         const CgpOptions& options,
                                         core::Rng& rng);
  /// Bootstrap: embeds an existing AIG into a genome of twice its size.
  static CgpIndividual from_aig(const aig::Aig& seed,
                                const CgpOptions& options, core::Rng& rng);

  /// Runs the (1+lambda) ES and returns the best individual found.
  static CgpIndividual evolve(CgpIndividual start, const data::Dataset& train,
                              const CgpOptions& options, core::Rng& rng);
};

/// Learner: bootstraps from `seed` if it reaches >= 55% training accuracy
/// (the paper's rule), otherwise starts from random individuals.
class CgpLearner final : public Learner {
 public:
  CgpLearner(CgpOptions options, std::optional<aig::Aig> seed,
             std::string label = "cgp")
      : options_(options), seed_(std::move(seed)), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  CgpOptions options_;
  std::optional<aig::Aig> seed_;
  std::string label_;
};

}  // namespace lsml::learn
