#pragma once
// Pre-defined standard-function matching (Teams 1 & 7).
//
// Before any ML, the training data is checked against a library of
// parameterized standard functions using the contest's known input layout
// (operand words LSB-to-MSB, a then b). On an exact match the function's
// textbook AIG is emitted directly — "the most important method in the
// contest" per Team 1. The library covers constants, single literals,
// pairwise XORs, totally symmetric functions (which subsumes parity),
// adder output bits, comparators, and small multipliers.

#include <optional>
#include <string>

#include "learn/learner.hpp"

namespace lsml::learn {

struct MatchOptions {
  /// Minimum training agreement to accept a match (1.0 = exact).
  double min_agreement = 1.0;
  /// Pairwise-XOR scan limit (quadratic in inputs).
  std::size_t max_inputs_for_xor_scan = 256;
  /// Multipliers wider than this are not constructible within the node
  /// budget (the paper reached the same conclusion).
  std::size_t max_multiplier_width = 16;
};

struct MatchResult {
  std::string what;  ///< e.g. "adder[k=16,bit=16]"
  aig::Aig circuit{0};
};

/// Tries the library; returns the matched circuit or nullopt.
std::optional<MatchResult> match_standard_function(const data::Dataset& train,
                                                   const MatchOptions& options);

/// Learner adapter: returns the matched circuit, or the majority constant
/// when nothing matches (callers treat that as "no match").
class MatchLearner final : public Learner {
 public:
  explicit MatchLearner(MatchOptions options, std::string label = "match")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  MatchOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
