#include "learn/dt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lsml::learn {

namespace {

double impurity(double p, DtOptions::Criterion criterion) {
  if (p <= 0.0 || p >= 1.0) {
    return 0.0;
  }
  if (criterion == DtOptions::Criterion::kGini) {
    return 2.0 * p * (1.0 - p);
  }
  return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

class Builder {
 public:
  Builder(const data::Dataset& ds, const DtOptions& options, core::Rng& rng,
          std::vector<DtNode>* nodes, std::vector<double>* gains)
      : ds_(ds), options_(options), rng_(rng), nodes_(nodes), gains_(gains),
        used_on_path_(ds.num_inputs(), false) {}

  std::uint32_t build(const core::BitVec& mask, std::size_t depth,
                      bool parent_major) {
    const std::size_t total = mask.count();
    const std::size_t pos = ds_.labels().count_and(mask);
    const bool major = pos * 2 > total   ? true
                       : pos * 2 < total ? false
                                         : parent_major;
    if (total == 0 || pos == 0 || pos == total ||
        total < options_.min_samples_split ||
        (options_.max_depth != 0 && depth >= options_.max_depth)) {
      return make_leaf(major);
    }

    int best_var = -1;
    double best_gain = 0.0;
    std::size_t best_n1 = 0;
    const double node_imp =
        impurity(static_cast<double>(pos) / static_cast<double>(total),
                 options_.criterion);

    const auto consider = [&](std::size_t v) {
      const std::size_t n1 = mask.count_and(ds_.column(v));
      const std::size_t n0 = total - n1;
      if (n1 < options_.min_samples_leaf || n0 < options_.min_samples_leaf ||
          n1 == 0 || n0 == 0) {
        return;
      }
      const std::size_t n1y = ds_.labels().count_and2(mask, ds_.column(v));
      const std::size_t n0y = pos - n1y;
      const double imp1 =
          impurity(static_cast<double>(n1y) / static_cast<double>(n1),
                   options_.criterion);
      const double imp0 =
          impurity(static_cast<double>(n0y) / static_cast<double>(n0),
                   options_.criterion);
      const double gain =
          node_imp - (static_cast<double>(n1) / total) * imp1 -
          (static_cast<double>(n0) / total) * imp0;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_var = static_cast<int>(v);
        best_n1 = n1;
      }
    };

    if (options_.feature_subsample == 0 ||
        options_.feature_subsample >= ds_.num_inputs()) {
      for (std::size_t v = 0; v < ds_.num_inputs(); ++v) {
        consider(v);
      }
    } else {
      for (std::size_t i = 0; i < options_.feature_subsample; ++i) {
        consider(rng_.below(ds_.num_inputs()));
      }
    }

    if (options_.decomposition_threshold >= 0.0 &&
        best_gain < options_.decomposition_threshold) {
      const int decomp = decomposition_split(mask, total, pos);
      if (decomp >= 0) {
        best_var = decomp;
        best_gain = std::max(best_gain, 1e-9);
        best_n1 = mask.count_and(ds_.column(static_cast<std::size_t>(decomp)));
      }
    }
    if (best_var < 0 || best_n1 == 0 || best_n1 == total) {
      return make_leaf(major);
    }

    const auto var = static_cast<std::size_t>(best_var);
    const auto id = static_cast<std::uint32_t>(nodes_->size());
    nodes_->push_back(DtNode{best_var, major, 0, 0});
    gains_->push_back(best_gain * static_cast<double>(total) /
                      static_cast<double>(ds_.num_rows()));
    const bool was_used = used_on_path_[var];
    used_on_path_[var] = true;
    const core::BitVec hi_mask = mask & ds_.column(var);
    const core::BitVec lo_mask = mask & ~ds_.column(var);
    const std::uint32_t lo = build(lo_mask, depth + 1, major);
    const std::uint32_t hi = build(hi_mask, depth + 1, major);
    used_on_path_[var] = was_used;
    (*nodes_)[id].lo = lo;
    (*nodes_)[id].hi = hi;
    return id;
  }

 private:
  std::uint32_t make_leaf(bool value) {
    nodes_->push_back(DtNode{-1, value, 0, 0});
    gains_->push_back(0.0);
    return static_cast<std::uint32_t>(nodes_->size() - 1);
  }

  // Team 8's functional-decomposition fallback: prefer a not-yet-used
  // feature for which (1) one branch is constant, or (2) the two branches
  // look complementary. The complement test on sampled data is necessarily
  // aggressive (no counter-example search over unseen minterms); following
  // the paper, the *last* satisfying feature wins.
  int decomposition_split(const core::BitVec& mask, std::size_t total,
                          std::size_t pos) {
    int chosen = -1;
    for (std::size_t v = 0; v < ds_.num_inputs(); ++v) {
      if (used_on_path_[v]) {
        continue;
      }
      const std::size_t n1 = mask.count_and(ds_.column(v));
      const std::size_t n0 = total - n1;
      if (n1 < options_.min_samples_leaf || n0 < options_.min_samples_leaf ||
          n1 == 0 || n0 == 0) {
        continue;
      }
      const std::size_t n1y = ds_.labels().count_and2(mask, ds_.column(v));
      const std::size_t n0y = pos - n1y;
      const bool constant_branch =
          n1y == 0 || n1y == n1 || n0y == 0 || n0y == n0;
      const double p1 = static_cast<double>(n1y) / static_cast<double>(n1);
      const double p0 = static_cast<double>(n0y) / static_cast<double>(n0);
      const bool complementary =
          std::abs(p0 + p1 - 1.0) < 0.05 && std::abs(p0 - 0.5) > 0.2;
      if (constant_branch || complementary) {
        chosen = static_cast<int>(v);
      }
    }
    return chosen;
  }

  const data::Dataset& ds_;
  const DtOptions& options_;
  core::Rng& rng_;
  std::vector<DtNode>* nodes_;
  std::vector<double>* gains_;
  std::vector<bool> used_on_path_;
};

}  // namespace

DecisionTree DecisionTree::fit(const data::Dataset& ds,
                               const DtOptions& options, core::Rng& rng) {
  DecisionTree tree;
  core::BitVec mask(ds.num_rows(), true);
  Builder builder(ds, options, rng, &tree.nodes_, &tree.gains_);
  tree.root_ = builder.build(mask, 0, ds.label_fraction() >= 0.5);
  return tree;
}

bool DecisionTree::predict_row(const std::vector<std::uint8_t>& row) const {
  std::uint32_t at = root_;
  while (nodes_[at].var >= 0) {
    at = row[static_cast<std::size_t>(nodes_[at].var)] ? nodes_[at].hi
                                                       : nodes_[at].lo;
  }
  return nodes_[at].value;
}

core::BitVec DecisionTree::predict(const data::Dataset& ds) const {
  core::BitVec out(ds.num_rows());
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    std::uint32_t at = root_;
    while (nodes_[at].var >= 0) {
      at = ds.input(r, static_cast<std::size_t>(nodes_[at].var))
               ? nodes_[at].hi
               : nodes_[at].lo;
    }
    if (nodes_[at].value) {
      out.set(r, true);
    }
  }
  return out;
}

aig::Lit DecisionTree::to_lit(aig::Aig& g,
                              const std::vector<aig::Lit>& leaves) const {
  std::vector<aig::Lit> built(nodes_.size(), aig::kLitFalse);
  // Nodes were appended parent-before-children, so a reverse sweep sees
  // children first.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const DtNode& n = nodes_[i];
    if (n.var < 0) {
      built[i] = n.value ? aig::kLitTrue : aig::kLitFalse;
    } else {
      built[i] = g.mux(leaves[static_cast<std::size_t>(n.var)], built[n.hi],
                       built[n.lo]);
    }
  }
  return built[root_];
}

aig::Aig DecisionTree::to_aig(std::size_t num_inputs) const {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> leaves;
  leaves.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  g.add_output(to_lit(g, leaves));
  return g;
}

sop::Cover DecisionTree::to_cover(std::size_t num_inputs) const {
  sop::Cover cover;
  sop::Cube path(num_inputs);
  const auto dfs = [&](auto&& self, std::uint32_t at) -> void {
    const DtNode& n = nodes_[at];
    if (n.var < 0) {
      if (n.value) {
        cover.push_back(path);
      }
      return;
    }
    const auto v = static_cast<std::size_t>(n.var);
    path.mask.set(v, true);
    path.value.set(v, false);
    self(self, n.lo);
    path.value.set(v, true);
    self(self, n.hi);
    path.mask.set(v, false);
    path.value.set(v, false);
  };
  dfs(dfs, root_);
  return cover;
}

std::size_t DecisionTree::num_leaves() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const DtNode& n) { return n.var < 0; }));
}

std::size_t DecisionTree::depth() const {
  std::vector<std::size_t> depth(nodes_.size(), 0);
  std::size_t max_depth = 0;
  // Parents precede children, so a forward sweep propagates depths.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const DtNode& n = nodes_[i];
    if (n.var >= 0) {
      depth[n.lo] = depth[i] + 1;
      depth[n.hi] = depth[i] + 1;
      max_depth = std::max(max_depth, depth[i] + 1);
    }
  }
  return max_depth;
}

std::vector<double> DecisionTree::feature_gains(
    std::size_t num_features) const {
  std::vector<double> gains(num_features, 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].var >= 0) {
      gains[static_cast<std::size_t>(nodes_[i].var)] += gains_[i];
    }
  }
  return gains;
}

TrainedModel DtLearner::fit(const data::Dataset& train,
                            const data::Dataset& valid, core::Rng& rng) {
  const DecisionTree tree = DecisionTree::fit(train, options_, rng);
  return finish_model(tree.to_aig(train.num_inputs()), label_, train, valid);
}

}  // namespace lsml::learn
