#include "learn/bdd.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "sop/cube.hpp"

namespace lsml::learn {

void BddMgr::set_order(std::vector<std::size_t> order) {
  order_ = std::move(order);
  level_var_.assign(num_vars_, 0);
  for (std::size_t v = 0; v < num_vars_; ++v) {
    level_var_[order_[v]] = v;
  }
}

BddMgr::Ref BddMgr::mk(std::uint32_t level, Ref lo, Ref hi) {
  if (lo == hi) {
    return lo;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(level) << 42) ^
                            (static_cast<std::uint64_t>(lo) << 21) ^ hi;
  if (auto it = unique_.find(key); it != unique_.end()) {
    return it->second;
  }
  nodes_.push_back(Node{level, lo, hi});
  const Ref r = static_cast<Ref>(nodes_.size() - 1);
  unique_.emplace(key, r);
  return r;
}

BddMgr::Ref BddMgr::var(std::size_t v) {
  if (order_.empty()) {
    std::vector<std::size_t> identity(num_vars_);
    std::iota(identity.begin(), identity.end(), 0);
    set_order(std::move(identity));
  }
  return mk(static_cast<std::uint32_t>(order_[v]), kFalse, kTrue);
}

BddMgr::Cofactors BddMgr::cofactor(Ref r, std::uint32_t level) const {
  const Node& n = nodes_[r];
  if (n.level == level) {
    return {n.lo, n.hi};
  }
  return {r, r};
}

BddMgr::Ref BddMgr::apply(Ref a, Ref b, int op) {
  // Terminal cases.
  switch (op) {
    case 0:  // and
      if (a == kFalse || b == kFalse) {
        return kFalse;
      }
      if (a == kTrue) {
        return b;
      }
      if (b == kTrue || a == b) {
        return a;
      }
      break;
    case 1:  // or
      if (a == kTrue || b == kTrue) {
        return kTrue;
      }
      if (a == kFalse) {
        return b;
      }
      if (b == kFalse || a == b) {
        return a;
      }
      break;
    default:  // xor
      if (a == b) {
        return kFalse;
      }
      if (a == kFalse) {
        return b;
      }
      if (b == kFalse) {
        return a;
      }
      break;
  }
  if (a > b && (op == 0 || op == 1 || op == 2)) {
    std::swap(a, b);  // commutative; canonicalize the cache key
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 34) ^
                            (static_cast<std::uint64_t>(b) << 2) ^
                            static_cast<std::uint64_t>(op);
  if (auto it = apply_cache_.find(key); it != apply_cache_.end()) {
    return it->second;
  }
  const std::uint32_t level = std::min(level_of(a), level_of(b));
  const Cofactors ca = cofactor(a, level);
  const Cofactors cb = cofactor(b, level);
  const Ref lo = apply(ca.lo, cb.lo, op);
  const Ref hi = apply(ca.hi, cb.hi, op);
  const Ref r = mk(level, lo, hi);
  apply_cache_.emplace(key, r);
  return r;
}

BddMgr::Ref BddMgr::bdd_and(Ref a, Ref b) { return apply(a, b, 0); }
BddMgr::Ref BddMgr::bdd_or(Ref a, Ref b) { return apply(a, b, 1); }
BddMgr::Ref BddMgr::bdd_xor(Ref a, Ref b) { return apply(a, b, 2); }

BddMgr::Ref BddMgr::minterm(const core::BitVec& row) {
  if (order_.empty()) {
    var(0);  // force identity order initialization
  }
  // Build bottom-up in reverse order of levels for linear work.
  Ref r = kTrue;
  for (std::size_t level = num_vars_; level-- > 0;) {
    const std::size_t v = level_var_[level];
    r = row.get(v) ? mk(static_cast<std::uint32_t>(level), kFalse, r)
                   : mk(static_cast<std::uint32_t>(level), r, kFalse);
  }
  return r;
}

BddMgr::Ref BddMgr::minimize(Ref f, Ref care, bool use_two_sided,
                             bool use_complement) {
  if (care == kFalse) {
    return kFalse;  // entirely don't-care: pick the constant 0
  }
  if (f == kFalse || f == kTrue) {
    return f;  // constants are already minimal
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(f) << 32) ^ care ^
      (static_cast<std::uint64_t>(use_two_sided) << 62) ^
      (static_cast<std::uint64_t>(use_complement) << 63);
  if (auto it = min_cache_.find(key); it != min_cache_.end()) {
    return it->second;
  }
  const std::uint32_t level = std::min(level_of(f), level_of(care));
  const Cofactors cf = cofactor(f, level);
  const Cofactors cc = cofactor(care, level);

  Ref result = 0;
  if (cc.lo == kFalse) {
    // One-sided: the low branch is all don't-care.
    result = minimize(cf.hi, cc.hi, use_two_sided, use_complement);
  } else if (cc.hi == kFalse) {
    result = minimize(cf.lo, cc.lo, use_two_sided, use_complement);
  } else {
    const Ref common = bdd_and(cc.lo, cc.hi);
    const bool straight_ok =
        use_two_sided && bdd_and(bdd_xor(cf.lo, cf.hi), common) == kFalse;
    if (straight_ok) {
      // Two-sided: children agree wherever both care.
      const Ref merged =
          bdd_or(bdd_and(cf.lo, cc.lo), bdd_and(cf.hi, cc.hi));
      result = minimize(merged, bdd_or(cc.lo, cc.hi), use_two_sided,
                        use_complement);
    } else {
      const bool compl_ok =
          use_complement &&
          bdd_and(bdd_not(bdd_xor(cf.lo, cf.hi)), common) == kFalse;
      if (compl_ok) {
        // Complemented two-sided: hi agrees with NOT(lo) on the common
        // care; realize as var XOR g.
        const Ref merged =
            bdd_or(bdd_and(cf.lo, cc.lo), bdd_and(bdd_not(cf.hi), cc.hi));
        const Ref g = minimize(merged, bdd_or(cc.lo, cc.hi), use_two_sided,
                               use_complement);
        const Ref v = mk(level, kFalse, kTrue);
        result = bdd_xor(v, g);
      } else {
        const Ref lo = minimize(cf.lo, cc.lo, use_two_sided, use_complement);
        const Ref hi = minimize(cf.hi, cc.hi, use_two_sided, use_complement);
        result = mk(level, lo, hi);
      }
    }
  }
  min_cache_.emplace(key, result);
  return result;
}

bool BddMgr::eval(Ref f, const core::BitVec& row) const {
  while (f != kFalse && f != kTrue) {
    const Node& n = nodes_[f];
    f = row.get(level_var_[n.level]) ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::size_t BddMgr::size(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (r == kFalse || r == kTrue || !seen.insert(r).second) {
      continue;
    }
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return seen.size();
}

aig::Lit BddMgr::to_lit(Ref f, aig::Aig& g,
                        const std::vector<aig::Lit>& leaves) {
  std::unordered_map<Ref, aig::Lit> built{{kFalse, aig::kLitFalse},
                                          {kTrue, aig::kLitTrue}};
  const auto rec = [&](auto&& self, Ref r) -> aig::Lit {
    if (auto it = built.find(r); it != built.end()) {
      return it->second;
    }
    const Node& n = nodes_[r];
    const aig::Lit lo = self(self, n.lo);
    const aig::Lit hi = self(self, n.hi);
    const aig::Lit lit = g.mux(leaves[level_var_[n.level]], hi, lo);
    built.emplace(r, lit);
    return lit;
  };
  return rec(rec, f);
}

TrainedModel BddLearner::fit(const data::Dataset& train,
                             const data::Dataset& valid, core::Rng& rng) {
  (void)rng;
  const std::size_t n = train.num_inputs();
  if (n > options_.max_inputs) {
    // Too wide for a sampled-minterm BDD: return the majority constant.
    aig::Aig g(static_cast<std::uint32_t>(n));
    g.add_output(train.label_fraction() >= 0.5 ? aig::kLitTrue
                                               : aig::kLitFalse);
    return finish_model(std::move(g), label_ + "(const)", train, valid);
  }
  BddMgr mgr(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options_.msb_first_interleaved && n % 2 == 0) {
    // MSB-first, interleaving the two operand words (the order the paper
    // found necessary for adders): a[k-1], b[k-1], a[k-2], b[k-2], ...
    const std::size_t k = n / 2;
    for (std::size_t i = 0; i < k; ++i) {
      order[k - 1 - i] = 2 * i;      // a bits, MSB first
      order[n - 1 - i] = 2 * i + 1;  // b bits, MSB first
    }
  }
  mgr.set_order(order);

  const auto rows = sop::dataset_rows(train);
  BddMgr::Ref onset = BddMgr::kFalse;
  BddMgr::Ref careset = BddMgr::kFalse;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const BddMgr::Ref m = mgr.minterm(rows[r]);
    careset = mgr.bdd_or(careset, m);
    if (train.label(r)) {
      onset = mgr.bdd_or(onset, m);
    }
  }
  const BddMgr::Ref minimized = mgr.minimize(
      onset, careset, options_.use_two_sided, options_.use_complement);

  aig::Aig g(static_cast<std::uint32_t>(n));
  std::vector<aig::Lit> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  g.add_output(mgr.to_lit(minimized, g, leaves));
  return finish_model(std::move(g), label_, train, valid);
}

}  // namespace lsml::learn
