#pragma once
// Separate-and-conquer rule lists (Team 2's PART substitute).
//
// PART builds a partial decision tree per round, extracts the best leaf as
// a rule, removes the covered examples, and repeats. Prediction follows the
// first matching rule. Synthesis is a priority MUX chain (the paper's
// "circuit that guarantees the rule order").

#include <string>
#include <vector>

#include "learn/dt.hpp"
#include "learn/learner.hpp"
#include "sop/cube.hpp"

namespace lsml::learn {

struct Rule {
  sop::Cube condition;
  bool consequence = false;
};

struct RuleListOptions {
  std::size_t max_rules = 64;
  std::size_t partial_tree_depth = 5;
  std::size_t min_samples_leaf = 1;
};

class RuleList {
 public:
  static RuleList fit(const data::Dataset& ds, const RuleListOptions& options,
                      core::Rng& rng);

  [[nodiscard]] core::BitVec predict(const data::Dataset& ds) const;
  [[nodiscard]] aig::Aig to_aig(std::size_t num_inputs) const;
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] bool default_value() const { return default_value_; }

 private:
  std::vector<Rule> rules_;
  bool default_value_ = false;
};

class RuleListLearner final : public Learner {
 public:
  explicit RuleListLearner(RuleListOptions options, std::string label = "part")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  RuleListOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
