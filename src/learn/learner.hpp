#pragma once
// Common learner interface.
//
// Every technique in the paper is wrapped as a Learner: it consumes a
// training and a validation dataset and produces a TrainedModel whose
// `circuit` is the synthesized AIG — the contest's only deliverable. All
// accuracies are measured by simulating that AIG, so every model pays its
// own synthesis/quantization cost, exactly as in the contest.
//
// Learners lower their models to *raw* AIGs and hand them to
// finish_model, which optimizes through the process-default
// synth::OptRequest (the installed synth::default_optimizer(); memoized
// by circuit structure) exactly once and records the pass trace. No
// learner calls aig::optimize directly; "how circuits get optimized" is
// the pass manager's contract, not each learner's habit. Under an "auto"
// request the script itself is chosen per circuit by synth::ScriptSearch.

#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/sim_engine.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "synth/pass_manager.hpp"

namespace lsml::learn {

struct TrainedModel {
  aig::Aig circuit{0};
  std::string method;      ///< human-readable description of what won
  double train_acc = 0.0;  ///< AIG accuracy on the training set
  double valid_acc = 0.0;  ///< AIG accuracy on the validation set
  /// What the optimization pipeline did to the raw circuit (finish_model's
  /// run, plus any approximation a portfolio applied on top).
  std::vector<synth::PassStats> synth_trace;
  /// SAT certification of that pipeline run (kNotRequested unless the
  /// pipeline's SynthOptions enabled verify_equivalence). Certifies the
  /// pass-manager run, not the learner: a later approximation downgrades
  /// it to kSkippedApprox (and is also visible in the method suffix).
  synth::VerifyStatus verified = synth::VerifyStatus::kNotRequested;
  /// Canonical text of the script that optimized `circuit` — the request's
  /// own script, or the per-circuit winner when the installed request was
  /// "auto". Feeds the leaderboard's script column.
  std::string opt_script;
};

class Learner {
 public:
  virtual ~Learner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual TrainedModel fit(const data::Dataset& train,
                           const data::Dataset& valid, core::Rng& rng) = 0;
};

/// Accuracy of a single-output AIG on a dataset (packed simulation).
double circuit_accuracy(const aig::Aig& circuit, const data::Dataset& ds);

/// Same, through a caller-held SimEngine bound to the circuit — the word
/// arena is reused across datasets (train/valid scoring shares one).
double circuit_accuracy(aig::SimEngine& engine, const data::Dataset& ds);

/// Accuracies of many candidate output literals of the bound circuit in
/// one sweep: the graph is simulated once over `ds`, then every candidate
/// is scored with a reduction pass over its arena row — no per-candidate
/// simulation, no output BitVec materialized. This is the batch kernel
/// for search layers that compare alternative outputs of one structure.
std::vector<double> circuit_accuracies(aig::SimEngine& engine,
                                       const data::Dataset& ds,
                                       const std::vector<aig::Lit>& candidates);

/// Optimizes the raw circuit through the process-default synth::OptRequest
/// (memoized on circuit structure, so identical circuits across teams
/// optimize once per process; an "auto" default searches per circuit),
/// then measures train/valid accuracies of the optimized AIG. The
/// returned model honors the request's node budget.
TrainedModel finish_model(aig::Aig circuit, std::string method,
                          const data::Dataset& train,
                          const data::Dataset& valid);

}  // namespace lsml::learn
