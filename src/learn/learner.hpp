#pragma once
// Common learner interface.
//
// Every technique in the paper is wrapped as a Learner: it consumes a
// training and a validation dataset and produces a TrainedModel whose
// `circuit` is the synthesized AIG — the contest's only deliverable. All
// accuracies are measured by simulating that AIG, so every model pays its
// own synthesis/quantization cost, exactly as in the contest.

#include <memory>
#include <string>

#include "aig/aig.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"

namespace lsml::learn {

struct TrainedModel {
  aig::Aig circuit{0};
  std::string method;      ///< human-readable description of what won
  double train_acc = 0.0;  ///< AIG accuracy on the training set
  double valid_acc = 0.0;  ///< AIG accuracy on the validation set
};

class Learner {
 public:
  virtual ~Learner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual TrainedModel fit(const data::Dataset& train,
                           const data::Dataset& valid, core::Rng& rng) = 0;
};

/// Accuracy of a single-output AIG on a dataset (packed simulation).
double circuit_accuracy(const aig::Aig& circuit, const data::Dataset& ds);

/// Fills train/valid accuracies of a model in place and returns it.
TrainedModel finish_model(aig::Aig circuit, std::string method,
                          const data::Dataset& train,
                          const data::Dataset& valid);

}  // namespace lsml::learn
