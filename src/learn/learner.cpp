#include "learn/learner.hpp"

#include <memory>
#include <utility>

#include "aig/sim_engine.hpp"
#include "synth/script_search.hpp"

namespace lsml::learn {

double circuit_accuracy(aig::SimEngine& engine, const data::Dataset& ds) {
  if (ds.num_rows() == 0 || engine.graph().num_outputs() == 0) {
    return 0.0;
  }
  engine.run(ds.column_ptrs());
  return static_cast<double>(
             engine.count_equal(engine.graph().output(0), ds.labels())) /
         static_cast<double>(ds.num_rows());
}

double circuit_accuracy(const aig::Aig& circuit, const data::Dataset& ds) {
  aig::SimEngine engine(circuit);
  return circuit_accuracy(engine, ds);
}

std::vector<double> circuit_accuracies(aig::SimEngine& engine,
                                       const data::Dataset& ds,
                                       const std::vector<aig::Lit>& candidates) {
  std::vector<double> accs(candidates.size(), 0.0);
  if (ds.num_rows() == 0 || candidates.empty()) {
    return accs;
  }
  engine.run(ds.column_ptrs());
  std::vector<std::size_t> equal(candidates.size());
  engine.count_equal_many(candidates.data(), candidates.size(), ds.labels(),
                          equal.data());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    accs[i] = static_cast<double>(equal[i]) / static_cast<double>(ds.num_rows());
  }
  return accs;
}

TrainedModel finish_model(aig::Aig circuit, std::string method,
                          const data::Dataset& train,
                          const data::Dataset& valid) {
  // The unified optimization entry: a fixed request is one memoized
  // pass-manager run; an "auto" request searches (or recalls) a script for
  // this circuit's features.
  const std::shared_ptr<const synth::ScriptSearch> optimizer =
      synth::default_optimizer();
  synth::OptOutcome optimized = optimizer->optimize(circuit);
  TrainedModel m;
  m.circuit = std::move(optimized.result.circuit);
  m.synth_trace = std::move(optimized.result.trace);
  m.verified = optimized.result.verify;
  m.opt_script = optimized.script.str();
  m.method = std::move(method);
  // One engine, one arena: the train sweep's allocation is reused for the
  // valid sweep (the Table III accuracy pair).
  aig::SimEngine engine(m.circuit);
  m.train_acc = circuit_accuracy(engine, train);
  m.valid_acc = circuit_accuracy(engine, valid);
  return m;
}

}  // namespace lsml::learn
