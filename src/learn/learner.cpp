#include "learn/learner.hpp"

#include <utility>

namespace lsml::learn {

double circuit_accuracy(const aig::Aig& circuit, const data::Dataset& ds) {
  const auto out = circuit.simulate(ds.column_ptrs());
  return data::accuracy(out[0], ds.labels());
}

TrainedModel finish_model(aig::Aig circuit, std::string method,
                          const data::Dataset& train,
                          const data::Dataset& valid) {
  const synth::Pipeline& pipeline = synth::default_pipeline();
  const synth::PassManager manager(pipeline.options);
  synth::SynthResult optimized = manager.run_cached(circuit, pipeline.script);
  TrainedModel m;
  m.circuit = std::move(optimized.circuit);
  m.synth_trace = std::move(optimized.trace);
  m.verified = optimized.verify;
  m.method = std::move(method);
  m.train_acc = circuit_accuracy(m.circuit, train);
  m.valid_acc = circuit_accuracy(m.circuit, valid);
  return m;
}

}  // namespace lsml::learn
