#pragma once
// LUT networks trained by memorization (Chatterjee, ICML'18; Teams 1 & 6).
//
// A network of randomly connected k-input LUTs. Training is pure
// memorization: each LUT entry is set to the majority label of the training
// rows that reach that entry, layer by layer from the inputs. Two wiring
// schemes from Team 6 are supported: fully random, and "unique but random"
// (every output of the previous layer is used once before any duplication).

#include <cstdint>
#include <string>
#include <vector>

#include "learn/learner.hpp"
#include "tt/truth_table.hpp"

namespace lsml::learn {

enum class LutWiring { kRandom, kUniqueRandom };

struct LutNetOptions {
  int num_layers = 4;
  int luts_per_layer = 128;
  int lut_inputs = 4;  ///< k, at most 6 here
  LutWiring wiring = LutWiring::kRandom;
};

class LutNetwork {
 public:
  static LutNetwork fit(const data::Dataset& ds, const LutNetOptions& options,
                        core::Rng& rng);

  [[nodiscard]] core::BitVec predict(const data::Dataset& ds) const;
  [[nodiscard]] aig::Aig to_aig(std::size_t num_inputs) const;
  [[nodiscard]] const LutNetOptions& options() const { return options_; }
  [[nodiscard]] std::size_t num_luts() const;

 private:
  struct Lut {
    std::vector<std::uint32_t> inputs;  ///< indices into previous layer
    tt::TruthTable table;
  };
  // layers_[0] reads the PIs; the final layer is a single output LUT.
  std::vector<std::vector<Lut>> layers_;
  LutNetOptions options_;

  [[nodiscard]] std::vector<core::BitVec> forward(
      const data::Dataset& ds) const;
  friend class LutNetTrainer;
};

class LutNetLearner final : public Learner {
 public:
  explicit LutNetLearner(LutNetOptions options, std::string label = "lutnet")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  LutNetOptions options_;
  std::string label_;
};

/// Team 1's beam-style parameter search: grows layers/width/LUT size while
/// validation accuracy improves; returns the best network found.
LutNetwork lutnet_beam_search(const data::Dataset& train,
                              const data::Dataset& valid,
                              const LutNetOptions& start, core::Rng& rng,
                              int max_steps = 6);

}  // namespace lsml::learn
