#include "learn/cgp.hpp"

#include <algorithm>


namespace lsml::learn {

namespace {

std::uint32_t lit_index(std::uint32_t lit) { return lit >> 1; }
bool lit_compl(std::uint32_t lit) { return lit & 1u; }

}  // namespace

core::BitVec CgpIndividual::evaluate(const data::Dataset& ds) const {
  const std::size_t rows = ds.num_rows();
  std::vector<core::BitVec> gene_vals(genes.size());
  const auto value_of = [&](std::uint32_t lit) -> core::BitVec {
    const std::uint32_t idx = lit_index(lit);
    core::BitVec v = idx < num_pis ? ds.column(idx)
                                   : gene_vals[idx - num_pis];
    if (lit_compl(lit)) {
      v.flip();
    }
    return v;
  };
  for (std::size_t g = 0; g < genes.size(); ++g) {
    const CgpGene& gene = genes[g];
    core::BitVec a = value_of(gene.in0);
    const core::BitVec b = value_of(gene.in1);
    if (gene.is_xor) {
      a ^= b;
    } else {
      a &= b;
    }
    gene_vals[g] = std::move(a);
  }
  core::BitVec out = value_of(output_lit);
  (void)rows;
  return out;
}

aig::Aig CgpIndividual::to_aig() const {
  aig::Aig g(static_cast<std::uint32_t>(num_pis));
  std::vector<aig::Lit> map(num_pis + genes.size());
  for (std::size_t i = 0; i < num_pis; ++i) {
    map[i] = g.pi(static_cast<std::uint32_t>(i));
  }
  const auto lit_of = [&](std::uint32_t lit) {
    return aig::lit_notc(map[lit_index(lit)], lit_compl(lit));
  };
  for (std::size_t i = 0; i < genes.size(); ++i) {
    const CgpGene& gene = genes[i];
    map[num_pis + i] = gene.is_xor ? g.xor2(lit_of(gene.in0), lit_of(gene.in1))
                                   : g.and2(lit_of(gene.in0), lit_of(gene.in1));
  }
  g.add_output(lit_of(output_lit));
  return g.cleanup();
}

std::size_t CgpIndividual::active_genes() const {
  std::vector<std::uint8_t> active(genes.size(), 0);
  const auto mark = [&](std::uint32_t lit) {
    const std::uint32_t idx = lit_index(lit);
    if (idx >= num_pis) {
      active[idx - num_pis] = 1;
    }
  };
  mark(output_lit);
  for (std::size_t g = genes.size(); g-- > 0;) {
    if (active[g]) {
      mark(genes[g].in0);
      mark(genes[g].in1);
    }
  }
  return static_cast<std::size_t>(
      std::count(active.begin(), active.end(), 1));
}

namespace {

std::uint32_t random_lit(std::size_t gene_index, std::size_t num_pis,
                         core::Rng& rng) {
  const std::size_t limit = num_pis + gene_index;  // feed-forward constraint
  const auto idx = static_cast<std::uint32_t>(rng.below(limit));
  return (idx << 1) | static_cast<std::uint32_t>(rng.below(2));
}

}  // namespace

CgpIndividual Cgp::random_individual(std::size_t num_pis,
                                     const CgpOptions& options,
                                     core::Rng& rng) {
  CgpIndividual ind;
  ind.num_pis = num_pis;
  ind.genes.resize(options.genome_nodes);
  for (std::size_t g = 0; g < ind.genes.size(); ++g) {
    ind.genes[g].is_xor = options.use_xor && rng.flip(0.5);
    ind.genes[g].in0 = random_lit(g, num_pis, rng);
    ind.genes[g].in1 = random_lit(g, num_pis, rng);
  }
  const std::size_t out_gene =
      ind.genes.size() - 1 - rng.below(std::max<std::size_t>(1, ind.genes.size() / 10));
  ind.output_lit = static_cast<std::uint32_t>((num_pis + out_gene) << 1) |
                   static_cast<std::uint32_t>(rng.below(2));
  return ind;
}

CgpIndividual Cgp::from_aig(const aig::Aig& seed, const CgpOptions& options,
                            core::Rng& rng) {
  const aig::Aig clean = seed.cleanup();
  CgpIndividual ind;
  ind.num_pis = clean.num_pis();
  // "Twice the original AIG": one non-functional gene per real gene.
  const std::size_t real = clean.num_ands();
  const std::size_t total =
      std::max<std::size_t>(std::max(options.genome_nodes, 2 * real), 8);
  ind.genes.resize(total);
  // Map AIG var -> literal index in CGP space.
  std::vector<std::uint32_t> map(clean.num_nodes(), 0);
  for (std::uint32_t i = 0; i < clean.num_pis(); ++i) {
    map[i + 1] = i;
  }
  const auto cgp_lit = [&](aig::Lit l) {
    return (map[aig::lit_var(l)] << 1) |
           static_cast<std::uint32_t>(aig::lit_compl(l));
  };
  std::size_t g = 0;
  for (std::uint32_t v = clean.num_pis() + 1; v < clean.num_nodes(); ++v, ++g) {
    const aig::Node& n = clean.node(v);
    ind.genes[g].is_xor = false;
    ind.genes[g].in0 = cgp_lit(n.fanin0);
    ind.genes[g].in1 = cgp_lit(n.fanin1);
    map[v] = static_cast<std::uint32_t>(ind.num_pis + g);
  }
  for (; g < total; ++g) {
    ind.genes[g].is_xor = options.use_xor && rng.flip(0.5);
    ind.genes[g].in0 = random_lit(g, ind.num_pis, rng);
    ind.genes[g].in1 = random_lit(g, ind.num_pis, rng);
  }
  if (aig::lit_var(clean.output(0)) == 0) {
    // Constant output: realize it as x0 AND !x0 in gene 0.
    ind.genes[0].is_xor = false;
    ind.genes[0].in0 = 0;  // x0
    ind.genes[0].in1 = 1;  // !x0
    ind.output_lit =
        static_cast<std::uint32_t>(ind.num_pis << 1) |
        static_cast<std::uint32_t>(aig::lit_compl(clean.output(0)));
  } else {
    ind.output_lit = cgp_lit(clean.output(0));
  }
  return ind;
}

CgpIndividual Cgp::evolve(CgpIndividual start, const data::Dataset& train,
                          const CgpOptions& options, core::Rng& rng) {
  data::Dataset batch = train;
  const bool use_batches =
      options.minibatch != 0 && options.minibatch < train.num_rows();
  const auto draw_batch = [&]() {
    std::vector<std::size_t> idx(options.minibatch);
    for (auto& i : idx) {
      i = rng.below(train.num_rows());
    }
    return train.select_rows(idx);
  };
  if (use_batches) {
    batch = draw_batch();
  }

  const auto fitness = [&](const CgpIndividual& ind) {
    return data::accuracy(ind.evaluate(batch), batch.labels());
  };

  CgpIndividual parent = std::move(start);
  double parent_fit = fitness(parent);
  double rate = options.initial_mutation;
  int successes = 0;
  int window = 0;

  const auto mutate = [&](CgpIndividual ind) {
    for (std::size_t g = 0; g < ind.genes.size(); ++g) {
      if (rng.flip(rate)) {
        ind.genes[g].in0 = random_lit(g, ind.num_pis, rng);
      }
      if (rng.flip(rate)) {
        ind.genes[g].in1 = random_lit(g, ind.num_pis, rng);
      }
      if (options.use_xor && rng.flip(rate)) {
        ind.genes[g].is_xor = !ind.genes[g].is_xor;
      }
    }
    if (rng.flip(rate * 4)) {
      const std::size_t out_gene =
          ind.genes.size() - 1 -
          rng.below(std::max<std::size_t>(1, ind.genes.size() / 4));
      ind.output_lit =
          static_cast<std::uint32_t>((ind.num_pis + out_gene) << 1) |
          static_cast<std::uint32_t>(rng.below(2));
    }
    return ind;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    if (use_batches && options.change_batch_every != 0 &&
        gen % options.change_batch_every == options.change_batch_every - 1) {
      batch = draw_batch();
      parent_fit = fitness(parent);
    }
    bool improved = false;
    for (int o = 0; o < options.lambda; ++o) {
      CgpIndividual child = mutate(parent);
      const double child_fit = fitness(child);
      // >= lets neutral drift through; on exact ties the paper prefers the
      // phenotypically larger individual.
      if (child_fit > parent_fit ||
          (child_fit == parent_fit &&
           child.active_genes() >= parent.active_genes())) {
        improved = child_fit > parent_fit;
        parent = std::move(child);
        parent_fit = child_fit;
      }
    }
    // 1/5th success rule on a sliding window.
    successes += improved ? 1 : 0;
    if (++window == 20) {
      const double ratio = successes / 20.0;
      rate = ratio > 0.2 ? std::min(0.25, rate * 1.15)
                         : std::max(1e-4, rate * 0.9);
      successes = 0;
      window = 0;
    }
  }
  return parent;
}

TrainedModel CgpLearner::fit(const data::Dataset& train,
                             const data::Dataset& valid, core::Rng& rng) {
  CgpIndividual start;
  std::string how = label_ + "(random)";
  if (seed_.has_value() &&
      circuit_accuracy(*seed_, train) >= 0.55) {  // the paper's 55% rule
    start = Cgp::from_aig(*seed_, options_, rng);
    how = label_ + "(bootstrapped)";
  } else {
    start = Cgp::random_individual(train.num_inputs(), options_, rng);
  }
  const CgpIndividual best = Cgp::evolve(std::move(start), train, options_, rng);
  return finish_model(best.to_aig(), how, train, valid);
}

}  // namespace lsml::learn
