#pragma once
// Learner factories: recipes for building fresh Learner instances.
//
// A Learner carries mutable training state, so one instance cannot be
// shared across threads. A LearnerFactory is the thread-safe currency of
// the parallel contest engine instead: it is copyable, stateless to
// invoke, and every make() returns an independent instance that one worker
// owns for one (team, benchmark) task.
//
// A process-wide registry maps names to factories so drivers, benches and
// tests can request baseline learners ("dt", "dt8", "rf", "espresso", ...)
// without linking against each learner's options struct. Portfolio teams
// register themselves via portfolio::team_factory (see portfolio/team.hpp).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "learn/learner.hpp"

namespace lsml::learn {

class LearnerFactory {
 public:
  using Fn = std::function<std::unique_ptr<Learner>()>;

  LearnerFactory() = default;
  LearnerFactory(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  /// Builds a fresh, independently-owned learner instance.
  [[nodiscard]] std::unique_ptr<Learner> make() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] explicit operator bool() const { return fn_ != nullptr; }

  // -------------------------------------------------------------- registry
  /// Registers (or replaces) a named factory. Thread-safe.
  static void register_factory(const std::string& key, Fn fn);

  /// Looks up a registered factory; throws std::out_of_range if absent.
  static LearnerFactory from_registry(const std::string& key);

  /// Non-throwing lookup: returns an empty factory (operator bool false)
  /// when `key` is not registered. Lets drivers report bad names cleanly.
  static LearnerFactory try_from_registry(const std::string& key);

  /// Sorted names of every registered factory (built-ins included).
  static std::vector<std::string> registered();

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace lsml::learn
