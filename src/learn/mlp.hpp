#pragma once
// Multi-layer perceptrons with connection pruning and LUT synthesis
// (Team 3's NN flow; Team 8's MLP with periodic activation).
//
// The pipeline mirrors the paper: train a small fully-connected network,
// iteratively prune connections (magnitude pruning + retraining) until
// every neuron has at most `prune_max_fanin` fanins, then convert each
// neuron into a LUT by enumerating its (binary) input assignments and
// thresholding the activation. Table V quantifies the accuracy lost at
// each stage; bench_table5_nn regenerates it.

#include <cstdint>
#include <string>
#include <vector>

#include "learn/learner.hpp"

namespace lsml::learn {

enum class Activation { kSigmoid, kSin };

struct MlpOptions {
  std::vector<int> hidden{32, 16};
  Activation activation = Activation::kSigmoid;
  int epochs = 24;
  double learning_rate = 0.15;
  double momentum = 0.85;
  /// Wider inputs are reduced to this many columns by mutual information
  /// before training (stands in for Team 3's input-connection pruning).
  std::size_t max_input_features = 48;
  int prune_max_fanin = 12;
  int prune_retrain_epochs = 4;
  std::uint64_t seed_hint = 0;
};

class Mlp {
 public:
  /// Trains on (a feature-selected view of) `ds`.
  static Mlp fit(const data::Dataset& ds, const MlpOptions& options,
                 core::Rng& rng);

  /// Float-forward classification (threshold 0.5 on the output neuron).
  [[nodiscard]] core::BitVec predict(const data::Dataset& ds) const;

  /// Magnitude-prunes connections until max fanin is met, retraining after
  /// each pruning round.
  void prune_to_fanin(const data::Dataset& ds, core::Rng& rng);

  /// Neuron-by-neuron LUT conversion; PIs span all dataset inputs.
  [[nodiscard]] aig::Aig to_aig(std::size_t num_inputs) const;

  [[nodiscard]] std::size_t max_fanin() const;
  [[nodiscard]] const std::vector<std::size_t>& selected_features() const {
    return selected_;
  }

 private:
  struct Layer {
    int in_dim = 0;
    int out_dim = 0;
    std::vector<double> w;       ///< out_dim x in_dim, row-major
    std::vector<double> b;
    std::vector<std::uint8_t> mask;  ///< connection alive?
    std::vector<double> vw;      ///< momentum buffers
    std::vector<double> vb;
  };

  [[nodiscard]] double forward_row(const std::vector<double>& x) const;
  void train_epochs(const data::Dataset& ds, int epochs, core::Rng& rng);
  [[nodiscard]] std::vector<double> gather_row(const data::Dataset& ds,
                                               std::size_t r) const;

  std::vector<Layer> layers_;
  Activation activation_ = Activation::kSigmoid;
  double learning_rate_ = 0.15;
  double momentum_ = 0.85;
  int prune_max_fanin_ = 12;
  int prune_retrain_epochs_ = 4;
  std::vector<std::size_t> selected_;  ///< dataset columns used as inputs
};

/// Learner wrapper: fit, prune, synthesize.
class MlpLearner final : public Learner {
 public:
  explicit MlpLearner(MlpOptions options, std::string label = "mlp")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  MlpOptions options_;
  std::string label_;
};

/// Accuracy at the three pipeline stages (Table V).
struct MlpStageAccuracy {
  double initial_train = 0, initial_valid = 0, initial_test = 0;
  double pruned_train = 0, pruned_valid = 0, pruned_test = 0;
  double synth_train = 0, synth_valid = 0, synth_test = 0;
};

MlpStageAccuracy mlp_staged_accuracy(const data::Dataset& train,
                                     const data::Dataset& valid,
                                     const data::Dataset& test,
                                     const MlpOptions& options,
                                     core::Rng& rng);

}  // namespace lsml::learn
