#pragma once
// Learner adapter for the ESPRESSO-style two-level minimizer.
//
// Mirrors how Teams 1 and 9 used ESPRESSO: minimize the sampled onset
// against the sampled offset (one irredundant pass), convert the resulting
// cover to an AIG, and clean it up.

#include <string>
#include <utility>

#include "learn/learner.hpp"
#include "sop/espresso.hpp"
#include "sop/sop_to_aig.hpp"

namespace lsml::learn {

class EspressoLearner final : public Learner {
 public:
  explicit EspressoLearner(sop::EspressoOptions options,
                           std::string label = "espresso")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }

  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override {
    const sop::Cover cover = sop::espresso(train, options_, rng);
    return finish_model(sop::cover_to_aig(cover, train.num_inputs()), label_,
                        train, valid);
  }

 private:
  sop::EspressoOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
