#include "learn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "aig/aig_build.hpp"
#include "feature/selection.hpp"
#include "tt/truth_table.hpp"

namespace lsml::learn {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double act(double z, Activation a) {
  return a == Activation::kSin ? std::sin(z) : sigmoid(z);
}

double act_grad(double z, Activation a) {
  if (a == Activation::kSin) {
    return std::cos(z);
  }
  const double s = sigmoid(z);
  return s * (1.0 - s);
}

/// Binarization threshold used during LUT conversion: "rounding the
/// activation" means output 1 iff the activation exceeds its midpoint,
/// which for both sigmoid and sine is z such that act(z) >= act-midpoint.
bool act_bit(double z, Activation a) {
  return a == Activation::kSin ? std::sin(z) >= 0.0 : z >= 0.0;
}

}  // namespace

std::vector<double> Mlp::gather_row(const data::Dataset& ds,
                                    std::size_t r) const {
  std::vector<double> x(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    x[i] = ds.input(r, selected_[i]) ? 1.0 : 0.0;
  }
  return x;
}

double Mlp::forward_row(const std::vector<double>& x) const {
  std::vector<double> cur = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(static_cast<std::size_t>(layer.out_dim));
    const bool last = l + 1 == layers_.size();
    for (int o = 0; o < layer.out_dim; ++o) {
      double z = layer.b[static_cast<std::size_t>(o)];
      const std::size_t base =
          static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.in_dim);
      for (int i = 0; i < layer.in_dim; ++i) {
        const std::size_t wi = base + static_cast<std::size_t>(i);
        if (layer.mask[wi]) {
          z += layer.w[wi] * cur[static_cast<std::size_t>(i)];
        }
      }
      // The output neuron is always sigmoid (probability); hidden neurons
      // use the configured activation.
      next[static_cast<std::size_t>(o)] =
          last ? sigmoid(z) : act(z, activation_);
    }
    cur = std::move(next);
  }
  return cur[0];
}

Mlp Mlp::fit(const data::Dataset& ds, const MlpOptions& options,
             core::Rng& rng) {
  Mlp net;
  net.activation_ = options.activation;
  net.learning_rate_ = options.learning_rate;
  net.momentum_ = options.momentum;
  net.prune_max_fanin_ = options.prune_max_fanin;
  net.prune_retrain_epochs_ = options.prune_retrain_epochs;

  if (ds.num_inputs() > options.max_input_features) {
    const auto scores = feature::mutual_information(ds);
    net.selected_ = feature::select_k_best(scores, options.max_input_features);
  } else {
    net.selected_.resize(ds.num_inputs());
    std::iota(net.selected_.begin(), net.selected_.end(), 0);
  }

  std::vector<int> dims;
  dims.push_back(static_cast<int>(net.selected_.size()));
  for (int h : options.hidden) {
    dims.push_back(h);
  }
  dims.push_back(1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    layer.in_dim = dims[l];
    layer.out_dim = dims[l + 1];
    const auto n = static_cast<std::size_t>(layer.in_dim) *
                   static_cast<std::size_t>(layer.out_dim);
    layer.w.resize(n);
    layer.mask.assign(n, 1);
    layer.vw.assign(n, 0.0);
    layer.b.assign(static_cast<std::size_t>(layer.out_dim), 0.0);
    layer.vb.assign(static_cast<std::size_t>(layer.out_dim), 0.0);
    const double scale = std::sqrt(2.0 / layer.in_dim);
    for (auto& w : layer.w) {
      w = rng.gaussian() * scale;
    }
    net.layers_.push_back(std::move(layer));
  }
  net.train_epochs(ds, options.epochs, rng);
  return net;
}

void Mlp::train_epochs(const data::Dataset& ds, int epochs, core::Rng& rng) {
  const std::size_t n = ds.num_rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Per-layer forward caches.
  std::vector<std::vector<double>> zs(layers_.size());
  std::vector<std::vector<double>> as(layers_.size() + 1);

  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    const double lr = learning_rate_ / (1.0 + 0.15 * epoch);
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t r = order[idx];
      as[0] = gather_row(ds, r);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer& layer = layers_[l];
        const bool last = l + 1 == layers_.size();
        zs[l].assign(static_cast<std::size_t>(layer.out_dim), 0.0);
        as[l + 1].assign(static_cast<std::size_t>(layer.out_dim), 0.0);
        for (int o = 0; o < layer.out_dim; ++o) {
          double z = layer.b[static_cast<std::size_t>(o)];
          const std::size_t base = static_cast<std::size_t>(o) *
                                   static_cast<std::size_t>(layer.in_dim);
          for (int j = 0; j < layer.in_dim; ++j) {
            const std::size_t wi = base + static_cast<std::size_t>(j);
            if (layer.mask[wi]) {
              z += layer.w[wi] * as[l][static_cast<std::size_t>(j)];
            }
          }
          zs[l][static_cast<std::size_t>(o)] = z;
          as[l + 1][static_cast<std::size_t>(o)] =
              last ? sigmoid(z) : act(z, activation_);
        }
      }
      // Backward: BCE with logistic output -> delta = p - y.
      const double y = ds.label(r) ? 1.0 : 0.0;
      std::vector<double> delta{as.back()[0] - y};
      for (std::size_t l = layers_.size(); l-- > 0;) {
        Layer& layer = layers_[l];
        std::vector<double> prev_delta(
            static_cast<std::size_t>(layer.in_dim), 0.0);
        for (int o = 0; o < layer.out_dim; ++o) {
          const double d = delta[static_cast<std::size_t>(o)];
          const std::size_t base = static_cast<std::size_t>(o) *
                                   static_cast<std::size_t>(layer.in_dim);
          for (int j = 0; j < layer.in_dim; ++j) {
            const std::size_t wi = base + static_cast<std::size_t>(j);
            if (!layer.mask[wi]) {
              continue;
            }
            prev_delta[static_cast<std::size_t>(j)] += layer.w[wi] * d;
            layer.vw[wi] = momentum_ * layer.vw[wi] -
                           lr * d * as[l][static_cast<std::size_t>(j)];
            layer.w[wi] += layer.vw[wi];
          }
          layer.vb[static_cast<std::size_t>(o)] =
              momentum_ * layer.vb[static_cast<std::size_t>(o)] - lr * d;
          layer.b[static_cast<std::size_t>(o)] +=
              layer.vb[static_cast<std::size_t>(o)];
        }
        if (l > 0) {
          for (int j = 0; j < layer.in_dim; ++j) {
            prev_delta[static_cast<std::size_t>(j)] *=
                act_grad(zs[l - 1][static_cast<std::size_t>(j)], activation_);
          }
          delta = std::move(prev_delta);
        }
      }
    }
  }
}

core::BitVec Mlp::predict(const data::Dataset& ds) const {
  core::BitVec out(ds.num_rows());
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    if (forward_row(gather_row(ds, r)) >= 0.5) {
      out.set(r, true);
    }
  }
  return out;
}

std::size_t Mlp::max_fanin() const {
  std::size_t worst = 0;
  for (const Layer& layer : layers_) {
    for (int o = 0; o < layer.out_dim; ++o) {
      std::size_t fanin = 0;
      const std::size_t base = static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(layer.in_dim);
      for (int j = 0; j < layer.in_dim; ++j) {
        fanin += layer.mask[base + static_cast<std::size_t>(j)];
      }
      worst = std::max(worst, fanin);
    }
  }
  return worst;
}

void Mlp::prune_to_fanin(const data::Dataset& ds, core::Rng& rng) {
  const auto target = static_cast<std::size_t>(prune_max_fanin_);
  while (max_fanin() > target) {
    for (Layer& layer : layers_) {
      for (int o = 0; o < layer.out_dim; ++o) {
        const std::size_t base = static_cast<std::size_t>(o) *
                                 static_cast<std::size_t>(layer.in_dim);
        std::vector<std::size_t> alive;
        for (int j = 0; j < layer.in_dim; ++j) {
          if (layer.mask[base + static_cast<std::size_t>(j)]) {
            alive.push_back(base + static_cast<std::size_t>(j));
          }
        }
        if (alive.size() <= target) {
          continue;
        }
        // Keep the largest-magnitude 60% (but at least `target`).
        const std::size_t keep =
            std::max(target, alive.size() * 6 / 10);
        std::sort(alive.begin(), alive.end(),
                  [&](std::size_t a, std::size_t b) {
                    return std::abs(layer.w[a]) > std::abs(layer.w[b]);
                  });
        for (std::size_t i = keep; i < alive.size(); ++i) {
          layer.mask[alive[i]] = 0;
          layer.w[alive[i]] = 0.0;
        }
      }
    }
    train_epochs(ds, prune_retrain_epochs_, rng);
  }
}

aig::Aig Mlp::to_aig(std::size_t num_inputs) const {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> values;
  values.reserve(selected_.size());
  for (std::size_t f : selected_) {
    values.push_back(g.pi(static_cast<std::uint32_t>(f)));
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<aig::Lit> next(static_cast<std::size_t>(layer.out_dim));
    for (int o = 0; o < layer.out_dim; ++o) {
      const std::size_t base = static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(layer.in_dim);
      std::vector<std::size_t> alive;
      for (int j = 0; j < layer.in_dim; ++j) {
        if (layer.mask[base + static_cast<std::size_t>(j)]) {
          alive.push_back(static_cast<std::size_t>(j));
        }
      }
      // Enumerate all assignments of the live fanins; threshold activation.
      const int m = static_cast<int>(alive.size());
      tt::TruthTable table(m);
      for (std::uint64_t p = 0; p < (1ULL << m); ++p) {
        double z = layer.b[static_cast<std::size_t>(o)];
        for (int j = 0; j < m; ++j) {
          if (p & (1ULL << j)) {
            z += layer.w[base + alive[static_cast<std::size_t>(j)]];
          }
        }
        const bool last = l + 1 == layers_.size();
        table.set(p, last ? z >= 0.0 : act_bit(z, activation_));
      }
      std::vector<aig::Lit> leaves;
      leaves.reserve(alive.size());
      for (std::size_t j : alive) {
        leaves.push_back(values[j]);
      }
      next[static_cast<std::size_t>(o)] =
          aig::from_truth_table(g, table, leaves);
    }
    values = std::move(next);
  }
  g.add_output(values[0]);
  return g;
}

TrainedModel MlpLearner::fit(const data::Dataset& train,
                             const data::Dataset& valid, core::Rng& rng) {
  Mlp net = Mlp::fit(train, options_, rng);
  net.prune_to_fanin(train, rng);
  return finish_model(net.to_aig(train.num_inputs()), label_, train, valid);
}

MlpStageAccuracy mlp_staged_accuracy(const data::Dataset& train,
                                     const data::Dataset& valid,
                                     const data::Dataset& test,
                                     const MlpOptions& options,
                                     core::Rng& rng) {
  MlpStageAccuracy stages;
  Mlp net = Mlp::fit(train, options, rng);
  stages.initial_train = data::accuracy(net.predict(train), train.labels());
  stages.initial_valid = data::accuracy(net.predict(valid), valid.labels());
  stages.initial_test = data::accuracy(net.predict(test), test.labels());
  net.prune_to_fanin(train, rng);
  stages.pruned_train = data::accuracy(net.predict(train), train.labels());
  stages.pruned_valid = data::accuracy(net.predict(valid), valid.labels());
  stages.pruned_test = data::accuracy(net.predict(test), test.labels());
  const aig::Aig circuit = net.to_aig(train.num_inputs());
  aig::SimEngine engine(circuit);
  stages.synth_train = circuit_accuracy(engine, train);
  stages.synth_valid = circuit_accuracy(engine, valid);
  stages.synth_test = circuit_accuracy(engine, test);
  return stages;
}

}  // namespace lsml::learn
