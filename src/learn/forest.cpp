#include "learn/forest.hpp"

#include <cmath>

#include "aig/aig_build.hpp"

namespace lsml::learn {

RandomForest RandomForest::fit(const data::Dataset& ds,
                               const ForestOptions& options, core::Rng& rng) {
  RandomForest forest;
  std::size_t num_trees = options.num_trees;
  if (num_trees % 2 == 0) {
    ++num_trees;  // avoid voting ties
  }
  DtOptions tree_options = options.tree;
  if (tree_options.feature_subsample == 0) {
    tree_options.feature_subsample = options.feature_subsample != 0
        ? options.feature_subsample
        : static_cast<std::size_t>(
              std::ceil(std::sqrt(static_cast<double>(ds.num_inputs()))));
  }
  const auto rows =
      static_cast<std::size_t>(options.bootstrap_fraction *
                               static_cast<double>(ds.num_rows()));
  forest.trees_.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    std::vector<std::size_t> sample(rows);
    for (auto& r : sample) {
      r = rng.below(ds.num_rows());
    }
    const data::Dataset boot = ds.select_rows(sample);
    forest.trees_.push_back(DecisionTree::fit(boot, tree_options, rng));
  }
  return forest;
}

core::BitVec RandomForest::predict(const data::Dataset& ds) const {
  std::vector<std::uint16_t> votes(ds.num_rows(), 0);
  for (const auto& tree : trees_) {
    const core::BitVec p = tree.predict(ds);
    for (std::size_t r = 0; r < ds.num_rows(); ++r) {
      votes[r] = static_cast<std::uint16_t>(votes[r] + (p.get(r) ? 1 : 0));
    }
  }
  core::BitVec out(ds.num_rows());
  const std::size_t need = trees_.size() / 2 + 1;
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    if (votes[r] >= need) {
      out.set(r, true);
    }
  }
  return out;
}

aig::Aig RandomForest::to_aig(std::size_t num_inputs) const {
  aig::Aig g(static_cast<std::uint32_t>(num_inputs));
  std::vector<aig::Lit> leaves;
  leaves.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    leaves.push_back(g.pi(static_cast<std::uint32_t>(i)));
  }
  std::vector<aig::Lit> tree_outputs;
  tree_outputs.reserve(trees_.size());
  for (const auto& tree : trees_) {
    tree_outputs.push_back(tree.to_lit(g, leaves));
  }
  g.add_output(aig::majority(g, tree_outputs));
  return g;
}

std::vector<double> RandomForest::feature_importance(
    std::size_t num_features) const {
  std::vector<double> total(num_features, 0.0);
  for (const auto& tree : trees_) {
    const auto gains = tree.feature_gains(num_features);
    for (std::size_t f = 0; f < num_features; ++f) {
      total[f] += gains[f];
    }
  }
  for (auto& v : total) {
    v /= static_cast<double>(trees_.size());
  }
  return total;
}

TrainedModel ForestLearner::fit(const data::Dataset& train,
                                const data::Dataset& valid, core::Rng& rng) {
  const RandomForest forest = RandomForest::fit(train, options_, rng);
  return finish_model(forest.to_aig(train.num_inputs()), label_, train,
                      valid);
}

}  // namespace lsml::learn
