#pragma once
// Random forests (Teams 1, 5, 8).
//
// Bagged decision trees with per-split feature subsampling; prediction is
// the strict majority vote. Synthesis connects the per-tree MUX cascades
// with a popcount-based majority gate (Team 8's "seventeen trees of depth
// eight plus a 17-input majority"). Also provides impurity-decrease feature
// importance, the backbone of Team 4's feature-selection substitute.

#include <string>
#include <vector>

#include "learn/dt.hpp"
#include "learn/learner.hpp"

namespace lsml::learn {

struct ForestOptions {
  std::size_t num_trees = 17;      ///< forced odd so votes cannot tie
  DtOptions tree;                  ///< per-tree options
  double bootstrap_fraction = 1.0; ///< rows drawn (with replacement)
  /// Per-split feature subsample; 0 = sqrt(num_features).
  std::size_t feature_subsample = 0;
};

class RandomForest {
 public:
  static RandomForest fit(const data::Dataset& ds,
                          const ForestOptions& options, core::Rng& rng);

  [[nodiscard]] core::BitVec predict(const data::Dataset& ds) const;
  [[nodiscard]] aig::Aig to_aig(std::size_t num_inputs) const;
  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }

  /// Mean impurity-decrease importance per feature.
  [[nodiscard]] std::vector<double> feature_importance(
      std::size_t num_features) const;

 private:
  std::vector<DecisionTree> trees_;
};

class ForestLearner final : public Learner {
 public:
  explicit ForestLearner(ForestOptions options, std::string label = "rf")
      : options_(options), label_(std::move(label)) {}
  [[nodiscard]] std::string name() const override { return label_; }
  TrainedModel fit(const data::Dataset& train, const data::Dataset& valid,
                   core::Rng& rng) override;

 private:
  ForestOptions options_;
  std::string label_;
};

}  // namespace lsml::learn
