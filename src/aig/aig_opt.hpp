#pragma once
// AIG optimization passes.
//
// Stand-in for the ABC `resyn2`-style cleanup every team ran on their
// synthesized circuits: tree balancing (depth), cut-based rewriting via
// ISOP resynthesis (size), and dangling-node removal. All passes are
// verified to preserve functionality in the test suite.

#include "aig/aig.hpp"

namespace lsml::aig {

/// Depth-oriented pass: rebuilds maximal AND trees as balanced trees.
Aig balance(const Aig& in);

/// Size-oriented pass: for every node, enumerates k-input cuts, evaluates
/// an ISOP-based resynthesis of the cut function and applies it when the
/// estimated gain (MFFC size minus new cost) is positive. `cut_size` is
/// clamped to [2, 6] (6-leaf cuts fit a 64-bit truth table); larger cuts
/// behave like ABC's refactor, smaller like its rewrite.
Aig rewrite(const Aig& in, int cut_size = 4, int cuts_per_node = 8);

/// Full pipeline: iterates cleanup/balance/rewrite until no improvement.
/// Never returns a larger AIG than the cleaned-up input. Low-level helper;
/// learners and portfolios go through synth::PassManager instead, which
/// adds scripts, budgets, and per-pass stats on top of these passes.
Aig optimize(const Aig& in, int max_rounds = 3);

}  // namespace lsml::aig
