#include "aig/sim_engine.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "aig/aig.hpp"

namespace lsml::aig {

void SimEngine::run(const std::vector<const core::BitVec*>& pi_values) {
  const Aig& g = *g_;
  const std::uint32_t num_pis = g.num_pis();
  if (pi_values.size() < num_pis) {
    throw std::invalid_argument("SimEngine::run: not enough PI value vectors");
  }
  rows_ = num_pis == 0 ? 0 : pi_values[0]->size();
  wpr_ = (rows_ + 63) / 64;
  const std::size_t num_nodes = g.num_nodes();
  arena_.resize(num_nodes * wpr_);
  if (wpr_ == 0) {
    return;
  }
  std::uint64_t* const base = arena_.data();
  // Constant-false row.
  std::memset(base, 0, wpr_ * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < num_pis; ++i) {
    const core::BitVec& column = *pi_values[i];
    if (column.size() != rows_) {
      throw std::invalid_argument("SimEngine::run: ragged PI value vectors");
    }
    std::memcpy(base + (static_cast<std::size_t>(i) + 1) * wpr_,
                column.words(), wpr_ * sizeof(std::uint64_t));
  }
  const std::size_t wpr = wpr_;
  const std::size_t rem = rows_ & 63;
  const std::uint64_t tail_mask = rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
  for (std::uint32_t v = num_pis + 1; v < num_nodes; ++v) {
    const Lit f0 = g.fanin0(v);
    const Lit f1 = g.fanin1(v);
    const std::uint64_t* __restrict a =
        base + static_cast<std::size_t>(lit_var(f0)) * wpr;
    const std::uint64_t* __restrict b =
        base + static_cast<std::size_t>(lit_var(f1)) * wpr;
    std::uint64_t* __restrict dst = base + static_cast<std::size_t>(v) * wpr;
    const std::uint64_t ca = lit_compl(f0) ? ~0ULL : 0ULL;
    const std::uint64_t cb = lit_compl(f1) ? ~0ULL : 0ULL;
    std::size_t w = 0;
    for (; w + 4 <= wpr; w += 4) {
      dst[w + 0] = (a[w + 0] ^ ca) & (b[w + 0] ^ cb);
      dst[w + 1] = (a[w + 1] ^ ca) & (b[w + 1] ^ cb);
      dst[w + 2] = (a[w + 2] ^ ca) & (b[w + 2] ^ cb);
      dst[w + 3] = (a[w + 3] ^ ca) & (b[w + 3] ^ cb);
    }
    for (; w < wpr; ++w) {
      dst[w] = (a[w] ^ ca) & (b[w] ^ cb);
    }
    // Complemented edges set bits past rows() in the last word; re-mask so
    // every row keeps the BitVec tail-zero invariant.
    dst[wpr - 1] &= tail_mask;
  }
}

core::BitVec SimEngine::extract(Lit l) const {
  core::BitVec out(rows_);
  if (wpr_ == 0) {
    return out;
  }
  const std::uint64_t* src = row(lit_var(l));
  if (lit_compl(l)) {
    for (std::size_t w = 0; w < wpr_; ++w) {
      out.words()[w] = ~src[w];
    }
    out.mask_tail();
  } else {
    std::memcpy(out.words(), src, wpr_ * sizeof(std::uint64_t));
  }
  return out;
}

std::vector<core::BitVec> SimEngine::outputs() const {
  const std::vector<Lit>& outs = g_->outputs();
  std::vector<core::BitVec> result;
  result.reserve(outs.size());
  for (Lit l : outs) {
    result.push_back(extract(l));
  }
  return result;
}

std::vector<core::BitVec> SimEngine::node_values() const {
  const std::uint32_t num_nodes = g_->num_nodes();
  std::vector<core::BitVec> result;
  result.reserve(num_nodes);
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    result.push_back(extract(make_lit(v, false)));
  }
  return result;
}

std::size_t SimEngine::count_ones(std::uint32_t var) const {
  const std::uint64_t* src = row(var);
  std::size_t total = 0;
  for (std::size_t w = 0; w < wpr_; ++w) {
    total += static_cast<std::size_t>(std::popcount(src[w]));
  }
  return total;
}

std::size_t SimEngine::count_equal(Lit l, const core::BitVec& ref) const {
  if (ref.size() != rows_) {
    throw std::invalid_argument("SimEngine::count_equal: row count mismatch");
  }
  const std::uint64_t* src = row(lit_var(l));
  const std::uint64_t flip = lit_compl(l) ? ~0ULL : 0ULL;
  std::size_t diff = 0;
  for (std::size_t w = 0; w < wpr_; ++w) {
    diff += static_cast<std::size_t>(
        std::popcount((src[w] ^ flip) ^ ref.word(w)));
  }
  // The flip sets the tail bits of the last word; those positions do not
  // exist, so discount them instead of re-masking the stream.
  if (lit_compl(l) && (rows_ & 63) != 0) {
    diff -= 64 - (rows_ & 63);
  }
  return rows_ - diff;
}

}  // namespace lsml::aig
