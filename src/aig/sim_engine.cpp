#include "aig/sim_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "aig/aig.hpp"
#include "core/thread_pool.hpp"
#include "obs/registry.hpp"

namespace lsml::aig {

namespace {

// Column-block sizing for sweep_columns: aim one block's arena slice at
// roughly half an L2 (fanin rows stay resident across the whole gate
// pass), but never narrower than one AVX-512 vector.
constexpr std::size_t kBlockTargetWords = (512 * 1024) / 8;
constexpr std::size_t kMinBlockWords = 8;

// run_parallel: a worker's column slice must be at least this wide for the
// fork to beat the serial sweep (8 words = 512 rows per slice).
constexpr std::size_t kMinParallelWords = 8;

}  // namespace

bool SimEngine::prepare(const std::vector<const core::BitVec*>& pi_values) {
  const Aig& g = *g_;
  const std::uint32_t num_pis = g.num_pis();
  if (pi_values.size() < num_pis) {
    throw std::invalid_argument("SimEngine::run: not enough PI value vectors");
  }
  rows_ = num_pis == 0 ? 0 : pi_values[0]->size();
  wpr_ = (rows_ + 63) / 64;
  const std::size_t num_nodes = g.num_nodes();
  arena_.resize(num_nodes * wpr_);
  if (wpr_ == 0) {
    return false;
  }
  const std::size_t rem = rows_ & 63;
  tail_mask_ = rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
  std::uint64_t* const base = arena_.data();
  // Constant-false row.
  std::memset(base, 0, wpr_ * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < num_pis; ++i) {
    const core::BitVec& column = *pi_values[i];
    if (column.size() != rows_) {
      throw std::invalid_argument("SimEngine::run: ragged PI value vectors");
    }
    std::memcpy(base + (static_cast<std::size_t>(i) + 1) * wpr_,
                column.words(), wpr_ * sizeof(std::uint64_t));
  }
  if (sched_graph_ != g_ || sched_nodes_ != g.num_nodes()) {
    rebuild_schedule();
  }
  return true;
}

void SimEngine::rebuild_schedule() {
  const Aig& g = *g_;
  const std::uint32_t num_nodes = g.num_nodes();
  const std::uint32_t first_and = g.num_pis() + 1;
  const std::size_t num_ands = num_nodes - first_and;
  gates_.clear();
  gates_.resize(num_ands);
  if (num_ands != 0) {
    // Counting sort into level-major order, stable by var within a level:
    // a topological order (fanin levels are strictly smaller) in which
    // adjacent gates are independent, so the kernel's stores never feed
    // the very next gate's loads.
    const std::vector<std::uint32_t> levels = g.levels();
    std::uint32_t max_level = 0;
    for (std::uint32_t v = first_and; v < num_nodes; ++v) {
      max_level = std::max(max_level, levels[v]);
    }
    std::vector<std::uint32_t> cursor(max_level + 2, 0);
    for (std::uint32_t v = first_and; v < num_nodes; ++v) {
      ++cursor[levels[v] + 1];
    }
    for (std::size_t l = 1; l < cursor.size(); ++l) {
      cursor[l] += cursor[l - 1];
    }
    for (std::uint32_t v = first_and; v < num_nodes; ++v) {
      gates_[cursor[levels[v]]++] = {v, g.fanin0(v), g.fanin1(v)};
    }
  }
  sched_graph_ = g_;
  sched_nodes_ = num_nodes;
}

void SimEngine::sweep_columns(std::size_t w0, std::size_t w1) {
  if (gates_.empty() || w0 >= w1) {
    return;
  }
  const core::simd::Ops& kernels = core::simd::ops();
  std::uint64_t* const base = arena_.data();
  const std::size_t num_rows = g_->num_nodes();
  std::size_t block_w =
      kBlockTargetWords / std::max<std::size_t>(num_rows, 1);
  block_w = std::max(block_w, kMinBlockWords);
  for (std::size_t w = w0; w < w1; w += block_w) {
    kernels.sweep(base, wpr_, gates_.data(), gates_.size(), w,
                  std::min(w1, w + block_w), tail_mask_);
  }
}

namespace {

// Process-wide simulation telemetry. Registry references are resolved once
// and cached; the per-sweep cost is a handful of relaxed fetch_adds plus
// two steady_clock reads for the latency histogram — side-channel only,
// the swept bits are untouched.
struct SimMetrics {
  obs::Counter& sweeps;
  obs::Counter& parallel_sweeps;
  obs::Counter& rows;
  obs::Counter& words;
  obs::Counter& partitions;
  obs::Histogram& sweep_us;

  static SimMetrics& get() {
    static SimMetrics* m = [] {
      obs::Registry& reg = obs::Registry::instance();
      // Info metric: which simd kernel backend dispatch resolved to (one
      // series per backend that has actually swept in this process).
      reg.gauge(std::string("lsml_sim_kernel_info{backend=\"") +
                core::simd::ops().name + "\"}")
          .set(1);
      return new SimMetrics{reg.counter("lsml_sim_sweeps_total"),
                            reg.counter("lsml_sim_parallel_sweeps_total"),
                            reg.counter("lsml_sim_rows_total"),
                            reg.counter("lsml_sim_words_total"),
                            reg.counter("lsml_sim_partitions_total"),
                            reg.histogram("lsml_sim_sweep_us")};
    }();
    return *m;
  }
};

std::uint64_t us_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

void SimEngine::run(const std::vector<const core::BitVec*>& pi_values) {
  SimMetrics& metrics = SimMetrics::get();
  const auto start = std::chrono::steady_clock::now();
  if (!prepare(pi_values)) {
    return;
  }
  sweep_columns(0, wpr_);
  metrics.sweeps.add(1);
  metrics.rows.add(rows_);
  metrics.words.add(wpr_ * gates_.size());
  metrics.sweep_us.record(
      us_between(start, std::chrono::steady_clock::now()));
}

void SimEngine::run_parallel(
    const std::vector<const core::BitVec*>& pi_values,
    core::ThreadPool& pool) {
  SimMetrics& metrics = SimMetrics::get();
  const auto start = std::chrono::steady_clock::now();
  if (!prepare(pi_values)) {
    return;
  }
  const std::size_t chunks =
      std::min(pool.num_threads(), wpr_ / kMinParallelWords);
  if (chunks <= 1 || gates_.empty()) {
    sweep_columns(0, wpr_);
    metrics.sweeps.add(1);
    metrics.rows.add(rows_);
    metrics.words.add(wpr_ * gates_.size());
    metrics.sweep_us.record(
        us_between(start, std::chrono::steady_clock::now()));
    return;
  }
  // Chunk c owns word columns [c*wpr/chunks, (c+1)*wpr/chunks): a disjoint
  // partition, so workers never touch the same word and the arena is
  // bit-identical to the serial sweep — no merge, no ordering sensitivity.
  const std::size_t wpr = wpr_;
  pool.parallel_for(chunks, [this, wpr, chunks](std::size_t c) {
    sweep_columns(c * wpr / chunks, (c + 1) * wpr / chunks);
  });
  metrics.sweeps.add(1);
  metrics.parallel_sweeps.add(1);
  metrics.partitions.add(chunks);
  metrics.rows.add(rows_);
  metrics.words.add(wpr_ * gates_.size());
  metrics.sweep_us.record(
      us_between(start, std::chrono::steady_clock::now()));
}

core::BitVec SimEngine::extract(Lit l) const {
  core::BitVec out;
  extract_into(l, &out);
  return out;
}

void SimEngine::extract_into(Lit l, core::BitVec* out) const {
  if (out->size() != rows_) {
    out->reset(rows_);
  }
  if (wpr_ == 0) {
    return;
  }
  const std::uint64_t* src = row(lit_var(l));
  std::uint64_t* dst = out->words();
  if (lit_compl(l)) {
    for (std::size_t w = 0; w < wpr_; ++w) {
      dst[w] = ~src[w];
    }
    out->mask_tail();
  } else {
    std::memcpy(dst, src, wpr_ * sizeof(std::uint64_t));
  }
}

std::vector<core::BitVec> SimEngine::outputs() const {
  std::vector<core::BitVec> result;
  outputs_into(&result);
  return result;
}

void SimEngine::outputs_into(std::vector<core::BitVec>* out) const {
  const std::vector<Lit>& outs = g_->outputs();
  out->resize(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    extract_into(outs[i], &(*out)[i]);
  }
}

std::vector<core::BitVec> SimEngine::node_values() const {
  const std::uint32_t num_nodes = g_->num_nodes();
  std::vector<core::BitVec> result;
  result.reserve(num_nodes);
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    result.push_back(extract(make_lit(v, false)));
  }
  return result;
}

std::size_t SimEngine::count_ones(std::uint32_t var) const {
  return core::simd::ops().popcount(row(var), wpr_);
}

std::size_t SimEngine::count_equal(Lit l, const core::BitVec& ref) const {
  if (ref.size() != rows_) {
    throw std::invalid_argument("SimEngine::count_equal: row count mismatch");
  }
  const std::uint64_t* src = row(lit_var(l));
  std::size_t diff = core::simd::ops().popcount_xor(src, ref.words(), wpr_);
  if (lit_compl(l)) {
    // Complementing flips every word bit, tail included; those positions
    // do not exist, so discount them instead of re-masking the stream.
    diff = wpr_ * 64 - diff;
    if ((rows_ & 63) != 0) {
      diff -= 64 - (rows_ & 63);
    }
  }
  return rows_ - diff;
}

void SimEngine::count_equal_many(const Lit* lits, std::size_t n,
                                 const core::BitVec& ref,
                                 std::size_t* out) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = count_equal(lits[i], ref);
  }
}

}  // namespace lsml::aig
